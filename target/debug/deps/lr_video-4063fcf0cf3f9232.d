/root/repo/target/debug/deps/lr_video-4063fcf0cf3f9232.d: crates/video/src/lib.rs crates/video/src/classes.rs crates/video/src/dataset.rs crates/video/src/geometry.rs crates/video/src/object.rs crates/video/src/raster.rs crates/video/src/regime.rs crates/video/src/scene.rs crates/video/src/trace.rs crates/video/src/video.rs Cargo.toml

/root/repo/target/debug/deps/liblr_video-4063fcf0cf3f9232.rmeta: crates/video/src/lib.rs crates/video/src/classes.rs crates/video/src/dataset.rs crates/video/src/geometry.rs crates/video/src/object.rs crates/video/src/raster.rs crates/video/src/regime.rs crates/video/src/scene.rs crates/video/src/trace.rs crates/video/src/video.rs Cargo.toml

crates/video/src/lib.rs:
crates/video/src/classes.rs:
crates/video/src/dataset.rs:
crates/video/src/geometry.rs:
crates/video/src/object.rs:
crates/video/src/raster.rs:
crates/video/src/regime.rs:
crates/video/src/scene.rs:
crates/video/src/trace.rs:
crates/video/src/video.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
