//! Deterministic tracing of the serving runtime: every scheduler
//! decision explained, every span timed on the virtual clock, and the
//! whole trace byte-identical under any worker count.
//!
//! Runs the mixed-class serving workload on TX2 twice — clean and with a
//! moderate seeded fault schedule — with full tracing on, then analyzes
//! the decision records: per-branch residency, the switch matrix, the
//! Eq. 3 latency-budget decomposition (`L0`, `S0`, `S(f_H)`, `C(b0,b)`,
//! amortized overhead, slack) against achieved latency, and an
//! attribution of every SLO-violating GoF to its dominant cause.
//!
//! Verified properties (the bin exits non-zero if any fails):
//! - the serve report is byte-identical with observation off, counting,
//!   and fully tracing — observation never perturbs the run;
//! - counting mode aggregates exactly the metrics trace mode does;
//! - the serialized trace JSONL is byte-identical under 1, 2, and 4 pool
//!   workers, clean and faulted;
//! - the trace parses back through `lr_obs::trace::parse_jsonl`.
//!
//! The clean trace is written to `target/trace.jsonl` (inspect it with
//! `cargo run --release --example trace_inspect`).
//!
//! Usage: `cargo run --release -p lr-bench --bin trace [small|paper] [--check]`
//!
//! `--check` additionally compares the freshly rendered artifact against
//! the committed `results_trace.txt` and fails on any byte difference.

use std::sync::Arc;

use litereconfig::{FeatureService, Policy, TrainedScheduler};
use lr_bench::{scale_from_args, ExperimentScale, Suite};
use lr_device::{DeviceKind, FaultConfig};
use lr_eval::TextTable;
use lr_obs::analyze::{branch_residency, budget_breakdown, switch_matrix, violation_attribution};
use lr_obs::{DecisionRecord, ObsBundle};
use lr_serve::{serve_traced, ObsMode, ServeConfig, ServeReport, SloClass, StreamSpec};

const ARTIFACT: &str = "results_trace.txt";
const JSONL_PATH: &str = "target/trace.jsonl";

fn mixed_specs(n: usize, frames: usize) -> Vec<StreamSpec> {
    (0..n)
        .map(|i| {
            let class = match i % 3 {
                0 => SloClass::Gold,
                1 => SloClass::Silver,
                _ => SloClass::Bronze,
            };
            StreamSpec::synthetic(i as u32, class, frames)
        })
        .collect()
}

/// Same fault schedule as the `faults` bench, so the two artifacts
/// describe the same faulted world.
fn bench_fault(seed: u64) -> FaultConfig {
    let mut f = FaultConfig::moderate(seed);
    f.transient_rate = 0.15;
    f.stall_rate = 0.04;
    f
}

fn run_mode(
    fault: Option<FaultConfig>,
    pool_threads: usize,
    obs: ObsMode,
    specs: &[StreamSpec],
    trained: Arc<TrainedScheduler>,
    raster_size: usize,
) -> (ServeReport, ObsBundle) {
    let mut cfg = ServeConfig::new(DeviceKind::JetsonTx2);
    cfg.seed = 42;
    cfg.pool_threads = pool_threads;
    cfg.obs = obs;
    cfg.fault = fault;
    cfg.fault_window_gofs = 3;
    cfg.fault_rate_threshold = 0.5;
    cfg.fault_backoff_ms = 250.0;
    let mut svc = FeatureService::with_raster_size(raster_size);
    serve_traced(specs, trained, Policy::CostBenefit, &cfg, &mut svc)
}

/// The report rendered to its full textual form — the identity object
/// for the observation-never-perturbs check.
fn report_bytes(report: &ServeReport) -> String {
    format!("{}{}", report.format_table(), report.format_fault_table())
}

/// Renders the analysis of one mode's decision records.
fn analysis_section(label: &str, bundle: &ObsBundle) -> String {
    let decisions: Vec<DecisionRecord> = bundle.decisions().cloned().collect();
    let mut out = format!(
        "== {label} ==\n\
         decisions {}  spans {}  rounds {}  switches {}  faults {}  degraded GoFs {}\n\n",
        decisions.len(),
        bundle.spans().count(),
        bundle.metrics.counter("rounds"),
        bundle.metrics.counter("switches"),
        bundle.metrics.counter("faults"),
        bundle.metrics.counter("degraded_gofs"),
    );

    let mut res = TextTable::new(&["Branch", "Decisions", "Frames", "Frame share (%)"]);
    let residency = branch_residency(&decisions);
    let total_frames: u64 = residency.iter().map(|r| r.frames).sum();
    for r in &residency {
        res.add_row_owned(vec![
            r.key.clone(),
            r.decisions.to_string(),
            r.frames.to_string(),
            format!(
                "{:.1}",
                100.0 * r.frames as f64 / total_frames.max(1) as f64
            ),
        ]);
    }
    out.push_str("Branch residency:\n");
    out.push_str(&res.render());
    out.push('\n');

    out.push_str("Switch matrix (src -> dst):\n");
    let switches = switch_matrix(&decisions);
    if switches.is_empty() {
        out.push_str("(no reconfigurations)\n");
    } else {
        let mut m = TextTable::new(&["From", "To", "Count"]);
        for (src, dst, n) in &switches {
            m.add_row_owned(vec![src.clone(), dst.clone(), n.to_string()]);
        }
        out.push_str(&m.render());
    }
    out.push('\n');

    let bd = budget_breakdown(&decisions);
    let mut budget = TextTable::new(&[
        "L0 (ms)",
        "S0 (ms)",
        "S(f_H) (ms)",
        "C(b0,b) (ms)",
        "Amortized (ms)",
        "Slack (ms)",
        "Actual (ms)",
        "Actual p95 (ms)",
    ]);
    budget.add_row_owned(vec![
        format!("{:.2}", bd.l0_ms),
        format!("{:.2}", bd.s0_ms),
        format!("{:.2}", bd.s_heavy_ms),
        format!("{:.2}", bd.c_switch_ms),
        format!("{:.2}", bd.amortized_ms),
        format!("{:.2}", bd.slack_ms),
        format!("{:.2}", bd.actual_ms),
        format!("{:.2}", bd.actual_p95_ms),
    ]);
    out.push_str(&format!(
        "Latency-budget decomposition (mean per-frame, {} decisions):\n",
        bd.decisions
    ));
    out.push_str(&budget.render());
    out.push('\n');

    out.push_str("SLO-violating GoFs by cause:\n");
    let attribution = violation_attribution(&decisions);
    if attribution.is_empty() {
        out.push_str("(no violations)\n");
    } else {
        let mut v = TextTable::new(&["Cause", "GoFs"]);
        for (cause, n) in &attribution {
            v.add_row_owned(vec![cause.name().to_string(), n.to_string()]);
        }
        out.push_str(&v.render());
    }
    out.push('\n');
    out
}

fn main() {
    let t0 = std::time::Instant::now();
    let check = std::env::args().any(|a| a == "--check");
    let scale = scale_from_args();
    let suite = Suite::build(scale);
    let (n_streams, frames) = match scale {
        ExperimentScale::Small => (6, 96),
        ExperimentScale::Paper => (9, 240),
    };
    let specs = mixed_specs(n_streams, frames);
    let trained = suite.frcnn.clone();
    let raster_size = suite.svc.raster_size();
    let mut checks_passed = true;
    let mut sections = String::new();

    for (mode, fault) in [("clean", None), ("faulted", Some(bench_fault(1717)))] {
        // The identity battery: off vs counting vs trace, and the trace
        // itself under 1/2/4 workers.
        let (report_off, _) =
            run_mode(fault, 1, ObsMode::Off, &specs, trained.clone(), raster_size);
        let (report_count, bundle_count) = run_mode(
            fault,
            1,
            ObsMode::Counting,
            &specs,
            trained.clone(),
            raster_size,
        );
        let (report_trace, bundle_trace) = run_mode(
            fault,
            1,
            ObsMode::Trace,
            &specs,
            trained.clone(),
            raster_size,
        );
        let baseline = report_bytes(&report_off);
        if report_bytes(&report_count) != baseline || report_bytes(&report_trace) != baseline {
            eprintln!("[trace] CHECK FAILED: {mode} report differs across observation modes");
            checks_passed = false;
        }
        if bundle_count.metrics.render() != bundle_trace.metrics.render() {
            eprintln!("[trace] CHECK FAILED: {mode} counting and trace metrics disagree");
            checks_passed = false;
        }
        let jsonl = bundle_trace.to_jsonl();
        for threads in [2usize, 4] {
            let (_, bundle_n) = run_mode(
                fault,
                threads,
                ObsMode::Trace,
                &specs,
                trained.clone(),
                raster_size,
            );
            if bundle_n.to_jsonl() != jsonl {
                eprintln!(
                    "[trace] CHECK FAILED: {mode} trace JSONL differs between 1 and {threads} workers"
                );
                checks_passed = false;
            }
        }
        match lr_obs::trace::parse_jsonl(&jsonl) {
            Ok(values) => {
                if values.len() != jsonl.lines().count() {
                    eprintln!("[trace] CHECK FAILED: {mode} trace parsed to wrong line count");
                    checks_passed = false;
                }
            }
            Err(e) => {
                eprintln!("[trace] CHECK FAILED: {mode} trace does not parse back: {e}");
                checks_passed = false;
            }
        }
        if mode == "clean" {
            if let Err(e) =
                std::fs::create_dir_all("target").and_then(|()| std::fs::write(JSONL_PATH, &jsonl))
            {
                eprintln!("[trace] CHECK FAILED: cannot write {JSONL_PATH}: {e}");
                checks_passed = false;
            } else {
                eprintln!(
                    "[trace] wrote {JSONL_PATH} ({} events, {} bytes)",
                    bundle_trace.events.len(),
                    jsonl.len()
                );
            }
        }
        sections.push_str(&analysis_section(mode, &bundle_trace));
        eprintln!(
            "[trace] {mode} -> {} decisions, {} spans, {} rounds ({:.0}s elapsed)",
            bundle_trace.decisions().count(),
            bundle_trace.spans().count(),
            bundle_trace.metrics.counter("rounds"),
            t0.elapsed().as_secs_f64()
        );
    }

    let artifact = format!(
        "trace: deterministic observability of the serving runtime ({n_streams} streams x \
         {frames} frames, scale {scale:?}, TX2)\n\
         Per-stream sinks record spans, scheduler decision records (Eq. 3 budget terms), and\n\
         dispatch rounds on the virtual clock; buffers merge serially in (stream, gof) order.\n\
         Verified in-process: the serve report is byte-identical with observation off /\n\
         counting / tracing, counting aggregates exactly trace's metrics, and the trace JSONL\n\
         is byte-identical under 1, 2, and 4 pool workers — clean and faulted (moderate\n\
         cadence, transient rate 0.15, stall rate 0.04, seed 1717).\n\n\
         {sections}checks: {}\n",
        if checks_passed { "PASS" } else { "FAIL" }
    );
    println!("{artifact}");

    if check {
        match std::fs::read_to_string(ARTIFACT) {
            Ok(committed) if committed == artifact => {
                eprintln!("[trace] CHECK: committed {ARTIFACT} reproduced byte-identically");
            }
            Ok(_) => {
                eprintln!("[trace] CHECK FAILED: fresh artifact differs from committed {ARTIFACT}");
                checks_passed = false;
            }
            Err(e) => {
                eprintln!("[trace] CHECK FAILED: cannot read committed {ARTIFACT}: {e}");
                checks_passed = false;
            }
        }
    }

    if let Err(e) = std::fs::write(ARTIFACT, &artifact) {
        eprintln!("[trace] CHECK FAILED: cannot write {ARTIFACT}: {e}");
        checks_passed = false;
    }
    eprintln!(
        "[trace] wrote {ARTIFACT} in {:.0}s",
        t0.elapsed().as_secs_f64()
    );
    assert!(checks_passed, "trace acceptance checks failed");
}
