/root/repo/target/debug/deps/lr_device-367e0b46b1ab0748.d: crates/device/src/lib.rs crates/device/src/clock.rs crates/device/src/contention.rs crates/device/src/executor.rs crates/device/src/memory.rs crates/device/src/noise.rs crates/device/src/profile.rs crates/device/src/switching.rs Cargo.toml

/root/repo/target/debug/deps/liblr_device-367e0b46b1ab0748.rmeta: crates/device/src/lib.rs crates/device/src/clock.rs crates/device/src/contention.rs crates/device/src/executor.rs crates/device/src/memory.rs crates/device/src/noise.rs crates/device/src/profile.rs crates/device/src/switching.rs Cargo.toml

crates/device/src/lib.rs:
crates/device/src/clock.rs:
crates/device/src/contention.rs:
crates/device/src/executor.rs:
crates/device/src/memory.rs:
crates/device/src/noise.rs:
crates/device/src/profile.rs:
crates/device/src/switching.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
