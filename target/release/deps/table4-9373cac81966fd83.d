/root/repo/target/release/deps/table4-9373cac81966fd83.d: crates/bench/src/bin/table4.rs

/root/repo/target/release/deps/table4-9373cac81966fd83: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
