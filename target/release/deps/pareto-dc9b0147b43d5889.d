/root/repo/target/release/deps/pareto-dc9b0147b43d5889.d: crates/bench/src/bin/pareto.rs

/root/repo/target/release/deps/pareto-dc9b0147b43d5889: crates/bench/src/bin/pareto.rs

crates/bench/src/bin/pareto.rs:
