//! Umbrella crate for the LiteReconfig reproduction workspace.
//!
//! This crate exists to host the cross-crate integration tests in `tests/`
//! and the runnable examples in `examples/`. The actual library surface
//! lives in the member crates, re-exported here for convenience.

pub use litereconfig;
pub use lr_device;
pub use lr_eval;
pub use lr_features;
pub use lr_kernels;
pub use lr_nn;
pub use lr_video;
