//! SLO-aware admission control.
//!
//! Before a stream is scheduled it must be admitted: the controller
//! estimates the GPU demand fraction the stream will put on the shared
//! device and only admits it while the aggregate stays under capacity.
//! Degradable classes are offered a fallback: admission in a degraded
//! operating mode (tightened scheduler headroom → cheaper tracker
//! branches and longer GoFs), booked at their floor demand.

use litereconfig::TrainedScheduler;
use lr_device::DeviceProfile;

use crate::slo::SloClass;

/// The controller's verdict for one offered stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionDecision {
    /// Admitted at full quality.
    Admitted,
    /// Admitted, but in the degraded operating mode.
    Degraded,
    /// Rejected: admitting it would overload the device for everyone.
    Rejected,
}

/// Floor and typical demand of one SLO-feasible branch set.
#[derive(Debug, Clone, Copy)]
struct DemandFractions {
    floor: f64,
    typical: f64,
}

/// SLO-aware admission controller for one shared device.
#[derive(Debug, Clone)]
pub struct AdmissionController {
    capacity_fraction: f64,
    committed: f64,
}

impl AdmissionController {
    /// Creates a controller that keeps the sum of booked GPU demand
    /// fractions at or below `capacity_fraction` (of one GPU).
    ///
    /// # Panics
    ///
    /// Panics unless `capacity_fraction` is in `(0, 1]`.
    pub fn new(capacity_fraction: f64) -> Self {
        assert!(
            capacity_fraction > 0.0 && capacity_fraction <= 1.0,
            "capacity fraction {capacity_fraction} outside (0, 1]"
        );
        Self {
            capacity_fraction,
            committed: 0.0,
        }
    }

    /// GPU demand fraction currently booked.
    pub fn committed(&self) -> f64 {
        self.committed
    }

    /// The *floor* GPU demand fraction of a stream with the given SLO:
    /// the per-frame GPU milliseconds of the cheapest branch whose GPU
    /// work alone fits the SLO, over the SLO (the stream's frame
    /// budget). Returns `None` when no branch fits even in isolation —
    /// such a stream cannot be served on this device at all.
    ///
    /// This is a capacity *estimate*: trackers run on the CPU and the
    /// scheduler adapts online, so the GPU-only per-branch cost is the
    /// right currency for GPU admission.
    pub fn floor_demand_fraction(
        trained: &TrainedScheduler,
        profile: &DeviceProfile,
        slo_ms: f64,
    ) -> Option<f64> {
        Self::demand_fractions(trained, profile, slo_ms).map(|d| d.floor)
    }

    /// Floor and typical demand of the SLO-feasible branch set, computed
    /// in one pass. `None` iff the feasible set is empty, so callers get
    /// both-or-neither by construction.
    fn demand_fractions(
        trained: &TrainedScheduler,
        profile: &DeviceProfile,
        slo_ms: f64,
    ) -> Option<DemandFractions> {
        assert!(slo_ms > 0.0 && slo_ms.is_finite(), "bad SLO {slo_ms}");
        let mut min = f64::INFINITY;
        let mut sum = 0.0;
        let mut n = 0usize;
        for (b, det_ms) in trained.catalog.iter().zip(&trained.det_inference_ms) {
            let gpu_per_frame = det_ms * profile.gpu_speed_factor / b.gof_size.max(1) as f64;
            if gpu_per_frame <= slo_ms {
                min = min.min(gpu_per_frame);
                sum += gpu_per_frame;
                n += 1;
            }
        }
        (n > 0).then(|| DemandFractions {
            floor: min / slo_ms,
            typical: sum / n as f64 / slo_ms,
        })
    }

    /// The *typical* GPU demand fraction of a stream with the given
    /// SLO: the mean per-frame GPU cost of the SLO-feasible branch set,
    /// over the SLO. An adaptive stream wanders across exactly that set
    /// as contention varies — heavy branches when the device is quiet,
    /// cheap ones under load — so the set's mean is the controller's
    /// prior for what an admitted stream will actually consume.
    pub fn typical_demand_fraction(
        trained: &TrainedScheduler,
        profile: &DeviceProfile,
        slo_ms: f64,
    ) -> Option<f64> {
        Self::demand_fractions(trained, profile, slo_ms).map(|d| d.typical)
    }

    /// The fraction [`AdmissionController::offer`] books for a stream of
    /// `class` under the given decision (0 for rejections). Lets the
    /// dispatcher release exactly what was booked when it later evicts
    /// the stream for exceeding its fault budget.
    pub fn booked_fraction(
        trained: &TrainedScheduler,
        profile: &DeviceProfile,
        class: SloClass,
        decision: AdmissionDecision,
    ) -> f64 {
        let Some(demand) = Self::demand_fractions(trained, profile, class.slo_ms()) else {
            return 0.0;
        };
        match decision {
            AdmissionDecision::Admitted => demand.typical.min(1.0),
            AdmissionDecision::Degraded => demand.floor,
            AdmissionDecision::Rejected => 0.0,
        }
    }

    /// Releases previously booked capacity (an evicted stream's share),
    /// making room for later re-admission offers.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is negative or non-finite.
    pub fn release(&mut self, fraction: f64) {
        assert!(
            fraction >= 0.0 && fraction.is_finite(),
            "bad fraction {fraction}"
        );
        self.committed = (self.committed - fraction).max(0.0);
    }

    /// Offers a stream of the given class. Books capacity and returns
    /// the decision; rejected streams book nothing.
    pub fn offer(
        &mut self,
        trained: &TrainedScheduler,
        profile: &DeviceProfile,
        class: SloClass,
    ) -> AdmissionDecision {
        let Some(demand) = Self::demand_fractions(trained, profile, class.slo_ms()) else {
            return AdmissionDecision::Rejected;
        };
        let floor = demand.floor;
        let typical = demand.typical.min(1.0);
        if self.committed + typical <= self.capacity_fraction {
            self.committed += typical;
            AdmissionDecision::Admitted
        } else if class.degradable() && self.committed + floor <= self.capacity_fraction {
            self.committed += floor;
            AdmissionDecision::Degraded
        } else {
            AdmissionDecision::Rejected
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use litereconfig::offline::{profile_videos, OfflineConfig};
    use litereconfig::trainer::{train_scheduler, TrainConfig};
    use litereconfig::FeatureService;
    use lr_device::DeviceKind;
    use lr_kernels::branch::small_catalog;
    use lr_kernels::DetectorFamily;
    use lr_video::{Video, VideoSpec};

    fn trained() -> TrainedScheduler {
        let videos: Vec<Video> = (0..2)
            .map(|i| {
                Video::generate(VideoSpec {
                    id: 800 + i,
                    seed: 4_800 + i as u64,
                    width: 640.0,
                    height: 480.0,
                    num_frames: 60,
                })
            })
            .collect();
        let mut svc = FeatureService::new();
        let cfg = OfflineConfig {
            snippet_len: 30,
            catalog: small_catalog(),
            family: DetectorFamily::FasterRcnn,
            reference_detector: lr_kernels::DetectorConfig::new(576, 100),
            seed: 21,
        };
        let ds = profile_videos(&videos, &cfg, &mut svc);
        train_scheduler(&ds, DetectorFamily::FasterRcnn, &TrainConfig::tiny())
    }

    #[test]
    fn floor_demand_decreases_with_looser_slo() {
        let t = trained();
        let profile = DeviceKind::JetsonTx2.profile();
        let tight = AdmissionController::floor_demand_fraction(&t, &profile, 33.3).unwrap();
        let loose = AdmissionController::floor_demand_fraction(&t, &profile, 100.0).unwrap();
        assert!(tight > loose, "tight {tight} <= loose {loose}");
        assert!(loose > 0.0);
    }

    #[test]
    fn xavier_demands_less_than_tx2() {
        let t = trained();
        let tx2 =
            AdmissionController::floor_demand_fraction(&t, &DeviceKind::JetsonTx2.profile(), 50.0)
                .unwrap();
        let xavier =
            AdmissionController::floor_demand_fraction(&t, &DeviceKind::AgxXavier.profile(), 50.0)
                .unwrap();
        assert!(xavier < tx2);
    }

    #[test]
    fn controller_fills_then_rejects_within_capacity() {
        let t = trained();
        let profile = DeviceKind::JetsonTx2.profile();
        let mut ctl = AdmissionController::new(0.85);
        let mut admitted = 0;
        let mut rejected = 0;
        for _ in 0..64 {
            match ctl.offer(&t, &profile, SloClass::Bronze) {
                AdmissionDecision::Admitted => admitted += 1,
                AdmissionDecision::Degraded => {}
                AdmissionDecision::Rejected => rejected += 1,
            }
        }
        assert!(admitted > 0, "no stream admitted");
        assert!(rejected > 0, "capacity never exhausted in 64 offers");
        assert!(
            ctl.committed() <= 0.85 + 1e-9,
            "overbooked: {}",
            ctl.committed()
        );
    }

    #[test]
    fn typical_demand_is_at_least_the_floor() {
        let t = trained();
        let profile = DeviceKind::JetsonTx2.profile();
        for slo in [33.3, 50.0, 100.0] {
            let floor = AdmissionController::floor_demand_fraction(&t, &profile, slo).unwrap();
            let typical = AdmissionController::typical_demand_fraction(&t, &profile, slo).unwrap();
            assert!(
                typical >= floor,
                "typical {typical} < floor {floor} @ {slo}"
            );
        }
    }

    #[test]
    fn degradable_stream_is_degraded_when_only_its_floor_fits() {
        let t = trained();
        let profile = DeviceKind::JetsonTx2.profile();
        let slo = SloClass::Bronze.slo_ms();
        let floor = AdmissionController::floor_demand_fraction(&t, &profile, slo).unwrap();
        let typical = AdmissionController::typical_demand_fraction(&t, &profile, slo).unwrap();
        // Capacity for one full booking plus a bit more than one floor:
        // the second offer cannot be admitted, but its floor still fits.
        let mut ctl = AdmissionController::new((typical + floor * 1.2).min(1.0));
        assert_eq!(
            ctl.offer(&t, &profile, SloClass::Bronze),
            AdmissionDecision::Admitted
        );
        assert_eq!(
            ctl.offer(&t, &profile, SloClass::Bronze),
            AdmissionDecision::Degraded
        );
        assert_eq!(
            ctl.offer(&t, &profile, SloClass::Bronze),
            AdmissionDecision::Rejected
        );
    }

    #[test]
    fn release_frees_exactly_what_offer_booked() {
        let t = trained();
        let profile = DeviceKind::JetsonTx2.profile();
        let mut ctl = AdmissionController::new(0.85);
        let d = ctl.offer(&t, &profile, SloClass::Bronze);
        assert_eq!(d, AdmissionDecision::Admitted);
        let booked = AdmissionController::booked_fraction(&t, &profile, SloClass::Bronze, d);
        assert!(booked > 0.0);
        assert!((ctl.committed() - booked).abs() < 1e-12);
        ctl.release(booked);
        assert!(ctl.committed().abs() < 1e-12);
        // Release never goes negative, even when over-released.
        ctl.release(1.0);
        assert_eq!(ctl.committed(), 0.0);
    }

    #[test]
    fn rejected_streams_book_nothing() {
        let t = trained();
        let profile = DeviceKind::JetsonTx2.profile();
        assert_eq!(
            AdmissionController::booked_fraction(
                &t,
                &profile,
                SloClass::Bronze,
                AdmissionDecision::Rejected
            ),
            0.0
        );
    }

    #[test]
    fn gold_is_never_degraded() {
        let t = trained();
        let profile = DeviceKind::JetsonTx2.profile();
        let mut ctl = AdmissionController::new(0.85);
        for _ in 0..64 {
            let d = ctl.offer(&t, &profile, SloClass::Gold);
            assert_ne!(d, AdmissionDecision::Degraded);
        }
    }
}
