//! Accuracy-optimized video object detectors (Table 3 baselines).
//!
//! SELSA, MEGA, and REPP aggregate information across many frames on
//! server-class GPUs; they are far more accurate than anything real-time
//! on an embedded board and far too slow for any latency SLO. Table 3 only
//! needs their relative positions — mAP, mean latency, memory, and which
//! variants OOM on the TX2's 8 GB — so each model is simulated as a
//! high-recall / low-jitter detector with its published latency and a peak
//! memory footprint checked against the `lr-device` memory model.

use rand::Rng;

use lr_video::classes::NUM_CLASSES;
use lr_video::{BBox, FrameTruth, ObjectClass};

use crate::detector::{randn, Detection};

/// The heavyweight baselines of Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HeavyModel {
    /// SELSA with a ResNet-101 backbone.
    SelsaResNet101,
    /// SELSA with a ResNet-50 backbone.
    SelsaResNet50,
    /// MEGA with a ResNet-101 backbone (OOMs on the TX2).
    MegaResNet101,
    /// MEGA with a ResNet-50 backbone (OOMs on the TX2 at peak).
    MegaResNet50,
    /// MEGA's base (non-aggregating) ResNet-50 variant.
    MegaResNet50Base,
    /// REPP post-processing over FGFA (OOMs on the TX2).
    ReppOverFgfa,
    /// REPP over SELSA (OOMs on the TX2).
    ReppOverSelsa,
    /// REPP over YOLOv3.
    ReppOverYolo,
}

/// Quality parameters for a heavy model.
#[derive(Debug, Clone, Copy)]
struct HeavyQuality {
    recall: f32,
    jitter: f32,
    fp_rate: f32,
}

impl HeavyModel {
    /// All models in Table 3 order.
    pub fn all() -> [HeavyModel; 8] {
        [
            HeavyModel::SelsaResNet101,
            HeavyModel::SelsaResNet50,
            HeavyModel::MegaResNet101,
            HeavyModel::MegaResNet50,
            HeavyModel::MegaResNet50Base,
            HeavyModel::ReppOverFgfa,
            HeavyModel::ReppOverSelsa,
            HeavyModel::ReppOverYolo,
        ]
    }

    /// Display name as in Table 3.
    pub fn name(self) -> &'static str {
        match self {
            HeavyModel::SelsaResNet101 => "SELSA-ResNet-101",
            HeavyModel::SelsaResNet50 => "SELSA-ResNet-50",
            HeavyModel::MegaResNet101 => "MEGA-ResNet-101",
            HeavyModel::MegaResNet50 => "MEGA-ResNet-50",
            HeavyModel::MegaResNet50Base => "MEGA-ResNet-50 (base)",
            HeavyModel::ReppOverFgfa => "REPP over FGFA",
            HeavyModel::ReppOverSelsa => "REPP over SELSA",
            HeavyModel::ReppOverYolo => "REPP over YOLOv3",
        }
    }

    /// Mean per-frame latency on the TX2 in ms (Table 3).
    pub fn mean_latency_tx2_ms(self) -> f64 {
        match self {
            HeavyModel::SelsaResNet101 => 2334.0,
            HeavyModel::SelsaResNet50 => 2112.0,
            HeavyModel::MegaResNet101 => 1600.0, // never completes on TX2
            HeavyModel::MegaResNet50 => 1200.0,  // never completes on TX2
            HeavyModel::MegaResNet50Base => 861.0,
            HeavyModel::ReppOverFgfa => 900.0, // never completes on TX2
            HeavyModel::ReppOverSelsa => 2300.0, // never completes on TX2
            HeavyModel::ReppOverYolo => 565.0,
        }
    }

    /// Resident memory as reported in Table 3, GiB.
    pub fn reported_memory_gb(self) -> f64 {
        match self {
            HeavyModel::SelsaResNet101 => 6.91,
            HeavyModel::SelsaResNet50 => 6.70,
            HeavyModel::MegaResNet101 => 9.38,
            HeavyModel::MegaResNet50 => 6.42,
            HeavyModel::MegaResNet50Base => 3.16,
            HeavyModel::ReppOverFgfa => 10.02,
            HeavyModel::ReppOverSelsa => 8.13,
            HeavyModel::ReppOverYolo => 2.43,
        }
    }

    /// Peak working-set footprint, GiB — what actually determines OOM.
    /// MEGA-ResNet-50's reported residency (6.42 GiB) understates its peak
    /// during aggregation, which is why it OOMs in the paper despite a
    /// smaller reported number than SELSA-ResNet-101.
    pub fn peak_memory_gb(self) -> f64 {
        match self {
            HeavyModel::MegaResNet50 => 7.4,
            other => other.reported_memory_gb(),
        }
    }

    fn quality(self) -> HeavyQuality {
        match self {
            HeavyModel::SelsaResNet101 => HeavyQuality {
                recall: 0.985,
                jitter: 0.010,
                fp_rate: 0.03,
            },
            HeavyModel::SelsaResNet50 => HeavyQuality {
                recall: 0.965,
                jitter: 0.012,
                fp_rate: 0.04,
            },
            HeavyModel::MegaResNet101 | HeavyModel::MegaResNet50 => HeavyQuality {
                recall: 0.95,
                jitter: 0.013,
                fp_rate: 0.05,
            },
            HeavyModel::MegaResNet50Base => HeavyQuality {
                recall: 0.90,
                jitter: 0.022,
                fp_rate: 0.10,
            },
            HeavyModel::ReppOverFgfa | HeavyModel::ReppOverSelsa => HeavyQuality {
                recall: 0.96,
                jitter: 0.012,
                fp_rate: 0.03,
            },
            HeavyModel::ReppOverYolo => HeavyQuality {
                recall: 0.93,
                jitter: 0.018,
                fp_rate: 0.06,
            },
        }
    }

    /// Runs the model on one frame's ground truth.
    ///
    /// These detectors see past (and in their original form, future)
    /// frames; the reproduction's streaming restriction is reflected in
    /// the slightly reduced recall values above, matching the paper's note
    /// that removing future-frame references cost 3–24% mAP.
    pub fn detect(self, truth: &FrameTruth, rng: &mut impl Rng) -> Vec<Detection> {
        let q = self.quality();
        let mut out = Vec::new();
        for obj in &truth.objects {
            // Heavy models still miss tiny or extremely difficult objects.
            let app = obj.relative_scale(truth.width, truth.height);
            let p = q.recall * (1.0 - 0.3 * obj.difficulty) * (1.0 - (-app * 60.0).exp());
            if rng.gen::<f32>() < p {
                let (cx, cy) = obj.bbox.center();
                let dx = randn(rng) * q.jitter * obj.bbox.w;
                let dy = randn(rng) * q.jitter * obj.bbox.h;
                let s = (randn(rng) * q.jitter).exp();
                let bbox = BBox::from_center(cx + dx, cy + dy, obj.bbox.w * s, obj.bbox.h * s)
                    .clamped(truth.width, truth.height);
                let p_correct = 0.97 - 0.15 * obj.difficulty;
                let class = if rng.gen::<f32>() < p_correct {
                    obj.class
                } else {
                    crate::detector::random_other_class(obj.class, rng)
                };
                out.push(Detection {
                    bbox,
                    class,
                    score: rng.gen_range(0.85..1.0),
                    gt_id: Some(obj.id),
                });
            }
        }
        if rng.gen::<f32>() < q.fp_rate {
            let w = rng.gen_range(0.05..0.15) * truth.width;
            let h = rng.gen_range(0.05..0.15) * truth.height;
            out.push(Detection {
                bbox: BBox::new(
                    rng.gen_range(0.0..(truth.width - w).max(1.0)),
                    rng.gen_range(0.0..(truth.height - h).max(1.0)),
                    w,
                    h,
                ),
                class: ObjectClass::new(rng.gen_range(0..NUM_CLASSES)),
                score: rng.gen_range(0.1..0.5),
                gt_id: None,
            });
        }
        out.sort_by(|a, b| b.score.total_cmp(&a.score));
        out
    }

    /// Whether the model fits on the given board.
    pub fn fits(self, profile: &lr_device::DeviceProfile) -> bool {
        let mut mem = lr_device::MemoryModel::new(profile);
        mem.try_load(self.name(), self.peak_memory_gb()).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lr_device::DeviceKind;
    use lr_video::{Video, VideoSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn oom_pattern_matches_table3() {
        let tx2 = DeviceKind::JetsonTx2.profile();
        assert!(HeavyModel::SelsaResNet101.fits(&tx2));
        assert!(HeavyModel::SelsaResNet50.fits(&tx2));
        assert!(!HeavyModel::MegaResNet101.fits(&tx2));
        assert!(!HeavyModel::MegaResNet50.fits(&tx2));
        assert!(HeavyModel::MegaResNet50Base.fits(&tx2));
        assert!(!HeavyModel::ReppOverFgfa.fits(&tx2));
        assert!(!HeavyModel::ReppOverSelsa.fits(&tx2));
        assert!(HeavyModel::ReppOverYolo.fits(&tx2));
    }

    #[test]
    fn latencies_match_table3() {
        assert_eq!(HeavyModel::SelsaResNet50.mean_latency_tx2_ms(), 2112.0);
        assert_eq!(HeavyModel::MegaResNet50Base.mean_latency_tx2_ms(), 861.0);
        assert_eq!(HeavyModel::ReppOverYolo.mean_latency_tx2_ms(), 565.0);
    }

    #[test]
    fn heavy_models_have_high_recall() {
        let v = Video::generate(VideoSpec {
            id: 0,
            seed: 91,
            width: 640.0,
            height: 480.0,
            num_frames: 100,
        });
        let mut rng = StdRng::seed_from_u64(1);
        let mut hits = 0usize;
        let mut total = 0usize;
        for f in &v.frames {
            let dets = HeavyModel::SelsaResNet101.detect(f, &mut rng);
            let ids: std::collections::HashSet<u32> = dets.iter().filter_map(|d| d.gt_id).collect();
            total += f.objects.len();
            hits += f.objects.iter().filter(|o| ids.contains(&o.id)).count();
        }
        let recall = hits as f32 / total.max(1) as f32;
        assert!(recall > 0.8, "SELSA recall {recall}");
    }

    #[test]
    fn selsa101_beats_mega_base() {
        let v = Video::generate(VideoSpec {
            id: 0,
            seed: 92,
            width: 640.0,
            height: 480.0,
            num_frames: 100,
        });
        let recall = |m: HeavyModel, seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut hits = 0usize;
            let mut total = 0usize;
            for f in &v.frames {
                let dets = m.detect(f, &mut rng);
                let ids: std::collections::HashSet<u32> =
                    dets.iter().filter_map(|d| d.gt_id).collect();
                total += f.objects.len();
                hits += f.objects.iter().filter(|o| ids.contains(&o.id)).count();
            }
            hits as f32 / total.max(1) as f32
        };
        assert!(recall(HeavyModel::SelsaResNet101, 3) > recall(HeavyModel::MegaResNet50Base, 3));
    }
}
