/root/repo/target/debug/deps/lr_nn-820ba440b852b116.d: crates/nn/src/lib.rs crates/nn/src/adam.rs crates/nn/src/conv.rs crates/nn/src/init.rs crates/nn/src/layers.rs crates/nn/src/linreg.rs crates/nn/src/loss.rs crates/nn/src/mlp.rs crates/nn/src/optim.rs crates/nn/src/tensor.rs Cargo.toml

/root/repo/target/debug/deps/liblr_nn-820ba440b852b116.rmeta: crates/nn/src/lib.rs crates/nn/src/adam.rs crates/nn/src/conv.rs crates/nn/src/init.rs crates/nn/src/layers.rs crates/nn/src/linreg.rs crates/nn/src/loss.rs crates/nn/src/mlp.rs crates/nn/src/optim.rs crates/nn/src/tensor.rs Cargo.toml

crates/nn/src/lib.rs:
crates/nn/src/adam.rs:
crates/nn/src/conv.rs:
crates/nn/src/init.rs:
crates/nn/src/layers.rs:
crates/nn/src/linreg.rs:
crates/nn/src/loss.rs:
crates/nn/src/mlp.rs:
crates/nn/src/optim.rs:
crates/nn/src/tensor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
