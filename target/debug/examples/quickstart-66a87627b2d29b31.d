/root/repo/target/debug/examples/quickstart-66a87627b2d29b31.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-66a87627b2d29b31: examples/quickstart.rs

examples/quickstart.rs:
