/root/repo/target/debug/deps/table3-165e991d7b538f69.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-165e991d7b538f69: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
