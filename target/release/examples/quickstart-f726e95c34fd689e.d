/root/repo/target/release/examples/quickstart-f726e95c34fd689e.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-f726e95c34fd689e: examples/quickstart.rs

examples/quickstart.rs:
