//! The round-based dispatcher: steps admitted streams GoF-by-GoF in
//! virtual time, coupling them through the shared device.
//!
//! Each stream runs on its own [`DeviceSim`] (private clock and noise
//! stream), but before every GoF the dispatcher measures the GPU
//! occupancy the *other* streams put on the [`SharedDevice`] and
//! injects the implied processor-sharing slowdown into the stream's
//! device and scheduler. Contention is therefore endogenous: adding a
//! stream slows every other stream down, and each stream's scheduler
//! reacts by reconfiguring to cheaper branches — the paper's adaptation
//! loop, driven by real load instead of a configured knob.

use std::sync::Arc;

use litereconfig::{FeatureService, Policy, RunConfig, StreamPipeline, TrainedScheduler};
use lr_device::{DeviceKind, DeviceSim};
use lr_obs::{ObsBundle, ObsMode, RoundRecord, StreamObs, TraceEvent};
use lr_video::Video;

use crate::admission::{AdmissionController, AdmissionDecision};
use crate::report::{ServeReport, StreamReport};
use crate::shared::SharedDevice;
use crate::slo::StreamSpec;

/// Configuration of one serving run.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Board to simulate.
    pub device: DeviceKind,
    /// Whether the admission controller gates streams. With it off,
    /// every offered stream is admitted at full quality (the overload
    /// baseline).
    pub admission_enabled: bool,
    /// GPU demand fraction the controller may book (of one GPU).
    pub capacity_fraction: f64,
    /// Occupancy-measurement window in virtual milliseconds.
    pub window_ms: f64,
    /// Priority aging: each priority level is worth this many
    /// milliseconds of virtual-time head start when picking the next
    /// stream to step.
    pub aging_boost_ms: f64,
    /// Scheduler headroom imposed on degraded streams (cheaper tracker
    /// branches, longer GoFs).
    pub degraded_headroom: f64,
    /// Cap on measured occupancy, keeping slowdowns finite.
    pub max_occupancy: f64,
    /// Whether each stream's scheduler adapts its latency model to the
    /// observed contention (the full LiteReconfig behavior). Disable to
    /// freeze branch choices, e.g. to measure raw slowdown.
    pub contention_adaptive: bool,
    /// Run seed; per-stream seeds are derived from it and the stream's
    /// first video seed (position-independent, so a stream's private
    /// noise is identical whether it runs alone or co-scheduled).
    pub seed: u64,
    /// Width of one dispatch round in aged virtual milliseconds: every
    /// unfinished stream whose aged ready time is within this quantum of
    /// the furthest-behind stream steps one GoF in the same round, all
    /// against the same pre-round occupancy snapshot. Round membership
    /// is computed serially, so the schedule — and every report — is
    /// independent of how many pool workers execute the round.
    pub round_quantum_ms: f64,
    /// Worker threads for stepping a round's streams: `0` resolves from
    /// the `LR_POOL_THREADS` environment variable (defaulting to the
    /// host's available parallelism). Results are bit-identical for any
    /// value.
    pub pool_threads: usize,
    /// Consecutive SLO-violating GoFs before backpressure degrades a
    /// degradable stream mid-run.
    pub backpressure_gofs: usize,
    /// Fault-injection schedule template: each stream gets a private
    /// `FaultPlan` whose seed is derived from this config's seed and the
    /// stream's first video seed. `None` (the default) serves clean and
    /// is byte-identical to the pre-fault dispatcher.
    pub fault: Option<lr_device::FaultConfig>,
    /// Sliding window (in GoFs) over which a stream's fault rate is
    /// measured for eviction.
    pub fault_window_gofs: usize,
    /// Fraction of the window's GoFs that must have faulted to evict the
    /// stream.
    pub fault_rate_threshold: f64,
    /// Initial re-admission backoff after a fault eviction, in virtual
    /// milliseconds. Doubles per eviction up to
    /// [`ServeConfig::fault_backoff_max_ms`].
    pub fault_backoff_ms: f64,
    /// Cap on the exponential re-admission backoff.
    pub fault_backoff_max_ms: f64,
    /// Observability mode for the run: per-stream sinks collect spans,
    /// decision records, and metrics at this level. `Off` (the default)
    /// is byte-identical to the unobserved dispatcher; `Counting` and
    /// `Trace` never perturb the run either — observation only reads
    /// the virtual clock.
    pub obs: ObsMode,
}

impl ServeConfig {
    /// Defaults tuned for the synthetic workload: 85% bookable
    /// capacity, 1 s occupancy window, one-GoF-ish aging boost.
    pub fn new(device: DeviceKind) -> Self {
        Self {
            device,
            admission_enabled: true,
            capacity_fraction: 0.85,
            window_ms: 1_000.0,
            aging_boost_ms: 40.0,
            degraded_headroom: 0.6,
            max_occupancy: 0.98,
            contention_adaptive: true,
            seed: 0,
            round_quantum_ms: 50.0,
            pool_threads: 0,
            backpressure_gofs: 8,
            fault: None,
            fault_window_gofs: 12,
            fault_rate_threshold: 0.5,
            fault_backoff_ms: 500.0,
            fault_backoff_max_ms: 8_000.0,
            obs: ObsMode::Off,
        }
    }

    /// The same configuration with admission control disabled.
    pub fn without_admission(mut self) -> Self {
        self.admission_enabled = false;
        self
    }
}

/// One admitted stream's live state.
struct ActiveStream {
    /// Index into the offered specs (and the report).
    spec_idx: usize,
    slot: usize,
    device: DeviceSim,
    /// Stream-private feature service so a round's streams can step
    /// concurrently. Rasterization is a pure function of `(video,
    /// frame)`, so private caches change only recompute counts, never
    /// values.
    svc: FeatureService,
    pipeline: StreamPipeline,
    priority: u8,
    /// Frame-arrival period: frame `t` exists only from `t · period`.
    period_ms: f64,
    degradable: bool,
    degraded: bool,
    degraded_midrun: bool,
    slowdown_sum: f64,
    gofs: usize,
    consecutive_violations: usize,
    /// `(wall_span_ms, gpu_demand_ms)` of the last completed GoF; used
    /// to reserve the stream's expected demand on the shared device
    /// before the next round it joins, so co-members see it.
    last_gof: Option<(f64, f64)>,
    /// Sliding window over recent GoFs: `true` = that GoF absorbed at
    /// least one fault. Only maintained when fault injection is on.
    fault_window: std::collections::VecDeque<bool>,
    /// When set, the stream is evicted and may not step before this
    /// virtual time, at which point it is re-offered to admission.
    backed_off_until: Option<f64>,
    /// Virtual time of the last fault eviction.
    evicted_at_ms: f64,
    /// Next backoff duration (doubles per eviction, capped).
    backoff_ms: f64,
    evictions: usize,
    recovery_ms_total: f64,
    /// The final re-admission offer was rejected: permanently evicted.
    terminal_evicted: bool,
    /// Capacity fraction currently booked with the admission controller
    /// (released on eviction, re-booked on re-admission).
    booked_fraction: f64,
    /// Stream-private observer: buffers spans, decision records, and
    /// metrics with no cross-stream synchronization; drained into the
    /// run's [`ObsBundle`] serially, in spec order, after the run.
    obs: StreamObs,
}

impl ActiveStream {
    /// Earliest virtual time the next GoF may start: the head frame's
    /// arrival, or now if the stream has fallen behind its camera —
    /// further delayed by any active eviction backoff.
    fn ready_ms(&self) -> f64 {
        let arrival = self.pipeline.frames_done() as f64 * self.period_ms;
        let base = arrival.max(self.device.now_ms());
        match self.backed_off_until {
            Some(until) => base.max(until),
            None => base,
        }
    }

    /// True while the stream still has frames to serve and has not been
    /// permanently evicted.
    fn runnable(&self) -> bool {
        !self.terminal_evicted && !self.pipeline.finished()
    }

    /// Dispatch key: ready time aged by priority, so higher classes
    /// sort ahead at similar readiness.
    fn aged_key(&self, aging_boost_ms: f64) -> f64 {
        self.ready_ms() - self.priority as f64 * aging_boost_ms
    }
}

fn stream_seed(base: u64, salt: u64) -> u64 {
    // SplitMix64 finalizer: decorrelates per-stream noise streams.
    let mut z = base.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(salt.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Serves the offered streams to completion and reports the outcome.
///
/// Streams are offered to the admission controller in order (when
/// enabled); admitted ones are stepped GoF-by-GoF in *rounds*: every
/// unfinished stream whose aged virtual clock (`local_time −
/// priority·boost`) is within [`ServeConfig::round_quantum_ms`] of the
/// furthest-behind stream steps one GoF, so local clocks stay nearly
/// synchronized and higher classes run first at ties. All of a round's
/// members observe the slowdown measured from the *pre-round* occupancy
/// snapshot — recorded history plus every member's reserved expected
/// demand (its previous GoF's footprint), so co-members of the same
/// round are not mutually invisible — and step concurrently on the
/// worker pool (each stream owns its device, scheduler RNG, and feature
/// cache); their GPU demand is then recorded back and backpressure
/// applied serially in stream order. Round membership, the snapshot,
/// and the post-pass are all computed serially, so reports are
/// bit-identical for any [`ServeConfig::pool_threads`] value.
///
/// `svc` is used as a template (raster size) for the per-stream feature
/// services; its cache is neither read nor written here.
pub fn serve(
    specs: &[StreamSpec],
    trained: Arc<TrainedScheduler>,
    policy: Policy,
    cfg: &ServeConfig,
    svc: &mut FeatureService,
) -> ServeReport {
    serve_traced(specs, trained, policy, cfg, svc).0
}

/// [`serve`], additionally returning the run's [`ObsBundle`]: merged
/// metrics plus (under [`ObsMode::Trace`]) the ordered event stream —
/// spans, scheduler decision records, and dispatch-round records.
///
/// Events are buffered per stream during the run (no cross-worker
/// synchronization) and drained serially in spec order afterwards, so
/// the bundle — like the report — is bit-identical for any
/// [`ServeConfig::pool_threads`] value. With [`ServeConfig::obs`] set
/// to [`ObsMode::Off`] the bundle is empty and the run is byte-for-byte
/// the unobserved dispatcher.
pub fn serve_traced(
    specs: &[StreamSpec],
    trained: Arc<TrainedScheduler>,
    policy: Policy,
    cfg: &ServeConfig,
    svc: &mut FeatureService,
) -> (ServeReport, ObsBundle) {
    let profile = cfg.device.profile();
    let mut controller = AdmissionController::new(cfg.capacity_fraction);
    let mut shared = SharedDevice::new(cfg.window_ms, cfg.max_occupancy);

    let mut decisions = Vec::with_capacity(specs.len());
    let mut active: Vec<ActiveStream> = Vec::new();
    for (i, spec) in specs.iter().enumerate() {
        let decision = if cfg.admission_enabled {
            controller.offer(&trained, &profile, spec.class)
        } else {
            AdmissionDecision::Admitted
        };
        decisions.push(decision);
        if decision == AdmissionDecision::Rejected {
            continue;
        }
        let videos: Vec<Video> = spec
            .videos
            .iter()
            .map(|v| Video::generate(v.clone()))
            .collect();
        let first_video_seed = spec.videos.first().map_or(0, |v| v.seed);
        let seed = stream_seed(cfg.seed, first_video_seed);
        let mut run_cfg = RunConfig::clean(cfg.device, 0.0, spec.class.slo_ms(), seed);
        run_cfg.contention_adaptive = cfg.contention_adaptive;
        let mut pipeline = StreamPipeline::new(videos, trained.clone(), policy, &run_cfg);
        let degraded = decision == AdmissionDecision::Degraded;
        if degraded {
            pipeline.set_headroom(cfg.degraded_headroom);
        }
        let mut device = DeviceSim::new(cfg.device, 0.0, seed);
        if let Some(fault) = cfg.fault {
            // Per-stream fault schedule: derived from the fault seed and
            // the stream's first video seed (position-independent, like
            // the noise seed above).
            let plan_seed = stream_seed(fault.seed ^ 0xFA17, first_video_seed);
            device.set_fault_plan(Some(lr_device::FaultPlan::generate(
                fault.with_seed(plan_seed),
            )));
        }
        let booked_fraction = if cfg.admission_enabled {
            AdmissionController::booked_fraction(&trained, &profile, spec.class, decision)
        } else {
            0.0
        };
        active.push(ActiveStream {
            spec_idx: i,
            slot: shared.register(),
            device,
            svc: FeatureService::with_raster_size(svc.raster_size()),
            pipeline,
            priority: spec.class.priority(),
            period_ms: spec.class.frame_period_ms(),
            degradable: spec.class.degradable(),
            degraded,
            degraded_midrun: false,
            slowdown_sum: 0.0,
            gofs: 0,
            consecutive_violations: 0,
            last_gof: None,
            fault_window: std::collections::VecDeque::new(),
            backed_off_until: None,
            evicted_at_ms: 0.0,
            backoff_ms: cfg.fault_backoff_ms,
            evictions: 0,
            recovery_ms_total: 0.0,
            terminal_evicted: false,
            booked_fraction,
            obs: StreamObs::new(cfg.obs),
        });
    }

    // Round-based dispatch with priority aging: each iteration gathers
    // the cohort of streams whose aged clocks are within one quantum of
    // the furthest-behind stream and steps them all, in parallel,
    // against the same pre-round occupancy snapshot.
    let pool = lr_pool::Pool::resolve(cfg.pool_threads);
    let mut round_records: Vec<RoundRecord> = Vec::new();
    let mut round_idx = 0u64;
    loop {
        let min_key = active
            .iter()
            .filter(|s| s.runnable())
            .map(|s| s.aged_key(cfg.aging_boost_ms))
            .fold(f64::INFINITY, f64::min);
        if !min_key.is_finite() {
            break;
        }
        let threshold = min_key + cfg.round_quantum_ms;
        // Membership is computed serially, in stream order. A backed-off
        // stream whose backoff has elapsed (its ready time folds the
        // backoff in) is re-offered to the admission controller here:
        // re-admitted streams rejoin the round, a rejected re-offer is a
        // terminal eviction (the controller never freed enough capacity).
        let mut round: Vec<&mut ActiveStream> = Vec::new();
        for s in active.iter_mut() {
            if !s.runnable() || s.aged_key(cfg.aging_boost_ms) > threshold {
                continue;
            }
            if let Some(until) = s.backed_off_until {
                let class = specs[s.spec_idx].class;
                let decision = if cfg.admission_enabled {
                    controller.offer(&trained, &profile, class)
                } else {
                    AdmissionDecision::Admitted
                };
                if decision == AdmissionDecision::Rejected {
                    s.terminal_evicted = true;
                    continue;
                }
                s.booked_fraction =
                    AdmissionController::booked_fraction(&trained, &profile, class, decision);
                s.backed_off_until = None;
                s.recovery_ms_total += until - s.evicted_at_ms;
                s.device.idle_until(until);
                if decision == AdmissionDecision::Degraded && !s.degraded {
                    s.pipeline.set_headroom(cfg.degraded_headroom);
                    s.degraded = true;
                    s.degraded_midrun = true;
                }
            }
            round.push(s);
        }
        if round.is_empty() {
            // Every in-threshold stream was terminally evicted this
            // iteration; re-evaluate the remaining population.
            continue;
        }
        round_idx += 1;
        if cfg.obs == ObsMode::Trace {
            round_records.push(RoundRecord {
                idx: round_idx - 1,
                threshold_ms: threshold,
                members: round.iter().map(|s| s.spec_idx as u32).collect(),
            });
        }

        // Publish each member's expected demand (its previous GoF's
        // footprint at its upcoming start) before anyone measures. A
        // round's members record their actual demand only after the
        // round, so without these reservations they would be mutually
        // invisible — and that blind spot grows with the round's
        // wall-span, making measured contention *drop* exactly when
        // load is heaviest. Reservations keep occupancy monotone in
        // the number of co-scheduled streams.
        for s in &round {
            if let Some((span_ms, demand_ms)) = s.last_gof {
                let start = s.ready_ms();
                shared.reserve(s.slot, start, start + span_ms, demand_ms);
            }
        }

        // Parallel section: each member steps one GoF. The shared
        // device is only read here (the slowdown snapshot), and every
        // stream owns its device clock, noise stream, and feature
        // cache, so this is deterministic for any worker count.
        let outcomes = pool.par_map_mut(&mut round, |_, s| {
            // Pacing: wait for the GoF's head frame to arrive. A stream
            // can never run ahead of its camera, so its steady-state
            // GPU demand fraction is bounded by gpu_ms_per_frame /
            // period.
            s.device.idle_until(s.ready_ms());
            let start = s.device.now_ms();
            let slowdown = shared.slowdown_for(s.slot, start);
            s.device.set_external_gpu_slowdown(slowdown);
            s.pipeline.observe_contention(slowdown);
            let obs = &mut s.obs;
            let step = s.pipeline.step_gof_obs(&mut s.svc, &mut s.device, obs);
            (start, s.device.now_ms(), slowdown, step)
        });

        // Serial post-pass in stream order: publish demand to the
        // shared device, then apply violation-driven backpressure — a
        // degradable stream that keeps blowing its SLO is pushed into
        // the degraded mode mid-run.
        for (s, (start, end, slowdown, step)) in round.iter_mut().zip(outcomes) {
            shared.clear_reservation(s.slot);
            // Round members are filtered on !finished(), so step_gof
            // returns Some; a None (impossible by construction) would
            // mean the stream made no progress — skip its bookkeeping
            // rather than panic inside the serving loop.
            let Some(step) = step else { continue };
            shared.record(s.slot, start, end, step.gpu_demand_ms);
            s.last_gof = Some((end - start, step.gpu_demand_ms));
            s.slowdown_sum += slowdown;
            s.gofs += 1;
            if step.per_frame_ms > s.pipeline.slo_ms() {
                s.consecutive_violations += 1;
                if s.consecutive_violations >= cfg.backpressure_gofs && s.degradable && !s.degraded
                {
                    s.pipeline.set_headroom(cfg.degraded_headroom);
                    s.degraded = true;
                    s.degraded_midrun = true;
                    s.consecutive_violations = 0;
                }
            } else {
                s.consecutive_violations = 0;
            }
            // Fault accounting: a stream whose recent GoFs keep faulting
            // is evicted — its booked capacity released — and re-offered
            // only after an exponential backoff.
            if cfg.fault.is_some() {
                s.fault_window.push_back(step.faults > 0);
                if s.fault_window.len() > cfg.fault_window_gofs {
                    s.fault_window.pop_front();
                }
                if s.fault_window.len() == cfg.fault_window_gofs {
                    let faulted = s.fault_window.iter().filter(|&&f| f).count();
                    if faulted as f64 >= cfg.fault_rate_threshold * cfg.fault_window_gofs as f64 {
                        s.evictions += 1;
                        s.evicted_at_ms = s.device.now_ms();
                        s.backed_off_until = Some(s.evicted_at_ms + s.backoff_ms);
                        s.backoff_ms = (s.backoff_ms * 2.0).min(cfg.fault_backoff_max_ms);
                        s.fault_window.clear();
                        if cfg.admission_enabled {
                            controller.release(s.booked_fraction);
                            s.booked_fraction = 0.0;
                        }
                    }
                }
            }
        }
    }

    // Assemble the report — and drain per-stream observers — in offer
    // order. `active` holds streams in spec order, and each stream's
    // events are already in its own GoF order, so the merged event
    // stream is globally (stream, gof)-ordered regardless of how rounds
    // interleaved the streams in virtual time.
    let mut bundle = ObsBundle::default();
    let mut finished: Vec<Option<StreamReport>> = (0..specs.len()).map(|_| None).collect();
    for mut s in active {
        let (metrics, mut events) = s.obs.take();
        bundle.metrics.merge(&metrics);
        for ev in &mut events {
            ev.set_stream(s.spec_idx as u32);
        }
        bundle.events.extend(events);
        let spec = &specs[s.spec_idx];
        let slo_ms = spec.class.slo_ms();
        let mean_slowdown = if s.gofs == 0 {
            1.0
        } else {
            s.slowdown_sum / s.gofs as f64
        };
        let result = s.pipeline.into_result();
        finished[s.spec_idx] = Some(StreamReport {
            name: spec.name.clone(),
            class: spec.class,
            decision: decisions[s.spec_idx],
            degraded_midrun: s.degraded_midrun,
            map: result.map,
            violation_rate: result.latency.violation_rate(slo_ms),
            frames: result.breakdown.frames,
            gofs: s.gofs,
            mean_slowdown,
            latency: result.latency,
            faults: result.faults,
            degraded_gofs: result.degraded_gofs,
            evictions: s.evictions,
            terminal_evicted: s.terminal_evicted,
            recovery_ms_total: s.recovery_ms_total,
        });
    }
    let streams = specs
        .iter()
        .zip(decisions)
        .zip(finished)
        .map(|((spec, decision), report)| {
            report.unwrap_or_else(|| StreamReport {
                name: spec.name.clone(),
                class: spec.class,
                decision,
                degraded_midrun: false,
                map: 0.0,
                latency: lr_eval::LatencyStats::new(),
                violation_rate: 0.0,
                frames: 0,
                gofs: 0,
                mean_slowdown: 1.0,
                faults: 0,
                degraded_gofs: 0,
                evictions: 0,
                terminal_evicted: false,
                recovery_ms_total: 0.0,
            })
        })
        .collect();

    if cfg.obs != ObsMode::Off {
        bundle.metrics.inc("rounds", round_idx);
    }
    bundle
        .events
        .extend(round_records.into_iter().map(TraceEvent::Round));

    (
        ServeReport {
            admission_enabled: cfg.admission_enabled,
            streams,
        },
        bundle,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slo::SloClass;
    use litereconfig::offline::{profile_videos, OfflineConfig};
    use litereconfig::trainer::{train_scheduler, TrainConfig};
    use lr_kernels::branch::small_catalog;
    use lr_kernels::DetectorFamily;
    use lr_video::VideoSpec;

    fn trained() -> Arc<TrainedScheduler> {
        let videos: Vec<Video> = (0..2)
            .map(|i| {
                Video::generate(VideoSpec {
                    id: 850 + i,
                    seed: 5_850 + i as u64,
                    width: 640.0,
                    height: 480.0,
                    num_frames: 60,
                })
            })
            .collect();
        let mut svc = FeatureService::new();
        let cfg = OfflineConfig {
            snippet_len: 30,
            catalog: small_catalog(),
            family: DetectorFamily::FasterRcnn,
            reference_detector: lr_kernels::DetectorConfig::new(576, 100),
            seed: 33,
        };
        let ds = profile_videos(&videos, &cfg, &mut svc);
        Arc::new(train_scheduler(
            &ds,
            DetectorFamily::FasterRcnn,
            &TrainConfig::tiny(),
        ))
    }

    #[test]
    fn single_stream_serves_to_completion() {
        let t = trained();
        let mut svc = FeatureService::new();
        let specs = vec![StreamSpec::synthetic(0, SloClass::Bronze, 64)];
        let cfg = ServeConfig::new(DeviceKind::JetsonTx2);
        let r = serve(&specs, t, Policy::MinCost, &cfg, &mut svc);
        assert_eq!(r.offered(), 1);
        assert_eq!(r.rejected(), 0);
        let s = &r.streams[0];
        assert_eq!(s.frames, 64);
        assert!(s.gofs > 0);
        assert!(s.map > 0.0);
        // Alone on the device: no endogenous contention.
        assert!((s.mean_slowdown - 1.0).abs() < 1e-9, "{}", s.mean_slowdown);
    }

    #[test]
    fn serving_is_deterministic() {
        let t = trained();
        let specs: Vec<StreamSpec> = (0..3)
            .map(|i| StreamSpec::synthetic(i, SloClass::Silver, 48))
            .collect();
        let cfg = ServeConfig::new(DeviceKind::JetsonTx2);
        let mut svc = FeatureService::new();
        let a = serve(&specs, t.clone(), Policy::MinCost, &cfg, &mut svc);
        let b = serve(&specs, t, Policy::MinCost, &cfg, &mut svc);
        for (x, y) in a.streams.iter().zip(&b.streams) {
            assert_eq!(x.frames, y.frames);
            assert_eq!(x.gofs, y.gofs);
            assert!((x.latency.mean() - y.latency.mean()).abs() < 1e-9);
            assert!((x.map - y.map).abs() < 1e-12);
        }
    }

    #[test]
    fn faulted_serving_survives_and_accounts() {
        let t = trained();
        let mut svc = FeatureService::new();
        let specs: Vec<StreamSpec> = (0..3)
            .map(|i| StreamSpec::synthetic(i, SloClass::Silver, 48))
            .collect();
        let mut cfg = ServeConfig::new(DeviceKind::JetsonTx2);
        cfg.fault = Some(lr_device::FaultConfig {
            transient_rate: 0.3,
            ..lr_device::FaultConfig::moderate(77)
        });
        // A small window and permissive threshold so eviction machinery
        // exercises on a short run.
        cfg.fault_window_gofs = 3;
        cfg.fault_rate_threshold = 0.34;
        cfg.fault_backoff_ms = 100.0;
        let r = serve(&specs, t, Policy::MinCost, &cfg, &mut svc);
        assert!(r.total_faults() > 0, "30% transient rate must fault");
        assert!(r.degraded_gof_fraction() > 0.0);
        // Every admitted, non-terminally-evicted stream finishes.
        for s in &r.streams {
            if s.admitted() && !s.terminal_evicted {
                assert_eq!(s.frames, 48, "{} did not finish", s.name);
            }
        }
    }

    #[test]
    fn faulted_serving_is_deterministic() {
        let t = trained();
        let specs: Vec<StreamSpec> = (0..3)
            .map(|i| StreamSpec::synthetic(i, SloClass::Silver, 48))
            .collect();
        let mut cfg = ServeConfig::new(DeviceKind::JetsonTx2);
        cfg.fault = Some(lr_device::FaultConfig {
            transient_rate: 0.3,
            ..lr_device::FaultConfig::moderate(78)
        });
        cfg.fault_window_gofs = 3;
        cfg.fault_rate_threshold = 0.34;
        cfg.fault_backoff_ms = 100.0;
        let mut svc = FeatureService::new();
        let a = serve(&specs, t.clone(), Policy::MinCost, &cfg, &mut svc);
        let b = serve(&specs, t, Policy::MinCost, &cfg, &mut svc);
        for (x, y) in a.streams.iter().zip(&b.streams) {
            assert_eq!(x.frames, y.frames);
            assert_eq!(x.gofs, y.gofs);
            assert_eq!(x.faults, y.faults);
            assert_eq!(x.degraded_gofs, y.degraded_gofs);
            assert_eq!(x.evictions, y.evictions);
            assert_eq!(x.terminal_evicted, y.terminal_evicted);
            assert_eq!(x.recovery_ms_total.to_bits(), y.recovery_ms_total.to_bits());
            assert_eq!(x.map.to_bits(), y.map.to_bits());
        }
    }

    #[test]
    fn clean_serving_reports_no_faults() {
        let t = trained();
        let mut svc = FeatureService::new();
        let specs = vec![StreamSpec::synthetic(0, SloClass::Bronze, 64)];
        let cfg = ServeConfig::new(DeviceKind::JetsonTx2);
        let r = serve(&specs, t, Policy::MinCost, &cfg, &mut svc);
        assert_eq!(r.total_faults(), 0);
        assert_eq!(r.total_evictions(), 0);
        assert_eq!(r.degraded_gof_fraction(), 0.0);
    }

    #[test]
    fn admission_off_admits_everything() {
        let t = trained();
        let mut svc = FeatureService::new();
        let specs: Vec<StreamSpec> = (0..6)
            .map(|i| StreamSpec::synthetic(i, SloClass::Gold, 32))
            .collect();
        let cfg = ServeConfig::new(DeviceKind::JetsonTx2).without_admission();
        let r = serve(&specs, t, Policy::MinCost, &cfg, &mut svc);
        assert_eq!(r.admitted(), 6);
        assert_eq!(r.rejected(), 0);
        // Six co-scheduled streams: everyone observes real contention.
        for s in &r.streams {
            assert!(s.mean_slowdown > 1.0, "{} saw {}", s.name, s.mean_slowdown);
        }
    }

    #[test]
    fn co_scheduling_slows_streams_down() {
        let t = trained();
        let mut svc = FeatureService::new();
        let cfg = ServeConfig::new(DeviceKind::JetsonTx2).without_admission();

        let alone = serve(
            &[StreamSpec::synthetic(0, SloClass::Bronze, 48)],
            t.clone(),
            Policy::MinCost,
            &cfg,
            &mut svc,
        );
        let together = serve(
            &[
                StreamSpec::synthetic(0, SloClass::Bronze, 48),
                StreamSpec::synthetic(1, SloClass::Bronze, 48),
                StreamSpec::synthetic(2, SloClass::Bronze, 48),
            ],
            t,
            Policy::MinCost,
            &cfg,
            &mut svc,
        );
        let solo_mean = alone.streams[0].latency.mean();
        let shared_mean = together.streams[0].latency.mean();
        assert!(
            shared_mean > solo_mean,
            "co-scheduled mean {shared_mean} not above solo mean {solo_mean}"
        );
        assert!(together.streams[0].mean_slowdown > 1.05);
    }
}
