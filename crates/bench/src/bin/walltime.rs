//! Wall-clock benchmark ledger for the parallel runtime (`lr-pool`).
//!
//! Times the canonical workloads once in serial mode (1 worker) and once
//! in parallel mode, and writes `BENCH_PIPELINE.json` with one entry per
//! workload: `{workload, wall_ms, wall_ms_serial, speedup_vs_serial,
//! threads}` plus the host CPU count. The numbers are honest host
//! measurements — on a single-core CI box the pool speedups hover around
//! 1.0 (the determinism contract guarantees identical *results* either
//! way); the blocked-matmul workload measures the single-core kernel win
//! and is the portable regression signal.
//!
//! Usage: `cargo run --release -p lr-bench --bin walltime [small|paper] [--check]`
//!
//! `--check` compares the fresh measurement against the committed
//! `BENCH_PIPELINE.json` before overwriting it and exits non-zero if any
//! workload's `speedup_vs_serial` fell below 75% of the committed value.

use std::time::Instant;

use litereconfig::pipeline::{run_adaptive, RunConfig};
use litereconfig::trainer::train_scheduler;
use litereconfig::{FeatureService, Policy};
use lr_bench::{scale_from_args, Suite};
use lr_device::DeviceKind;
use lr_kernels::DetectorFamily;
use lr_nn::Matrix;
use lr_serve::{serve, ServeConfig, SloClass, StreamSpec};

const LEDGER: &str = "BENCH_PIPELINE.json";
/// A fresh speedup below this fraction of the committed one is a
/// regression. Ratios of speedups transfer across hosts far better than
/// raw wall-clock, which is why `--check` compares them instead.
const REGRESSION_FACTOR: f64 = 0.75;
/// Workloads whose committed speedup is below this never gate: a ratio
/// near 1.0 (e.g. any pool workload measured on a single-core host) is
/// run-to-run noise, not a win that can regress.
const CHECKABLE_SPEEDUP: f64 = 1.2;

struct Entry {
    workload: &'static str,
    wall_ms: f64,
    wall_ms_serial: f64,
    threads: usize,
}

impl Entry {
    fn speedup(&self) -> f64 {
        self.wall_ms_serial / self.wall_ms.max(1e-9)
    }
}

fn time_ms(f: impl FnOnce()) -> f64 {
    let t = Instant::now();
    f();
    t.elapsed().as_secs_f64() * 1e3
}

fn mixed_specs(n: usize, frames: usize) -> Vec<StreamSpec> {
    (0..n)
        .map(|i| {
            let class = match i % 3 {
                0 => SloClass::Gold,
                1 => SloClass::Silver,
                _ => SloClass::Bronze,
            };
            StreamSpec::synthetic(i as u32, class, frames)
        })
        .collect()
}

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    let scale = scale_from_args();
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    // Exercise the parallel code path even on a single-core host; the
    // ledger records both the worker count and `host_cpus`, so a reader
    // can tell an oversubscribed measurement from a real one.
    let par_threads = host_cpus.max(2);
    let suite = Suite::build(scale);
    let trained = suite.frcnn.clone();
    let raster_size = suite.svc.raster_size();
    let mut entries: Vec<Entry> = Vec::new();

    // Single-stream adaptive pipeline: no pool inside, so there is no
    // serial-vs-parallel A/B to run — the entry pins the hot-path
    // (blocked matmul + feature caching) wall-clock with speedup pinned
    // at 1.0 so run-to-run noise can never masquerade as a gateable
    // win (or a regression).
    {
        let run = || {
            let cfg = RunConfig::clean(DeviceKind::JetsonTx2, 0.0, 33.3, 77);
            let mut svc = FeatureService::with_raster_size(raster_size);
            run_adaptive(
                &suite.val_videos,
                trained.clone(),
                Policy::CostBenefit,
                &cfg,
                &mut svc,
            );
        };
        run(); // warm-up: allocator and page-cache effects
        let wall = time_ms(run).min(time_ms(run));
        entries.push(Entry {
            workload: "pipeline_single",
            wall_ms: wall,
            wall_ms_serial: wall,
            threads: 1,
        });
    }

    // Multi-stream serve rounds: the dispatcher steps each round's
    // streams on the pool; `pool_threads` is the explicit knob.
    for (name, n) in [("serve_round_8", 8usize), ("serve_round_32", 32)] {
        let specs = mixed_specs(n, 16);
        let run = |threads: usize| {
            let mut cfg = ServeConfig::new(DeviceKind::JetsonTx2).without_admission();
            cfg.seed = 42;
            cfg.pool_threads = threads;
            let mut svc = FeatureService::with_raster_size(raster_size);
            serve(&specs, trained.clone(), Policy::CostBenefit, &cfg, &mut svc);
        };
        run(1); // warm-up
        let serial = time_ms(|| run(1));
        let wall = time_ms(|| run(par_threads));
        entries.push(Entry {
            workload: name,
            wall_ms: wall,
            wall_ms_serial: serial,
            threads: par_threads,
        });
    }

    // Trainer: per-feature accuracy models fan out on the env-sized pool.
    {
        let run = || {
            train_scheduler(
                &suite.frcnn_dataset,
                DetectorFamily::FasterRcnn,
                &suite.scale.train_config(),
            );
        };
        std::env::set_var(lr_pool::THREADS_ENV, "1");
        run(); // warm-up
        let serial = time_ms(run);
        std::env::set_var(lr_pool::THREADS_ENV, par_threads.to_string());
        let wall = time_ms(run);
        std::env::remove_var(lr_pool::THREADS_ENV);
        entries.push(Entry {
            workload: "trainer_epoch",
            wall_ms: wall,
            wall_ms_serial: serial,
            threads: par_threads,
        });
    }

    // Dense matmul: pool row-partitioning (bit-identical to serial) and
    // the blocked kernel against the textbook loop (the single-core win).
    {
        let reps = 8;
        let a = random_matrix(192, 256, 0xA);
        let b = random_matrix(256, 160, 0xB);
        let pool = lr_pool::Pool::new(par_threads);
        let serial = time_ms(|| {
            for _ in 0..reps {
                std::hint::black_box(a.matmul(&b));
            }
        });
        let wall = time_ms(|| {
            for _ in 0..reps {
                std::hint::black_box(a.matmul_with_pool(&b, &pool));
            }
        });
        entries.push(Entry {
            workload: "matmul_dense_pool",
            wall_ms: wall,
            wall_ms_serial: serial,
            threads: par_threads,
        });

        let naive = time_ms(|| {
            for _ in 0..reps {
                std::hint::black_box(a.matmul_naive(&b));
            }
        });
        let blocked = time_ms(|| {
            for _ in 0..reps {
                std::hint::black_box(a.matmul(&b));
            }
        });
        entries.push(Entry {
            workload: "matmul_blocked_kernel",
            wall_ms: blocked,
            wall_ms_serial: naive,
            threads: 1,
        });
    }

    for e in &entries {
        eprintln!(
            "[walltime] {:<22} serial {:>9.1} ms  measured {:>9.1} ms  speedup {:.2}x  ({} workers)",
            e.workload,
            e.wall_ms_serial,
            e.wall_ms,
            e.speedup(),
            e.threads
        );
    }

    let mut failed = false;
    if check {
        match std::fs::read_to_string(LEDGER) {
            Ok(committed) => {
                for e in &entries {
                    let Some(baseline) = committed_speedup(&committed, e.workload) else {
                        eprintln!(
                            "[walltime] CHECK: {} not in committed ledger, skipping",
                            e.workload
                        );
                        continue;
                    };
                    if baseline < CHECKABLE_SPEEDUP {
                        eprintln!(
                            "[walltime] CHECK: {} committed speedup {baseline:.2}x is noise-level, not gating",
                            e.workload
                        );
                        continue;
                    }
                    if e.speedup() < REGRESSION_FACTOR * baseline {
                        eprintln!(
                            "[walltime] CHECK FAILED: {} speedup {:.2}x < {:.0}% of committed {:.2}x",
                            e.workload,
                            e.speedup(),
                            REGRESSION_FACTOR * 100.0,
                            baseline
                        );
                        failed = true;
                    }
                }
            }
            Err(e) => {
                eprintln!("[walltime] CHECK FAILED: cannot read committed {LEDGER}: {e}");
                failed = true;
            }
        }
    }

    let mut json = String::from("{\n");
    json.push_str(&format!("  \"host_cpus\": {host_cpus},\n"));
    json.push_str(&format!("  \"scale\": \"{scale:?}\",\n"));
    json.push_str("  \"workloads\": [\n");
    for (i, e) in entries.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"workload\": \"{}\", \"wall_ms\": {:.1}, \"wall_ms_serial\": {:.1}, \"speedup_vs_serial\": {:.3}, \"threads\": {}}}{}\n",
            e.workload,
            e.wall_ms,
            e.wall_ms_serial,
            e.speedup(),
            e.threads,
            if i + 1 == entries.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(LEDGER, &json).expect("write BENCH_PIPELINE.json");
    println!("{json}");
    eprintln!("[walltime] wrote {LEDGER}");
    assert!(!failed, "walltime regression check failed");
}

/// He-uniform-ish deterministic matrix for the matmul workloads.
fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut z = seed;
    let data: Vec<f32> = (0..rows * cols)
        .map(|_| {
            z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut x = z;
            x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x ^= x >> 27;
            (x as f64 / u64::MAX as f64) as f32 - 0.5
        })
        .collect();
    Matrix::from_vec(rows, cols, data)
}

/// Pulls `speedup_vs_serial` for one workload out of the committed
/// ledger. The format is our own, so a string scan is all it takes.
fn committed_speedup(json: &str, workload: &str) -> Option<f64> {
    let obj_start = json.find(&format!("\"workload\": \"{workload}\""))?;
    let tail = &json[obj_start..];
    let tail = &tail[..tail.find('}').unwrap_or(tail.len())];
    let field = tail.find("\"speedup_vs_serial\":")?;
    let num = tail[field + "\"speedup_vs_serial\":".len()..]
        .trim_start()
        .split(|c: char| c == ',' || c == '}' || c.is_whitespace())
        .next()?;
    num.parse().ok()
}
