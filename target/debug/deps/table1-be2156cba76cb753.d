/root/repo/target/debug/deps/table1-be2156cba76cb753.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-be2156cba76cb753: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
