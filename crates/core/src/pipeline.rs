//! The online streaming loop: scheduler + MBEK + device + evaluation.
//!
//! The loop is factored as a steppable [`StreamPipeline`]: one pipeline
//! owns one stream's scheduler, kernel, and accounting state, and
//! advances one GoF per [`StreamPipeline::step_gof`] call. The
//! single-stream entry point [`run_adaptive`] drives one pipeline to
//! completion on a private device; a serving layer (the `lr-serve`
//! crate) interleaves many pipelines on a shared device, stepping each
//! GoF-by-GoF in virtual time.

use std::collections::BTreeSet;
use std::sync::Arc;

use lr_device::switching::OnlineSwitchSampler;
use lr_device::{DeviceKind, DeviceSim, OpUnit};
use lr_eval::{LatencyStats, MapAccumulator};
use lr_obs::{DecisionRecord, NullSink, ObsSink, SpanKind};
use lr_video::{BBox, Video};

use crate::featsvc::FeatureService;
use crate::offline::{to_gt_boxes, to_pred_boxes};
use crate::scheduler::{Policy, Scheduler, TrainedScheduler};

/// Configuration of one online run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Board to simulate.
    pub device: DeviceKind,
    /// GPU contention percentage (the paper evaluates 0 and 50).
    pub contention_pct: f64,
    /// Latency SLO in milliseconds (P95 target).
    pub slo_ms: f64,
    /// Run seed.
    pub seed: u64,
    /// Preheat all branches before the run (the paper preloads and
    /// preheats every branch; disable to expose the cold-miss switching
    /// outliers of Figure 5(b)).
    pub preheat: bool,
    /// Fixed per-frame pipeline overhead charged as-is (ApproxDet's
    /// legacy Python/TF pipeline; 0 for everything else).
    pub fixed_overhead_ms_per_frame: f64,
    /// Whether the scheduler's latency model is told about that overhead.
    pub overhead_known_to_scheduler: bool,
    /// Kernel latency multiplier (implementation inefficiency).
    pub kernel_latency_factor: f64,
    /// Whether the scheduler adapts its latency model online (contention
    /// awareness). SSD+/YOLO+ are not contention-adaptive.
    pub contention_adaptive: bool,
    /// Fault-injection schedule for the run's device. `None` (the
    /// default) runs clean and is byte-identical to the pre-fault
    /// pipeline.
    pub fault: Option<lr_device::FaultConfig>,
    /// Per-GoF deadline watchdog as a multiple of the SLO: a GoF whose
    /// kernel time exceeds `factor * slo_ms * gof_frames` coasts its
    /// remaining frames. `None` disables the watchdog.
    pub gof_deadline_factor: Option<f64>,
}

impl RunConfig {
    /// A clean LiteReconfig run.
    pub fn clean(device: DeviceKind, contention_pct: f64, slo_ms: f64, seed: u64) -> Self {
        Self {
            device,
            contention_pct,
            slo_ms,
            seed,
            preheat: true,
            fixed_overhead_ms_per_frame: 0.0,
            overhead_known_to_scheduler: false,
            kernel_latency_factor: 1.0,
            contention_adaptive: true,
            fault: None,
            gof_deadline_factor: None,
        }
    }
}

/// Which rung of the graceful-degradation ladder fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradeKind {
    /// A transient detector fault triggered the bounded retry on the
    /// cheapest branch.
    CheaperRetry,
    /// Detection was abandoned for the GoF: tracker-only on the last
    /// known detections (or coasting on a detector-only branch).
    TrackerOnlyGof,
    /// The per-GoF deadline watchdog aborted the GoF mid-way.
    DeadlineAbort,
    /// The scheduler's accuracy predictions were unusable and the branch
    /// was chosen on cost alone.
    CostOnlyDecision,
}

impl DegradeKind {
    /// Stable snake_case name (metrics counter and trace tag).
    pub fn name(self) -> &'static str {
        match self {
            DegradeKind::CheaperRetry => "cheaper_retry",
            DegradeKind::TrackerOnlyGof => "tracker_only_gof",
            DegradeKind::DeadlineAbort => "deadline_abort",
            DegradeKind::CostOnlyDecision => "cost_only_decision",
        }
    }
}

/// One recorded degradation event.
#[derive(Debug, Clone, Copy)]
pub struct DegradeEvent {
    /// Video within the playlist.
    pub video_idx: usize,
    /// First frame of the affected GoF.
    pub frame: usize,
    /// Which rung fired.
    pub kind: DegradeKind,
    /// Virtual milliseconds burned by failed ops leading to this event.
    pub wasted_ms: f64,
}

/// Where the virtual time of a run went.
#[derive(Debug, Clone, Default)]
pub struct Breakdown {
    /// Detector (GPU) milliseconds.
    pub detector_ms: f64,
    /// Tracker (CPU) milliseconds.
    pub tracker_ms: f64,
    /// Scheduler modeling milliseconds (features, models, solver).
    pub scheduler_ms: f64,
    /// Branch-switching milliseconds.
    pub switch_ms: f64,
    /// Fixed pipeline overhead milliseconds.
    pub overhead_ms: f64,
    /// Frames processed.
    pub frames: usize,
}

impl Breakdown {
    /// Total milliseconds across components.
    pub fn total_ms(&self) -> f64 {
        self.detector_ms + self.tracker_ms + self.scheduler_ms + self.switch_ms + self.overhead_ms
    }

    /// Mean per-frame cost of a component, as a fraction of the SLO
    /// (Figure 3's y-axis). Returns 0 when no frames were processed or
    /// the SLO is non-positive/non-finite (a fraction of a meaningless
    /// budget is itself meaningless).
    pub fn fraction_of_slo(&self, component_ms: f64, slo_ms: f64) -> f64 {
        if self.frames == 0 || slo_ms <= 0.0 || !slo_ms.is_finite() {
            return 0.0;
        }
        component_ms / self.frames as f64 / slo_ms
    }
}

/// One recorded branch switch.
#[derive(Debug, Clone, Copy)]
pub struct SwitchEvent {
    /// Source branch key (0 when switching from the unconfigured state).
    pub src_key: u64,
    /// Destination branch key.
    pub dst_key: u64,
    /// Sampled switching cost in ms (before device scaling).
    pub cost_ms: f64,
}

/// The outcome of a run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// mAP over all frames of all videos (0..1).
    pub map: f64,
    /// Per-frame latency samples (GoF-amortized, as the paper reports).
    pub latency: LatencyStats,
    /// Component breakdown.
    pub breakdown: Breakdown,
    /// Distinct branch keys executed (Figure 4's branch coverage).
    pub branches_used: BTreeSet<u64>,
    /// Decision counts per branch key.
    pub branch_decisions: std::collections::BTreeMap<u64, usize>,
    /// All branch switches with their sampled costs (Figure 5).
    pub switches: Vec<SwitchEvent>,
    /// Total scheduling decisions.
    pub decisions: usize,
    /// Decisions where no branch satisfied the constraint.
    pub infeasible_decisions: usize,
    /// Every degradation the fallback ladder recorded, in GoF order.
    pub degrade_events: Vec<DegradeEvent>,
    /// Transient device faults absorbed over the run (scheduler ops,
    /// detection frames, mid-GoF detections).
    pub faults: usize,
    /// GoFs that ran degraded (any ladder rung fired).
    pub degraded_gofs: usize,
}

impl RunResult {
    /// mAP in percent.
    pub fn map_pct(&self) -> f64 {
        self.map * 100.0
    }

    /// True if the 95th-percentile latency met the SLO. A non-positive
    /// or non-finite SLO is never met (there is no valid budget to meet),
    /// so this cannot silently report success on a degenerate config.
    pub fn meets_slo(&self, slo_ms: f64) -> bool {
        slo_ms.is_finite() && slo_ms > 0.0 && self.latency.p95() <= slo_ms
    }
}

/// What one [`StreamPipeline::step_gof`] call processed.
#[derive(Debug, Clone, Copy)]
pub struct GofStep {
    /// Index of the video within the pipeline's playlist.
    pub video_idx: usize,
    /// First frame of the GoF.
    pub start_frame: usize,
    /// Frames processed (the tail GoF may be short).
    pub frames: usize,
    /// Total virtual milliseconds of the GoF (scheduler + switch +
    /// kernels + fixed overhead).
    pub gof_ms: f64,
    /// GoF-amortized per-frame latency in milliseconds.
    pub per_frame_ms: f64,
    /// GPU cycles demanded during this GoF, in milliseconds of device
    /// time excluding contention stretch (what a serving layer feeds its
    /// occupancy measurement).
    pub gpu_demand_ms: f64,
    /// Transient device faults absorbed during this GoF (scheduler +
    /// kernel ops).
    pub faults: usize,
    /// True when any fallback-ladder rung fired for this GoF.
    pub degraded: bool,
}

/// One stream's online pipeline, steppable one GoF at a time.
///
/// Owns the scheduler, the MBEK, and all per-stream accounting; borrows
/// the feature service and the device per step so that many pipelines
/// can interleave on one shared device.
#[derive(Debug)]
pub struct StreamPipeline {
    videos: Vec<Video>,
    trained: Arc<TrainedScheduler>,
    scheduler: Scheduler,
    mbek: lr_kernels::Mbek,
    sampler: OnlineSwitchSampler,
    fixed_overhead_ms_per_frame: f64,
    gof_deadline_factor: Option<f64>,

    // Position.
    video_idx: usize,
    t: usize,
    boxes: Vec<BBox>,
    /// Last known-good detector output: the seed of a tracker-only
    /// fallback GoF after a detection failure.
    last_detections: Vec<lr_kernels::Detection>,

    // Accounting.
    acc: MapAccumulator,
    latency: LatencyStats,
    breakdown: Breakdown,
    branches_used: BTreeSet<u64>,
    branch_decisions: std::collections::BTreeMap<u64, usize>,
    switches: Vec<SwitchEvent>,
    decisions: usize,
    infeasible: usize,
    degrade_events: Vec<DegradeEvent>,
    faults: usize,
    degraded_gofs: usize,
}

impl StreamPipeline {
    /// Creates a pipeline over a playlist of videos.
    ///
    /// # Panics
    ///
    /// Panics if `videos` is empty.
    pub fn new(
        videos: Vec<Video>,
        trained: Arc<TrainedScheduler>,
        policy: Policy,
        cfg: &RunConfig,
    ) -> Self {
        assert!(!videos.is_empty(), "a stream needs at least one video");
        let mbek =
            lr_kernels::Mbek::new(trained.family).with_latency_factor(cfg.kernel_latency_factor);
        let mut scheduler = Scheduler::new(trained.clone(), policy, cfg.slo_ms);
        if !cfg.contention_adaptive {
            scheduler = scheduler.with_frozen_latency_model();
        }
        if cfg.overhead_known_to_scheduler {
            scheduler = scheduler.with_known_overhead(cfg.fixed_overhead_ms_per_frame);
        }
        let mut sampler = OnlineSwitchSampler::new(trained.switching);
        if cfg.preheat {
            for b in &trained.catalog {
                sampler.preheat(b.key());
            }
        }
        Self {
            videos,
            trained,
            scheduler,
            mbek,
            sampler,
            fixed_overhead_ms_per_frame: cfg.fixed_overhead_ms_per_frame,
            gof_deadline_factor: cfg.gof_deadline_factor,
            video_idx: 0,
            t: 0,
            boxes: Vec::new(),
            last_detections: Vec::new(),
            acc: MapAccumulator::new(),
            latency: LatencyStats::new(),
            breakdown: Breakdown::default(),
            branches_used: BTreeSet::new(),
            branch_decisions: std::collections::BTreeMap::new(),
            switches: Vec::new(),
            decisions: 0,
            infeasible: 0,
            degrade_events: Vec::new(),
            faults: 0,
            degraded_gofs: 0,
        }
    }

    /// True when every frame of every video has been processed.
    pub fn finished(&self) -> bool {
        self.video_idx >= self.videos.len()
    }

    /// The stream's latency SLO in milliseconds.
    pub fn slo_ms(&self) -> f64 {
        self.scheduler.slo_ms()
    }

    /// Latency samples recorded so far.
    pub fn latency(&self) -> &LatencyStats {
        &self.latency
    }

    /// Frames processed so far.
    pub fn frames_done(&self) -> usize {
        self.breakdown.frames
    }

    /// Total frames across the playlist.
    pub fn frames_total(&self) -> usize {
        self.videos.iter().map(Video::len).sum()
    }

    /// Tightens the scheduler's feasibility headroom — the degraded
    /// operating mode a serving layer's admission controller imposes
    /// under overload (cheaper branches, longer GoFs).
    ///
    /// # Panics
    ///
    /// Panics if `headroom` is outside `[0.1, 1]`.
    pub fn set_headroom(&mut self, headroom: f64) {
        self.scheduler.set_headroom(headroom);
    }

    /// Feeds an externally measured GPU slowdown factor (≥ 1, relative
    /// to the uncontended device) into the scheduler's latency
    /// correction, so the very next decision predicts with the observed
    /// contention instead of waiting for the EWMA to catch up.
    pub fn observe_contention(&mut self, slowdown: f64) {
        self.scheduler.observe_contention(slowdown);
    }

    /// Runs one GoF: decision, optional branch switch, kernel execution,
    /// accounting, and feedback. Returns `None` when the stream is
    /// already finished.
    pub fn step_gof(
        &mut self,
        svc: &mut FeatureService,
        device: &mut DeviceSim,
    ) -> Option<GofStep> {
        self.step_gof_obs(svc, device, &mut NullSink)
    }

    /// [`StreamPipeline::step_gof`] with an observer: emits one
    /// [`DecisionRecord`] per GoF (joining the scheduler's explain with
    /// the GoF's actual outcome) plus spans around the switch and the
    /// kernel phases. Observation only reads the virtual clock — with a
    /// [`NullSink`] this is byte-for-byte the plain `step_gof`.
    pub fn step_gof_obs(
        &mut self,
        svc: &mut FeatureService,
        device: &mut DeviceSim,
        obs: &mut impl ObsSink,
    ) -> Option<GofStep> {
        if self.finished() {
            return None;
        }
        let video_idx = self.video_idx;
        // Detach the playlist for the step so `frames` (borrowed from it)
        // can coexist with `&mut self` calls like the retry's branch
        // switch; restored before returning.
        let videos = std::mem::take(&mut self.videos);
        let video = &videos[video_idx];
        let t = self.t;
        let demand_before = device.gpu_demand_ms();

        // Scheduler decision (all costs charged inside).
        let before = device.now_ms();
        let mut decision = self
            .scheduler
            .decide_obs(video, t, &self.boxes, svc, device, obs);
        let sched_ms = device.now_ms() - before;
        self.decisions += 1;
        if !decision.feasible {
            self.infeasible += 1;
        }
        // For the decision record: where we were before any switch, and
        // how many degrade events this step adds.
        let prev_branch_idx = self.scheduler.current_branch();
        let degrades_before = self.degrade_events.len();

        // Branch switch if needed.
        let mut switch_ms = 0.0;
        let dst_key = self.trained.catalog[decision.branch_idx].key();
        let need_switch = self.scheduler.current_branch() != Some(decision.branch_idx)
            || self.mbek.branch().is_none();
        if need_switch {
            switch_ms = self.switch_to(decision.branch_idx, device, obs);
        }
        self.branches_used.insert(dst_key);
        *self.branch_decisions.entry(dst_key).or_insert(0) += 1;

        // Light features used for the latency observation must match
        // what the scheduler saw.
        let light = svc.light(video, t, &self.boxes);

        // Execute the GoF, descending the fallback ladder on faults.
        let branch = self.trained.catalog[decision.branch_idx];
        let end = (t + branch.gof_size.max(1) as usize).min(video.len());
        let frames = &video.frames[t..end];
        let opts = lr_kernels::GofOptions {
            deadline_ms: self
                .gof_deadline_factor
                .map(|f| f * self.scheduler.slo_ms() * frames.len() as f64),
        };
        let mut gof_faults = decision.faults;
        let mut wasted_ms = 0.0;
        let mut fallback_gof = false;
        let mut exec_branch_idx = decision.branch_idx;
        if decision.cost_only {
            self.degrade_events.push(DegradeEvent {
                video_idx,
                frame: t,
                kind: DegradeKind::CostOnlyDecision,
                wasted_ms: 0.0,
            });
        }
        let result = match self.mbek.try_run_gof_obs(frames, device, &opts, obs) {
            Ok(r) => r,
            Err(lr_kernels::GofError::DetectorFault { wasted_ms: w }) => {
                gof_faults += 1;
                wasted_ms += w;
                // Rung 1: one bounded retry on the cheapest branch — a
                // shorter detector op, less exposure to the fault episode
                // — unless we are already on it.
                let cheapest = Self::cheapest_catalog_branch(&self.trained.det_inference_ms);
                let mut retried = None;
                if cheapest != exec_branch_idx {
                    switch_ms += self.switch_to(cheapest, device, obs);
                    exec_branch_idx = cheapest;
                    self.degrade_events.push(DegradeEvent {
                        video_idx,
                        frame: t,
                        kind: DegradeKind::CheaperRetry,
                        wasted_ms: w,
                    });
                    match self.mbek.try_run_gof_obs(frames, device, &opts, obs) {
                        Ok(r) => retried = Some(r),
                        Err(lr_kernels::GofError::DetectorFault { wasted_ms: w2 }) => {
                            gof_faults += 1;
                            wasted_ms += w2;
                        }
                        Err(lr_kernels::GofError::NoBranch) => {}
                    }
                }
                match retried {
                    Some(r) => r,
                    None => {
                        // Rung 2: give up on detection for this GoF —
                        // tracker-only on the last known detections.
                        fallback_gof = true;
                        self.degrade_events.push(DegradeEvent {
                            video_idx,
                            frame: t,
                            kind: DegradeKind::TrackerOnlyGof,
                            wasted_ms,
                        });
                        let seed = self.last_detections.clone();
                        match self.mbek.run_gof_fallback_obs(frames, device, &seed, obs) {
                            Ok(r) => r,
                            Err(_) => unreachable!("branch configured above"),
                        }
                    }
                }
            }
            Err(lr_kernels::GofError::NoBranch) => unreachable!("branch configured above"),
        };
        gof_faults += result.absorbed_faults;
        if result.deadline_aborted {
            self.degrade_events.push(DegradeEvent {
                video_idx,
                frame: t,
                kind: DegradeKind::DeadlineAbort,
                wasted_ms: 0.0,
            });
        }

        // Fixed pipeline overhead per frame.
        let mut overhead_ms = 0.0;
        if self.fixed_overhead_ms_per_frame > 0.0 {
            for _ in frames {
                overhead_ms += device.charge_fixed(self.fixed_overhead_ms_per_frame);
            }
        }

        // Accounting: GoF-amortized per-frame latency samples. Wasted
        // milliseconds of failed detector ops are real device time and
        // count toward both the samples and the detector breakdown.
        let gof_total = sched_ms + switch_ms + result.kernel_ms() + wasted_ms + overhead_ms;
        let per_frame = gof_total / frames.len() as f64;
        for (truth, dets) in frames.iter().zip(result.per_frame.iter()) {
            self.acc
                .add_frame(&to_gt_boxes(truth), &to_pred_boxes(dets));
            self.latency.record(per_frame);
        }
        self.breakdown.detector_ms += result.detector_ms + wasted_ms;
        self.breakdown.tracker_ms += result.tracker_ms;
        self.breakdown.scheduler_ms += sched_ms;
        self.breakdown.switch_ms += switch_ms;
        self.breakdown.overhead_ms += overhead_ms;
        self.breakdown.frames += frames.len();
        let degraded =
            gof_faults > 0 || decision.cost_only || fallback_gof || result.deadline_aborted;
        if degraded {
            self.degraded_gofs += 1;
        }
        self.faults += gof_faults;

        // Emit the decision record: the scheduler's reasoning joined with
        // what actually happened. Pure observation — values already
        // computed above, clock only read.
        if obs.enabled() {
            obs.decision(DecisionRecord {
                stream: 0,
                gof: 0, // stamped by the sink
                video_idx,
                start_frame: t,
                t_ms: before,
                explain: decision.explain.take().map(|b| *b).unwrap_or_default(),
                chosen_key: self.trained.catalog[exec_branch_idx].name(),
                prev_key: prev_branch_idx
                    .map(|i| self.trained.catalog[i].name())
                    .unwrap_or_default(),
                switched: exec_branch_idx != decision.branch_idx || need_switch,
                frames: frames.len(),
                sched_ms,
                switch_ms,
                kernel_ms: result.kernel_ms(),
                overhead_ms,
                wasted_ms,
                per_frame_ms: per_frame,
                slowdown: device.external_gpu_slowdown().unwrap_or(1.0),
                faults: u32::try_from(gof_faults).unwrap_or(u32::MAX),
                degraded,
                degrades: self.degrade_events[degrades_before..]
                    .iter()
                    .map(|e| e.kind.name())
                    .collect(),
            });
        }

        // Feed observations back to the scheduler.
        let n = frames.len() as f64;
        self.scheduler.observe_latency(
            exec_branch_idx,
            &light,
            result.detector_ms / n,
            result.tracker_ms / n,
        );
        if !fallback_gof {
            self.scheduler
                .record_detection(t, result.first_frame_output.proposal_logits.clone());
            // The light features of the next decision come from the most
            // recent *detector* output — matching the offline protocol,
            // where they were collected from reference detections (tracked
            // boxes under- and mis-count objects on weak branches, which
            // would skew the models' input distribution). A fallback GoF
            // produced no detector output, so the previous byproducts,
            // boxes, and fallback seed all stay.
            self.last_detections = result.first_frame_output.detections.clone();
            self.boxes = result
                .first_frame_output
                .detections
                .iter()
                .map(|det| det.bbox)
                .collect();
        }

        let frames_done = end - t;
        self.t = end;
        if self.t >= videos[video_idx].len() {
            // Video boundary: detector byproducts must not leak into the
            // next video. Branch and latency corrections persist.
            self.video_idx += 1;
            self.t = 0;
            self.boxes.clear();
            self.last_detections.clear();
            self.scheduler.reset_stream();
        }
        self.videos = videos;

        Some(GofStep {
            video_idx,
            start_frame: t,
            frames: frames_done,
            gof_ms: gof_total,
            per_frame_ms: per_frame,
            gpu_demand_ms: device.gpu_demand_ms() - demand_before,
            faults: gof_faults,
            degraded,
        })
    }

    /// Switches the MBEK and scheduler to catalog branch `dst`, charging
    /// the sampled switching cost to `device`. Returns the charged
    /// milliseconds.
    fn switch_to(&mut self, dst: usize, device: &mut DeviceSim, obs: &mut impl ObsSink) -> f64 {
        let src_idx = self.scheduler.current_branch();
        let src_ms = src_idx.map_or(80.0, |i| self.trained.det_inference_ms[i]);
        let src_key = src_idx.map_or(0, |i| self.trained.catalog[i].key());
        let dst_key = self.trained.catalog[dst].key();
        let cost = self.sampler.sample_ms(
            src_ms,
            self.trained.det_inference_ms[dst],
            dst_key,
            device.rng(),
        );
        // The switch occupies the GPU (model load + warmup).
        obs.span_begin(SpanKind::Switch, "", device.now_ms());
        let ms = device.charge_fixed_on(OpUnit::Gpu, cost * device.profile().gpu_speed_factor);
        obs.span_end(device.now_ms());
        self.switches.push(SwitchEvent {
            src_key,
            dst_key,
            cost_ms: cost,
        });
        self.mbek.set_branch(self.trained.catalog[dst]);
        self.scheduler.commit_branch(dst);
        self.branches_used.insert(dst_key);
        ms
    }

    /// Index of the catalog branch with the lightest steady-state
    /// detector (total order over floats; 0 for an empty slice).
    fn cheapest_catalog_branch(det_inference_ms: &[f64]) -> usize {
        let mut best = 0usize;
        for (i, v) in det_inference_ms.iter().enumerate().skip(1) {
            if v.total_cmp(&det_inference_ms[best]) == std::cmp::Ordering::Less {
                best = i;
            }
        }
        best
    }

    /// Consumes the pipeline and produces the run result.
    pub fn into_result(self) -> RunResult {
        RunResult {
            map: self.acc.finalize(0.5).map,
            latency: self.latency,
            breakdown: self.breakdown,
            branches_used: self.branches_used,
            branch_decisions: self.branch_decisions,
            switches: self.switches,
            decisions: self.decisions,
            infeasible_decisions: self.infeasible,
            degrade_events: self.degrade_events,
            faults: self.faults,
            degraded_gofs: self.degraded_gofs,
        }
    }
}

/// Runs an adaptive protocol (any LiteReconfig variant, ApproxDet, SSD+,
/// YOLO+) over a set of videos on a private device.
pub fn run_adaptive(
    videos: &[Video],
    trained: Arc<TrainedScheduler>,
    policy: Policy,
    cfg: &RunConfig,
    svc: &mut FeatureService,
) -> RunResult {
    run_adaptive_obs(videos, trained, policy, cfg, svc, &mut NullSink)
}

/// [`run_adaptive`] with an observer attached to the stream's pipeline.
/// With a [`NullSink`] (or any disabled sink) the result is
/// byte-identical to `run_adaptive`.
pub fn run_adaptive_obs(
    videos: &[Video],
    trained: Arc<TrainedScheduler>,
    policy: Policy,
    cfg: &RunConfig,
    svc: &mut FeatureService,
    obs: &mut impl ObsSink,
) -> RunResult {
    let mut device = DeviceSim::new(cfg.device, cfg.contention_pct, cfg.seed);
    if let Some(fault) = cfg.fault {
        device.set_fault_plan(Some(lr_device::FaultPlan::generate(fault)));
    }
    let mut pipeline = StreamPipeline::new(videos.to_vec(), trained, policy, cfg);
    while pipeline.step_gof_obs(svc, &mut device, obs).is_some() {}
    pipeline.into_result()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::featsvc::FeatureService;
    use crate::offline::{profile_videos, OfflineConfig};
    use crate::trainer::{train_scheduler, TrainConfig};
    use lr_kernels::branch::small_catalog;
    use lr_kernels::DetectorFamily;
    use lr_video::VideoSpec;

    fn setup() -> (Arc<TrainedScheduler>, Vec<Video>, FeatureService) {
        let train_videos: Vec<Video> = (0..2)
            .map(|i| {
                Video::generate(VideoSpec {
                    id: i,
                    seed: 600 + i as u64,
                    width: 640.0,
                    height: 480.0,
                    num_frames: 80,
                })
            })
            .collect();
        let mut svc = FeatureService::new();
        let cfg = OfflineConfig {
            snippet_len: 40,
            catalog: small_catalog(),
            family: DetectorFamily::FasterRcnn,
            reference_detector: lr_kernels::DetectorConfig::new(576, 100),
            seed: 11,
        };
        let ds = profile_videos(&train_videos, &cfg, &mut svc);
        let trained = Arc::new(train_scheduler(
            &ds,
            DetectorFamily::FasterRcnn,
            &TrainConfig::tiny(),
        ));
        let val_videos: Vec<Video> = (0..2)
            .map(|i| {
                Video::generate(VideoSpec {
                    id: 100 + i,
                    seed: 700 + i as u64,
                    width: 640.0,
                    height: 480.0,
                    num_frames: 100,
                })
            })
            .collect();
        (trained, val_videos, svc)
    }

    #[test]
    fn run_covers_every_frame() {
        let (trained, videos, mut svc) = setup();
        let cfg = RunConfig::clean(DeviceKind::JetsonTx2, 0.0, 100.0, 1);
        let r = run_adaptive(&videos, trained, Policy::MinCost, &cfg, &mut svc);
        let total_frames: usize = videos.iter().map(Video::len).sum();
        assert_eq!(r.breakdown.frames, total_frames);
        assert_eq!(r.latency.count(), total_frames);
        assert!(r.map > 0.0, "mAP must be non-trivial, got {}", r.map);
        assert!(r.decisions > 0);
    }

    #[test]
    fn loose_slo_meets_latency_objective() {
        let (trained, videos, mut svc) = setup();
        let cfg = RunConfig::clean(DeviceKind::JetsonTx2, 0.0, 100.0, 2);
        let r = run_adaptive(&videos, trained, Policy::MinCost, &cfg, &mut svc);
        assert!(
            r.meets_slo(100.0),
            "P95 {} exceeds 100 ms SLO",
            r.latency.p95()
        );
    }

    #[test]
    fn contention_adaptive_run_survives_contention() {
        let (trained, videos, mut svc) = setup();
        let cfg = RunConfig::clean(DeviceKind::JetsonTx2, 50.0, 100.0, 3);
        let r = run_adaptive(&videos, trained, Policy::MinCost, &cfg, &mut svc);
        // With adaptation the P95 should stay within ~the SLO even under
        // 50% GPU contention (generous 1.2x tolerance for the short test).
        assert!(
            r.latency.p95() < 120.0,
            "P95 {} under contention",
            r.latency.p95()
        );
    }

    #[test]
    fn breakdown_accounts_for_all_time() {
        let (trained, videos, mut svc) = setup();
        let cfg = RunConfig::clean(DeviceKind::JetsonTx2, 0.0, 50.0, 4);
        let r = run_adaptive(&videos, trained, Policy::MinCost, &cfg, &mut svc);
        let sample_total: f64 = r.latency.mean() * r.latency.count() as f64;
        assert!(
            (sample_total - r.breakdown.total_ms()).abs() < 1.0,
            "samples {} vs breakdown {}",
            sample_total,
            r.breakdown.total_ms()
        );
    }

    #[test]
    fn fixed_overhead_inflates_latency() {
        let (trained, videos, mut svc) = setup();
        let mut cfg = RunConfig::clean(DeviceKind::JetsonTx2, 0.0, 100.0, 5);
        let clean = run_adaptive(&videos, trained.clone(), Policy::MinCost, &cfg, &mut svc);
        cfg.fixed_overhead_ms_per_frame = 48.0;
        cfg.overhead_known_to_scheduler = true;
        let heavy = run_adaptive(&videos, trained, Policy::MinCost, &cfg, &mut svc);
        // The overhead must be charged in full...
        assert!(
            (heavy.breakdown.overhead_ms - 48.0 * heavy.breakdown.frames as f64).abs() < 1e-6,
            "overhead {} not fully charged",
            heavy.breakdown.overhead_ms
        );
        // ...and clearly inflate the mean. The margin is below the full
        // 48 ms because the two runs may differ in branch-switch churn.
        assert!(
            heavy.latency.mean() > clean.latency.mean() + 24.0,
            "heavy {} vs clean {}",
            heavy.latency.mean(),
            clean.latency.mean()
        );
    }

    #[test]
    fn branch_coverage_is_recorded() {
        let (trained, videos, mut svc) = setup();
        let cfg = RunConfig::clean(DeviceKind::JetsonTx2, 0.0, 50.0, 6);
        let r = run_adaptive(&videos, trained, Policy::MinCost, &cfg, &mut svc);
        assert!(!r.branches_used.is_empty());
        assert!(
            !r.switches.is_empty(),
            "the first configuration is a switch"
        );
    }

    #[test]
    fn stepping_matches_run_adaptive_totals() {
        let (trained, videos, mut svc) = setup();
        let cfg = RunConfig::clean(DeviceKind::JetsonTx2, 0.0, 100.0, 7);
        let mut device = DeviceSim::new(cfg.device, cfg.contention_pct, cfg.seed);
        let mut p = StreamPipeline::new(videos.clone(), trained, Policy::MinCost, &cfg);
        let mut steps = 0usize;
        let mut frames = 0usize;
        let mut gof_ms_total = 0.0;
        while let Some(step) = p.step_gof(&mut svc, &mut device) {
            steps += 1;
            frames += step.frames;
            gof_ms_total += step.gof_ms;
            assert!(step.gof_ms > 0.0);
            assert!(step.gpu_demand_ms >= 0.0);
        }
        assert!(p.finished());
        assert!(p.step_gof(&mut svc, &mut device).is_none());
        let total_frames: usize = videos.iter().map(Video::len).sum();
        assert_eq!(frames, total_frames);
        let r = p.into_result();
        assert_eq!(r.decisions, steps);
        assert_eq!(r.breakdown.frames, total_frames);
        assert!((gof_ms_total - r.breakdown.total_ms()).abs() < 1e-6);
    }

    #[test]
    fn gof_steps_report_gpu_demand() {
        let (trained, videos, mut svc) = setup();
        let cfg = RunConfig::clean(DeviceKind::JetsonTx2, 0.0, 100.0, 8);
        let mut device = DeviceSim::new(cfg.device, cfg.contention_pct, cfg.seed);
        let mut p = StreamPipeline::new(videos, trained, Policy::MinCost, &cfg);
        let step = p.step_gof(&mut svc, &mut device).expect("first GoF");
        // Every GoF runs the detector at least once: GPU demand is real.
        assert!(step.gpu_demand_ms > 0.0);
        assert!((device.gpu_demand_ms() - step.gpu_demand_ms).abs() < 1e-9);
    }

    #[test]
    fn faulted_run_completes_without_panic_and_records_degradation() {
        let (trained, videos, mut svc) = setup();
        let mut cfg = RunConfig::clean(DeviceKind::JetsonTx2, 0.0, 100.0, 9);
        cfg.fault = Some(lr_device::FaultConfig {
            transient_rate: 0.25,
            ..lr_device::FaultConfig::moderate(5)
        });
        cfg.gof_deadline_factor = Some(4.0);
        let r = run_adaptive(&videos, trained, Policy::MinCost, &cfg, &mut svc);
        let total_frames: usize = videos.iter().map(Video::len).sum();
        assert_eq!(r.breakdown.frames, total_frames, "every frame covered");
        assert!(r.faults > 0, "a 25% transient rate must produce faults");
        assert!(r.degraded_gofs > 0);
        assert!(!r.degrade_events.is_empty());
        assert!(r.map > 0.0, "degraded runs still produce detections");
    }

    #[test]
    fn faulted_run_is_deterministic() {
        let (trained, videos, mut svc) = setup();
        let mut cfg = RunConfig::clean(DeviceKind::JetsonTx2, 0.0, 100.0, 10);
        cfg.fault = Some(lr_device::FaultConfig::moderate(7));
        let a = run_adaptive(&videos, trained.clone(), Policy::MinCost, &cfg, &mut svc);
        let b = run_adaptive(&videos, trained, Policy::MinCost, &cfg, &mut svc);
        assert_eq!(a.map.to_bits(), b.map.to_bits());
        assert_eq!(a.latency.p95().to_bits(), b.latency.p95().to_bits());
        assert_eq!(a.faults, b.faults);
        assert_eq!(a.degraded_gofs, b.degraded_gofs);
        assert_eq!(a.degrade_events.len(), b.degrade_events.len());
    }

    #[test]
    fn clean_run_reports_no_degradation() {
        let (trained, videos, mut svc) = setup();
        let cfg = RunConfig::clean(DeviceKind::JetsonTx2, 0.0, 100.0, 11);
        let r = run_adaptive(&videos, trained, Policy::MinCost, &cfg, &mut svc);
        assert_eq!(r.faults, 0);
        assert_eq!(r.degraded_gofs, 0);
        assert!(r.degrade_events.is_empty());
    }

    #[test]
    fn zero_slo_edge_cases_are_guarded() {
        let b = Breakdown {
            frames: 10,
            detector_ms: 100.0,
            ..Breakdown::default()
        };
        assert_eq!(b.fraction_of_slo(100.0, 0.0), 0.0);
        assert_eq!(b.fraction_of_slo(100.0, -5.0), 0.0);
        assert_eq!(b.fraction_of_slo(100.0, f64::NAN), 0.0);
        assert_eq!(b.fraction_of_slo(100.0, f64::INFINITY), 0.0);
        assert!(b.fraction_of_slo(100.0, 50.0) > 0.0);
        let empty = Breakdown::default();
        assert_eq!(empty.fraction_of_slo(100.0, 50.0), 0.0);

        let mut latency = LatencyStats::new();
        latency.record(10.0);
        let r = RunResult {
            map: 0.5,
            latency,
            breakdown: b,
            branches_used: BTreeSet::new(),
            branch_decisions: std::collections::BTreeMap::new(),
            switches: Vec::new(),
            decisions: 1,
            infeasible_decisions: 0,
            degrade_events: Vec::new(),
            faults: 0,
            degraded_gofs: 0,
        };
        assert!(!r.meets_slo(0.0), "a zero SLO can never be met");
        assert!(!r.meets_slo(-1.0));
        assert!(!r.meets_slo(f64::NAN));
        assert!(!r.meets_slo(f64::INFINITY), "an infinite SLO is degenerate");
        assert!(r.meets_slo(10.0));
        assert!(!r.meets_slo(9.9));
    }
}
