//! The per-stream sink: buffers spans, decision records, and metrics
//! privately so parallel workers never contend, then hands everything
//! to a serial merge.

use crate::metrics::{Metrics, LATENCY_BOUNDS, SCHED_BOUNDS, SLACK_BOUNDS, SPAN_BOUNDS};
use crate::record::{DecisionRecord, SpanRecord, TraceEvent};
use crate::sink::{ObsSink, SpanKind};

/// How much a [`StreamObs`] records.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ObsMode {
    /// Record nothing; behaves like [`crate::NullSink`].
    #[default]
    Off,
    /// Update counters and histograms only — no per-event storage.
    Counting,
    /// Counting plus the full span/decision event log.
    Trace,
}

/// A per-stream observer. One lives on each serving stream (or on the
/// single pipeline in standalone runs); it is stepped only by the
/// worker that owns the stream, so no synchronization is needed.
#[derive(Clone, Debug, Default)]
pub struct StreamObs {
    mode: ObsMode,
    metrics: Metrics,
    events: Vec<TraceEvent>,
    stack: Vec<(SpanKind, &'static str, f64)>,
    gof: u64,
}

impl StreamObs {
    /// A sink in the given mode.
    pub fn new(mode: ObsMode) -> Self {
        StreamObs {
            mode,
            ..StreamObs::default()
        }
    }

    /// The configured mode.
    pub fn mode(&self) -> ObsMode {
        self.mode
    }

    /// The metrics accumulated so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Drain the buffered state for the serial merge, leaving the sink
    /// empty but usable.
    pub fn take(&mut self) -> (Metrics, Vec<TraceEvent>) {
        debug_assert!(self.stack.is_empty(), "unbalanced spans at drain");
        (
            std::mem::take(&mut self.metrics),
            std::mem::take(&mut self.events),
        )
    }
}

impl ObsSink for StreamObs {
    fn enabled(&self) -> bool {
        self.mode != ObsMode::Off
    }

    fn span_begin(&mut self, kind: SpanKind, label: &'static str, t_ms: f64) {
        if self.mode == ObsMode::Off {
            return;
        }
        self.stack.push((kind, label, t_ms));
    }

    fn span_end(&mut self, t_ms: f64) {
        if self.mode == ObsMode::Off {
            return;
        }
        let Some((kind, label, t0)) = self.stack.pop() else {
            debug_assert!(false, "span_end without matching span_begin");
            return;
        };
        self.metrics
            .observe(kind.hist_name(), &SPAN_BOUNDS, t_ms - t0);
        if self.mode == ObsMode::Trace {
            self.events.push(TraceEvent::Span(SpanRecord {
                stream: 0,
                gof: self.gof,
                kind,
                label,
                depth: self.stack.len(),
                t0,
                t1: t_ms,
            }));
        }
    }

    fn decision(&mut self, mut rec: DecisionRecord) {
        if self.mode == ObsMode::Off {
            return;
        }
        rec.gof = self.gof;
        self.gof += 1;

        self.metrics.inc("decisions", 1);
        self.metrics.inc("frames", rec.frames as u64);
        self.metrics.inc("faults", u64::from(rec.faults));
        if rec.switched {
            self.metrics.inc("switches", 1);
            self.metrics
                .observe("switch_ms", &SCHED_BOUNDS, rec.switch_ms);
        }
        if !rec.explain.feasible {
            self.metrics.inc("infeasible", 1);
        }
        if rec.explain.cost_only {
            self.metrics.inc("cost_only", 1);
        }
        if rec.degraded {
            self.metrics.inc("degraded_gofs", 1);
        }
        for name in &rec.degrades {
            self.metrics.inc(name, 1);
        }
        self.metrics
            .observe("per_frame_ms", &LATENCY_BOUNDS, rec.per_frame_ms);
        self.metrics
            .observe("sched_ms", &SCHED_BOUNDS, rec.sched_ms);
        self.metrics
            .observe("slack_ms", &SLACK_BOUNDS, rec.explain.slack_ms);

        if self.mode == ObsMode::Trace {
            self.events.push(TraceEvent::Decision(Box::new(rec)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record(frames: usize, switched: bool) -> DecisionRecord {
        DecisionRecord {
            frames,
            switched,
            switch_ms: if switched { 3.0 } else { 0.0 },
            per_frame_ms: 12.0,
            sched_ms: 1.5,
            explain: crate::DecisionExplain {
                feasible: true,
                slack_ms: 4.0,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn off_mode_records_nothing() {
        let mut s = StreamObs::new(ObsMode::Off);
        assert!(!s.enabled());
        s.span_begin(SpanKind::Detect, "", 0.0);
        s.span_end(2.0);
        s.decision(sample_record(8, false));
        let (m, ev) = s.take();
        assert_eq!(m, Metrics::new());
        assert!(ev.is_empty());
    }

    #[test]
    fn counting_mode_updates_metrics_without_events() {
        let mut s = StreamObs::new(ObsMode::Counting);
        assert!(s.enabled());
        s.span_begin(SpanKind::Detect, "", 0.0);
        s.span_end(2.0);
        s.decision(sample_record(8, true));
        let (m, ev) = s.take();
        assert!(ev.is_empty());
        assert_eq!(m.counter("decisions"), 1);
        assert_eq!(m.counter("frames"), 8);
        assert_eq!(m.counter("switches"), 1);
        assert_eq!(m.hist("span_detect_ms").map(|h| h.count()), Some(1));
    }

    #[test]
    fn trace_mode_stamps_gof_and_nesting_depth() {
        let mut s = StreamObs::new(ObsMode::Trace);
        s.span_begin(SpanKind::Decision, "", 0.0);
        s.span_begin(SpanKind::LightFeature, "", 0.1);
        s.span_end(0.9);
        s.span_end(1.2);
        s.decision(sample_record(8, false));
        s.span_begin(SpanKind::Detect, "", 2.0);
        s.span_end(6.0);
        s.decision(sample_record(8, false));
        let (_, ev) = s.take();

        let spans: Vec<&SpanRecord> = ev
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Span(sp) => Some(sp),
                _ => None,
            })
            .collect();
        // Inner span closes first, at depth 1; outer at depth 0.
        assert_eq!(spans[0].kind, SpanKind::LightFeature);
        assert_eq!(spans[0].depth, 1);
        assert_eq!(spans[1].kind, SpanKind::Decision);
        assert_eq!(spans[1].depth, 0);
        // The detect span belongs to the second GoF.
        assert_eq!(spans[2].gof, 1);

        let gofs: Vec<u64> = ev
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Decision(d) => Some(d.gof),
                _ => None,
            })
            .collect();
        assert_eq!(gofs, vec![0, 1]);
    }
}
