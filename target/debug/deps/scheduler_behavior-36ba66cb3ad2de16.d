/root/repo/target/debug/deps/scheduler_behavior-36ba66cb3ad2de16.d: tests/scheduler_behavior.rs

/root/repo/target/debug/deps/scheduler_behavior-36ba66cb3ad2de16: tests/scheduler_behavior.rs

tests/scheduler_behavior.rs:
