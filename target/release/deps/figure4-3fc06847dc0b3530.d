/root/repo/target/release/deps/figure4-3fc06847dc0b3530.d: crates/bench/src/bin/figure4.rs

/root/repo/target/release/deps/figure4-3fc06847dc0b3530: crates/bench/src/bin/figure4.rs

crates/bench/src/bin/figure4.rs:
