//! Ground-truth object instances.

use crate::classes::ObjectClass;
use crate::geometry::BBox;

/// A ground-truth object instance on a single frame.
///
/// Instances carry everything the detector simulators and the evaluation
/// pipeline need: identity (for tracking), geometry, class, instantaneous
/// velocity (for motion blur and tracker drift), and an intrinsic visual
/// `difficulty` that degrades detectability independent of size.
#[derive(Debug, Clone, PartialEq)]
pub struct GtObject {
    /// Stable per-video instance id (survives across frames).
    pub id: u32,
    /// Object category.
    pub class: ObjectClass,
    /// Bounding box in source-resolution pixels, clamped to the frame.
    pub bbox: BBox,
    /// Instantaneous velocity in pixels/frame `(vx, vy)`.
    pub velocity: (f32, f32),
    /// Intrinsic visual difficulty in `[0, 1]` (occlusion, camouflage...).
    pub difficulty: f32,
    /// Per-instance color jitter applied on top of the class base color.
    pub color_jitter: [f32; 3],
}

impl GtObject {
    /// Speed in pixels/frame.
    pub fn speed(&self) -> f32 {
        let (vx, vy) = self.velocity;
        (vx * vx + vy * vy).sqrt()
    }

    /// Relative scale: the box's short side divided by the frame's short
    /// side. Small values mean hard-to-detect objects.
    pub fn relative_scale(&self, frame_w: f32, frame_h: f32) -> f32 {
        let short_obj = self.bbox.w.min(self.bbox.h);
        let short_frame = frame_w.min(frame_h).max(1.0);
        short_obj / short_frame
    }

    /// The rendered color: class base color modulated by instance jitter,
    /// clamped to `[0, 1]`.
    pub fn render_color(&self) -> [f32; 3] {
        let base = self.class.base_color();
        let mut out = [0.0; 3];
        for i in 0..3 {
            out[i] = (base[i] + self.color_jitter[i]).clamp(0.0, 1.0);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> GtObject {
        GtObject {
            id: 1,
            class: ObjectClass::new(6),
            bbox: BBox::new(10.0, 10.0, 30.0, 40.0),
            velocity: (3.0, 4.0),
            difficulty: 0.2,
            color_jitter: [0.0, 0.0, 0.0],
        }
    }

    #[test]
    fn speed_is_euclidean() {
        assert!((sample().speed() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn relative_scale_uses_short_sides() {
        let o = sample();
        // Short object side 30, short frame side 120.
        assert!((o.relative_scale(200.0, 120.0) - 0.25).abs() < 1e-6);
    }

    #[test]
    fn render_color_clamps_jitter() {
        let mut o = sample();
        o.color_jitter = [10.0, -10.0, 0.0];
        let c = o.render_color();
        assert_eq!(c[0], 1.0);
        assert_eq!(c[1], 0.0);
    }
}
