//! Class Predictions on Proposals (CPoP), `f_H^4`.
//!
//! Table 1: "Prediction logits on the region proposals are extracted and
//! average pooled over all region proposals. We only reserve the class
//! dimension (including a background class)." The detector simulator in
//! `lr-kernels` produces per-proposal class logits; this module pools them
//! into the 31-dimensional CPoP vector (30 VID classes + background).

use lr_video::classes::NUM_CLASSES;

/// CPoP dimensionality: 30 classes plus background.
pub const DIM: usize = NUM_CLASSES + 1;

/// Average-pools per-proposal class logits into the CPoP vector, then
/// softmax-normalizes so the feature is scale-free.
///
/// An empty proposal list yields the all-background distribution.
///
/// # Panics
///
/// Panics if any proposal's logit vector is not `DIM`-dimensional.
pub fn cpop_vector(proposal_logits: &[Vec<f32>]) -> Vec<f32> {
    let mut pooled = vec![0.0f32; DIM];
    if proposal_logits.is_empty() {
        // No proposals: everything is background.
        pooled[DIM - 1] = 1.0;
        return pooled;
    }
    for logits in proposal_logits {
        assert_eq!(logits.len(), DIM, "proposal logits must be {DIM}-d");
        for (p, &l) in pooled.iter_mut().zip(logits.iter()) {
            *p += l;
        }
    }
    let inv = 1.0 / proposal_logits.len() as f32;
    for p in &mut pooled {
        *p *= inv;
    }
    softmax_in_place(&mut pooled);
    pooled
}

/// Numerically stable softmax.
fn softmax_in_place(v: &mut [f32]) {
    let max = v.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for x in v.iter_mut() {
        *x = (*x - max).exp();
        sum += *x;
    }
    for x in v.iter_mut() {
        *x /= sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dim_is_31() {
        assert_eq!(DIM, 31);
    }

    #[test]
    fn empty_proposals_are_all_background() {
        let v = cpop_vector(&[]);
        assert_eq!(v.len(), DIM);
        assert_eq!(v[DIM - 1], 1.0);
        assert!(v[..DIM - 1].iter().all(|&x| x == 0.0));
    }

    #[test]
    fn output_is_a_distribution() {
        let logits = vec![vec![0.5; DIM], vec![-0.5; DIM]];
        let v = cpop_vector(&logits);
        let sum: f32 = v.iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
        assert!(v.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn dominant_class_dominates_output() {
        let mut logits = vec![0.0f32; DIM];
        logits[6] = 5.0; // "car" spikes.
        let v = cpop_vector(&[logits]);
        let argmax = v
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(argmax, 6);
    }

    #[test]
    fn pooling_averages_across_proposals() {
        let mut a = vec![0.0f32; DIM];
        a[0] = 4.0;
        let mut b = vec![0.0f32; DIM];
        b[1] = 4.0;
        let v = cpop_vector(&[a, b]);
        assert!(
            (v[0] - v[1]).abs() < 1e-6,
            "symmetric proposals must pool equally"
        );
    }

    #[test]
    #[should_panic(expected = "proposal logits must be")]
    fn wrong_width_panics() {
        let _ = cpop_vector(&[vec![0.0; 7]]);
    }
}
