/root/repo/target/debug/deps/end_to_end-1d06699dcd0123fb.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-1d06699dcd0123fb: tests/end_to_end.rs

tests/end_to_end.rs:
