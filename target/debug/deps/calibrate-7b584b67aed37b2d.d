/root/repo/target/debug/deps/calibrate-7b584b67aed37b2d.d: crates/bench/src/bin/calibrate.rs

/root/repo/target/debug/deps/calibrate-7b584b67aed37b2d: crates/bench/src/bin/calibrate.rs

crates/bench/src/bin/calibrate.rs:
