//! The scheduler's prediction models.
//!
//! - [`AccuracyModel`]: the content-aware accuracy prediction model
//!   `A(b, f)` — a 6-layer MLP per content feature (§4): the input
//!   concatenates the light features and one heavy content feature, the
//!   output is the predicted snippet mAP of every catalog branch. Trained
//!   with MSE + SGD (momentum 0.9) + L2 on the offline records.
//! - [`LatencyModel`]: the per-branch latency model `L0(b, f_L)` — linear
//!   regressions on the light features (re-implementing ApproxDet's
//!   latency predictors), split into detector and tracker components so
//!   the online multiplicative corrections can react to GPU contention
//!   without touching CPU-side predictions.

use rand::rngs::StdRng;
use rand::SeedableRng;

use lr_features::FeatureKind;
use lr_nn::linreg::{fit_ridge, LinearModel};
use lr_nn::{Matrix, Mlp, MlpConfig, Sgd};

use crate::offline::OfflineDataset;

/// Per-dimension standardization fitted on training data.
#[derive(Debug, Clone)]
pub struct Scaler {
    mean: Vec<f32>,
    std: Vec<f32>,
}

impl Scaler {
    /// Fits mean/std per dimension.
    ///
    /// # Panics
    ///
    /// Panics on an empty or ragged dataset.
    pub fn fit(rows: &[Vec<f32>]) -> Self {
        assert!(!rows.is_empty(), "cannot fit a scaler on no data");
        let d = rows[0].len();
        let n = rows.len() as f32;
        let mut mean = vec![0.0f32; d];
        for r in rows {
            assert_eq!(r.len(), d, "ragged rows");
            for (m, &v) in mean.iter_mut().zip(r.iter()) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let mut var = vec![0.0f32; d];
        for r in rows {
            for ((s, &v), &m) in var.iter_mut().zip(r.iter()).zip(mean.iter()) {
                *s += (v - m) * (v - m);
            }
        }
        // Floor the std well above machine epsilon: dimensions that are
        // (near-)constant in training would otherwise blow up at inference
        // when a new video activates them (e.g. an unseen HoC bin).
        let std = var.into_iter().map(|s| (s / n).sqrt().max(2e-2)).collect();
        Self { mean, std }
    }

    /// Standardizes one row.
    pub fn transform(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.mean.len(), "dimension mismatch");
        x.iter()
            .zip(self.mean.iter().zip(self.std.iter()))
            .map(|(&v, (&m, &s))| (v - m) / s)
            .collect()
    }

    /// Input dimensionality.
    pub fn dim(&self) -> usize {
        self.mean.len()
    }
}

/// Training hyper-parameters for accuracy models.
#[derive(Debug, Clone)]
pub struct AccuracyModelConfig {
    /// Hidden layer widths (4 hidden layers -> a 6-layer network with the
    /// input projection and output layer, matching §4).
    pub hidden: Vec<usize>,
    /// Training epochs (the paper trains up to 400, converging within
    /// 100).
    pub epochs: usize,
    /// Mini-batch size (the paper uses 64).
    pub batch_size: usize,
    /// SGD learning rate.
    pub learning_rate: f32,
    /// L2 regularization coefficient.
    pub weight_decay: f32,
}

impl AccuracyModelConfig {
    /// The paper's configuration.
    pub fn paper() -> Self {
        Self {
            hidden: vec![256, 256, 256, 256],
            epochs: 150,
            batch_size: 64,
            learning_rate: 0.005,
            weight_decay: 1e-4,
        }
    }

    /// A lighter configuration for experiments under a compute budget.
    pub fn fast() -> Self {
        Self {
            hidden: vec![96, 96, 96, 96],
            epochs: 200,
            batch_size: 32,
            learning_rate: 0.004,
            weight_decay: 1e-4,
        }
    }

    /// A tiny configuration for unit tests.
    pub fn tiny() -> Self {
        Self {
            hidden: vec![16, 16, 16, 16],
            epochs: 60,
            batch_size: 8,
            learning_rate: 0.003,
            weight_decay: 1e-4,
        }
    }
}

/// The content-aware accuracy model for one feature kind.
#[derive(Debug, Clone)]
pub struct AccuracyModel {
    kind: FeatureKind,
    scaler: Scaler,
    mlp: Mlp,
    final_train_mse: f32,
}

impl AccuracyModel {
    /// Trains the model for `kind` on the offline dataset.
    ///
    /// For [`FeatureKind::Light`] the input is the 4-d light vector (the
    /// content-agnostic model); otherwise it is light concatenated with
    /// the heavy feature.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty or lacks the feature.
    pub fn train(
        kind: FeatureKind,
        dataset: &OfflineDataset,
        cfg: &AccuracyModelConfig,
        seed: u64,
    ) -> Self {
        assert!(!dataset.is_empty(), "cannot train on an empty dataset");
        let inputs: Vec<Vec<f32>> = dataset
            .records
            .iter()
            .map(|r| Self::assemble_input(kind, &r.light, r.heavy.get(&kind).map(|v| v.as_slice())))
            .collect();
        let scaler = Scaler::fit(&inputs);
        let n = inputs.len();
        let in_dim = inputs[0].len();
        let out_dim = dataset.catalog.len();

        let mut x = Vec::with_capacity(n * in_dim);
        for row in &inputs {
            x.extend(scaler.transform(row));
        }
        let mut y = Vec::with_capacity(n * out_dim);
        for r in &dataset.records {
            y.extend_from_slice(&r.branch_map);
        }
        let x = Matrix::from_vec(n, in_dim, x);
        let y = Matrix::from_vec(n, out_dim, y);

        let mut rng = StdRng::seed_from_u64(seed ^ kind_seed(kind));
        // Leaky ReLU hidden layers: with only a few hundred snippets of
        // training data, plain ReLU units die wholesale under SGD and the
        // network collapses to a constant predictor.
        let mlp_cfg = MlpConfig {
            hidden_activation: lr_nn::layers::Activation::LeakyRelu,
            ..MlpConfig::regression(in_dim, &cfg.hidden, out_dim)
        };
        // Train with gradient clipping; if a learning rate still
        // diverges (non-finite loss), retry from a fresh init at a
        // quarter of the rate.
        let mut lr = cfg.learning_rate;
        let mut attempt = 0;
        let (mlp, final_train_mse) = loop {
            let mut mlp = Mlp::new(&mlp_cfg, &mut rng);
            let opt = Sgd::paper(lr, cfg.weight_decay).with_grad_clip(2.0);
            let history = mlp.fit(&x, &y, opt, cfg.epochs, cfg.batch_size, &mut rng);
            let final_mse = history.last().copied().unwrap_or(f32::INFINITY);
            if final_mse.is_finite() || attempt >= 3 {
                break (mlp, final_mse);
            }
            attempt += 1;
            lr *= 0.25;
        };
        Self {
            kind,
            scaler,
            mlp,
            final_train_mse,
        }
    }

    fn assemble_input(kind: FeatureKind, light: &[f32], heavy: Option<&[f32]>) -> Vec<f32> {
        let mut v = light.to_vec();
        if kind != FeatureKind::Light {
            let h = heavy.unwrap_or_else(|| panic!("record lacks {kind:?} feature"));
            v.extend_from_slice(h);
        }
        v
    }

    /// The feature kind this model consumes.
    pub fn kind(&self) -> FeatureKind {
        self.kind
    }

    /// Final training MSE (diagnostics).
    pub fn train_mse(&self) -> f32 {
        self.final_train_mse
    }

    /// Predicts per-branch snippet mAP, clamped to `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if the input widths do not match training.
    pub fn predict(&self, light: &[f32], heavy: Option<&[f32]>) -> Vec<f32> {
        let input = Self::assemble_input(self.kind, light, heavy);
        let scaled = self.scaler.transform(&input);
        self.mlp
            .infer_one(&scaled)
            .into_iter()
            .map(|v| v.clamp(0.0, 1.0))
            .collect()
    }

    /// Mean squared error against the dataset's labels (diagnostics).
    pub fn evaluate(&self, dataset: &OfflineDataset) -> f32 {
        let mut total = 0.0f32;
        let mut count = 0usize;
        for r in &dataset.records {
            let pred = self.predict(&r.light, r.heavy.get(&self.kind).map(|v| v.as_slice()));
            for (&p, &t) in pred.iter().zip(r.branch_map.iter()) {
                total += (p - t) * (p - t);
                count += 1;
            }
        }
        total / count.max(1) as f32
    }
}

fn kind_seed(kind: FeatureKind) -> u64 {
    match kind {
        FeatureKind::Light => 0x11,
        FeatureKind::HoC => 0x22,
        FeatureKind::Hog => 0x33,
        FeatureKind::ResNet50 => 0x44,
        FeatureKind::CPoP => 0x55,
        FeatureKind::MobileNetV2 => 0x66,
    }
}

/// Per-branch latency regressions split by execution unit.
#[derive(Debug, Clone)]
pub struct LatencyModel {
    det: Vec<LinearModel>,
    trk: Vec<LinearModel>,
}

impl LatencyModel {
    /// Fits per-branch ridge regressions on the light features.
    ///
    /// # Panics
    ///
    /// Panics on an empty dataset.
    pub fn train(dataset: &OfflineDataset) -> Self {
        assert!(!dataset.is_empty(), "cannot train on an empty dataset");
        let xs: Vec<Vec<f32>> = dataset.records.iter().map(|r| r.light.clone()).collect();
        // Each branch's pair of ridge solves is independent of the
        // others, so fan them out; results come back in branch order.
        let branches: Vec<usize> = (0..dataset.catalog.len()).collect();
        let pool = lr_pool::Pool::from_env();
        let fits = pool.par_map(&branches, |&b| {
            let det_y: Vec<f32> = dataset
                .records
                .iter()
                .map(|r| r.branch_det_ms[b] as f32)
                .collect();
            let trk_y: Vec<f32> = dataset
                .records
                .iter()
                .map(|r| r.branch_trk_ms[b] as f32)
                .collect();
            (
                fit_ridge(&xs, &det_y, 1e-3).expect("ridge solve"),
                fit_ridge(&xs, &trk_y, 1e-3).expect("ridge solve"),
            )
        });
        let (det, trk) = fits.into_iter().unzip();
        Self { det, trk }
    }

    /// Number of branches covered.
    pub fn num_branches(&self) -> usize {
        self.det.len()
    }

    /// Predicted detector and tracker per-frame milliseconds for one
    /// branch (before corrections).
    ///
    /// # Panics
    ///
    /// Panics if `branch_idx` is out of range.
    pub fn predict_parts(&self, branch_idx: usize, light: &[f32]) -> (f64, f64) {
        (
            self.det[branch_idx].predict(light).max(0.0) as f64,
            self.trk[branch_idx].predict(light).max(0.0) as f64,
        )
    }

    /// Predicted mean per-frame kernel latency of a branch, given the
    /// light features and the current multiplicative corrections for GPU
    /// (detector) and CPU (tracker) time.
    ///
    /// # Panics
    ///
    /// Panics if `branch_idx` is out of range.
    pub fn predict_kernel_ms(
        &self,
        branch_idx: usize,
        light: &[f32],
        gpu_corr: f64,
        cpu_corr: f64,
    ) -> f64 {
        let d = self.det[branch_idx].predict(light).max(0.0) as f64;
        let t = self.trk[branch_idx].predict(light).max(0.0) as f64;
        d * gpu_corr + t * cpu_corr
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::featsvc::FeatureService;
    use crate::offline::{profile_videos, OfflineConfig};
    use lr_kernels::branch::small_catalog;
    use lr_kernels::DetectorFamily;
    use lr_video::{Video, VideoSpec};

    fn dataset() -> OfflineDataset {
        let videos: Vec<Video> = (0..3)
            .map(|i| {
                Video::generate(VideoSpec {
                    id: i,
                    seed: 300 + i as u64,
                    width: 640.0,
                    height: 480.0,
                    num_frames: 80,
                })
            })
            .collect();
        let cfg = OfflineConfig {
            snippet_len: 40,
            catalog: small_catalog(),
            family: DetectorFamily::FasterRcnn,
            reference_detector: lr_kernels::DetectorConfig::new(576, 100),
            seed: 8,
        };
        profile_videos(&videos, &cfg, &mut FeatureService::new())
    }

    #[test]
    fn scaler_standardizes() {
        let rows = vec![vec![0.0, 10.0], vec![2.0, 30.0], vec![4.0, 50.0]];
        let s = Scaler::fit(&rows);
        let t = s.transform(&[2.0, 30.0]);
        assert!(
            t.iter().all(|v| v.abs() < 1e-5),
            "mean row -> zeros, got {t:?}"
        );
    }

    #[test]
    fn light_model_trains_and_predicts_in_range() {
        let ds = dataset();
        let m = AccuracyModel::train(FeatureKind::Light, &ds, &AccuracyModelConfig::tiny(), 1);
        let r = &ds.records[0];
        let pred = m.predict(&r.light, None);
        assert_eq!(pred.len(), ds.catalog.len());
        assert!(pred.iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    #[test]
    fn content_model_uses_heavy_feature() {
        let ds = dataset();
        let m = AccuracyModel::train(FeatureKind::HoC, &ds, &AccuracyModelConfig::tiny(), 2);
        let r = &ds.records[0];
        let h = r.heavy[&FeatureKind::HoC].clone();
        let pred = m.predict(&r.light, Some(&h));
        assert_eq!(pred.len(), ds.catalog.len());
        // Prediction must depend on the content vector: compare against a
        // mildly perturbed copy of a real feature (an arbitrary constant
        // vector could saturate the clamp on both sides).
        let other: Vec<f32> = h.iter().map(|&v| v * 0.5 + 0.01).collect();
        let pred2 = m.predict(&r.light, Some(&other));
        assert_ne!(pred, pred2);
    }

    #[test]
    fn training_reduces_error_vs_untrained() {
        let ds = dataset();
        let trained =
            AccuracyModel::train(FeatureKind::Light, &ds, &AccuracyModelConfig::tiny(), 3);
        // Compare against predicting the (clamped) raw output of a network
        // trained for zero epochs.
        let zero_cfg = AccuracyModelConfig {
            epochs: 0,
            ..AccuracyModelConfig::tiny()
        };
        let untrained = AccuracyModel::train(FeatureKind::Light, &ds, &zero_cfg, 3);
        assert!(trained.evaluate(&ds) < untrained.evaluate(&ds));
    }

    #[test]
    fn latency_model_orders_branches_sensibly() {
        let ds = dataset();
        let lm = LatencyModel::train(&ds);
        let light = &ds.records[0].light;
        let dense_heavy = ds
            .catalog
            .iter()
            .position(|b| b.tracker.is_none() && b.detector.shape == 448)
            .unwrap();
        let tracked = ds
            .catalog
            .iter()
            .position(|b| b.tracker.is_some() && b.gof_size == 20 && b.detector.shape == 448)
            .unwrap();
        let dense_ms = lm.predict_kernel_ms(dense_heavy, light, 1.0, 1.0);
        let tracked_ms = lm.predict_kernel_ms(tracked, light, 1.0, 1.0);
        assert!(
            tracked_ms < dense_ms,
            "tracked {tracked_ms} vs dense {dense_ms}"
        );
    }

    #[test]
    fn gpu_correction_scales_detector_part_only() {
        let ds = dataset();
        let lm = LatencyModel::train(&ds);
        let light = &ds.records[0].light;
        // A heavily tracked branch is mostly CPU: doubling the GPU
        // correction should change it far less than a dense branch.
        let dense = ds
            .catalog
            .iter()
            .position(|b| b.tracker.is_none() && b.detector.shape == 448)
            .unwrap();
        let tracked = ds
            .catalog
            .iter()
            .position(|b| b.tracker.is_some() && b.gof_size == 20)
            .unwrap();
        let dense_ratio = lm.predict_kernel_ms(dense, light, 2.0, 1.0)
            / lm.predict_kernel_ms(dense, light, 1.0, 1.0);
        let tracked_ratio = lm.predict_kernel_ms(tracked, light, 2.0, 1.0)
            / lm.predict_kernel_ms(tracked, light, 1.0, 1.0);
        assert!(dense_ratio > 1.9);
        assert!(tracked_ratio < dense_ratio);
    }

    #[test]
    fn latency_predictions_are_close_to_observations() {
        let ds = dataset();
        let lm = LatencyModel::train(&ds);
        let mut rel_err = 0.0;
        let mut n = 0;
        for r in &ds.records {
            for (b, (&d, &t)) in r
                .branch_det_ms
                .iter()
                .zip(r.branch_trk_ms.iter())
                .enumerate()
            {
                let obs = d + t;
                let pred = lm.predict_kernel_ms(b, &r.light, 1.0, 1.0);
                rel_err += ((pred - obs) / obs.max(1e-3)).abs();
                n += 1;
            }
        }
        let mean_rel = rel_err / n as f64;
        assert!(mean_rel < 0.35, "mean relative latency error {mean_rel}");
    }
}
