/root/repo/target/debug/deps/contention-c82812d1d27dfdb6.d: crates/serve/tests/contention.rs

/root/repo/target/debug/deps/contention-c82812d1d27dfdb6: crates/serve/tests/contention.rs

crates/serve/tests/contention.rs:
