/root/repo/target/debug/deps/litereconfig_repro-f3236c93f0ef875b.d: src/lib.rs

/root/repo/target/debug/deps/litereconfig_repro-f3236c93f0ef875b: src/lib.rs

src/lib.rs:
