//! Minimal from-scratch neural-network library for the LiteReconfig
//! reproduction.
//!
//! The paper trains a 6-layer fully-connected accuracy prediction model with
//! MSE loss and SGD (momentum 0.9, L2 regularization). This crate provides
//! exactly the pieces needed for that, plus forward-only convolutional
//! stacks used to synthesize "deep" content features (the stand-ins for the
//! paper's ResNet50 and MobileNetV2 extractors):
//!
//! - [`tensor::Matrix`]: a dense row-major `f32` matrix with the handful of
//!   BLAS-like kernels the rest of the crate needs.
//! - [`layers`]: dense (fully-connected) layers and activations with
//!   backpropagation.
//! - [`mlp::Mlp`]: a sequential multi-layer perceptron.
//! - [`optim::Sgd`]: stochastic gradient descent with momentum and weight
//!   decay.
//! - [`conv`]: forward-only 2-D convolution / pooling used by the feature
//!   extractors.
//!
//! Everything is deterministic given a seed and contains no unsafe code.
//! Host-side parallelism is opt-in via `lr-pool` (for example
//! [`tensor::Matrix::matmul_with_pool`]) and is bit-identical to the
//! serial path for any thread count: output rows are partitioned across
//! workers and every element keeps the same f32 accumulation order.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adam;
pub mod conv;
pub mod init;
pub mod layers;
pub mod linreg;
pub mod loss;
pub mod mlp;
pub mod optim;
pub mod sanitize;
pub mod tensor;

pub use mlp::{Mlp, MlpConfig};
pub use optim::Sgd;
pub use tensor::Matrix;
