//! Serving outcome: per-stream and aggregate statistics.

use lr_eval::LatencyStats;

use crate::admission::AdmissionDecision;
use crate::slo::SloClass;

/// Outcome of one offered stream.
#[derive(Debug, Clone)]
pub struct StreamReport {
    /// Stream name from the spec.
    pub name: String,
    /// Service class.
    pub class: SloClass,
    /// Admission verdict.
    pub decision: AdmissionDecision,
    /// Whether backpressure degraded the stream mid-run (on top of any
    /// admission-time degradation).
    pub degraded_midrun: bool,
    /// mAP over all processed frames (0 for rejected streams).
    pub map: f64,
    /// GoF-amortized per-frame latency samples.
    pub latency: LatencyStats,
    /// Fraction of frames over the class SLO.
    pub violation_rate: f64,
    /// Frames processed.
    pub frames: usize,
    /// GoFs executed.
    pub gofs: usize,
    /// Mean endogenous GPU slowdown observed across GoFs (1 = alone).
    pub mean_slowdown: f64,
    /// Transient device faults absorbed by the stream's pipeline.
    pub faults: usize,
    /// GoFs that ran degraded (any fallback-ladder rung fired).
    pub degraded_gofs: usize,
    /// Fault-rate evictions followed by backoff and re-admission offers.
    pub evictions: usize,
    /// True when the final re-admission offer was rejected and the
    /// stream was permanently evicted before finishing.
    pub terminal_evicted: bool,
    /// Total virtual milliseconds spent backed off (eviction → offer).
    pub recovery_ms_total: f64,
}

impl StreamReport {
    /// True unless the stream was rejected at admission.
    pub fn admitted(&self) -> bool {
        self.decision != AdmissionDecision::Rejected
    }

    /// Fraction of executed GoFs that ran degraded.
    pub fn degraded_gof_fraction(&self) -> f64 {
        if self.gofs == 0 {
            0.0
        } else {
            self.degraded_gofs as f64 / self.gofs as f64
        }
    }

    /// Mean backoff-driven recovery time per eviction (0 when never
    /// evicted).
    pub fn mean_recovery_ms(&self) -> f64 {
        if self.evictions == 0 {
            0.0
        } else {
            self.recovery_ms_total / self.evictions as f64
        }
    }
}

/// Outcome of one serving run.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Whether admission control was enabled.
    pub admission_enabled: bool,
    /// Per-stream outcomes, in offer order.
    pub streams: Vec<StreamReport>,
}

impl ServeReport {
    /// Streams offered.
    pub fn offered(&self) -> usize {
        self.streams.len()
    }

    /// Streams admitted at full quality.
    pub fn admitted(&self) -> usize {
        self.streams
            .iter()
            .filter(|s| s.decision == AdmissionDecision::Admitted)
            .count()
    }

    /// Streams admitted degraded (at admission time).
    pub fn degraded(&self) -> usize {
        self.streams
            .iter()
            .filter(|s| s.decision == AdmissionDecision::Degraded)
            .count()
    }

    /// Streams rejected.
    pub fn rejected(&self) -> usize {
        self.streams
            .iter()
            .filter(|s| s.decision == AdmissionDecision::Rejected)
            .count()
    }

    /// Pooled latency samples of all admitted streams.
    pub fn admitted_latency(&self) -> LatencyStats {
        let mut all = LatencyStats::new();
        for s in self.streams.iter().filter(|s| s.admitted()) {
            all.merge(&s.latency);
        }
        all
    }

    /// Frame-weighted SLO-violation rate over admitted streams (each
    /// frame judged against its own stream's class SLO).
    pub fn admitted_violation_rate(&self) -> f64 {
        let mut violations = 0.0;
        let mut frames = 0usize;
        for s in self.streams.iter().filter(|s| s.admitted()) {
            violations += s.violation_rate * s.frames as f64;
            frames += s.frames;
        }
        if frames == 0 {
            0.0
        } else {
            violations / frames as f64
        }
    }

    /// Mean mAP over admitted streams (unweighted; 0 when none).
    pub fn admitted_mean_map(&self) -> f64 {
        let admitted: Vec<_> = self.streams.iter().filter(|s| s.admitted()).collect();
        if admitted.is_empty() {
            return 0.0;
        }
        admitted.iter().map(|s| s.map).sum::<f64>() / admitted.len() as f64
    }

    /// Total transient faults absorbed across streams.
    pub fn total_faults(&self) -> usize {
        self.streams.iter().map(|s| s.faults).sum()
    }

    /// Total fault-rate evictions across streams.
    pub fn total_evictions(&self) -> usize {
        self.streams.iter().map(|s| s.evictions).sum()
    }

    /// Streams permanently evicted before finishing.
    pub fn terminal_evictions(&self) -> usize {
        self.streams.iter().filter(|s| s.terminal_evicted).count()
    }

    /// GoF-weighted degraded-GoF fraction over admitted streams.
    pub fn degraded_gof_fraction(&self) -> f64 {
        let mut degraded = 0usize;
        let mut gofs = 0usize;
        for s in self.streams.iter().filter(|s| s.admitted()) {
            degraded += s.degraded_gofs;
            gofs += s.gofs;
        }
        if gofs == 0 {
            0.0
        } else {
            degraded as f64 / gofs as f64
        }
    }

    /// A per-stream fault/degradation table plus an aggregate footer
    /// (separate from [`ServeReport::format_table`], which stays
    /// byte-identical for clean runs).
    pub fn format_fault_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<8} {:>6} {:>7} {:>6} {:>6} {:>8} {:>8}\n",
            "stream", "class", "faults", "dgof%", "evict", "recov", "status"
        ));
        for s in &self.streams {
            let status = if !s.admitted() {
                "reject"
            } else if s.terminal_evicted {
                "evicted"
            } else {
                "ok"
            };
            out.push_str(&format!(
                "{:<8} {:>6} {:>7} {:>6.1} {:>6} {:>8.1} {:>8}\n",
                s.name,
                s.class.label(),
                s.faults,
                s.degraded_gof_fraction() * 100.0,
                s.evictions,
                s.mean_recovery_ms(),
                status,
            ));
        }
        out.push_str(&format!(
            "faults {} | degraded GoFs {:.1}% | evictions {} (terminal {})\n",
            self.total_faults(),
            self.degraded_gof_fraction() * 100.0,
            self.total_evictions(),
            self.terminal_evictions(),
        ));
        out
    }

    /// A per-stream table plus an aggregate footer.
    pub fn format_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<8} {:>6} {:>9} {:>6} {:>7} {:>7} {:>7} {:>7} {:>6} {:>6}\n",
            "stream",
            "class",
            "decision",
            "mAP%",
            "p50ms",
            "p95ms",
            "p99ms",
            "viol%",
            "slow",
            "gofs"
        ));
        for s in &self.streams {
            let decision = match (s.decision, s.degraded_midrun) {
                (AdmissionDecision::Rejected, _) => "reject".to_string(),
                (AdmissionDecision::Degraded, _) => "degrade".to_string(),
                (AdmissionDecision::Admitted, true) => "admit*".to_string(),
                (AdmissionDecision::Admitted, false) => "admit".to_string(),
            };
            if s.admitted() {
                out.push_str(&format!(
                    "{:<8} {:>6} {:>9} {:>6.1} {:>7.1} {:>7.1} {:>7.1} {:>7.1} {:>6.2} {:>6}\n",
                    s.name,
                    s.class.label(),
                    decision,
                    s.map * 100.0,
                    s.latency.percentile(0.5),
                    s.latency.p95(),
                    s.latency.p99(),
                    s.violation_rate * 100.0,
                    s.mean_slowdown,
                    s.gofs,
                ));
            } else {
                out.push_str(&format!(
                    "{:<8} {:>6} {:>9} {:>6} {:>7} {:>7} {:>7} {:>7} {:>6} {:>6}\n",
                    s.name,
                    s.class.label(),
                    decision,
                    "-",
                    "-",
                    "-",
                    "-",
                    "-",
                    "-",
                    "-"
                ));
            }
        }
        let agg = self.admitted_latency();
        out.push_str(&format!(
            "admitted {}/{} (degraded {}, rejected {}) | agg p50 {:.1} p95 {:.1} p99 {:.1} ms | viol {:.1}% | mean mAP {:.1}%\n",
            self.admitted() + self.degraded(),
            self.offered(),
            self.degraded(),
            self.rejected(),
            agg.percentile(0.5),
            agg.p95(),
            agg.p99(),
            self.admitted_violation_rate() * 100.0,
            self.admitted_mean_map() * 100.0,
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(name: &str, decision: AdmissionDecision, samples: &[f64]) -> StreamReport {
        let mut latency = LatencyStats::new();
        for &s in samples {
            latency.record(s);
        }
        let violation_rate = latency.violation_rate(50.0);
        StreamReport {
            name: name.to_string(),
            class: SloClass::Silver,
            decision,
            degraded_midrun: false,
            map: 0.5,
            violation_rate,
            frames: samples.len(),
            gofs: samples.len().div_ceil(8),
            mean_slowdown: 1.0,
            latency,
            faults: 0,
            degraded_gofs: 0,
            evictions: 0,
            terminal_evicted: false,
            recovery_ms_total: 0.0,
        }
    }

    #[test]
    fn fault_table_reports_degradation() {
        let mut a = stream("a", AdmissionDecision::Admitted, &[10.0, 20.0]);
        a.faults = 5;
        a.degraded_gofs = 1;
        a.evictions = 2;
        a.recovery_ms_total = 1500.0;
        let mut b = stream("b", AdmissionDecision::Admitted, &[10.0]);
        b.terminal_evicted = true;
        let r = ServeReport {
            admission_enabled: true,
            streams: vec![a, b],
        };
        assert_eq!(r.total_faults(), 5);
        assert_eq!(r.total_evictions(), 2);
        assert_eq!(r.terminal_evictions(), 1);
        assert!((r.streams[0].mean_recovery_ms() - 750.0).abs() < 1e-9);
        let table = r.format_fault_table();
        assert!(table.contains("evicted"));
        assert!(table.contains("faults 5"));
    }

    #[test]
    fn aggregate_counts_and_rates() {
        let r = ServeReport {
            admission_enabled: true,
            streams: vec![
                stream("a", AdmissionDecision::Admitted, &[10.0, 60.0]),
                stream("b", AdmissionDecision::Degraded, &[20.0, 20.0]),
                stream("c", AdmissionDecision::Rejected, &[]),
            ],
        };
        assert_eq!(r.offered(), 3);
        assert_eq!(r.admitted(), 1);
        assert_eq!(r.degraded(), 1);
        assert_eq!(r.rejected(), 1);
        assert_eq!(r.admitted_latency().count(), 4);
        // 1 violation out of 4 admitted frames.
        assert!((r.admitted_violation_rate() - 0.25).abs() < 1e-9);
        let table = r.format_table();
        assert!(table.contains("reject"));
        assert!(table.contains("degrade"));
    }
}
