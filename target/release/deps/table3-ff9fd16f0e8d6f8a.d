/root/repo/target/release/deps/table3-ff9fd16f0e8d6f8a.d: crates/bench/src/bin/table3.rs

/root/repo/target/release/deps/table3-ff9fd16f0e8d6f8a: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
