/root/repo/target/debug/deps/calibrate-5452cb4a875b998e.d: crates/bench/src/bin/calibrate.rs

/root/repo/target/debug/deps/calibrate-5452cb4a875b998e: crates/bench/src/bin/calibrate.rs

crates/bench/src/bin/calibrate.rs:
