/root/repo/target/release/deps/ablations-7e447eeff23c3db5.d: crates/bench/src/bin/ablations.rs

/root/repo/target/release/deps/ablations-7e447eeff23c3db5: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
