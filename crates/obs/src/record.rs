//! Typed records carried by the trace: per-GoF decision records, raw
//! spans, and serve-round membership snapshots.

use crate::sink::SpanKind;

/// One recruited feature with its content-aware benefit score `Ben(·)`
/// at the stream's SLO (Eq. 4 in the paper).
#[derive(Clone, Debug, PartialEq)]
pub struct FeatureBen {
    /// Stable feature name (`"Light"`, `"HoC"`, `"HOG"`, ...).
    pub name: &'static str,
    /// The benefit score the greedy selector saw when it recruited the
    /// feature.
    pub ben: f32,
}

/// Why the scheduler picked what it picked: the inputs and intermediate
/// terms of `argmax_b A(b,f)` subject to
/// `L0(b,f_L) + S0 + S(f_H) + C(b0,b) <= SLO`.
///
/// Built by the scheduler only when a sink reports
/// [`enabled`](crate::ObsSink::enabled), so the `Off` mode allocates
/// nothing.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DecisionExplain {
    /// The stream's SLO in milliseconds.
    pub slo_ms: f64,
    /// The per-frame budget after headroom (`slo * headroom`).
    pub budget_ms: f64,
    /// Features recruited this GoF, in recruitment order, with their
    /// `Ben(·)` values.
    pub features: Vec<FeatureBen>,
    /// Predicted accuracy `A(b, f)` per catalog branch.
    pub branch_acc: Vec<f32>,
    /// Predicted per-frame kernel latency `L0(b, f_L)` per branch.
    pub branch_kernel_ms: Vec<f64>,
    /// Scheduler overhead `S0`: light extraction + light predictor +
    /// solver time.
    pub s0_ms: f64,
    /// Heavy-feature overhead `S(f_H)` actually charged this GoF.
    pub s_heavy_ms: f64,
    /// Predicted switch cost `C(b0, b)` to the chosen branch (zero when
    /// staying put).
    pub switch_pred_ms: f64,
    /// Per-frame share of the scheduling + switch overhead
    /// (`(S0 + S(f_H) + C) / gof_size`).
    pub amortized_ms: f64,
    /// Predicted per-frame slack against the budget:
    /// `budget - L0(chosen) - amortized`.
    pub slack_ms: f64,
    /// Index of the chosen branch in the catalog.
    pub chosen: usize,
    /// Whether any branch satisfied the constraint; `false` means the
    /// cost-only fallback picked the cheapest branch.
    pub feasible: bool,
    /// Whether the decision degraded to cost-only mode because the
    /// predictor pass faulted.
    pub cost_only: bool,
}

/// The per-GoF decision record: the scheduler's reasoning
/// ([`DecisionExplain`]) joined with the GoF's actual outcome.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DecisionRecord {
    /// Serving stream id (0 for single-stream runs).
    pub stream: u32,
    /// GoF ordinal within the stream (stamped by the sink).
    pub gof: u64,
    /// Index of the video in the stream's playlist.
    pub video_idx: usize,
    /// First frame index of this GoF within the video.
    pub start_frame: usize,
    /// Virtual time at which the decision began.
    pub t_ms: f64,
    /// The scheduler's reasoning. Empty (default) when the GoF skipped
    /// the scheduler entirely.
    pub explain: DecisionExplain,
    /// Catalog key of the branch that actually ran.
    pub chosen_key: String,
    /// Catalog key of the branch before this GoF (empty on the first).
    pub prev_key: String,
    /// Whether a reconfiguration was performed.
    pub switched: bool,
    /// Frames in this GoF.
    pub frames: usize,
    /// Actual scheduler time charged (ms).
    pub sched_ms: f64,
    /// Actual switch cost charged (ms).
    pub switch_ms: f64,
    /// Actual kernel time (detector + tracker) charged (ms).
    pub kernel_ms: f64,
    /// Fixed pipeline overhead charged (ms).
    pub overhead_ms: f64,
    /// Time wasted by faulted work that had to be redone (ms).
    pub wasted_ms: f64,
    /// Achieved mean per-frame latency (ms).
    pub per_frame_ms: f64,
    /// External GPU slowdown factor in effect (1.0 when uncontended).
    pub slowdown: f64,
    /// Faults absorbed during this GoF.
    pub faults: u32,
    /// Whether the GoF was degraded (fallback ladder, cost-only, or
    /// deadline abort).
    pub degraded: bool,
    /// Names of the degrade events that fired, in order.
    pub degrades: Vec<&'static str>,
}

/// One raw span as stored in the trace.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanRecord {
    /// Serving stream id.
    pub stream: u32,
    /// GoF ordinal the span belongs to.
    pub gof: u64,
    /// What the span measures.
    pub kind: SpanKind,
    /// Label refining the kind (feature name for heavy features).
    pub label: &'static str,
    /// Nesting depth at open time (0 = top level).
    pub depth: usize,
    /// Virtual open time (ms).
    pub t0: f64,
    /// Virtual close time (ms).
    pub t1: f64,
}

impl SpanRecord {
    /// Span duration in virtual milliseconds.
    pub fn dur_ms(&self) -> f64 {
        self.t1 - self.t0
    }
}

/// One serve dispatch round: which streams were stepped together.
#[derive(Clone, Debug, PartialEq)]
pub struct RoundRecord {
    /// Round ordinal.
    pub idx: u64,
    /// The virtual-time threshold that defined membership.
    pub threshold_ms: f64,
    /// Stream ids stepped this round, in dispatch order.
    pub members: Vec<u32>,
}

/// Everything a trace can carry, in emission order.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEvent {
    /// A closed span.
    Span(SpanRecord),
    /// A completed per-GoF decision record (boxed: it dwarfs the other
    /// variants).
    Decision(Box<DecisionRecord>),
    /// A serve dispatch round snapshot.
    Round(RoundRecord),
}

impl TraceEvent {
    /// Stamp the owning stream id (used when per-stream buffers are
    /// merged into the global trace).
    pub fn set_stream(&mut self, stream: u32) {
        match self {
            TraceEvent::Span(s) => s.stream = stream,
            TraceEvent::Decision(d) => d.stream = stream,
            TraceEvent::Round(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_duration_is_t1_minus_t0() {
        let s = SpanRecord {
            stream: 0,
            gof: 3,
            kind: SpanKind::Detect,
            label: "",
            depth: 1,
            t0: 10.0,
            t1: 14.5,
        };
        assert!((s.dur_ms() - 4.5).abs() < 1e-12);
    }

    #[test]
    fn set_stream_stamps_spans_and_decisions() {
        let mut ev = TraceEvent::Span(SpanRecord {
            stream: 0,
            gof: 0,
            kind: SpanKind::Track,
            label: "",
            depth: 0,
            t0: 0.0,
            t1: 1.0,
        });
        ev.set_stream(7);
        match &ev {
            TraceEvent::Span(s) => assert_eq!(s.stream, 7),
            _ => unreachable!(),
        }
        let mut ev = TraceEvent::Decision(Box::default());
        ev.set_stream(9);
        match &ev {
            TraceEvent::Decision(d) => assert_eq!(d.stream, 9),
            _ => unreachable!(),
        }
    }
}
