//! Figure 4: branch coverage — the number of distinct execution branches
//! each protocol invokes — for the four LiteReconfig variants and the
//! baselines.
//!
//! Usage: `cargo run --release -p lr-bench --bin figure4 [small|paper]`

use std::sync::Arc;

use litereconfig::protocols::AdaptiveProtocol;
use litereconfig::TrainedScheduler;
use lr_bench::{scale_from_args, Suite};
use lr_device::DeviceKind;
use lr_eval::TextTable;
use lr_kernels::DetectorFamily;

fn main() {
    let mut suite = Suite::build(scale_from_args());
    let ssd = suite.train_one_stage(DetectorFamily::Ssd);
    let yolo = suite.train_one_stage(DetectorFamily::Yolo);

    let slos = [33.3, 50.0, 100.0];
    let mut table = TextTable::new(&[
        "Protocol",
        "Branches @33.3ms",
        "Branches @50ms",
        "Branches @100ms",
        "Switches @33.3ms",
    ]);

    // One cell per (protocol, SLO); fan out and regroup by protocol from
    // the order-preserved results.
    let protocols = AdaptiveProtocol::all();
    let cells: Vec<(usize, usize)> = (0..protocols.len())
        .flat_map(|pi| (0..slos.len()).map(move |li| (pi, li)))
        .collect();
    let raster_size = suite.svc.raster_size();
    let pool = lr_pool::Pool::from_env();
    let measured: Vec<(usize, usize)> = pool.par_map_init(
        &cells,
        || litereconfig::FeatureService::with_raster_size(raster_size),
        |svc, _, &(pi, li)| {
            let protocol = protocols[pi];
            let trained: Arc<TrainedScheduler> = match protocol.family() {
                DetectorFamily::Ssd => ssd.clone(),
                DetectorFamily::Yolo => yolo.clone(),
                _ => suite.frcnn.clone(),
            };
            let slo = slos[li];
            let r = protocol.run(
                &suite.val_videos,
                trained,
                DeviceKind::JetsonTx2,
                0.0,
                slo,
                5000 + pi as u64 * 10 + li as u64,
                svc,
            );
            eprintln!(
                "[figure4] {} @{slo}: {} branches, {} switches",
                protocol.name(),
                r.branches_used.len(),
                r.switches.len()
            );
            (r.branches_used.len(), r.switches.len())
        },
    );
    for (pi, protocol) in protocols.iter().enumerate() {
        let per_slo = &measured[pi * slos.len()..(pi + 1) * slos.len()];
        table.add_row_owned(vec![
            protocol.name().to_string(),
            per_slo[0].0.to_string(),
            per_slo[1].0.to_string(),
            per_slo[2].0.to_string(),
            per_slo[0].1.to_string(),
        ]);
    }
    println!("\nFigure 4 data: branch coverage per protocol (TX2, no contention)\n");
    println!("{}", table.render());
    println!(
        "Expected shape: heavy-feature variants explore more branches than \
         MinCost; the full system sits between, trading exploration against \
         switching cost."
    );
}
