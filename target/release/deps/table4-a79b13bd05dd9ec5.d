/root/repo/target/release/deps/table4-a79b13bd05dd9ec5.d: crates/bench/src/bin/table4.rs

/root/repo/target/release/deps/table4-a79b13bd05dd9ec5: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
