/root/repo/target/release/examples/ar_headset-5591ae4670f2949d.d: examples/ar_headset.rs

/root/repo/target/release/examples/ar_headset-5591ae4670f2949d: examples/ar_headset.rs

examples/ar_headset.rs:
