//! Histogram of Oriented Gradients (HOG), `f_H^2`.
//!
//! A faithful implementation of Dalal & Triggs (CVPR'05) over the
//! luminance of the raster: central-difference gradients, 9 unsigned
//! orientation bins with linear interpolation, 8x8-pixel cells, 2x2-cell
//! blocks with stride 1 and L2 normalization. On the default 64x64 raster
//! this yields `7 x 7 x 2 x 2 x 9 = 1764` dimensions (the paper's 5400
//! comes from its larger input; the descriptor is the same).

use lr_video::RgbFrame;

/// Pixels per cell edge.
pub const CELL: usize = 8;
/// Orientation bins (unsigned, 0..180 degrees).
pub const ORIENTATIONS: usize = 9;
/// Cells per block edge.
pub const BLOCK: usize = 2;

/// HOG dimensionality for a `size x size` image.
pub fn dim_for(size: usize) -> usize {
    let cells = size / CELL;
    if cells < BLOCK {
        return 0;
    }
    let blocks = cells - BLOCK + 1;
    blocks * blocks * BLOCK * BLOCK * ORIENTATIONS
}

/// Extracts the HOG descriptor from a frame.
///
/// # Panics
///
/// Panics if the frame is not square or smaller than `BLOCK * CELL`.
pub fn extract(frame: &RgbFrame) -> Vec<f32> {
    let size = frame.width();
    assert_eq!(size, frame.height(), "HOG expects a square raster");
    assert!(
        size >= BLOCK * CELL,
        "raster too small for HOG: {size} < {}",
        BLOCK * CELL
    );
    let lum = frame.luminance();
    let cells_per_edge = size / CELL;

    // Per-cell orientation histograms.
    let mut cell_hists = vec![[0.0f32; ORIENTATIONS]; cells_per_edge * cells_per_edge];
    let px = |x: usize, y: usize| lum[y * size + x];
    for y in 0..size {
        for x in 0..size {
            // Central differences with clamped borders.
            let gx = px((x + 1).min(size - 1), y) - px(x.saturating_sub(1), y);
            let gy = px(x, (y + 1).min(size - 1)) - px(x, y.saturating_sub(1));
            let mag = (gx * gx + gy * gy).sqrt();
            if mag == 0.0 {
                continue;
            }
            // Unsigned orientation in [0, 180).
            let mut angle = gy.atan2(gx).to_degrees();
            if angle < 0.0 {
                angle += 180.0;
            }
            if angle >= 180.0 {
                angle -= 180.0;
            }
            let bin_width = 180.0 / ORIENTATIONS as f32;
            let pos = angle / bin_width - 0.5;
            let lo = pos.floor();
            let frac = pos - lo;
            let bin_lo = ((lo as i32).rem_euclid(ORIENTATIONS as i32)) as usize;
            let bin_hi = (bin_lo + 1) % ORIENTATIONS;
            let cx = (x / CELL).min(cells_per_edge - 1);
            let cy = (y / CELL).min(cells_per_edge - 1);
            let hist = &mut cell_hists[cy * cells_per_edge + cx];
            hist[bin_lo] += mag * (1.0 - frac);
            hist[bin_hi] += mag * frac;
        }
    }

    // Block normalization: 2x2 cells, stride 1, L2 norm.
    let blocks_per_edge = cells_per_edge - BLOCK + 1;
    let mut out = Vec::with_capacity(dim_for(size));
    for by in 0..blocks_per_edge {
        for bx in 0..blocks_per_edge {
            let mut block = Vec::with_capacity(BLOCK * BLOCK * ORIENTATIONS);
            for dy in 0..BLOCK {
                for dx in 0..BLOCK {
                    let cell = &cell_hists[(by + dy) * cells_per_edge + (bx + dx)];
                    block.extend_from_slice(cell);
                }
            }
            let norm = (block.iter().map(|v| v * v).sum::<f32>() + 1e-6).sqrt();
            for v in &mut block {
                *v /= norm;
            }
            out.extend_from_slice(&block);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lr_video::raster::rasterize;
    use lr_video::{Video, VideoSpec};

    fn frame() -> RgbFrame {
        let v = Video::generate(VideoSpec {
            id: 0,
            seed: 41,
            width: 640.0,
            height: 480.0,
            num_frames: 5,
        });
        rasterize(&v.frames[2], &v.style, 64)
    }

    #[test]
    fn dimensionality_matches_formula() {
        assert_eq!(dim_for(64), 1764);
        assert_eq!(extract(&frame()).len(), 1764);
    }

    #[test]
    fn blocks_are_l2_normalized() {
        let h = extract(&frame());
        let block_len = BLOCK * BLOCK * ORIENTATIONS;
        for (i, block) in h.chunks(block_len).enumerate() {
            let norm: f32 = block.iter().map(|v| v * v).sum::<f32>().sqrt();
            assert!(norm <= 1.0 + 1e-4, "block {i} norm {norm} > 1");
        }
    }

    #[test]
    fn flat_image_yields_zero_descriptor() {
        let img = RgbFrame::new(64, 64);
        let h = extract(&img);
        assert!(h.iter().all(|&v| v.abs() < 1e-5));
    }

    #[test]
    fn vertical_edge_fires_horizontal_gradient_bins() {
        // Left half black, right half white: gradients point along x
        // (angle 0), which lands in the first/last orientation bins.
        let mut img = RgbFrame::new(64, 64);
        for y in 0..64 {
            for x in 32..64 {
                for c in 0..3 {
                    img.set(c, x, y, 1.0);
                }
            }
        }
        let h = extract(&img);
        let block_len = BLOCK * BLOCK * ORIENTATIONS;
        // Sum mass per orientation bin across all cells.
        let mut per_bin = [0.0f32; ORIENTATIONS];
        for block in h.chunks(block_len) {
            for cell in block.chunks(ORIENTATIONS) {
                for (b, &v) in cell.iter().enumerate() {
                    per_bin[b] += v;
                }
            }
        }
        let max_bin = per_bin
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert!(
            max_bin == 0 || max_bin == ORIENTATIONS - 1,
            "edge energy concentrated in bin {max_bin}: {per_bin:?}"
        );
    }

    #[test]
    fn extraction_is_deterministic() {
        let f = frame();
        assert_eq!(extract(&f), extract(&f));
    }

    #[test]
    #[should_panic(expected = "square raster")]
    fn non_square_input_panics() {
        let img = RgbFrame::new(64, 32);
        let _ = extract(&img);
    }
}
