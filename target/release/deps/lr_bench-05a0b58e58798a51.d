/root/repo/target/release/deps/lr_bench-05a0b58e58798a51.d: crates/bench/src/lib.rs crates/bench/src/suite.rs

/root/repo/target/release/deps/liblr_bench-05a0b58e58798a51.rlib: crates/bench/src/lib.rs crates/bench/src/suite.rs

/root/repo/target/release/deps/liblr_bench-05a0b58e58798a51.rmeta: crates/bench/src/lib.rs crates/bench/src/suite.rs

crates/bench/src/lib.rs:
crates/bench/src/suite.rs:
