//! Feature identities, dimensions, and the Table 1 cost table.

/// The features the scheduler can recruit (paper Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FeatureKind {
    /// Light-weight features `f_L`: height, width, number of objects,
    /// averaged object size. Always available "for free".
    Light,
    /// Histogram of Colors over the RGB channels (`f_H^1`).
    HoC,
    /// Histogram of Oriented Gradients (`f_H^2`).
    Hog,
    /// Pooled ResNet50 backbone features from the MBEK's detector
    /// (`f_H^3`).
    ResNet50,
    /// Class Predictions on Proposals from the Faster R-CNN detector
    /// (`f_H^4`).
    CPoP,
    /// External MobileNetV2 embedding (`f_H^5`).
    MobileNetV2,
}

/// All features in Table 1 order.
pub const ALL_FEATURE_KINDS: [FeatureKind; 6] = [
    FeatureKind::Light,
    FeatureKind::HoC,
    FeatureKind::Hog,
    FeatureKind::ResNet50,
    FeatureKind::CPoP,
    FeatureKind::MobileNetV2,
];

/// The heavy-weight candidates `F_H` (everything but Light).
pub const HEAVY_FEATURE_KINDS: [FeatureKind; 5] = [
    FeatureKind::HoC,
    FeatureKind::Hog,
    FeatureKind::ResNet50,
    FeatureKind::CPoP,
    FeatureKind::MobileNetV2,
];

/// Cost-table entry for one feature (all times are TX2 milliseconds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FeatureCost {
    /// Which feature this is.
    pub kind: FeatureKind,
    /// Feature dimensionality in this reproduction.
    pub dim: usize,
    /// Standalone extraction cost — running the extractor on a frame from
    /// scratch (Table 1, "Extract").
    pub extract_ms: f64,
    /// Marginal extraction cost when the MBEK's Faster R-CNN just ran on
    /// the same frame and the feature is a byproduct (pooling/copy only).
    /// Equal to `extract_ms` for external features.
    pub marginal_extract_ms: f64,
    /// Cost of querying the per-feature accuracy prediction model
    /// (Table 1, "Predict").
    pub predict_ms: f64,
    /// True if extraction runs on the GPU (subject to contention).
    pub extract_on_gpu: bool,
}

impl FeatureKind {
    /// Short display name as used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            FeatureKind::Light => "Light",
            FeatureKind::HoC => "HoC",
            FeatureKind::Hog => "HOG",
            FeatureKind::ResNet50 => "ResNet50",
            FeatureKind::CPoP => "CPoP",
            FeatureKind::MobileNetV2 => "MobileNetV2",
        }
    }

    /// True for the heavy-weight content features `f_H`.
    pub fn is_heavy(self) -> bool {
        self != FeatureKind::Light
    }

    /// True if the feature is produced by the MBEK's Faster R-CNN as a
    /// byproduct (so its marginal extraction cost is small and it is only
    /// available when the decision frame runs the detector).
    pub fn from_detector(self) -> bool {
        matches!(self, FeatureKind::ResNet50 | FeatureKind::CPoP)
    }

    /// The Table 1 cost entry, calibrated to the paper's TX2 numbers.
    ///
    /// The HOG dimensionality is 1764 rather than the paper's 5400 because
    /// our raster is 64x64 (the paper extracts from larger frames); its
    /// *cost* is still charged at the paper's 25.32 ms.
    pub fn cost(self) -> FeatureCost {
        match self {
            FeatureKind::Light => FeatureCost {
                kind: self,
                dim: 4,
                extract_ms: 0.12,
                marginal_extract_ms: 0.12,
                predict_ms: 3.71,
                extract_on_gpu: false,
            },
            FeatureKind::HoC => FeatureCost {
                kind: self,
                dim: 768,
                extract_ms: 14.14,
                marginal_extract_ms: 14.14,
                predict_ms: 4.94,
                extract_on_gpu: false,
            },
            FeatureKind::Hog => FeatureCost {
                kind: self,
                dim: 1764,
                extract_ms: 25.32,
                marginal_extract_ms: 25.32,
                predict_ms: 4.93,
                extract_on_gpu: false,
            },
            FeatureKind::ResNet50 => FeatureCost {
                kind: self,
                dim: 1024,
                extract_ms: 26.96,
                // Average pooling an already-computed backbone map.
                marginal_extract_ms: 2.3,
                predict_ms: 6.07,
                extract_on_gpu: true,
            },
            FeatureKind::CPoP => FeatureCost {
                kind: self,
                dim: 31,
                extract_ms: 3.62,
                // Pooling logits the detector head already produced.
                marginal_extract_ms: 0.8,
                predict_ms: 4.84,
                extract_on_gpu: true,
            },
            FeatureKind::MobileNetV2 => FeatureCost {
                kind: self,
                dim: 1280,
                extract_ms: 153.96,
                marginal_extract_ms: 153.96,
                predict_ms: 9.33,
                extract_on_gpu: true,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_costs_match_paper() {
        assert_eq!(FeatureKind::Light.cost().extract_ms, 0.12);
        assert_eq!(FeatureKind::Light.cost().predict_ms, 3.71);
        assert_eq!(FeatureKind::HoC.cost().extract_ms, 14.14);
        assert_eq!(FeatureKind::Hog.cost().extract_ms, 25.32);
        assert_eq!(FeatureKind::ResNet50.cost().extract_ms, 26.96);
        assert_eq!(FeatureKind::CPoP.cost().extract_ms, 3.62);
        assert_eq!(FeatureKind::MobileNetV2.cost().extract_ms, 153.96);
        assert_eq!(FeatureKind::MobileNetV2.cost().predict_ms, 9.33);
    }

    #[test]
    fn table1_dims_match_except_hog() {
        assert_eq!(FeatureKind::Light.cost().dim, 4);
        assert_eq!(FeatureKind::HoC.cost().dim, 768);
        assert_eq!(FeatureKind::ResNet50.cost().dim, 1024);
        assert_eq!(FeatureKind::CPoP.cost().dim, 31);
        assert_eq!(FeatureKind::MobileNetV2.cost().dim, 1280);
        // HOG scales with our 64x64 raster.
        assert_eq!(FeatureKind::Hog.cost().dim, 1764);
    }

    #[test]
    fn detector_features_have_cheap_marginal_cost() {
        for kind in ALL_FEATURE_KINDS {
            let c = kind.cost();
            if kind.from_detector() {
                assert!(c.marginal_extract_ms < c.extract_ms, "{:?}", kind);
            } else {
                assert_eq!(c.marginal_extract_ms, c.extract_ms, "{:?}", kind);
            }
        }
    }

    #[test]
    fn gpu_placement_matches_paper() {
        // "ResNet50, CPoP, MobileNetV2 feature extractors ... use the GPU;
        // the others are mainly on the CPU."
        assert!(!FeatureKind::Light.cost().extract_on_gpu);
        assert!(!FeatureKind::HoC.cost().extract_on_gpu);
        assert!(!FeatureKind::Hog.cost().extract_on_gpu);
        assert!(FeatureKind::ResNet50.cost().extract_on_gpu);
        assert!(FeatureKind::CPoP.cost().extract_on_gpu);
        assert!(FeatureKind::MobileNetV2.cost().extract_on_gpu);
    }

    #[test]
    fn heavy_set_excludes_light() {
        assert!(HEAVY_FEATURE_KINDS.iter().all(|k| k.is_heavy()));
        assert!(!FeatureKind::Light.is_heavy());
        assert_eq!(ALL_FEATURE_KINDS.len(), HEAVY_FEATURE_KINDS.len() + 1);
    }
}
