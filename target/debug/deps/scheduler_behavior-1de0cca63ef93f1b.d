/root/repo/target/debug/deps/scheduler_behavior-1de0cca63ef93f1b.d: tests/scheduler_behavior.rs Cargo.toml

/root/repo/target/debug/deps/libscheduler_behavior-1de0cca63ef93f1b.rmeta: tests/scheduler_behavior.rs Cargo.toml

tests/scheduler_behavior.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
