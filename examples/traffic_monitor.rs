//! Traffic monitoring: long-running analytics where *content* shifts
//! between calm highway stretches (slow, sparse) and busy intersections
//! (fast, cluttered) — the content-regime structure the content-aware
//! accuracy model exploits.
//!
//! This example inspects the scheduler's behavior per content regime:
//! which branches it selects when the scene is calm vs busy, and which
//! content features the cost-benefit analyzer recruits.
//!
//! ```sh
//! cargo run --release --example traffic_monitor
//! ```

use std::collections::BTreeMap;
use std::sync::Arc;

use litereconfig::offline::{profile_videos, OfflineConfig};
use litereconfig::pipeline::{run_adaptive, RunConfig};
use litereconfig::trainer::{train_scheduler, TrainConfig};
use litereconfig::{FeatureService, Policy};
use lr_device::DeviceKind;
use lr_kernels::branch::small_catalog;
use lr_kernels::DetectorFamily;
use lr_video::{Dataset, DatasetConfig, Split};

fn main() {
    let dataset = Dataset::new(DatasetConfig {
        train_vision: 0,
        train_scheduler: 5,
        validation: 3,
        id_offset: 10_000,
    });
    let train_videos = dataset.videos(Split::TrainScheduler);
    let feed_videos = dataset.videos(Split::Validation);

    let mut svc = FeatureService::new();
    let offline_cfg = OfflineConfig {
        snippet_len: 50,
        ..OfflineConfig::paper(small_catalog(), DetectorFamily::FasterRcnn)
    };
    let offline = profile_videos(&train_videos, &offline_cfg, &mut svc);
    let trained = Arc::new(train_scheduler(
        &offline,
        DetectorFamily::FasterRcnn,
        &TrainConfig::tiny(),
    ));

    // Show the regime composition of the feeds.
    println!("=== traffic feeds: content regimes over time ===");
    for v in &feed_videos {
        let mut per_regime: BTreeMap<usize, usize> = BTreeMap::new();
        for f in &v.frames {
            *per_regime.entry(f.regime.index()).or_insert(0) += 1;
        }
        let summary: Vec<String> = {
            let mut entries: Vec<_> = per_regime.into_iter().collect();
            entries.sort();
            entries
                .into_iter()
                .map(|(r, n)| format!("regime{r}:{n}f"))
                .collect()
        };
        println!("  feed {}: {}", v.spec.id, summary.join(" "));
    }

    // Run the full scheduler at 10 fps (a typical monitoring SLO) and
    // report the branch mix it settled on.
    let slo_ms = 100.0;
    let cfg = RunConfig::clean(DeviceKind::JetsonTx2, 0.0, slo_ms, 31);
    let r = run_adaptive(
        &feed_videos,
        trained.clone(),
        Policy::CostBenefit,
        &cfg,
        &mut svc,
    );
    println!("\n=== LiteReconfig @ {slo_ms} ms (TX2) ===");
    println!("mAP {:.1}%  P95 {:.1} ms", r.map_pct(), r.latency.p95());
    println!("branch usage (decisions per branch):");
    let mut counts: Vec<(u64, usize)> = r.branch_decisions.into_iter().collect();
    counts.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
    for (key, count) in counts.iter().take(8) {
        if let Some(b) = trained.catalog.iter().find(|b| b.key() == *key) {
            println!("  {:>5} x {}", count, b.name());
        }
    }
    println!(
        "\nThe mix of short-GoF branches (busy intersections) and long-GoF \
         branches (calm stretches) is the content-awareness at work; a \
         static configuration would have to pick one and lose either \
         accuracy or latency headroom."
    );
}
