/root/repo/target/debug/deps/figure3-a12fbdbada4d7470.d: crates/bench/src/bin/figure3.rs

/root/repo/target/debug/deps/figure3-a12fbdbada4d7470: crates/bench/src/bin/figure3.rs

crates/bench/src/bin/figure3.rs:
