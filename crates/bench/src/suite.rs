//! Experiment suite: datasets, profiling, and trained schedulers shared
//! by all table/figure binaries.

use std::sync::Arc;
use std::time::Instant;

use litereconfig::offline::{profile_videos, OfflineConfig, OfflineDataset};
use litereconfig::trainer::{train_scheduler, TrainConfig};
use litereconfig::{FeatureService, TrainedScheduler};
use lr_kernels::branch::{default_catalog, one_stage_catalog, small_catalog};
use lr_kernels::DetectorFamily;
use lr_video::{Dataset, DatasetConfig, Split, Video};

/// How big an experiment to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExperimentScale {
    /// Seconds-scale smoke test.
    Small,
    /// The configuration recorded in `EXPERIMENTS.md`.
    Paper,
}

impl ExperimentScale {
    /// Dataset split sizes for this scale.
    pub fn dataset_config(self) -> DatasetConfig {
        match self {
            ExperimentScale::Small => DatasetConfig {
                train_vision: 2,
                train_scheduler: 3,
                validation: 3,
                id_offset: 0,
            },
            ExperimentScale::Paper => DatasetConfig {
                train_vision: 45,
                train_scheduler: 24,
                validation: 16,
                id_offset: 0,
            },
        }
    }

    /// Snippet length N.
    pub fn snippet_len(self) -> usize {
        match self {
            ExperimentScale::Small => 50,
            ExperimentScale::Paper => 100,
        }
    }

    /// Branch catalog for the Faster R-CNN MBEK.
    pub fn frcnn_catalog(self) -> Vec<lr_kernels::Branch> {
        match self {
            ExperimentScale::Small => small_catalog(),
            ExperimentScale::Paper => default_catalog(),
        }
    }

    /// Branch catalog for the one-stage baselines.
    pub fn one_stage_catalog(self) -> Vec<lr_kernels::Branch> {
        match self {
            ExperimentScale::Small => small_catalog(),
            ExperimentScale::Paper => one_stage_catalog(),
        }
    }

    /// Scheduler training configuration.
    pub fn train_config(self) -> TrainConfig {
        match self {
            ExperimentScale::Small => TrainConfig {
                heavy_kinds: lr_features::HEAVY_FEATURE_KINDS.to_vec(),
                ..TrainConfig::tiny()
            },
            ExperimentScale::Paper => TrainConfig::fast(),
        }
    }
}

/// Everything the experiment binaries need, built once.
pub struct Suite {
    /// The scale this suite was built at.
    pub scale: ExperimentScale,
    /// Validation videos (never seen by training).
    pub val_videos: Vec<Video>,
    /// Shared feature service (rasters cached across runs).
    pub svc: FeatureService,
    /// Offline dataset for the Faster R-CNN MBEK.
    pub frcnn_dataset: OfflineDataset,
    /// Trained scheduler for the Faster R-CNN MBEK (all content models).
    pub frcnn: Arc<TrainedScheduler>,
}

impl Suite {
    /// Builds datasets, profiles the Faster R-CNN MBEK, and trains its
    /// scheduler. Baseline-family schedulers are built on demand via
    /// [`Suite::train_one_stage`].
    pub fn build(scale: ExperimentScale) -> Self {
        let t0 = Instant::now();
        let dataset = Dataset::new(scale.dataset_config());
        eprintln!(
            "[suite] generating {} scheduler-training and {} validation videos...",
            dataset.len(Split::TrainScheduler),
            dataset.len(Split::Validation)
        );
        let train_videos = dataset.videos(Split::TrainScheduler);
        let val_videos = dataset.videos(Split::Validation);
        let mut svc = FeatureService::new();

        eprintln!(
            "[suite] profiling Faster R-CNN MBEK ({} branches)...",
            scale.frcnn_catalog().len()
        );
        let cfg = OfflineConfig {
            snippet_len: scale.snippet_len(),
            ..OfflineConfig::paper(scale.frcnn_catalog(), DetectorFamily::FasterRcnn)
        };
        let frcnn_dataset = profile_videos(&train_videos, &cfg, &mut svc);
        eprintln!(
            "[suite] {} snippets profiled in {:.1}s; training scheduler...",
            frcnn_dataset.len(),
            t0.elapsed().as_secs_f64()
        );
        let frcnn = Arc::new(train_scheduler(
            &frcnn_dataset,
            DetectorFamily::FasterRcnn,
            &scale.train_config(),
        ));
        eprintln!("[suite] ready in {:.1}s", t0.elapsed().as_secs_f64());
        Self {
            scale,
            val_videos,
            svc,
            frcnn_dataset,
            frcnn,
        }
    }

    /// Profiles and trains a content-agnostic scheduler for a one-stage
    /// baseline family (SSD+, YOLO+).
    pub fn train_one_stage(&mut self, family: DetectorFamily) -> Arc<TrainedScheduler> {
        let dataset = Dataset::new(self.scale.dataset_config());
        let train_videos = dataset.videos(Split::TrainScheduler);
        eprintln!("[suite] profiling {} MBEK...", family.name());
        let cfg = OfflineConfig {
            snippet_len: self.scale.snippet_len(),
            ..OfflineConfig::paper(self.scale.one_stage_catalog(), family)
        };
        let ds = profile_videos(&train_videos, &cfg, &mut self.svc);
        Arc::new(train_scheduler(
            &ds,
            family,
            &self.scale.train_config().light_only(),
        ))
    }
}
