//! Table 1: the feature cost table.
//!
//! Prints each feature's dimensionality and its extraction/prediction
//! cost as charged to the virtual TX2, and verifies the charged costs
//! empirically by timing virtual charges through the device simulator.
//!
//! Usage: `cargo run --release -p lr-bench --bin table1 [small|paper]`

use lr_device::{DeviceKind, DeviceSim, OpUnit};
use lr_eval::TextTable;
use lr_features::{FeatureKind, ALL_FEATURE_KINDS};
use lr_video::{Video, VideoSpec};

fn main() {
    let mut table = TextTable::new(&[
        "Feature",
        "Dim (ours)",
        "Dim (paper)",
        "Extract (ms)",
        "Predict (ms)",
        "Unit",
        "Marginal extract (ms)",
    ]);
    let paper_dims = [4usize, 768, 5400, 1024, 31, 1280];
    for (kind, paper_dim) in ALL_FEATURE_KINDS.into_iter().zip(paper_dims) {
        let c = kind.cost();
        table.add_row_owned(vec![
            kind.name().to_string(),
            c.dim.to_string(),
            paper_dim.to_string(),
            format!("{:.2}", c.extract_ms),
            format!("{:.2}", c.predict_ms),
            if c.extract_on_gpu { "GPU" } else { "CPU" }.to_string(),
            format!("{:.2}", c.marginal_extract_ms),
        ]);
    }
    println!("Table 1: features and their costs (TX2-calibrated)\n");
    println!("{}", table.render());

    // Empirical check: mean charged cost over 200 virtual extractions
    // (includes device noise) should track the table.
    let mut dev = DeviceSim::new(DeviceKind::JetsonTx2, 0.0, 1);
    let mut check = TextTable::new(&["Feature", "Table extract (ms)", "Charged mean (ms)"]);
    for kind in ALL_FEATURE_KINDS {
        let c = kind.cost();
        let unit = if c.extract_on_gpu {
            OpUnit::Gpu
        } else {
            OpUnit::Cpu
        };
        let mean: f64 = (0..200)
            .map(|_| dev.charge(unit, c.extract_ms))
            .sum::<f64>()
            / 200.0;
        check.add_row_owned(vec![
            kind.name().to_string(),
            format!("{:.2}", c.extract_ms),
            format!("{:.2}", mean),
        ]);
    }
    println!("Charged-cost verification (200 samples, idle TX2):\n");
    println!("{}", check.render());

    // Wall-clock of the real Rust implementations (informational only;
    // virtual time is what the experiments charge).
    let v = Video::generate(VideoSpec {
        id: 0,
        seed: 42,
        width: 1280.0,
        height: 720.0,
        num_frames: 8,
    });
    let mut svc = litereconfig::FeatureService::new();
    let logits = vec![vec![0.0f32; 31]; 8];
    let mut wall = TextTable::new(&["Feature", "Rust wall-clock (ms/frame)"]);
    for kind in ALL_FEATURE_KINDS {
        if kind == FeatureKind::Light {
            continue;
        }
        let t0 = std::time::Instant::now();
        let mut n = 0;
        for i in 0..8 {
            if svc.extract_heavy(kind, &v, i, Some(&logits)).is_some() {
                n += 1;
            }
        }
        let ms = t0.elapsed().as_secs_f64() * 1000.0 / n.max(1) as f64;
        wall.add_row_owned(vec![kind.name().to_string(), format!("{ms:.2}")]);
    }
    println!("Reference: wall-clock of this reproduction's extractors:\n");
    println!("{}", wall.render());
}
