//! Experiment harness: shared setup for regenerating every table and
//! figure of the paper.
//!
//! Each table/figure has a binary in `src/bin/` (see `DESIGN.md` for the
//! index); this library holds the common machinery: dataset construction,
//! offline profiling, scheduler training, and run bookkeeping.
//!
//! Binaries accept an optional scale argument (`small` | `paper`,
//! default `paper`): `small` completes in seconds for smoke-testing,
//! `paper` runs the full configuration used in `EXPERIMENTS.md`. Always
//! build with `--release`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod suite;

pub use suite::{ExperimentScale, Suite};

/// Parses the scale from command-line args (position 1), defaulting to
/// [`ExperimentScale::Paper`].
pub fn scale_from_args() -> ExperimentScale {
    match std::env::args().nth(1).as_deref() {
        Some("small") => ExperimentScale::Small,
        Some("paper") | None => ExperimentScale::Paper,
        Some(other) => {
            eprintln!("unknown scale '{other}', expected 'small' or 'paper'");
            std::process::exit(2);
        }
    }
}

/// Formats an mAP-or-failure cell the way Table 2 does: the accuracy when
/// the P95 latency met the SLO, "F" otherwise.
pub fn map_cell(map_pct: f64, p95_ms: f64, slo_ms: f64) -> String {
    if p95_ms <= slo_ms {
        format!("{map_pct:.1}")
    } else {
        "F".to_string()
    }
}
