//! Fully-connected layers and activations with backpropagation.

use rand::Rng;

use crate::init;
use crate::tensor::Matrix;

/// Activation applied after a dense layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Identity (no nonlinearity) — used on output layers for regression.
    Linear,
    /// Rectified linear unit, the activation the paper uses throughout.
    Relu,
    /// Leaky ReLU (slope 0.01 for negative inputs) — used by the accuracy
    /// models to avoid dead-unit collapse on small training sets.
    LeakyRelu,
    /// Hyperbolic tangent, used by some feature stacks.
    Tanh,
}

impl Activation {
    /// Applies the activation element-wise.
    pub fn forward(self, x: &Matrix) -> Matrix {
        let mut out = x.clone();
        self.apply_in_place(&mut out);
        out
    }

    /// Applies the activation element-wise, in place. Bit-identical to
    /// [`Activation::forward`] without the allocation.
    pub fn apply_in_place(self, x: &mut Matrix) {
        match self {
            Activation::Linear => {}
            Activation::Relu => {
                for v in x.as_mut_slice() {
                    *v = v.max(0.0);
                }
            }
            Activation::LeakyRelu => {
                for v in x.as_mut_slice() {
                    if *v <= 0.0 {
                        *v *= 0.01;
                    }
                }
            }
            Activation::Tanh => {
                for v in x.as_mut_slice() {
                    *v = v.tanh();
                }
            }
        }
    }

    /// Derivative of the activation expressed in terms of the
    /// *post-activation* output `y`.
    pub fn derivative_from_output(self, y: &Matrix) -> Matrix {
        match self {
            Activation::Linear => Matrix::full(y.rows(), y.cols(), 1.0),
            Activation::Relu => y.map(|v| if v > 0.0 { 1.0 } else { 0.0 }),
            Activation::LeakyRelu => y.map(|v| if v > 0.0 { 1.0 } else { 0.01 }),
            Activation::Tanh => y.map(|v| 1.0 - v * v),
        }
    }
}

/// A dense layer `y = act(x W + b)` with cached activations for backprop.
#[derive(Debug, Clone)]
pub struct Dense {
    weights: Matrix,
    bias: Matrix,
    activation: Activation,
    // Caches from the most recent forward pass, used by `backward`.
    last_input: Option<Matrix>,
    last_output: Option<Matrix>,
    // Gradients from the most recent backward pass.
    grad_weights: Option<Matrix>,
    grad_bias: Option<Matrix>,
}

impl Dense {
    /// Creates a dense layer with He initialization (ReLU/linear) or Xavier
    /// (tanh) and zero bias.
    pub fn new(in_dim: usize, out_dim: usize, activation: Activation, rng: &mut impl Rng) -> Self {
        let weights = match activation {
            Activation::Tanh => init::xavier_uniform(in_dim, out_dim, rng),
            _ => init::he_uniform(in_dim, out_dim, rng),
        };
        Self {
            weights,
            bias: Matrix::zeros(1, out_dim),
            activation,
            last_input: None,
            last_output: None,
            grad_weights: None,
            grad_bias: None,
        }
    }

    /// Creates a layer from explicit parameters (used for fixed-weight
    /// feature stacks and for tests).
    ///
    /// # Panics
    ///
    /// Panics if `bias` is not `1 x weights.cols()`.
    pub fn from_parameters(weights: Matrix, bias: Matrix, activation: Activation) -> Self {
        assert_eq!(bias.rows(), 1, "bias must be a row vector");
        assert_eq!(bias.cols(), weights.cols(), "bias width mismatch");
        Self {
            weights,
            bias,
            activation,
            last_input: None,
            last_output: None,
            grad_weights: None,
            grad_bias: None,
        }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.weights.rows()
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.weights.cols()
    }

    /// The weight matrix.
    pub fn weights(&self) -> &Matrix {
        &self.weights
    }

    /// The bias row vector.
    pub fn bias(&self) -> &Matrix {
        &self.bias
    }

    /// Number of trainable parameters.
    pub fn parameter_count(&self) -> usize {
        self.weights.rows() * self.weights.cols() + self.bias.cols()
    }

    /// Forward pass caching activations for a subsequent `backward`.
    pub fn forward(&mut self, input: &Matrix) -> Matrix {
        let out = self.infer(input);
        self.last_input = Some(input.clone());
        self.last_output = Some(out.clone());
        out
    }

    /// Forward pass without caching (inference only).
    pub fn infer(&self, input: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(input.rows(), self.out_dim());
        self.infer_into(input, &mut out);
        out
    }

    /// Forward pass writing into a caller-owned scratch matrix (resized
    /// and fully overwritten). Bit-identical to [`Dense::infer`]; reusing
    /// the scratch across calls removes the per-inference allocations on
    /// the scheduler hot path.
    pub fn infer_into(&self, input: &Matrix, out: &mut Matrix) {
        input.matmul_into(&self.weights, out);
        out.add_row_broadcast_in_place(&self.bias);
        self.activation.apply_in_place(out);
        crate::debug_assert_finite!(&*out, "dense layer forward");
    }

    /// Backward pass. Takes `dL/dy` and returns `dL/dx`, storing parameter
    /// gradients internally for the optimizer.
    ///
    /// # Panics
    ///
    /// Panics if called before `forward`.
    pub fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        let input = self
            .last_input
            .as_ref()
            .expect("backward called before forward");
        let output = self.last_output.as_ref().expect("missing forward cache");
        // dL/d(pre-activation).
        let dpre = grad_output.hadamard(&self.activation.derivative_from_output(output));
        self.grad_weights = Some(input.transposed_matmul(&dpre));
        self.grad_bias = Some(dpre.sum_rows());
        dpre.matmul_transposed(&self.weights)
    }

    /// Takes the stored parameter gradients `(dW, db)` out of the layer
    /// (for external optimizers such as Adam). Returns `None` before any
    /// `backward` call.
    pub fn take_gradients(&mut self) -> Option<(Matrix, Matrix)> {
        match (self.grad_weights.take(), self.grad_bias.take()) {
            (Some(w), Some(b)) => Some((w, b)),
            _ => None,
        }
    }

    /// Mutable access to the weights (external optimizers).
    pub fn weights_mut(&mut self) -> &mut Matrix {
        &mut self.weights
    }

    /// Mutable access to the bias (external optimizers).
    pub fn bias_mut(&mut self) -> &mut Matrix {
        &mut self.bias
    }

    /// Applies an SGD-with-momentum update using the stored gradients.
    ///
    /// `velocity` must hold one entry per parameter tensor (weights, bias)
    /// and is updated in place. `weight_decay` is the L2 coefficient applied
    /// to the weights only (biases are not decayed, matching common
    /// practice).
    ///
    /// # Panics
    ///
    /// Panics if called before `backward`.
    pub fn apply_update(
        &mut self,
        lr: f32,
        momentum: f32,
        weight_decay: f32,
        velocity: &mut DenseVelocity,
    ) {
        let gw = self
            .grad_weights
            .take()
            .expect("apply_update called before backward");
        let gb = self.grad_bias.take().expect("missing bias gradient");
        // v <- momentum * v + (grad + decay * w); w <- w - lr * v.
        velocity.weights.scale_in_place(momentum);
        velocity.weights.axpy_in_place(&gw, 1.0);
        velocity.weights.axpy_in_place(&self.weights, weight_decay);
        self.weights.axpy_in_place(&velocity.weights, -lr);

        velocity.bias.scale_in_place(momentum);
        velocity.bias.axpy_in_place(&gb, 1.0);
        self.bias.axpy_in_place(&velocity.bias, -lr);
    }

    /// Creates a zeroed velocity buffer matching this layer's shape.
    pub fn zero_velocity(&self) -> DenseVelocity {
        DenseVelocity {
            weights: Matrix::zeros(self.weights.rows(), self.weights.cols()),
            bias: Matrix::zeros(1, self.bias.cols()),
        }
    }
}

/// Momentum buffers for one dense layer.
#[derive(Debug, Clone)]
pub struct DenseVelocity {
    pub(crate) weights: Matrix,
    pub(crate) bias: Matrix,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::seeded_rng;

    #[test]
    fn relu_zeroes_negatives() {
        let x = Matrix::row_vector(&[-1.0, 0.0, 2.0]);
        assert_eq!(
            Activation::Relu.forward(&x),
            Matrix::row_vector(&[0.0, 0.0, 2.0])
        );
    }

    #[test]
    fn linear_layer_computes_affine_map() {
        let w = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 2.0]]);
        let b = Matrix::row_vector(&[0.5, -0.5]);
        let layer = Dense::from_parameters(w, b, Activation::Linear);
        let y = layer.infer(&Matrix::row_vector(&[3.0, 4.0]));
        assert_eq!(y, Matrix::row_vector(&[3.5, 7.5]));
    }

    #[test]
    fn forward_then_infer_agree() {
        let mut rng = seeded_rng(11);
        let mut layer = Dense::new(5, 3, Activation::Relu, &mut rng);
        let x = Matrix::row_vector(&[0.1, -0.2, 0.3, 0.4, -0.5]);
        let a = layer.forward(&x);
        let b = layer.infer(&x);
        assert_eq!(a, b);
    }

    /// Numerically checks the weight gradient of a single layer with MSE
    /// loss against a central finite difference.
    #[test]
    fn gradient_matches_finite_difference() {
        let mut rng = seeded_rng(42);
        let mut layer = Dense::new(3, 2, Activation::Tanh, &mut rng);
        let x = Matrix::row_vector(&[0.3, -0.7, 0.9]);
        let target = Matrix::row_vector(&[0.2, -0.1]);

        // Analytic gradient: L = 0.5 * ||y - t||^2 so dL/dy = y - t.
        let y = layer.forward(&x);
        let grad_out = y.sub(&target);
        let _ = layer.backward(&grad_out);
        let analytic = layer.grad_weights.clone().unwrap();

        let eps = 1e-3;
        for r in 0..3 {
            for c in 0..2 {
                let orig = layer.weights[(r, c)];
                layer.weights[(r, c)] = orig + eps;
                let lp = half_mse(&layer.infer(&x), &target);
                layer.weights[(r, c)] = orig - eps;
                let lm = half_mse(&layer.infer(&x), &target);
                layer.weights[(r, c)] = orig;
                let numeric = (lp - lm) / (2.0 * eps);
                let got = analytic[(r, c)];
                assert!(
                    (numeric - got).abs() < 1e-3,
                    "grad mismatch at ({r},{c}): numeric {numeric} vs analytic {got}"
                );
            }
        }
    }

    fn half_mse(y: &Matrix, t: &Matrix) -> f32 {
        let d = y.sub(t);
        0.5 * d.as_slice().iter().map(|v| v * v).sum::<f32>()
    }

    #[test]
    fn update_moves_weights_against_gradient() {
        let w = Matrix::from_rows(&[&[1.0]]);
        let b = Matrix::row_vector(&[0.0]);
        let mut layer = Dense::from_parameters(w, b, Activation::Linear);
        let mut vel = layer.zero_velocity();
        let x = Matrix::row_vector(&[1.0]);
        // Target 0, so output 1.0 has positive gradient: weight must shrink.
        let y = layer.forward(&x);
        let grad = y.clone();
        let _ = layer.backward(&grad);
        layer.apply_update(0.1, 0.0, 0.0, &mut vel);
        assert!(layer.weights()[(0, 0)] < 1.0);
    }

    #[test]
    #[should_panic(expected = "backward called before forward")]
    fn backward_without_forward_panics() {
        let mut rng = seeded_rng(0);
        let mut layer = Dense::new(2, 2, Activation::Relu, &mut rng);
        let _ = layer.backward(&Matrix::zeros(1, 2));
    }
}
