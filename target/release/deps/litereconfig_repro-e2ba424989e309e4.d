/root/repo/target/release/deps/litereconfig_repro-e2ba424989e309e4.d: src/lib.rs

/root/repo/target/release/deps/liblitereconfig_repro-e2ba424989e309e4.rlib: src/lib.rs

/root/repo/target/release/deps/liblitereconfig_repro-e2ba424989e309e4.rmeta: src/lib.rs

src/lib.rs:
