//! Adam optimizer — used by the optimizer ablation (the paper trains its
//! accuracy models with SGD+momentum; Adam is the obvious alternative and
//! the ablation harness compares them).

use rand::seq::SliceRandom;
use rand::Rng;

use crate::layers::Dense;
use crate::loss;
use crate::mlp::MlpConfig;
use crate::tensor::Matrix;

/// Adam hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Adam {
    /// Step size.
    pub learning_rate: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical floor.
    pub epsilon: f32,
    /// Decoupled L2 weight decay.
    pub weight_decay: f32,
}

impl Default for Adam {
    fn default() -> Self {
        Self {
            learning_rate: 1e-3,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
            weight_decay: 1e-4,
        }
    }
}

/// Per-tensor Adam state.
#[derive(Debug, Clone)]
struct Moments {
    m: Matrix,
    v: Matrix,
}

impl Moments {
    fn zeros_like(w: &Matrix) -> Self {
        Self {
            m: Matrix::zeros(w.rows(), w.cols()),
            v: Matrix::zeros(w.rows(), w.cols()),
        }
    }
}

/// An MLP trained with Adam. A separate type from [`crate::Mlp`] so the
/// two optimizers cannot be mixed accidentally mid-training.
#[derive(Debug, Clone)]
pub struct AdamMlp {
    layers: Vec<Dense>,
    weight_moments: Vec<Moments>,
    bias_moments: Vec<Moments>,
    step: u64,
}

impl AdamMlp {
    /// Builds the network described by `config`.
    pub fn new(config: &MlpConfig, rng: &mut impl Rng) -> Self {
        let dims = config.layer_dims();
        let mut layers = Vec::with_capacity(dims.len() - 1);
        for i in 0..dims.len() - 1 {
            let act = if i + 2 == dims.len() {
                config.output_activation
            } else {
                config.hidden_activation
            };
            layers.push(Dense::new(dims[i], dims[i + 1], act, rng));
        }
        let weight_moments = layers
            .iter()
            .map(|l| Moments::zeros_like(l.weights()))
            .collect();
        let bias_moments = layers
            .iter()
            .map(|l| Moments::zeros_like(l.bias()))
            .collect();
        Self {
            layers,
            weight_moments,
            bias_moments,
            step: 0,
        }
    }

    /// Inference on a batch.
    pub fn infer(&self, input: &Matrix) -> Matrix {
        let mut x = input.clone();
        for layer in &self.layers {
            x = layer.infer(&x);
        }
        x
    }

    /// One Adam step on a mini-batch; returns the batch MSE before the
    /// update.
    pub fn train_batch(&mut self, inputs: &Matrix, targets: &Matrix, opt: Adam) -> f32 {
        let mut x = inputs.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x);
        }
        let batch_loss = loss::mse(&x, targets);
        let mut grad = loss::mse_gradient_batch_mean(&x, targets);
        // Collect per-layer gradients via backward.
        let mut grads: Vec<(Matrix, Matrix)> = Vec::with_capacity(self.layers.len());
        for layer in self.layers.iter_mut().rev() {
            grad = layer.backward(&grad);
            grads.push(layer.take_gradients().expect("gradients after backward"));
        }
        grads.reverse();

        self.step += 1;
        let t = self.step as f32;
        let bc1 = 1.0 - opt.beta1.powf(t);
        let bc2 = 1.0 - opt.beta2.powf(t);
        for ((layer, (gw, gb)), (wm, bm)) in self.layers.iter_mut().zip(grads).zip(
            self.weight_moments
                .iter_mut()
                .zip(self.bias_moments.iter_mut()),
        ) {
            adam_update(
                layer.weights_mut(),
                &gw,
                wm,
                opt,
                bc1,
                bc2,
                opt.weight_decay,
            );
            adam_update(layer.bias_mut(), &gb, bm, opt, bc1, bc2, 0.0);
        }
        batch_loss
    }

    /// Trains for `epochs` epochs, shuffling each epoch; returns per-epoch
    /// mean batch losses.
    pub fn fit(
        &mut self,
        inputs: &Matrix,
        targets: &Matrix,
        opt: Adam,
        epochs: usize,
        batch_size: usize,
        rng: &mut impl Rng,
    ) -> Vec<f32> {
        assert!(batch_size > 0, "batch size must be positive");
        let n = inputs.rows();
        let mut order: Vec<usize> = (0..n).collect();
        let mut history = Vec::with_capacity(epochs);
        for _ in 0..epochs {
            order.shuffle(rng);
            let mut total = 0.0;
            let mut batches = 0;
            for chunk in order.chunks(batch_size) {
                let bx = gather(inputs, chunk);
                let by = gather(targets, chunk);
                total += self.train_batch(&bx, &by, opt);
                batches += 1;
            }
            history.push(total / batches.max(1) as f32);
        }
        history
    }

    /// Mean squared error on a dataset.
    pub fn evaluate_mse(&self, inputs: &Matrix, targets: &Matrix) -> f32 {
        loss::mse(&self.infer(inputs), targets)
    }
}

fn gather(m: &Matrix, rows: &[usize]) -> Matrix {
    let mut data = Vec::with_capacity(rows.len() * m.cols());
    for &r in rows {
        data.extend_from_slice(m.row(r));
    }
    Matrix::from_vec(rows.len(), m.cols(), data)
}

/// One Adam update for a single parameter tensor.
fn adam_update(
    param: &mut Matrix,
    grad: &Matrix,
    moments: &mut Moments,
    opt: Adam,
    bias_correction1: f32,
    bias_correction2: f32,
    weight_decay: f32,
) {
    let g = if weight_decay > 0.0 {
        let mut g = grad.clone();
        g.axpy_in_place(param, weight_decay);
        g
    } else {
        grad.clone()
    };
    moments.m.scale_in_place(opt.beta1);
    moments.m.axpy_in_place(&g, 1.0 - opt.beta1);
    moments.v.scale_in_place(opt.beta2);
    let g2 = g.hadamard(&g);
    moments.v.axpy_in_place(&g2, 1.0 - opt.beta2);
    for i in 0..param.as_slice().len() {
        let m_hat = moments.m.as_slice()[i] / bias_correction1;
        let v_hat = moments.v.as_slice()[i] / bias_correction2;
        param.as_mut_slice()[i] -= opt.learning_rate * m_hat / (v_hat.sqrt() + opt.epsilon);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::seeded_rng;
    use crate::mlp::MlpConfig;

    #[test]
    fn adam_fits_a_linear_function() {
        let mut rng = seeded_rng(5);
        let mut net = AdamMlp::new(&MlpConfig::regression(2, &[16], 1), &mut rng);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..64 {
            let a = (i % 8) as f32 / 8.0 - 0.5;
            let b = (i / 8) as f32 / 8.0 - 0.5;
            xs.extend_from_slice(&[a, b]);
            ys.push(0.3 * a - 0.7 * b);
        }
        let x = Matrix::from_vec(64, 2, xs);
        let y = Matrix::from_vec(64, 1, ys);
        let hist = net.fit(&x, &y, Adam::default(), 400, 16, &mut rng);
        assert!(*hist.last().unwrap() < 2e-3, "loss {:?}", hist.last());
    }

    #[test]
    fn adam_converges_faster_than_plain_sgd_on_this_task() {
        // Not a universal truth, but on this ill-scaled input it holds and
        // pins down that the moment normalization actually works.
        let build_data = || {
            let mut xs = Vec::new();
            let mut ys = Vec::new();
            for i in 0..64 {
                let a = (i % 8) as f32 * 100.0; // badly scaled dim
                let b = (i / 8) as f32 / 100.0; // tiny dim
                xs.extend_from_slice(&[a, b]);
                ys.push(0.001 * a + 10.0 * b);
            }
            (Matrix::from_vec(64, 2, xs), Matrix::from_vec(64, 1, ys))
        };
        let (x, y) = build_data();
        let mut rng = seeded_rng(6);
        let mut adam = AdamMlp::new(&MlpConfig::regression(2, &[8], 1), &mut rng);
        let adam_loss = *adam
            .fit(&x, &y, Adam::default(), 100, 16, &mut rng)
            .last()
            .unwrap();
        let mut rng = seeded_rng(6);
        let mut sgd = crate::Mlp::new(&MlpConfig::regression(2, &[8], 1), &mut rng);
        let sgd_loss = *sgd
            .fit(&x, &y, crate::Sgd::plain(1e-5), 100, 16, &mut rng)
            .last()
            .unwrap();
        assert!(adam_loss < sgd_loss, "adam {adam_loss} vs sgd {sgd_loss}");
    }

    #[test]
    fn moments_have_parameter_shapes() {
        let mut rng = seeded_rng(7);
        let net = AdamMlp::new(&MlpConfig::regression(3, &[4], 2), &mut rng);
        assert_eq!(net.weight_moments.len(), 2);
        assert_eq!(net.weight_moments[0].m.rows(), 3);
        assert_eq!(net.bias_moments[1].v.cols(), 2);
    }
}
