//! A minimal Rust tokenizer — just enough syntax awareness for the lint
//! rules to never misfire inside strings, comments, or literals.
//!
//! The lexer understands line comments (kept, so suppression directives
//! can be read), nested block comments, plain/byte/raw string literals,
//! character literals vs. lifetimes, loose numeric literals (including
//! suffixes and exponents), raw identifiers, and single-character
//! punctuation. It deliberately does *not* build a syntax tree: the rule
//! engine works on the flat token stream plus a handful of derived masks
//! (test regions, `use` declarations), which keeps the whole checker
//! std-only and dependency-free per the vendored-deps policy.

/// What one lexed token is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (raw identifiers are unescaped: `r#type`
    /// lexes as `type`).
    Ident(String),
    /// A single punctuation character (`::` arrives as two `:` tokens).
    Punct(char),
    /// A `//` line comment, text after the slashes (doc comments
    /// included).
    LineComment(String),
}

/// One token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token payload.
    pub kind: TokenKind,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Token {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Ident(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// True if this token is the given punctuation character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }
}

/// Tokenizes Rust source. Never fails: unterminated constructs consume
/// to end of input, which is the right behavior for a linter that must
/// not crash on in-progress code.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        chars: src.chars().collect(),
        i: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    i: usize,
    line: u32,
    out: Vec<Token>,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.i).copied();
        if let Some(c) = c {
            if c == '\n' {
                self.line += 1;
            }
            self.i += 1;
        }
        c
    }

    fn push(&mut self, kind: TokenKind, line: u32) {
        self.out.push(Token { kind, line });
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                _ if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => {
                    self.bump();
                    self.plain_string();
                }
                '\'' => self.char_or_lifetime(line),
                _ if c.is_ascii_digit() => self.number(),
                _ if c.is_alphabetic() || c == '_' => self.ident_or_prefixed_literal(line),
                _ => {
                    self.bump();
                    self.push(TokenKind::Punct(c), line);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self, line: u32) {
        self.bump();
        self.bump();
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(TokenKind::LineComment(text), line);
    }

    fn block_comment(&mut self) {
        self.bump();
        self.bump();
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break,
            }
        }
    }

    /// Consumes a `"`-delimited string body (opening quote already
    /// consumed), honoring backslash escapes.
    fn plain_string(&mut self) {
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
    }

    /// Consumes a raw string body: `#`*n* `"` ... `"` `#`*n* (the `r` /
    /// `br` prefix is already consumed). Returns false if this is not
    /// actually a raw string opener (caller then treats `#` as punct).
    fn raw_string(&mut self) -> bool {
        let mut hashes = 0usize;
        while self.peek(hashes) == Some('#') {
            hashes += 1;
        }
        if self.peek(hashes) != Some('"') {
            return false;
        }
        for _ in 0..=hashes {
            self.bump();
        }
        loop {
            match self.bump() {
                Some('"') => {
                    if (0..hashes).all(|k| self.peek(k) == Some('#')) {
                        for _ in 0..hashes {
                            self.bump();
                        }
                        break;
                    }
                }
                Some(_) => {}
                None => break,
            }
        }
        true
    }

    fn char_or_lifetime(&mut self, line: u32) {
        self.bump(); // the opening '
        match self.peek(0) {
            // Escaped char literal: consume until the closing quote.
            Some('\\') => {
                self.bump();
                self.bump(); // the escaped char (or escape-kind letter)
                while let Some(c) = self.bump() {
                    if c == '\'' {
                        break;
                    }
                }
            }
            // One payload char then a quote: a plain char literal.
            Some(_) if self.peek(1) == Some('\'') => {
                self.bump();
                self.bump();
            }
            // Otherwise a lifetime: consume the identifier, no token
            // emitted (rules never inspect lifetimes).
            Some(c) if c.is_alphabetic() || c == '_' => {
                while let Some(c) = self.peek(0) {
                    if c.is_alphanumeric() || c == '_' {
                        self.bump();
                    } else {
                        break;
                    }
                }
                let _ = line;
            }
            _ => {}
        }
    }

    /// Loose numeric literal: digits, letters (hex, suffixes, exponent
    /// markers), underscores, a `.` only when followed by a digit (so
    /// `0..n` ranges and method calls on literals are not swallowed),
    /// and a sign right after an exponent marker.
    fn number(&mut self) {
        let mut prev = '0';
        while let Some(c) = self.peek(0) {
            let take = c.is_alphanumeric()
                || c == '_'
                || (c == '.' && self.peek(1).is_some_and(|d| d.is_ascii_digit()))
                || ((c == '+' || c == '-') && (prev == 'e' || prev == 'E'));
            if !take {
                break;
            }
            prev = c;
            self.bump();
        }
    }

    fn ident_or_prefixed_literal(&mut self, line: u32) {
        let mut word = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                word.push(c);
                self.bump();
            } else {
                break;
            }
        }
        // String-literal prefixes: r"", r#""#, br"", b"", and raw
        // identifiers r#ident.
        match (word.as_str(), self.peek(0)) {
            ("r" | "br", Some('"')) | ("b", Some('"')) => {
                self.bump();
                self.plain_string_or_raw(&word);
            }
            ("r" | "br", Some('#')) => {
                if !self.raw_string() {
                    // r#ident — a raw identifier: consume `#` + word.
                    if word == "r" && self.peek(1).is_some_and(|c| c.is_alphabetic() || c == '_') {
                        self.bump(); // '#'
                        let mut raw = String::new();
                        while let Some(c) = self.peek(0) {
                            if c.is_alphanumeric() || c == '_' {
                                raw.push(c);
                                self.bump();
                            } else {
                                break;
                            }
                        }
                        self.push(TokenKind::Ident(raw), line);
                    } else {
                        self.push(TokenKind::Ident(word), line);
                    }
                }
            }
            _ => self.push(TokenKind::Ident(word), line),
        }
    }

    /// After consuming a quote that follows an `r`/`br`/`b` prefix:
    /// `b"` is an escaped string, `r"`/`br"` are raw (no escapes).
    fn plain_string_or_raw(&mut self, prefix: &str) {
        if prefix == "b" {
            self.plain_string();
        } else {
            // Raw with zero hashes: scan to the next bare quote.
            while let Some(c) = self.bump() {
                if c == '"' {
                    break;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter_map(|t| match t.kind {
                TokenKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn identifiers_and_puncts() {
        let toks = lex("let x = a.b();");
        assert_eq!(idents("let x = a.b();"), vec!["let", "x", "a", "b"]);
        assert!(toks.iter().any(|t| t.is_punct('.')));
        assert!(toks.iter().any(|t| t.is_punct(';')));
    }

    #[test]
    fn string_contents_are_not_tokens() {
        assert_eq!(
            idents(r#"let s = "HashMap::iter() // not code"; s"#),
            vec!["let", "s", "s"]
        );
    }

    #[test]
    fn raw_strings_with_hashes_are_skipped() {
        let src = "let s = r#\"quote \" and HashMap\"#; end";
        assert_eq!(idents(src), vec!["let", "s", "end"]);
    }

    #[test]
    fn raw_string_without_hashes() {
        assert_eq!(idents("r\"HashMap\" x"), vec!["x"]);
    }

    #[test]
    fn byte_strings_are_skipped() {
        assert_eq!(idents("b\"HashMap\" x"), vec!["x"]);
    }

    #[test]
    fn raw_identifier_is_unescaped() {
        assert_eq!(
            idents("let r#type = 1; r#type"),
            vec!["let", "type", "type"]
        );
    }

    #[test]
    fn nested_block_comments() {
        assert_eq!(idents("a /* x /* HashMap */ y */ b"), vec!["a", "b"]);
    }

    #[test]
    fn line_comments_are_captured() {
        let toks = lex("x // lr-lint: allow(d2)\ny");
        let comments: Vec<_> = toks
            .iter()
            .filter_map(|t| match &t.kind {
                TokenKind::LineComment(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(comments, vec![" lr-lint: allow(d2)"]);
    }

    #[test]
    fn char_literals_and_lifetimes() {
        // 'a' is a char; 'b in &'b is a lifetime; '\n' is an escape.
        assert_eq!(
            idents("let c = 'a'; fn f<'b>(x: &'b str) { let n = '\\n'; }"),
            vec!["let", "c", "fn", "f", "x", "str", "let", "n"]
        );
    }

    #[test]
    fn escaped_quote_in_char_literal() {
        assert_eq!(idents(r"let q = '\''; done"), vec!["let", "q", "done"]);
    }

    #[test]
    fn numeric_literals_do_not_swallow_ranges() {
        // `0..len` must keep `len` as an identifier.
        assert_eq!(idents("for i in 0..len {}"), vec!["for", "i", "in", "len"]);
        assert_eq!(idents("let x = 1.5e-3f32; y"), vec!["let", "x", "y"]);
        assert_eq!(idents("let x = 0xFF_u8; y"), vec!["let", "x", "y"]);
    }

    #[test]
    fn lines_are_tracked() {
        let toks = lex("a\nb\n\nc");
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn string_with_escapes_and_newlines() {
        let toks = lex("let s = \"a\\\"b\nc\"; after");
        // `after` must land on line 2.
        let after = toks.iter().find(|t| t.ident() == Some("after")).unwrap();
        assert_eq!(after.line, 2);
    }

    #[test]
    fn double_colon_arrives_as_two_colons() {
        let toks = lex("Instant::now()");
        assert_eq!(toks[0].ident(), Some("Instant"));
        assert!(toks[1].is_punct(':') && toks[2].is_punct(':'));
        assert_eq!(toks[3].ident(), Some("now"));
    }
}
