/root/repo/target/release/deps/substrate_invariants-b16bd97a925d31f6.d: tests/substrate_invariants.rs

/root/repo/target/release/deps/substrate_invariants-b16bd97a925d31f6: tests/substrate_invariants.rs

tests/substrate_invariants.rs:
