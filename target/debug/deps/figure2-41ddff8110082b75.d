/root/repo/target/debug/deps/figure2-41ddff8110082b75.d: crates/bench/src/bin/figure2.rs

/root/repo/target/debug/deps/figure2-41ddff8110082b75: crates/bench/src/bin/figure2.rs

crates/bench/src/bin/figure2.rs:
