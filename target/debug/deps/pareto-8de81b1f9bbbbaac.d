/root/repo/target/debug/deps/pareto-8de81b1f9bbbbaac.d: crates/bench/src/bin/pareto.rs

/root/repo/target/debug/deps/pareto-8de81b1f9bbbbaac: crates/bench/src/bin/pareto.rs

crates/bench/src/bin/pareto.rs:
