//! TX2-calibrated base latency tables for detectors and trackers.
//!
//! All functions return milliseconds on an idle Jetson TX2; the
//! `lr-device` simulator applies device, contention, and noise factors.
//! Calibration anchors (from the paper and the ApproxDet measurements it
//! builds on):
//!
//! - Faster R-CNN spans roughly 27 ms (`224x1`) to 245 ms (`576x100`);
//! - trackers cost low single-digit ms (MedianFlow, downsampled) to tens
//!   of ms (CSRT on many objects at full resolution);
//! - the one-stage baselines are cheaper per frame than Faster R-CNN at
//!   equal shape but saturate in accuracy (see `detector.rs`).

use crate::branch::{DetectorConfig, TrackerKind};
use crate::detector::DetectorFamily;

/// Base latency of one detector inference.
pub fn detector_base_ms(family: DetectorFamily, cfg: DetectorConfig) -> f64 {
    let shape_term = (cfg.shape as f64 / 576.0).powf(1.7);
    let nprop_term = 0.22 + 0.78 * (cfg.nprop as f64 / 100.0).powf(0.6);
    match family {
        DetectorFamily::FasterRcnn => 15.0 + 230.0 * shape_term * nprop_term,
        // One-stage: no proposal stage, so nprop does not apply; the knob
        // is ignored (protocols pass nprop = 100 by convention).
        DetectorFamily::Yolo => 11.0 + 125.0 * shape_term,
        DetectorFamily::Ssd => 8.0 + 95.0 * shape_term,
        DetectorFamily::EfficientDetD0 => 138.0,
        DetectorFamily::EfficientDetD3 => 796.0,
        // AdaScale's Faster R-CNN variant without the efficiency work of
        // ApproxDet: substantially slower at equal scale (Table 3 shows
        // 227.9 ms at scale 240).
        DetectorFamily::AdaScale => 40.0 + 1000.0 * (cfg.shape as f64 / 600.0).powf(1.75),
    }
}

/// Base latency of one tracker update over a frame.
///
/// Trackers run per tracked object on the CPU; downsampling the tracker
/// input by `ds` cuts per-object cost roughly as `ds^0.8` (sub-linear:
/// fixed overheads survive downsampling).
pub fn tracker_base_ms(kind: TrackerKind, downsample: u32, num_objects: usize) -> f64 {
    let ds = (downsample.max(1) as f64).powf(0.8);
    let n = num_objects as f64;
    let (fixed, per_obj) = match kind {
        TrackerKind::MedianFlow => (0.8, 0.55),
        TrackerKind::Kcf => (1.2, 1.1),
        TrackerKind::Csrt => (4.5, 6.5),
        TrackerKind::OpticalFlow => (2.4, 0.9),
    };
    fixed + per_obj * n / ds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frcnn_latency_anchors() {
        let light = detector_base_ms(DetectorFamily::FasterRcnn, DetectorConfig::new(224, 1));
        let heavy = detector_base_ms(DetectorFamily::FasterRcnn, DetectorConfig::new(576, 100));
        assert!((25.0..32.0).contains(&light), "light {light}");
        assert!((235.0..255.0).contains(&heavy), "heavy {heavy}");
    }

    #[test]
    fn latency_is_monotone_in_shape_and_nprop() {
        let f = DetectorFamily::FasterRcnn;
        assert!(
            detector_base_ms(f, DetectorConfig::new(448, 20))
                > detector_base_ms(f, DetectorConfig::new(224, 20))
        );
        assert!(
            detector_base_ms(f, DetectorConfig::new(448, 100))
                > detector_base_ms(f, DetectorConfig::new(448, 5))
        );
    }

    #[test]
    fn one_stage_detectors_are_cheaper_than_frcnn() {
        let cfg = DetectorConfig::new(448, 100);
        let frcnn = detector_base_ms(DetectorFamily::FasterRcnn, cfg);
        assert!(detector_base_ms(DetectorFamily::Yolo, cfg) < frcnn);
        assert!(detector_base_ms(DetectorFamily::Ssd, cfg) < frcnn);
    }

    #[test]
    fn efficientdet_latencies_match_table3() {
        let cfg = DetectorConfig::new(512, 100);
        assert_eq!(detector_base_ms(DetectorFamily::EfficientDetD0, cfg), 138.0);
        assert_eq!(detector_base_ms(DetectorFamily::EfficientDetD3, cfg), 796.0);
    }

    #[test]
    fn adascale_smallest_scale_near_228ms() {
        let ms = detector_base_ms(DetectorFamily::AdaScale, DetectorConfig::new(240, 100));
        assert!((200.0..260.0).contains(&ms), "{ms}");
    }

    #[test]
    fn tracker_cost_ordering_matches_designs() {
        // CSRT is the most expensive; MedianFlow the cheapest.
        let n = 4;
        let mf = tracker_base_ms(TrackerKind::MedianFlow, 1, n);
        let kcf = tracker_base_ms(TrackerKind::Kcf, 1, n);
        let csrt = tracker_base_ms(TrackerKind::Csrt, 1, n);
        assert!(mf < kcf && kcf < csrt);
    }

    #[test]
    fn downsampling_cuts_tracker_cost() {
        let full = tracker_base_ms(TrackerKind::Csrt, 1, 6);
        let ds4 = tracker_base_ms(TrackerKind::Csrt, 4, 6);
        assert!(ds4 < full * 0.6, "ds4 {ds4} vs full {full}");
    }

    #[test]
    fn tracker_cost_scales_with_object_count() {
        assert!(tracker_base_ms(TrackerKind::Kcf, 1, 8) > tracker_base_ms(TrackerKind::Kcf, 1, 1));
    }
}
