/root/repo/target/release/deps/litereconfig-ecd2c96da207ec0f.d: crates/core/src/lib.rs crates/core/src/bentable.rs crates/core/src/featsvc.rs crates/core/src/offline.rs crates/core/src/pipeline.rs crates/core/src/predictor.rs crates/core/src/protocols.rs crates/core/src/scheduler.rs crates/core/src/trainer.rs

/root/repo/target/release/deps/litereconfig-ecd2c96da207ec0f: crates/core/src/lib.rs crates/core/src/bentable.rs crates/core/src/featsvc.rs crates/core/src/offline.rs crates/core/src/pipeline.rs crates/core/src/predictor.rs crates/core/src/protocols.rs crates/core/src/scheduler.rs crates/core/src/trainer.rs

crates/core/src/lib.rs:
crates/core/src/bentable.rs:
crates/core/src/featsvc.rs:
crates/core/src/offline.rs:
crates/core/src/pipeline.rs:
crates/core/src/predictor.rs:
crates/core/src/protocols.rs:
crates/core/src/scheduler.rs:
crates/core/src/trainer.rs:
