/root/repo/target/release/deps/figure2-973640297ad7f5a4.d: crates/bench/src/bin/figure2.rs

/root/repo/target/release/deps/figure2-973640297ad7f5a4: crates/bench/src/bin/figure2.rs

crates/bench/src/bin/figure2.rs:
