//! Object categories, mirroring the 30 classes of ILSVRC 2015 VID.

/// Number of foreground object classes (matches ILSVRC VID).
pub const NUM_CLASSES: usize = 30;

/// The class names of ILSVRC 2015 VID, in canonical order.
pub const CLASS_NAMES: [&str; NUM_CLASSES] = [
    "airplane",
    "antelope",
    "bear",
    "bicycle",
    "bird",
    "bus",
    "car",
    "cattle",
    "dog",
    "domestic_cat",
    "elephant",
    "fox",
    "giant_panda",
    "hamster",
    "horse",
    "lion",
    "lizard",
    "monkey",
    "motorcycle",
    "rabbit",
    "red_panda",
    "sheep",
    "snake",
    "squirrel",
    "tiger",
    "train",
    "turtle",
    "watercraft",
    "whale",
    "zebra",
];

/// An object category.
///
/// # Examples
///
/// ```
/// use lr_video::ObjectClass;
///
/// let c = ObjectClass::new(6);
/// assert_eq!(c.name(), "car");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectClass(u8);

impl ObjectClass {
    /// Creates a class from its index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= NUM_CLASSES`.
    pub fn new(index: usize) -> Self {
        assert!(
            index < NUM_CLASSES,
            "class index {index} out of range ({NUM_CLASSES})"
        );
        Self(index as u8)
    }

    /// The class index in `[0, NUM_CLASSES)`.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The canonical class name.
    pub fn name(self) -> &'static str {
        CLASS_NAMES[self.index()]
    }

    /// Iterates over all classes in order.
    pub fn all() -> impl Iterator<Item = ObjectClass> {
        (0..NUM_CLASSES).map(ObjectClass::new)
    }

    /// A deterministic per-class base color in RGB (0..1), used by the
    /// rasterizer so that pixel features carry class information.
    pub fn base_color(self) -> [f32; 3] {
        // Spread hues around the color wheel; vary saturation/value in two
        // rings so 30 classes stay distinguishable.
        let i = self.index();
        let hue = (i as f32 * 360.0 / NUM_CLASSES as f32) % 360.0;
        let (s, v) = if i.is_multiple_of(2) {
            (0.85, 0.9)
        } else {
            (0.6, 0.65)
        };
        hsv_to_rgb(hue, s, v)
    }
}

/// Converts HSV (h in degrees, s/v in 0..1) to RGB in 0..1.
pub fn hsv_to_rgb(h: f32, s: f32, v: f32) -> [f32; 3] {
    let c = v * s;
    let hp = (h / 60.0) % 6.0;
    let x = c * (1.0 - ((hp % 2.0) - 1.0).abs());
    let (r1, g1, b1) = match hp as u32 {
        0 => (c, x, 0.0),
        1 => (x, c, 0.0),
        2 => (0.0, c, x),
        3 => (0.0, x, c),
        4 => (x, 0.0, c),
        _ => (c, 0.0, x),
    };
    let m = v - c;
    [r1 + m, g1 + m, b1 + m]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thirty_classes_like_vid() {
        assert_eq!(NUM_CLASSES, 30);
        assert_eq!(ObjectClass::all().count(), 30);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = CLASS_NAMES.to_vec();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), NUM_CLASSES);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_index_panics() {
        let _ = ObjectClass::new(30);
    }

    #[test]
    fn base_colors_are_in_unit_range() {
        for c in ObjectClass::all() {
            for ch in c.base_color() {
                assert!((0.0..=1.0).contains(&ch), "{} out of range", ch);
            }
        }
    }

    #[test]
    fn base_colors_are_distinct_for_adjacent_classes() {
        let a = ObjectClass::new(0).base_color();
        let b = ObjectClass::new(1).base_color();
        assert_ne!(a, b);
    }

    #[test]
    fn hsv_primaries() {
        let red = hsv_to_rgb(0.0, 1.0, 1.0);
        assert!((red[0] - 1.0).abs() < 1e-6 && red[1].abs() < 1e-6);
        let green = hsv_to_rgb(120.0, 1.0, 1.0);
        assert!((green[1] - 1.0).abs() < 1e-6);
        let blue = hsv_to_rgb(240.0, 1.0, 1.0);
        assert!((blue[2] - 1.0).abs() < 1e-6);
    }
}
