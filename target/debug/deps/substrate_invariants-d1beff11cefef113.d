/root/repo/target/debug/deps/substrate_invariants-d1beff11cefef113.d: tests/substrate_invariants.rs

/root/repo/target/debug/deps/substrate_invariants-d1beff11cefef113: tests/substrate_invariants.rs

tests/substrate_invariants.rs:
