//! Light-weight features `f_L`.
//!
//! Table 1: "Composed of height, width, number of objects, averaged size
//! of the objects." In the real system the object count and sizes come
//! from the MBEK's most recent detection/tracking output — they are
//! available to the scheduler for free. Callers therefore pass the boxes
//! the kernel currently believes in, not ground truth.

use lr_video::BBox;

/// The four light-weight features.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LightFeatures {
    /// Source frame height in pixels.
    pub height: f32,
    /// Source frame width in pixels.
    pub width: f32,
    /// Number of currently tracked/detected objects.
    pub num_objects: f32,
    /// Mean object area as a fraction of the frame area (0 when empty).
    pub avg_size: f32,
}

impl LightFeatures {
    /// Builds light features from the frame geometry and the kernel's
    /// current boxes.
    pub fn from_boxes(width: f32, height: f32, boxes: &[BBox]) -> Self {
        let frame_area = (width * height).max(1.0);
        let avg_size = if boxes.is_empty() {
            0.0
        } else {
            boxes.iter().map(|b| b.area()).sum::<f32>() / boxes.len() as f32 / frame_area
        };
        Self {
            height,
            width,
            num_objects: boxes.len() as f32,
            avg_size,
        }
    }

    /// The normalized 4-dimensional feature vector fed to models.
    ///
    /// Dimensions are scaled to comparable ranges: height/width by 1080/1920,
    /// count by a nominal maximum of 16, size is already a fraction.
    pub fn to_vec(self) -> Vec<f32> {
        vec![
            self.height / 1080.0,
            self.width / 1920.0,
            self.num_objects / 16.0,
            self.avg_size,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_scene_has_zero_objects() {
        let f = LightFeatures::from_boxes(640.0, 480.0, &[]);
        assert_eq!(f.num_objects, 0.0);
        assert_eq!(f.avg_size, 0.0);
    }

    #[test]
    fn avg_size_is_area_fraction() {
        let boxes = [BBox::new(0.0, 0.0, 64.0, 48.0)];
        let f = LightFeatures::from_boxes(640.0, 480.0, &boxes);
        // 64*48 / (640*480) = 0.01.
        assert!((f.avg_size - 0.01).abs() < 1e-6);
        assert_eq!(f.num_objects, 1.0);
    }

    #[test]
    fn vector_has_four_normalized_dims() {
        let boxes = [
            BBox::new(0.0, 0.0, 100.0, 100.0),
            BBox::new(10.0, 10.0, 50.0, 50.0),
        ];
        let v = LightFeatures::from_boxes(1920.0, 1080.0, &boxes).to_vec();
        assert_eq!(v.len(), 4);
        assert!(v.iter().all(|x| (0.0..=1.5).contains(x)));
    }
}
