//! Multi-camera serving: four streams with mixed SLO classes share one
//! Jetson TX2 through the `lr-serve` runtime.
//!
//! One security camera needs 30 fps (Gold), two interactive feeds run
//! at 20 fps (Silver), and an analytics feed at 10 fps (Bronze). The
//! admission controller decides who gets on the device; the dispatcher
//! interleaves the admitted streams GoF-by-GoF, and every stream's GPU
//! load becomes the others' contention — each per-stream LiteReconfig
//! scheduler then reconfigures (cheaper branches, longer GoFs) to hold
//! its own SLO under the load its neighbors create.
//!
//! ```sh
//! cargo run --release --example multi_camera
//! ```

use std::sync::Arc;

use litereconfig::offline::{profile_videos, OfflineConfig};
use litereconfig::trainer::{train_scheduler, TrainConfig};
use litereconfig::{FeatureService, Policy};
use lr_device::DeviceKind;
use lr_kernels::branch::small_catalog;
use lr_kernels::DetectorFamily;
use lr_serve::{serve, ServeConfig, SloClass, StreamSpec};
use lr_video::{Dataset, DatasetConfig, Split};

fn main() {
    // Offline stage: profile the MBEK and train one scheduler, shared
    // (read-only) by every stream's online scheduler.
    let dataset = Dataset::new(DatasetConfig {
        train_vision: 0,
        train_scheduler: 4,
        validation: 0,
        id_offset: 20_000,
    });
    let mut svc = FeatureService::new();
    let offline_cfg = OfflineConfig {
        snippet_len: 50,
        ..OfflineConfig::paper(small_catalog(), DetectorFamily::FasterRcnn)
    };
    let offline = profile_videos(
        &dataset.videos(Split::TrainScheduler),
        &offline_cfg,
        &mut svc,
    );
    let trained = Arc::new(train_scheduler(
        &offline,
        DetectorFamily::FasterRcnn,
        &TrainConfig::tiny(),
    ));

    // Four cameras, three service classes.
    let specs = vec![
        StreamSpec::synthetic(0, SloClass::Gold, 96),
        StreamSpec::synthetic(1, SloClass::Silver, 96),
        StreamSpec::synthetic(2, SloClass::Silver, 96),
        StreamSpec::synthetic(3, SloClass::Bronze, 96),
    ];
    println!("=== offered streams ===");
    for s in &specs {
        println!(
            "{}  class {:<6}  SLO {:>5.1} ms  ({:.0} fps camera)",
            s.name,
            s.class.label(),
            s.class.slo_ms(),
            1_000.0 / s.class.frame_period_ms()
        );
    }

    let cfg = ServeConfig::new(DeviceKind::JetsonTx2);
    let report = serve(&specs, trained, Policy::CostBenefit, &cfg, &mut svc);

    println!("\n=== serve report (TX2, admission on) ===");
    print!("{}", report.format_table());

    println!("\n=== reading the table ===");
    println!("- 'slow' is the mean GPU slowdown each stream observed: it is");
    println!("  measured from the other streams' GPU occupancy, not configured.");
    println!("- Each stream's scheduler saw that slowdown in its latency");
    println!("  predictions and reconfigured to keep its own SLO.");
    println!("- 'admit*' marks a stream the dispatcher degraded mid-run after");
    println!("  sustained SLO violations (backpressure).");
}
