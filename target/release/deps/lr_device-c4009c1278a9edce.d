/root/repo/target/release/deps/lr_device-c4009c1278a9edce.d: crates/device/src/lib.rs crates/device/src/clock.rs crates/device/src/contention.rs crates/device/src/executor.rs crates/device/src/memory.rs crates/device/src/noise.rs crates/device/src/profile.rs crates/device/src/switching.rs

/root/repo/target/release/deps/lr_device-c4009c1278a9edce: crates/device/src/lib.rs crates/device/src/clock.rs crates/device/src/contention.rs crates/device/src/executor.rs crates/device/src/memory.rs crates/device/src/noise.rs crates/device/src/profile.rs crates/device/src/switching.rs

crates/device/src/lib.rs:
crates/device/src/clock.rs:
crates/device/src/contention.rs:
crates/device/src/executor.rs:
crates/device/src/memory.rs:
crates/device/src/noise.rs:
crates/device/src/profile.rs:
crates/device/src/switching.rs:
