//! Figure 3: latency breakdown of each system component (detector,
//! tracker, modeling cost, switching cost), normalized by the SLO.
//!
//! Usage: `cargo run --release -p lr-bench --bin figure3 [small|paper]`

use std::sync::Arc;

use litereconfig::protocols::AdaptiveProtocol;
use litereconfig::TrainedScheduler;
use lr_bench::{scale_from_args, Suite};
use lr_device::DeviceKind;
use lr_eval::TextTable;
use lr_kernels::DetectorFamily;

fn main() {
    let mut suite = Suite::build(scale_from_args());
    let ssd = suite.train_one_stage(DetectorFamily::Ssd);
    let yolo = suite.train_one_stage(DetectorFamily::Yolo);

    let protocols = [
        AdaptiveProtocol::SsdPlus,
        AdaptiveProtocol::YoloPlus,
        AdaptiveProtocol::ApproxDet,
        AdaptiveProtocol::LiteReconfigMinCost,
        AdaptiveProtocol::LiteReconfigMaxContentResNet,
        AdaptiveProtocol::LiteReconfigMaxContentMobileNet,
        AdaptiveProtocol::LiteReconfig,
    ];
    let slos = [33.3, 50.0, 100.0];

    let mut table = TextTable::new(&[
        "Protocol",
        "SLO (ms)",
        "Detector (%SLO)",
        "Tracker (%SLO)",
        "Modeling (%SLO)",
        "Switching (%SLO)",
        "Overhead (%SLO)",
        "Total (%SLO)",
        "Meets SLO",
    ]);
    // One cell per (protocol, SLO); fan out with per-worker feature
    // caches and emit the rows in sweep order.
    let cells: Vec<(usize, usize)> = (0..protocols.len())
        .flat_map(|pi| (0..slos.len()).map(move |li| (pi, li)))
        .collect();
    let raster_size = suite.svc.raster_size();
    let pool = lr_pool::Pool::from_env();
    let rows = pool.par_map_init(
        &cells,
        || litereconfig::FeatureService::with_raster_size(raster_size),
        |svc, _, &(pi, li)| {
            let protocol = protocols[pi];
            let trained: Arc<TrainedScheduler> = match protocol.family() {
                DetectorFamily::Ssd => ssd.clone(),
                DetectorFamily::Yolo => yolo.clone(),
                _ => suite.frcnn.clone(),
            };
            let slo = slos[li];
            let r = protocol.run(
                &suite.val_videos,
                trained,
                DeviceKind::JetsonTx2,
                0.0,
                slo,
                4000 + pi as u64 * 10 + li as u64,
                svc,
            );
            let b = &r.breakdown;
            let pct = |ms: f64| format!("{:.1}", 100.0 * b.fraction_of_slo(ms, slo));
            // The paper omits bars for protocols that cannot satisfy the
            // SLO (ApproxDet at 33.3/50 ms).
            let meets = r.meets_slo(slo);
            eprintln!(
                "[figure3] {} @{slo}: det {} trk {} model {} switch {}",
                protocol.name(),
                pct(b.detector_ms),
                pct(b.tracker_ms),
                pct(b.scheduler_ms),
                pct(b.switch_ms)
            );
            vec![
                protocol.name().to_string(),
                format!("{slo}"),
                pct(b.detector_ms),
                pct(b.tracker_ms),
                pct(b.scheduler_ms),
                pct(b.switch_ms),
                pct(b.overhead_ms),
                pct(b.total_ms()),
                if meets {
                    "yes"
                } else {
                    "NO (bar omitted in paper)"
                }
                .to_string(),
            ]
        },
    );
    for row in rows {
        table.add_row_owned(row);
    }
    println!("\nFigure 3 data: per-component mean frame latency as % of the SLO (TX2)\n");
    println!("{}", table.render());
    println!("CSV:\n{}", table.render_csv());
}
