//! The shared device: one GPU timeline for N streams, with measured
//! occupancy feeding back into each stream's contention.
//!
//! Every stream runs its own `DeviceSim` (its own local virtual clock
//! and noise stream), but all GPU demand is registered here. A stream
//! about to run a GoF asks for its *slowdown*: the processor-sharing
//! stretch `1 / (1 - rho)` where `rho` is the GPU occupancy that the
//! **other** streams' measured demand puts on the device over a recent
//! window of virtual time. This replaces the paper's static
//! `contention_pct` with an endogenous, load-derived signal.

use std::collections::VecDeque;

/// One recorded burst of GPU demand from a stream's GoF.
#[derive(Debug, Clone, Copy)]
struct UsageRecord {
    /// GoF start, stream-local virtual ms.
    start_ms: f64,
    /// GoF end, stream-local virtual ms.
    end_ms: f64,
    /// GPU cycles demanded during the GoF (ms of device time, excluding
    /// contention stretch).
    gpu_demand_ms: f64,
}

/// Sliding-window GPU occupancy accounting across streams.
///
/// Streams advance on nearly synchronized local clocks (the dispatcher
/// always steps the stream that is furthest behind), so windows indexed
/// by one stream's local time are directly comparable with the others'
/// records.
#[derive(Debug)]
pub struct SharedDevice {
    window_ms: f64,
    max_occupancy: f64,
    streams: Vec<VecDeque<UsageRecord>>,
    /// One in-flight reservation per stream: the demand the stream is
    /// *expected* to put on the device during the round currently being
    /// stepped (estimated from its previous GoF). Without it, a round's
    /// members would be mutually invisible — their demand is only
    /// recorded after the round — and the blind spot grows with the
    /// round's wall-span, which makes measured contention *drop* under
    /// heavy load. Reservations close that hole so occupancy is
    /// monotone in the number of co-scheduled streams.
    reservations: Vec<Option<UsageRecord>>,
}

impl SharedDevice {
    /// Creates a shared device measuring occupancy over `window_ms` of
    /// virtual time, capping effective occupancy at `max_occupancy`
    /// (< 1) so the implied slowdown stays finite.
    ///
    /// # Panics
    ///
    /// Panics if `window_ms` is not positive or `max_occupancy` is
    /// outside `(0, 1)`.
    pub fn new(window_ms: f64, max_occupancy: f64) -> Self {
        assert!(
            window_ms.is_finite() && window_ms > 0.0,
            "bad window {window_ms}"
        );
        assert!(
            (0.0..1.0).contains(&max_occupancy) && max_occupancy > 0.0,
            "max occupancy {max_occupancy} outside (0, 1)"
        );
        Self {
            window_ms,
            max_occupancy,
            streams: Vec::new(),
            reservations: Vec::new(),
        }
    }

    /// Registers a stream; returns its slot index.
    pub fn register(&mut self) -> usize {
        self.streams.push(VecDeque::new());
        self.reservations.push(None);
        self.streams.len() - 1
    }

    /// Number of registered streams.
    pub fn num_streams(&self) -> usize {
        self.streams.len()
    }

    /// Records a GoF's GPU demand for a stream.
    ///
    /// # Panics
    ///
    /// Panics on an unknown slot, a negative-length interval, or
    /// negative demand.
    pub fn record(&mut self, slot: usize, start_ms: f64, end_ms: f64, gpu_demand_ms: f64) {
        assert!(end_ms >= start_ms, "interval {start_ms}..{end_ms} reversed");
        assert!(gpu_demand_ms >= 0.0, "negative demand {gpu_demand_ms}");
        let q = &mut self.streams[slot];
        q.push_back(UsageRecord {
            start_ms,
            end_ms,
            gpu_demand_ms,
        });
        // Prune records that can no longer intersect any plausible
        // window. Local clocks stay within ~one GoF of each other, so
        // two windows of slack is comfortably conservative.
        let horizon = end_ms - 2.0 * self.window_ms;
        while q.front().is_some_and(|r| r.end_ms < horizon) {
            q.pop_front();
        }
    }

    /// Announces a stream's expected demand for the GoF it is about to
    /// run, replacing any previous reservation for the slot. Other
    /// streams' occupancy queries count it like a recorded burst until
    /// [`SharedDevice::clear_reservation`] retires it (normally when
    /// the actual demand is [`SharedDevice::record`]ed).
    ///
    /// # Panics
    ///
    /// Panics on an unknown slot, a negative-length interval, or
    /// negative demand.
    pub fn reserve(&mut self, slot: usize, start_ms: f64, end_ms: f64, gpu_demand_ms: f64) {
        assert!(end_ms >= start_ms, "interval {start_ms}..{end_ms} reversed");
        assert!(gpu_demand_ms >= 0.0, "negative demand {gpu_demand_ms}");
        self.reservations[slot] = Some(UsageRecord {
            start_ms,
            end_ms,
            gpu_demand_ms,
        });
    }

    /// Retires `slot`'s in-flight reservation, if any.
    pub fn clear_reservation(&mut self, slot: usize) {
        self.reservations[slot] = None;
    }

    /// The GPU occupancy (fraction of device cycles, `0..=max`) that
    /// streams *other than* `slot` put on the device over the window
    /// ending at `now_ms`. Demand is spread uniformly over each
    /// record's interval; partial overlaps count proportionally.
    pub fn occupancy_excluding(&self, slot: usize, now_ms: f64) -> f64 {
        let lo = now_ms - self.window_ms;
        let in_window = |r: &UsageRecord| {
            let overlap = (r.end_ms.min(now_ms) - r.start_ms.max(lo)).max(0.0);
            if overlap <= 0.0 {
                return 0.0;
            }
            let span = (r.end_ms - r.start_ms).max(1e-9);
            r.gpu_demand_ms * (overlap / span).min(1.0)
        };
        let mut demand = 0.0;
        for (j, q) in self.streams.iter().enumerate() {
            if j == slot {
                continue;
            }
            for r in q {
                demand += in_window(r);
            }
            if let Some(r) = &self.reservations[j] {
                demand += in_window(r);
            }
        }
        (demand / self.window_ms).min(self.max_occupancy)
    }

    /// The processor-sharing slowdown factor stream `slot` observes at
    /// `now_ms`: `1 / (1 - rho_others)`, the same stretch the paper's
    /// CG applies for a g% contender — but with `rho` *measured* from
    /// the co-scheduled streams instead of configured.
    pub fn slowdown_for(&self, slot: usize, now_ms: f64) -> f64 {
        1.0 / (1.0 - self.occupancy_excluding(slot, now_ms))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_other_streams_means_no_slowdown() {
        let mut d = SharedDevice::new(1000.0, 0.95);
        let a = d.register();
        d.record(a, 0.0, 500.0, 400.0);
        // A stream never contends with itself.
        assert_eq!(d.occupancy_excluding(a, 500.0), 0.0);
        assert_eq!(d.slowdown_for(a, 500.0), 1.0);
    }

    #[test]
    fn occupancy_measures_other_streams_demand() {
        let mut d = SharedDevice::new(1000.0, 0.95);
        let a = d.register();
        let b = d.register();
        // Stream b demanded 500 GPU-ms over the last 1000 ms: rho = 0.5,
        // slowdown = 2x — the paper's 50% CG, but measured.
        d.record(b, 0.0, 1000.0, 500.0);
        let rho = d.occupancy_excluding(a, 1000.0);
        assert!((rho - 0.5).abs() < 1e-9, "rho {rho}");
        assert!((d.slowdown_for(a, 1000.0) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn partial_overlap_counts_proportionally() {
        let mut d = SharedDevice::new(1000.0, 0.95);
        let a = d.register();
        let b = d.register();
        // Record spans 500..1500; window at now=1000 is 0..1000 → half
        // the record's 400 GPU-ms lands in-window.
        d.record(b, 500.0, 1500.0, 400.0);
        let rho = d.occupancy_excluding(a, 1000.0);
        assert!((rho - 0.2).abs() < 1e-9, "rho {rho}");
    }

    #[test]
    fn more_streams_mean_more_slowdown() {
        let mut d = SharedDevice::new(1000.0, 0.95);
        let me = d.register();
        let mut prev = d.slowdown_for(me, 1000.0);
        for _ in 0..6 {
            let other = d.register();
            d.record(other, 0.0, 1000.0, 120.0);
            let s = d.slowdown_for(me, 1000.0);
            assert!(s > prev, "slowdown {s} not increasing");
            prev = s;
        }
    }

    #[test]
    fn occupancy_is_capped() {
        let mut d = SharedDevice::new(1000.0, 0.9);
        let a = d.register();
        let b = d.register();
        d.record(b, 0.0, 1000.0, 5000.0); // overload
        assert_eq!(d.occupancy_excluding(a, 1000.0), 0.9);
        assert!((d.slowdown_for(a, 1000.0) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn reservations_count_for_others_until_cleared() {
        let mut d = SharedDevice::new(1000.0, 0.95);
        let a = d.register();
        let b = d.register();
        d.reserve(b, 500.0, 1000.0, 250.0);
        // b's in-flight work is visible to a...
        let rho = d.occupancy_excluding(a, 1000.0);
        assert!((rho - 0.25).abs() < 1e-9, "rho {rho}");
        // ...but never to b itself.
        assert_eq!(d.occupancy_excluding(b, 1000.0), 0.0);
        d.clear_reservation(b);
        assert_eq!(d.occupancy_excluding(a, 1000.0), 0.0);
    }

    #[test]
    fn reservation_is_replaced_not_accumulated() {
        let mut d = SharedDevice::new(1000.0, 0.95);
        let a = d.register();
        let b = d.register();
        d.reserve(b, 0.0, 1000.0, 900.0);
        d.reserve(b, 0.0, 1000.0, 100.0);
        let rho = d.occupancy_excluding(a, 1000.0);
        assert!((rho - 0.1).abs() < 1e-9, "rho {rho}");
    }

    #[test]
    fn record_straddling_window_boundary_counts_inside_share_only() {
        let mut d = SharedDevice::new(1000.0, 0.95);
        let a = d.register();
        let b = d.register();
        // Window at now=2000 is 1000..2000; the record spans 600..1400,
        // so 400 of its 800 ms interval (half of 300 GPU-ms) is inside.
        d.record(b, 600.0, 1400.0, 300.0);
        let rho = d.occupancy_excluding(a, 2000.0);
        assert!((rho - 0.15).abs() < 1e-9, "rho {rho}");
        // The same proportional rule applies to a reservation on the
        // boundary: 1700..2300 overlaps the window for half its span.
        d.reserve(b, 1700.0, 2300.0, 200.0);
        let rho = d.occupancy_excluding(a, 2000.0);
        assert!((rho - 0.25).abs() < 1e-9, "rho {rho}");
    }

    #[test]
    fn stale_reservation_outside_window_adds_nothing() {
        let mut d = SharedDevice::new(1000.0, 0.95);
        let a = d.register();
        let b = d.register();
        // A reservation that was never cleared but whose interval has
        // aged fully out of the query window must contribute zero, not
        // linger as phantom load.
        d.reserve(b, 0.0, 400.0, 350.0);
        assert!(d.occupancy_excluding(a, 400.0) > 0.0);
        assert_eq!(d.occupancy_excluding(a, 5000.0), 0.0);
        assert_eq!(d.slowdown_for(a, 5000.0), 1.0);
    }

    #[test]
    fn slowdown_is_exactly_one_at_zero_co_stream_load() {
        let mut d = SharedDevice::new(1000.0, 0.95);
        let a = d.register();
        let b = d.register();
        // Registered but idle co-streams impose no stretch, including a
        // zero-demand record and a zero-length interval.
        d.record(b, 500.0, 500.0, 0.0);
        assert_eq!(d.occupancy_excluding(a, 1000.0), 0.0);
        assert_eq!(d.slowdown_for(a, 1000.0), 1.0);
    }

    #[test]
    fn old_records_age_out_of_the_window() {
        let mut d = SharedDevice::new(1000.0, 0.95);
        let a = d.register();
        let b = d.register();
        d.record(b, 0.0, 100.0, 90.0);
        assert!(d.occupancy_excluding(a, 100.0) > 0.0);
        // 2000 ms later the burst is outside the window.
        assert_eq!(d.occupancy_excluding(a, 2100.0), 0.0);
    }
}
