//! The device simulator: charges op latencies against the virtual clock.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::clock::VirtualClock;
use crate::contention::ContentionGenerator;
use crate::noise::LatencyNoise;
use crate::profile::{DeviceKind, DeviceProfile};

/// Which execution unit an op runs on. GPU ops are subject to GPU
/// contention; CPU ops are not.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpUnit {
    /// Runs on the mobile GPU (detectors, CNN feature extractors, the
    /// accuracy-prediction networks).
    Gpu,
    /// Runs on the CPU complex (trackers, HoC/HOG extraction, light
    /// features, the optimization solve).
    Cpu,
}

/// A simulated device: profile + contention + noise + clock.
///
/// # Examples
///
/// ```
/// use lr_device::{DeviceKind, DeviceSim, OpUnit};
///
/// let mut dev = DeviceSim::new(DeviceKind::JetsonTx2, 0.0, 7);
/// let charged = dev.charge(OpUnit::Gpu, 30.0);
/// assert!(charged > 0.0);
/// assert!((dev.now_ms() - charged).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct DeviceSim {
    profile: DeviceProfile,
    contention: ContentionGenerator,
    noise: LatencyNoise,
    clock: VirtualClock,
    rng: StdRng,
}

impl DeviceSim {
    /// Creates a device simulator.
    ///
    /// # Panics
    ///
    /// Panics if `contention_pct` is outside `[0, 99]`.
    pub fn new(kind: DeviceKind, contention_pct: f64, seed: u64) -> Self {
        Self {
            profile: kind.profile(),
            contention: ContentionGenerator::new(contention_pct),
            noise: LatencyNoise::default(),
            clock: VirtualClock::new(),
            rng: StdRng::seed_from_u64(seed ^ 0x0D3B_1CE5),
        }
    }

    /// Replaces the latency noise model (tests use [`LatencyNoise::none`]).
    pub fn with_noise(mut self, noise: LatencyNoise) -> Self {
        self.noise = noise;
        self
    }

    /// The device profile.
    pub fn profile(&self) -> &DeviceProfile {
        &self.profile
    }

    /// Current GPU contention level in percent.
    pub fn contention_pct(&self) -> f64 {
        self.contention.gpu_level_pct()
    }

    /// Changes the contention level mid-run (the paper's CG is toggled
    /// between experiments).
    pub fn set_contention_pct(&mut self, pct: f64) {
        self.contention = ContentionGenerator::new(pct);
    }

    /// Current virtual time in milliseconds.
    pub fn now_ms(&self) -> f64 {
        self.clock.now_ms()
    }

    /// Resets the virtual clock (not the RNG) to zero.
    pub fn reset_clock(&mut self) {
        self.clock.reset();
    }

    /// Charges an op with the given TX2-calibrated base latency; advances
    /// the clock and returns the actual charged milliseconds.
    ///
    /// # Panics
    ///
    /// Panics if `base_tx2_ms` is negative or non-finite.
    pub fn charge(&mut self, unit: OpUnit, base_tx2_ms: f64) -> f64 {
        assert!(
            base_tx2_ms.is_finite() && base_tx2_ms >= 0.0,
            "invalid base latency: {base_tx2_ms}"
        );
        let device_factor = match unit {
            OpUnit::Gpu => self.profile.gpu_speed_factor,
            OpUnit::Cpu => self.profile.cpu_speed_factor,
        };
        let contention_factor = match unit {
            OpUnit::Gpu => self.contention.sample_gpu_slowdown(&mut self.rng),
            OpUnit::Cpu => 1.0,
        };
        let noise = self.noise.sample(&mut self.rng);
        let ms = base_tx2_ms * device_factor * contention_factor * noise;
        self.clock.advance(ms);
        ms
    }

    /// Advances the clock by exactly `ms` (no device, contention, or
    /// noise factors). Used for costs that are already fully sampled
    /// (switching outliers) or that do not scale with the silicon
    /// (interpreter overhead of a legacy pipeline).
    ///
    /// # Panics
    ///
    /// Panics if `ms` is negative or non-finite.
    pub fn charge_fixed(&mut self, ms: f64) -> f64 {
        self.clock.advance(ms);
        ms
    }

    /// The *expected* latency of an op on this device at the current mean
    /// contention, without noise. Used when profiling offline tables, not
    /// by the online scheduler (which must learn its latency model from
    /// observed data).
    pub fn expected_ms(&self, unit: OpUnit, base_tx2_ms: f64) -> f64 {
        let device_factor = match unit {
            OpUnit::Gpu => self.profile.gpu_speed_factor,
            OpUnit::Cpu => self.profile.cpu_speed_factor,
        };
        let contention_factor = match unit {
            OpUnit::Gpu => self.contention.mean_gpu_slowdown(),
            OpUnit::Cpu => 1.0,
        };
        base_tx2_ms * device_factor * contention_factor
    }

    /// Access to the device RNG for co-located stochastic processes
    /// (detection noise shares the device's randomness stream so whole
    /// experiment runs stay reproducible from one seed).
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_advances_clock_by_return_value() {
        let mut dev = DeviceSim::new(DeviceKind::JetsonTx2, 0.0, 1);
        let a = dev.charge(OpUnit::Gpu, 10.0);
        let b = dev.charge(OpUnit::Cpu, 5.0);
        assert!((dev.now_ms() - (a + b)).abs() < 1e-9);
    }

    #[test]
    fn noiseless_tx2_charge_equals_base() {
        let mut dev =
            DeviceSim::new(DeviceKind::JetsonTx2, 0.0, 1).with_noise(LatencyNoise::none());
        assert_eq!(dev.charge(OpUnit::Gpu, 25.0), 25.0);
        assert_eq!(dev.charge(OpUnit::Cpu, 25.0), 25.0);
    }

    #[test]
    fn xavier_is_faster_than_tx2() {
        let mut tx2 =
            DeviceSim::new(DeviceKind::JetsonTx2, 0.0, 1).with_noise(LatencyNoise::none());
        let mut xv =
            DeviceSim::new(DeviceKind::AgxXavier, 0.0, 1).with_noise(LatencyNoise::none());
        assert!(xv.charge(OpUnit::Gpu, 30.0) < tx2.charge(OpUnit::Gpu, 30.0));
    }

    #[test]
    fn contention_slows_gpu_but_not_cpu() {
        let mut dev =
            DeviceSim::new(DeviceKind::JetsonTx2, 50.0, 2).with_noise(LatencyNoise::none());
        let n = 2000;
        let gpu_mean: f64 =
            (0..n).map(|_| dev.charge(OpUnit::Gpu, 10.0)).sum::<f64>() / n as f64;
        let cpu_mean: f64 =
            (0..n).map(|_| dev.charge(OpUnit::Cpu, 10.0)).sum::<f64>() / n as f64;
        assert!(gpu_mean > 15.0, "gpu mean {gpu_mean} not slowed");
        assert!((cpu_mean - 10.0).abs() < 1e-9, "cpu affected by contention");
    }

    #[test]
    fn expected_ms_reflects_mean_contention() {
        let dev = DeviceSim::new(DeviceKind::JetsonTx2, 50.0, 3);
        assert!((dev.expected_ms(OpUnit::Gpu, 10.0) - 20.0).abs() < 1e-9);
        assert!((dev.expected_ms(OpUnit::Cpu, 10.0) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn same_seed_same_charges() {
        let run = || {
            let mut dev = DeviceSim::new(DeviceKind::JetsonTx2, 30.0, 9);
            (0..50)
                .map(|_| dev.charge(OpUnit::Gpu, 12.0))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn reset_clock_keeps_rng_sequence() {
        let mut dev = DeviceSim::new(DeviceKind::JetsonTx2, 0.0, 4);
        let _ = dev.charge(OpUnit::Gpu, 10.0);
        dev.reset_clock();
        assert_eq!(dev.now_ms(), 0.0);
    }
}
