//! Serving capacity: how many concurrent camera streams one board
//! sustains, with and without SLO-aware admission control.
//!
//! Sweeps 1→32 offered streams (a Gold/Silver/Bronze mix) through the
//! `lr-serve` runtime on TX2 and AGX Xavier. Contention is endogenous:
//! each stream's slowdown is measured from the co-scheduled streams'
//! GPU occupancy, so the table shows real capacity collapse — and how
//! admission control converts it into bounded admission instead of
//! unbounded violation.
//!
//! Writes the table to `results_serve_scaling.txt` and verifies two
//! properties: a matched stream's p95 never decreases as streams are
//! added (measured on an adaptation-frozen probe replica, which
//! isolates the raw slowdown — an *adaptive* stream reconfigures to
//! cheaper branches under load, masking it), and at 32 offered streams
//! the admitted SLO-violation rate is strictly lower with admission
//! control than without.
//!
//! Usage: `cargo run --release -p lr-bench --bin serve_scaling [small|paper]`

use std::sync::Arc;

use litereconfig::{Policy, TrainedScheduler};
use lr_bench::{scale_from_args, ExperimentScale, Suite};
use lr_device::DeviceKind;
use lr_eval::TextTable;
use lr_serve::{serve, ServeConfig, ServeReport, SloClass, StreamSpec};

const COUNTS: [usize; 6] = [1, 2, 4, 8, 16, 32];

/// A deterministic Gold/Silver/Bronze mix: stream `i` keeps its class
/// across sweep points, so growing `n` only *adds* load.
fn mixed_specs(n: usize, frames: usize) -> Vec<StreamSpec> {
    (0..n)
        .map(|i| {
            let class = match i % 3 {
                0 => SloClass::Gold,
                1 => SloClass::Silver,
                _ => SloClass::Bronze,
            };
            StreamSpec::synthetic(i as u32, class, frames)
        })
        .collect()
}

/// What one sweep point (device × admission × n) measured, pooled over
/// seed replicas to tame p95 noise.
struct Point {
    admitted: usize,
    degraded: usize,
    rejected: usize,
    latency: lr_eval::LatencyStats,
    /// The matched stream cam-00 (same video, seed, and class at every
    /// sweep point) from a probe replica with latency-model adaptation
    /// frozen: branch choices never change, so its samples isolate the
    /// raw endogenous slowdown. (In the adaptive rows, a contended
    /// scheduler reconfigures to cheaper branches, which can *lower*
    /// p95 while mAP drops — adaptation masks the load signal.)
    /// Only measured for the no-admission sweep.
    cam00_frozen: Option<lr_eval::LatencyStats>,
    violation_pct: f64,
    mean_map_pct: f64,
}

fn run_point(
    device: DeviceKind,
    admission: bool,
    n: usize,
    frames: usize,
    trained: Arc<TrainedScheduler>,
    suite: &mut Suite,
) -> Point {
    const SEEDS: [u64; 3] = [42, 43, 44];
    let specs = mixed_specs(n, frames);

    // The seed replicas (and the adaptation-frozen probe replicas) are
    // independent serve() runs, so fan them out. Each worker keeps its
    // own FeatureService: rasters and features are pure functions of
    // (video, frame), so cache placement changes recompute counts but
    // never values, and `par_map_init` returns reports in cell order —
    // the merged stats below are byte-identical for any worker count.
    let cells: Vec<(u64, bool)> = SEEDS
        .iter()
        .map(|&s| (s, false))
        .chain(
            (!admission)
                .then_some(SEEDS)
                .into_iter()
                .flatten()
                .map(|s| (s, true)),
        )
        .collect();
    let raster_size = suite.svc.raster_size();
    let pool = lr_pool::Pool::from_env();
    let mut runs = pool.par_map_init(
        &cells,
        || litereconfig::FeatureService::with_raster_size(raster_size),
        |svc, _, &(seed, frozen)| {
            let mut cfg = ServeConfig::new(device);
            cfg.admission_enabled = admission;
            cfg.contention_adaptive = !frozen;
            cfg.seed = seed;
            serve(&specs, trained.clone(), Policy::CostBenefit, &cfg, svc)
        },
    );
    let frozen_runs: Vec<ServeReport> = runs.split_off(SEEDS.len());
    let reports = runs;

    let mut latency = lr_eval::LatencyStats::new();
    for r in &reports {
        latency.merge(&r.admitted_latency());
    }
    let cam00_frozen = (!admission).then(|| {
        let mut stats = lr_eval::LatencyStats::new();
        for r in &frozen_runs {
            stats.merge(&r.streams[0].latency);
        }
        stats
    });
    let k = reports.len() as f64;
    Point {
        // Admission decisions depend only on the trained profile, not
        // the seed, so the counts agree across replicas.
        admitted: reports[0].admitted(),
        degraded: reports[0].degraded(),
        rejected: reports[0].rejected(),
        latency,
        cam00_frozen,
        violation_pct: reports
            .iter()
            .map(|r| r.admitted_violation_rate() * 100.0)
            .sum::<f64>()
            / k,
        mean_map_pct: reports
            .iter()
            .map(|r| r.admitted_mean_map() * 100.0)
            .sum::<f64>()
            / k,
    }
}

fn main() {
    let t0 = std::time::Instant::now();
    let scale = scale_from_args();
    let mut suite = Suite::build(scale);
    let frames = match scale {
        ExperimentScale::Small => 48,
        ExperimentScale::Paper => 240,
    };
    let trained = suite.frcnn.clone();

    let mut table = TextTable::new(&[
        "Device",
        "Offered",
        "Admission",
        "Admit/Degr/Rej",
        "Agg p50 (ms)",
        "Agg p95 (ms)",
        "Agg p99 (ms)",
        "cam-00 frozen p95 (ms)",
        "Violations (%)",
        "Mean mAP (%)",
    ]);

    let mut checks_passed = true;
    for device in [DeviceKind::JetsonTx2, DeviceKind::AgxXavier] {
        let mut viol_at_32 = [0.0f64; 2]; // [no admission, admission]
        for admission in [false, true] {
            let mut prev_p95 = 0.0f64;
            for &n in &COUNTS {
                let p = run_point(device, admission, n, frames, trained.clone(), &mut suite);
                let agg = &p.latency;
                let viol = p.violation_pct;
                table.add_row_owned(vec![
                    device.name().to_string(),
                    n.to_string(),
                    if admission { "on" } else { "off" }.to_string(),
                    format!("{}/{}/{}", p.admitted, p.degraded, p.rejected),
                    format!("{:.1}", agg.percentile(0.5)),
                    format!("{:.1}", agg.p95()),
                    format!("{:.1}", agg.p99()),
                    p.cam00_frozen
                        .as_ref()
                        .map_or_else(|| "-".to_string(), |s| format!("{:.1}", s.p95())),
                    format!("{viol:.1}"),
                    format!("{:.1}", p.mean_map_pct),
                ]);
                eprintln!(
                    "[serve_scaling] {} n={} admission={} -> p95 {:.1} ms, viol {:.1}% ({:.0}s elapsed)",
                    device.name(),
                    n,
                    admission,
                    agg.p95(),
                    viol,
                    t0.elapsed().as_secs_f64()
                );
                if n == 32 {
                    viol_at_32[admission as usize] = viol;
                }
                // Endogenous contention: adding streams can only add GPU
                // load on cam-00 (same video, seed, and class at every
                // point). With adaptation frozen its branch choices never
                // change, so each sample is the same work stretched by the
                // measured slowdown — p95 must not improve.
                if let Some(frozen) = &p.cam00_frozen {
                    if frozen.p95() + 1e-9 < prev_p95 {
                        eprintln!(
                            "[serve_scaling] CHECK FAILED: {} cam-00 frozen p95 {:.2} < {:.2} at n={}",
                            device.name(),
                            frozen.p95(),
                            prev_p95,
                            n
                        );
                        checks_passed = false;
                    }
                    prev_p95 = prev_p95.max(frozen.p95());
                }
            }
        }
        if viol_at_32[1] >= viol_at_32[0] {
            eprintln!(
                "[serve_scaling] CHECK FAILED: {} violation rate at 32 streams with admission \
                 ({:.1}%) not below without ({:.1}%)",
                device.name(),
                viol_at_32[1],
                viol_at_32[0]
            );
            checks_passed = false;
        } else {
            eprintln!(
                "[serve_scaling] {} @32 offered: violations {:.1}% (admission) vs {:.1}% (open door)",
                device.name(),
                viol_at_32[1],
                viol_at_32[0]
            );
        }
    }

    let rendered = table.render();
    println!("{rendered}");
    let artifact = format!(
        "serve_scaling: lr-serve capacity sweep ({} frames/stream, seeds 42-44 pooled, scale {:?})\n\
         Classes cycle gold(33.3ms)/silver(50ms)/bronze(100ms); contention is endogenous\n\
         (measured co-stream GPU occupancy), admission capacity 0.85. The cam-00 frozen\n\
         column is a probe replica with adaptation frozen, isolating the raw slowdown\n\
         on one matched stream.\n\n{rendered}\nchecks: {}\n",
        frames,
        scale,
        if checks_passed { "PASS" } else { "FAIL" }
    );
    std::fs::write("results_serve_scaling.txt", artifact).expect("write results_serve_scaling.txt");
    eprintln!(
        "[serve_scaling] wrote results_serve_scaling.txt in {:.0}s",
        t0.elapsed().as_secs_f64()
    );
    assert!(checks_passed, "serve_scaling acceptance checks failed");
}
