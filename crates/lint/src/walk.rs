//! Workspace file discovery.
//!
//! Collects every `.rs` file under the workspace root, skipping build
//! output (`target/`), vendored third-party shims (`vendor/` — not our
//! code to ratchet), and VCS metadata (`.git/`). Paths are returned
//! workspace-relative with forward slashes and sorted, so scans — and
//! therefore baselines — are deterministic across platforms and
//! filesystem iteration orders.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directory names never descended into, at any depth.
const SKIP_DIRS: [&str; 3] = ["target", "vendor", ".git"];

/// A discovered source file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators (the lint/baseline key).
    pub rel: String,
    /// Absolute (or root-joined) path for reading.
    pub abs: PathBuf,
}

/// Collects all lintable `.rs` files under `root`, sorted by relative path.
pub fn collect_rs_files(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut out = Vec::new();
    descend(root, String::new(), &mut out)?;
    out.sort_by(|a, b| a.rel.cmp(&b.rel));
    Ok(out)
}

fn descend(dir: &Path, rel_prefix: String, out: &mut Vec<SourceFile>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = match entry.file_name().into_string() {
            Ok(n) => n,
            // Non-UTF-8 names can't be baseline keys; nothing in this
            // workspace has one, so skipping is safe.
            Err(_) => continue,
        };
        let rel = if rel_prefix.is_empty() {
            name.clone()
        } else {
            format!("{rel_prefix}/{name}")
        };
        let path = entry.path();
        let ty = entry.file_type()?;
        if ty.is_dir() {
            if !SKIP_DIRS.contains(&name.as_str()) {
                descend(&path, rel, out)?;
            }
        } else if ty.is_file() && name.ends_with(".rs") {
            out.push(SourceFile { rel, abs: path });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_own_sources_and_skips_target_and_vendor() {
        // The crate's own workspace root is two levels up.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("workspace root");
        let files = collect_rs_files(root).expect("walk workspace");
        assert!(files.iter().any(|f| f.rel == "crates/lint/src/walk.rs"));
        assert!(files.iter().any(|f| f.rel.starts_with("crates/core/")));
        assert!(!files.iter().any(|f| f.rel.starts_with("target/")));
        assert!(!files.iter().any(|f| f.rel.starts_with("vendor/")));
        let mut sorted = files.clone();
        sorted.sort_by(|a, b| a.rel.cmp(&b.rel));
        assert_eq!(files, sorted, "walk output must be sorted");
    }
}
