/root/repo/target/debug/deps/lr_nn-67fe50f4e17e027e.d: crates/nn/src/lib.rs crates/nn/src/adam.rs crates/nn/src/conv.rs crates/nn/src/init.rs crates/nn/src/layers.rs crates/nn/src/linreg.rs crates/nn/src/loss.rs crates/nn/src/mlp.rs crates/nn/src/optim.rs crates/nn/src/tensor.rs

/root/repo/target/debug/deps/liblr_nn-67fe50f4e17e027e.rlib: crates/nn/src/lib.rs crates/nn/src/adam.rs crates/nn/src/conv.rs crates/nn/src/init.rs crates/nn/src/layers.rs crates/nn/src/linreg.rs crates/nn/src/loss.rs crates/nn/src/mlp.rs crates/nn/src/optim.rs crates/nn/src/tensor.rs

/root/repo/target/debug/deps/liblr_nn-67fe50f4e17e027e.rmeta: crates/nn/src/lib.rs crates/nn/src/adam.rs crates/nn/src/conv.rs crates/nn/src/init.rs crates/nn/src/layers.rs crates/nn/src/linreg.rs crates/nn/src/loss.rs crates/nn/src/mlp.rs crates/nn/src/optim.rs crates/nn/src/tensor.rs

crates/nn/src/lib.rs:
crates/nn/src/adam.rs:
crates/nn/src/conv.rs:
crates/nn/src/init.rs:
crates/nn/src/layers.rs:
crates/nn/src/linreg.rs:
crates/nn/src/loss.rs:
crates/nn/src/mlp.rs:
crates/nn/src/optim.rs:
crates/nn/src/tensor.rs:
