/root/repo/target/debug/deps/lr_eval-e9bd97ef4b76f2a9.d: crates/eval/src/lib.rs crates/eval/src/latency.rs crates/eval/src/map.rs crates/eval/src/report.rs crates/eval/src/table.rs

/root/repo/target/debug/deps/liblr_eval-e9bd97ef4b76f2a9.rlib: crates/eval/src/lib.rs crates/eval/src/latency.rs crates/eval/src/map.rs crates/eval/src/report.rs crates/eval/src/table.rs

/root/repo/target/debug/deps/liblr_eval-e9bd97ef4b76f2a9.rmeta: crates/eval/src/lib.rs crates/eval/src/latency.rs crates/eval/src/map.rs crates/eval/src/report.rs crates/eval/src/table.rs

crates/eval/src/lib.rs:
crates/eval/src/latency.rs:
crates/eval/src/map.rs:
crates/eval/src/report.rs:
crates/eval/src/table.rs:
