/root/repo/target/debug/examples/multi_camera-d5873b32d2a1e389.d: examples/multi_camera.rs

/root/repo/target/debug/examples/multi_camera-d5873b32d2a1e389: examples/multi_camera.rs

examples/multi_camera.rs:
