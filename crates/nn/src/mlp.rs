//! Sequential multi-layer perceptron with mini-batch SGD training.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::layers::{Activation, Dense, DenseVelocity};
use crate::loss;
use crate::optim::Sgd;
use crate::tensor::Matrix;

/// Architecture description for an [`Mlp`].
///
/// # Examples
///
/// The paper's 6-layer accuracy predictor head (after feature projection)
/// with 256-unit hidden layers and `M` outputs:
///
/// ```
/// use lr_nn::MlpConfig;
///
/// let cfg = MlpConfig::regression(512, &[256, 256, 256, 256], 45);
/// assert_eq!(cfg.layer_dims(), vec![512, 256, 256, 256, 256, 45]);
/// ```
#[derive(Debug, Clone)]
pub struct MlpConfig {
    /// Input dimensionality.
    pub input_dim: usize,
    /// Hidden layer widths, in order.
    pub hidden_dims: Vec<usize>,
    /// Output dimensionality.
    pub output_dim: usize,
    /// Activation for hidden layers.
    pub hidden_activation: Activation,
    /// Activation for the output layer.
    pub output_activation: Activation,
}

impl MlpConfig {
    /// A regression network: ReLU hidden layers, linear output.
    pub fn regression(input_dim: usize, hidden_dims: &[usize], output_dim: usize) -> Self {
        Self {
            input_dim,
            hidden_dims: hidden_dims.to_vec(),
            output_dim,
            hidden_activation: Activation::Relu,
            output_activation: Activation::Linear,
        }
    }

    /// Full list of layer dims, input first and output last.
    pub fn layer_dims(&self) -> Vec<usize> {
        let mut dims = Vec::with_capacity(self.hidden_dims.len() + 2);
        dims.push(self.input_dim);
        dims.extend_from_slice(&self.hidden_dims);
        dims.push(self.output_dim);
        dims
    }
}

/// A sequential stack of dense layers trainable with mini-batch SGD.
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Dense>,
    velocities: Vec<DenseVelocity>,
}

impl Mlp {
    /// Builds the network described by `config`, initializing weights from
    /// `rng`.
    ///
    /// # Panics
    ///
    /// Panics if the config has a zero dimension anywhere.
    pub fn new(config: &MlpConfig, rng: &mut impl Rng) -> Self {
        let dims = config.layer_dims();
        assert!(dims.iter().all(|&d| d > 0), "zero-width layer in config");
        let mut layers = Vec::with_capacity(dims.len() - 1);
        for i in 0..dims.len() - 1 {
            let act = if i + 2 == dims.len() {
                config.output_activation
            } else {
                config.hidden_activation
            };
            layers.push(Dense::new(dims[i], dims[i + 1], act, rng));
        }
        let velocities = layers.iter().map(Dense::zero_velocity).collect();
        Self { layers, velocities }
    }

    /// Builds a network from pre-constructed layers (for fixed-weight
    /// stacks and tests).
    ///
    /// # Panics
    ///
    /// Panics if consecutive layer dimensions do not chain.
    pub fn from_layers(layers: Vec<Dense>) -> Self {
        assert!(!layers.is_empty(), "at least one layer required");
        for w in layers.windows(2) {
            assert_eq!(
                w[0].out_dim(),
                w[1].in_dim(),
                "layer dimension mismatch: {} -> {}",
                w[0].out_dim(),
                w[1].in_dim()
            );
        }
        let velocities = layers.iter().map(Dense::zero_velocity).collect();
        Self { layers, velocities }
    }

    /// Input dimensionality.
    pub fn input_dim(&self) -> usize {
        self.layers[0].in_dim()
    }

    /// Output dimensionality.
    pub fn output_dim(&self) -> usize {
        self.layers.last().expect("non-empty").out_dim()
    }

    /// Number of layers.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Total number of trainable parameters.
    pub fn parameter_count(&self) -> usize {
        self.layers.iter().map(Dense::parameter_count).sum()
    }

    /// Inference on a `batch x input_dim` matrix, returning
    /// `batch x output_dim`.
    ///
    /// Uses two ping-pong scratch matrices instead of allocating fresh
    /// activations per layer; the result is bit-identical to chaining
    /// [`Dense::infer`].
    pub fn infer(&self, input: &Matrix) -> Matrix {
        let (first, rest) = self.layers.split_first().expect("non-empty");
        let mut cur = Matrix::zeros(input.rows(), first.out_dim());
        first.infer_into(input, &mut cur);
        let mut next = Matrix::zeros(1, 1);
        for layer in rest {
            layer.infer_into(&cur, &mut next);
            std::mem::swap(&mut cur, &mut next);
        }
        cur
    }

    /// Convenience: inference on a single example given as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != self.input_dim()`.
    pub fn infer_one(&self, input: &[f32]) -> Vec<f32> {
        assert_eq!(input.len(), self.input_dim(), "input dimension mismatch");
        let out = self.infer(&Matrix::row_vector(input));
        out.as_slice().to_vec()
    }

    /// One SGD step on a mini-batch; returns the batch MSE before the
    /// update.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatches between inputs, targets, and the network.
    pub fn train_batch(&mut self, inputs: &Matrix, targets: &Matrix, opt: Sgd) -> f32 {
        assert_eq!(inputs.rows(), targets.rows(), "batch size mismatch");
        assert_eq!(inputs.cols(), self.input_dim(), "input dim mismatch");
        assert_eq!(targets.cols(), self.output_dim(), "target dim mismatch");

        let mut x = inputs.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x);
        }
        let batch_loss = loss::mse(&x, targets);
        crate::debug_assert_finite!(batch_loss, "train_batch loss");
        let mut grad = loss::mse_gradient_batch_mean(&x, targets);
        if opt.grad_clip.is_finite() {
            let norm = grad.frobenius_norm();
            if norm > opt.grad_clip {
                grad.scale_in_place(opt.grad_clip / norm);
            }
        }
        for (layer, vel) in self.layers.iter_mut().zip(self.velocities.iter_mut()).rev() {
            grad = layer.backward(&grad);
            layer.apply_update(opt.learning_rate, opt.momentum, opt.weight_decay, vel);
        }
        batch_loss
    }

    /// Trains for `epochs` epochs over a dataset of row-examples, shuffling
    /// each epoch; returns the per-epoch mean batch losses.
    ///
    /// The dataset is `n x input_dim` inputs with `n x output_dim` targets.
    /// Training stops early if the epoch loss is non-finite (divergence) —
    /// in that case the returned vector is shorter than `epochs`.
    pub fn fit(
        &mut self,
        inputs: &Matrix,
        targets: &Matrix,
        opt: Sgd,
        epochs: usize,
        batch_size: usize,
        rng: &mut impl Rng,
    ) -> Vec<f32> {
        assert!(batch_size > 0, "batch size must be positive");
        assert_eq!(inputs.rows(), targets.rows(), "dataset size mismatch");
        let n = inputs.rows();
        let mut order: Vec<usize> = (0..n).collect();
        let mut history = Vec::with_capacity(epochs);
        for _ in 0..epochs {
            order.shuffle(rng);
            let mut epoch_loss = 0.0;
            let mut batches = 0usize;
            for chunk in order.chunks(batch_size) {
                let bx = gather_rows(inputs, chunk);
                let by = gather_rows(targets, chunk);
                epoch_loss += self.train_batch(&bx, &by, opt);
                batches += 1;
            }
            let mean = epoch_loss / batches.max(1) as f32;
            history.push(mean);
            if !mean.is_finite() {
                break;
            }
        }
        history
    }

    /// Mean squared error of the network on a dataset.
    pub fn evaluate_mse(&self, inputs: &Matrix, targets: &Matrix) -> f32 {
        loss::mse(&self.infer(inputs), targets)
    }
}

/// Collects the given rows of `m` into a new matrix.
fn gather_rows(m: &Matrix, rows: &[usize]) -> Matrix {
    let mut data = Vec::with_capacity(rows.len() * m.cols());
    for &r in rows {
        data.extend_from_slice(m.row(r));
    }
    Matrix::from_vec(rows.len(), m.cols(), data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::seeded_rng;

    #[test]
    fn config_layer_dims() {
        let cfg = MlpConfig::regression(10, &[8, 6], 4);
        assert_eq!(cfg.layer_dims(), vec![10, 8, 6, 4]);
    }

    #[test]
    fn infer_shapes() {
        let mut rng = seeded_rng(1);
        let mlp = Mlp::new(&MlpConfig::regression(4, &[8], 3), &mut rng);
        let out = mlp.infer(&Matrix::zeros(5, 4));
        assert_eq!((out.rows(), out.cols()), (5, 3));
        assert_eq!(mlp.depth(), 2);
    }

    #[test]
    fn parameter_count_matches_architecture() {
        let mut rng = seeded_rng(1);
        let mlp = Mlp::new(&MlpConfig::regression(4, &[8], 3), &mut rng);
        // (4*8 + 8) + (8*3 + 3) = 40 + 27.
        assert_eq!(mlp.parameter_count(), 67);
    }

    #[test]
    fn learns_linear_function() {
        let mut rng = seeded_rng(7);
        let mut mlp = Mlp::new(&MlpConfig::regression(2, &[16], 1), &mut rng);
        // Target: y = 0.5 x0 - 0.25 x1.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..64 {
            let a = (i % 8) as f32 / 8.0 - 0.5;
            let b = (i / 8) as f32 / 8.0 - 0.5;
            xs.extend_from_slice(&[a, b]);
            ys.push(0.5 * a - 0.25 * b);
        }
        let inputs = Matrix::from_vec(64, 2, xs);
        let targets = Matrix::from_vec(64, 1, ys);
        let history = mlp.fit(&inputs, &targets, Sgd::paper(0.05, 0.0), 200, 16, &mut rng);
        let final_loss = *history.last().unwrap();
        assert!(
            final_loss < 1e-3,
            "network failed to fit a linear map: loss {final_loss}"
        );
        assert!(history[0] > final_loss, "loss did not decrease");
    }

    #[test]
    fn learns_nonlinear_function() {
        let mut rng = seeded_rng(13);
        let mut mlp = Mlp::new(&MlpConfig::regression(1, &[32, 32], 1), &mut rng);
        let n = 128;
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..n {
            let x = i as f32 / n as f32 * 2.0 - 1.0;
            xs.push(x);
            ys.push(x * x);
        }
        let inputs = Matrix::from_vec(n, 1, xs);
        let targets = Matrix::from_vec(n, 1, ys);
        mlp.fit(&inputs, &targets, Sgd::paper(0.05, 0.0), 400, 32, &mut rng);
        let mse = mlp.evaluate_mse(&inputs, &targets);
        assert!(mse < 5e-3, "failed to fit x^2: mse {mse}");
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let cfg = MlpConfig::regression(4, &[8], 2);
        let mut with_decay = Mlp::new(&cfg, &mut seeded_rng(3));
        let mut without_decay = with_decay.clone();
        let inputs = Matrix::zeros(8, 4);
        let targets = Matrix::zeros(8, 2);
        for _ in 0..50 {
            with_decay.train_batch(&inputs, &targets, Sgd::paper(0.1, 1e-2));
            without_decay.train_batch(&inputs, &targets, Sgd::paper(0.1, 0.0));
        }
        let norm_with: f32 = with_decay.layers[0].weights().frobenius_norm();
        let norm_without: f32 = without_decay.layers[0].weights().frobenius_norm();
        assert!(
            norm_with < norm_without,
            "decay {norm_with} !< no-decay {norm_without}"
        );
    }

    #[test]
    fn training_is_deterministic_per_seed() {
        let cfg = MlpConfig::regression(3, &[8], 1);
        let inputs = Matrix::from_vec(4, 3, (0..12).map(|i| i as f32 / 12.0).collect());
        let targets = Matrix::from_vec(4, 1, vec![0.1, 0.2, 0.3, 0.4]);
        let run = || {
            let mut rng = seeded_rng(99);
            let mut mlp = Mlp::new(&cfg, &mut rng);
            mlp.fit(&inputs, &targets, Sgd::default(), 20, 2, &mut rng);
            mlp.infer_one(&[0.5, 0.5, 0.5])
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "input dimension mismatch")]
    fn infer_one_rejects_wrong_width() {
        let mut rng = seeded_rng(1);
        let mlp = Mlp::new(&MlpConfig::regression(4, &[4], 1), &mut rng);
        let _ = mlp.infer_one(&[1.0, 2.0]);
    }
}
