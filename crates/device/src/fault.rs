//! Deterministic fault injection: seeded schedules of GPU disturbances.
//!
//! Real Jetson-class boards fail in ways the clean simulator never
//! shows: thermal throttling windows that stretch every GPU op, transient
//! op failures (driver resets, kernel launch timeouts) that produce no
//! output, and stall spikes where one op takes several times its usual
//! latency. A [`FaultPlan`] is a fully deterministic, per-stream schedule
//! of those episodes:
//!
//! - **Throttle windows** are precomputed at plan construction from the
//!   plan seed: periodic-ish episodes during which every GPU op's demand
//!   is multiplied by [`FaultConfig::throttle_factor`].
//! - **Transient failures** and **stall spikes** are decided per GPU op
//!   by a counter-based hash of `(seed, op_index)` — no shared RNG state,
//!   so injecting faults never perturbs the device's latency-noise
//!   stream, and an empty plan leaves every existing result byte-
//!   identical.
//!
//! The executor consults the plan from [`DeviceSim::run_op`]; see the
//! fallback ladder in `litereconfig::pipeline` for how failures are
//! absorbed.
//!
//! [`DeviceSim::run_op`]: crate::DeviceSim::run_op

/// A typed failure of a device op. This is the *first* error type on the
/// simulator's hot path: every layer above (`Mbek`, the scheduler, the
/// pipeline, the serving dispatcher) must either absorb it through a
/// documented fallback or surface it as a typed eviction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OpError {
    /// The op failed transiently (driver reset, launch timeout) and
    /// produced no output. `wasted_ms` of virtual time was already
    /// charged to the clock before the failure was detected.
    Transient {
        /// Virtual milliseconds burned before the failure surfaced.
        wasted_ms: f64,
    },
}

impl std::fmt::Display for OpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OpError::Transient { wasted_ms } => {
                write!(f, "transient GPU op failure ({wasted_ms:.2} ms wasted)")
            }
        }
    }
}

impl std::error::Error for OpError {}

/// What the plan injects into one GPU op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEvent {
    /// Nothing: the op runs normally (possibly throttled).
    None,
    /// The op completes but its latency is multiplied by the stall
    /// factor (scheduler preemption, memory-pressure hiccup). Absorbed
    /// by the executor; callers only see a slow op.
    Stall,
    /// The op fails transiently and produces no output.
    Transient,
}

/// Parameters of a deterministic fault schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Seed of the schedule. Two plans with the same config are
    /// identical; per-stream plans should derive decorrelated seeds.
    pub seed: u64,
    /// Probability that a GPU op fails transiently.
    pub transient_rate: f64,
    /// Probability that a GPU op stalls (absorbed latency spike).
    pub stall_rate: f64,
    /// Latency multiplier applied on a stall.
    pub stall_factor: f64,
    /// Fraction of the op's would-be latency burned before a transient
    /// failure is detected.
    pub failure_waste_fraction: f64,
    /// Mean spacing between thermal-throttle episodes, virtual ms.
    pub throttle_period_ms: f64,
    /// Duration of one throttle episode, virtual ms.
    pub throttle_duration_ms: f64,
    /// GPU demand multiplier while a throttle episode is active (the
    /// silicon clocks down, so the device genuinely works longer).
    pub throttle_factor: f64,
    /// Horizon up to which throttle windows are generated, virtual ms.
    pub horizon_ms: f64,
}

impl FaultConfig {
    /// A moderate disturbance profile: occasional transient failures and
    /// stalls, with periodic thermal-throttle episodes — roughly what a
    /// passively cooled board under sustained load exhibits.
    pub fn moderate(seed: u64) -> Self {
        Self {
            seed,
            transient_rate: 0.02,
            stall_rate: 0.01,
            stall_factor: 4.0,
            failure_waste_fraction: 0.5,
            throttle_period_ms: 4_000.0,
            throttle_duration_ms: 800.0,
            throttle_factor: 2.5,
            horizon_ms: 600_000.0,
        }
    }

    /// The same profile with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first out-of-range field: rates must
    /// be probabilities summing to at most 1, factors at least 1, the
    /// waste fraction in `[0, 1]`, and durations/periods positive.
    pub fn validate(&self) -> Result<(), String> {
        let prob = |v: f64, name: &str| {
            if !(0.0..=1.0).contains(&v) || !v.is_finite() {
                Err(format!("{name} {v} outside [0, 1]"))
            } else {
                Ok(())
            }
        };
        prob(self.transient_rate, "transient_rate")?;
        prob(self.stall_rate, "stall_rate")?;
        prob(self.failure_waste_fraction, "failure_waste_fraction")?;
        if self.transient_rate + self.stall_rate > 1.0 {
            return Err(format!(
                "transient_rate + stall_rate = {} exceeds 1",
                self.transient_rate + self.stall_rate
            ));
        }
        if !(self.stall_factor >= 1.0 && self.stall_factor.is_finite()) {
            return Err(format!("stall_factor {} below 1", self.stall_factor));
        }
        if !(self.throttle_factor >= 1.0 && self.throttle_factor.is_finite()) {
            return Err(format!("throttle_factor {} below 1", self.throttle_factor));
        }
        for (v, name) in [
            (self.throttle_period_ms, "throttle_period_ms"),
            (self.throttle_duration_ms, "throttle_duration_ms"),
            (self.horizon_ms, "horizon_ms"),
        ] {
            if !(v > 0.0 && v.is_finite()) {
                return Err(format!("{name} {v} not positive"));
            }
        }
        Ok(())
    }
}

/// SplitMix64: the counter-to-hash finalizer the schedule draws from.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A uniform draw in `[0, 1)` from a seed/counter pair.
fn unit_draw(seed: u64, counter: u64) -> f64 {
    (splitmix64(seed ^ counter.wrapping_mul(0xA076_1D64_78BD_642F)) >> 11) as f64
        / (1u64 << 53) as f64
}

/// A seeded, fully deterministic schedule of GPU fault episodes for one
/// stream's device. See the module docs for the fault model.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    cfg: FaultConfig,
    /// Precomputed `[start, end)` throttle windows, sorted by start.
    throttle_windows: Vec<(f64, f64)>,
    /// Per-op decision counter (one draw per GPU op).
    op_index: u64,
}

impl FaultPlan {
    /// Builds the schedule from a validated configuration.
    ///
    /// # Errors
    ///
    /// Returns the validation message for an out-of-range config.
    pub fn try_generate(cfg: FaultConfig) -> Result<Self, String> {
        cfg.validate()?;
        let mut throttle_windows = Vec::new();
        let mut t = 0.0;
        let mut k = 0u64;
        while t < cfg.horizon_ms {
            // Jittered spacing in [0.5, 1.5) of the period keeps the
            // windows from beating against frame pacing.
            let gap = cfg.throttle_period_ms * (0.5 + unit_draw(cfg.seed ^ 0x7412, k));
            t += gap;
            k += 1;
            if t >= cfg.horizon_ms {
                break;
            }
            throttle_windows.push((t, t + cfg.throttle_duration_ms));
            t += cfg.throttle_duration_ms;
        }
        Ok(Self {
            cfg,
            throttle_windows,
            op_index: 0,
        })
    }

    /// Builds the schedule, panicking on an invalid configuration (use
    /// [`FaultPlan::try_generate`] to handle it).
    pub fn generate(cfg: FaultConfig) -> Self {
        Self::try_generate(cfg).unwrap_or_else(|e| panic!("FaultPlan::generate: {e}"))
    }

    /// The plan's configuration.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Number of precomputed throttle windows.
    pub fn num_throttle_windows(&self) -> usize {
        self.throttle_windows.len()
    }

    /// The demand multiplier in effect at `now_ms`: the throttle factor
    /// inside an episode, 1 otherwise.
    pub fn throttle_factor_at(&self, now_ms: f64) -> f64 {
        // Windows are sorted and disjoint; a binary search on starts
        // finds the only candidate.
        let i = self
            .throttle_windows
            .partition_point(|&(start, _)| start <= now_ms);
        if i > 0 {
            let (_, end) = self.throttle_windows[i - 1];
            if now_ms < end {
                return self.cfg.throttle_factor;
            }
        }
        1.0
    }

    /// Decides the fault event for the next GPU op, consuming one draw.
    pub fn next_gpu_event(&mut self) -> FaultEvent {
        let u = unit_draw(self.cfg.seed, self.op_index);
        self.op_index += 1;
        if u < self.cfg.transient_rate {
            FaultEvent::Transient
        } else if u < self.cfg.transient_rate + self.cfg.stall_rate {
            FaultEvent::Stall
        } else {
            FaultEvent::None
        }
    }

    /// GPU ops decided so far.
    pub fn ops_decided(&self) -> u64 {
        self.op_index
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(seed: u64) -> FaultPlan {
        FaultPlan::generate(FaultConfig::moderate(seed))
    }

    #[test]
    fn same_seed_same_schedule() {
        let mut a = plan(7);
        let mut b = plan(7);
        assert_eq!(a, b);
        let ea: Vec<_> = (0..500).map(|_| a.next_gpu_event()).collect();
        let eb: Vec<_> = (0..500).map(|_| b.next_gpu_event()).collect();
        assert_eq!(ea, eb);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = plan(1);
        let mut b = plan(2);
        let ea: Vec<_> = (0..500).map(|_| a.next_gpu_event()).collect();
        let eb: Vec<_> = (0..500).map(|_| b.next_gpu_event()).collect();
        assert_ne!(ea, eb);
    }

    #[test]
    fn event_rates_match_config() {
        let mut p = plan(3);
        let n = 100_000;
        let mut transients = 0;
        let mut stalls = 0;
        for _ in 0..n {
            match p.next_gpu_event() {
                FaultEvent::Transient => transients += 1,
                FaultEvent::Stall => stalls += 1,
                FaultEvent::None => {}
            }
        }
        let t = transients as f64 / n as f64;
        let s = stalls as f64 / n as f64;
        assert!((0.01..0.03).contains(&t), "transient rate {t}");
        assert!((0.005..0.02).contains(&s), "stall rate {s}");
    }

    #[test]
    fn throttle_windows_cover_roughly_their_duty_cycle() {
        let p = plan(4);
        let cfg = p.config();
        assert!(p.num_throttle_windows() > 50);
        // Sample the factor over the horizon; the duty cycle is about
        // duration / (duration + period).
        let samples = 20_000;
        let throttled = (0..samples)
            .filter(|&i| {
                let t = cfg.horizon_ms * i as f64 / samples as f64;
                p.throttle_factor_at(t) > 1.0
            })
            .count();
        let duty = throttled as f64 / samples as f64;
        let expect = cfg.throttle_duration_ms / (cfg.throttle_duration_ms + cfg.throttle_period_ms);
        assert!(
            (duty - expect).abs() < 0.08,
            "duty {duty} vs expected {expect}"
        );
    }

    #[test]
    fn throttle_factor_is_one_outside_windows() {
        let p = plan(5);
        assert_eq!(p.throttle_factor_at(0.0), 1.0);
        assert_eq!(p.throttle_factor_at(f64::MAX), 1.0);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut c = FaultConfig::moderate(1);
        c.transient_rate = 1.5;
        assert!(FaultPlan::try_generate(c).is_err());
        let mut c = FaultConfig::moderate(1);
        c.stall_factor = 0.5;
        assert!(FaultPlan::try_generate(c).is_err());
        let mut c = FaultConfig::moderate(1);
        c.transient_rate = 0.7;
        c.stall_rate = 0.6;
        assert!(FaultPlan::try_generate(c).is_err());
        let mut c = FaultConfig::moderate(1);
        c.throttle_period_ms = 0.0;
        assert!(FaultPlan::try_generate(c).is_err());
    }

    #[test]
    fn op_error_displays_waste() {
        let e = OpError::Transient { wasted_ms: 12.5 };
        assert!(e.to_string().contains("12.50 ms"));
    }
}
