/root/repo/target/debug/examples/drone_tracking-999b608030509a82.d: examples/drone_tracking.rs

/root/repo/target/debug/examples/drone_tracking-999b608030509a82: examples/drone_tracking.rs

examples/drone_tracking.rs:
