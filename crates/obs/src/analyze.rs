//! Trace analysis: turn a run's decision records into the questions an
//! operator actually asks — where did each stream live in branch space,
//! how often and where did it switch, where did the latency budget go,
//! and *why* did each SLO violation happen.

use std::collections::BTreeMap;

use crate::record::DecisionRecord;

/// How long a branch was resident: how many decisions chose it and how
/// many frames ran under it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Residency {
    /// Catalog key of the branch.
    pub key: String,
    /// Decisions that selected this branch.
    pub decisions: u64,
    /// Frames executed under this branch.
    pub frames: u64,
}

/// Per-branch residency, sorted by branch key.
pub fn branch_residency(records: &[DecisionRecord]) -> Vec<Residency> {
    let mut map: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
    for r in records {
        let e = map.entry(&r.chosen_key).or_insert((0, 0));
        e.0 += 1;
        e.1 += r.frames as u64;
    }
    map.into_iter()
        .map(|(key, (decisions, frames))| Residency {
            key: key.to_string(),
            decisions,
            frames,
        })
        .collect()
}

/// Switch transitions `(src, dst) -> count`, sorted by `(src, dst)`.
pub fn switch_matrix(records: &[DecisionRecord]) -> Vec<(String, String, u64)> {
    let mut map: BTreeMap<(&str, &str), u64> = BTreeMap::new();
    for r in records {
        if r.switched && !r.prev_key.is_empty() {
            *map.entry((&r.prev_key, &r.chosen_key)).or_insert(0) += 1;
        }
    }
    map.into_iter()
        .map(|((s, d), n)| (s.to_string(), d.to_string(), n))
        .collect()
}

/// Mean decomposition of the per-frame latency budget over a set of
/// decisions, mirroring the paper's Eq. 3 terms.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BudgetBreakdown {
    /// Decisions aggregated.
    pub decisions: u64,
    /// Mean predicted kernel latency `L0(b, f_L)` of the chosen branch.
    pub l0_ms: f64,
    /// Mean scheduler overhead `S0`.
    pub s0_ms: f64,
    /// Mean heavy-feature overhead `S(f_H)`.
    pub s_heavy_ms: f64,
    /// Mean predicted switch cost `C(b0, b)`.
    pub c_switch_ms: f64,
    /// Mean per-frame amortized overhead.
    pub amortized_ms: f64,
    /// Mean predicted slack against the budget.
    pub slack_ms: f64,
    /// Mean *achieved* per-frame latency.
    pub actual_ms: f64,
    /// 95th percentile of achieved per-frame latency.
    pub actual_p95_ms: f64,
}

/// Aggregate the budget decomposition over `records` (skips records
/// with no scheduler explain, e.g. free-run GoFs never produce one).
pub fn budget_breakdown(records: &[DecisionRecord]) -> BudgetBreakdown {
    let mut out = BudgetBreakdown::default();
    let mut actuals: Vec<f64> = Vec::new();
    for r in records {
        let e = &r.explain;
        out.decisions += 1;
        out.l0_ms += e.branch_kernel_ms.get(e.chosen).copied().unwrap_or(0.0);
        out.s0_ms += e.s0_ms;
        out.s_heavy_ms += e.s_heavy_ms;
        out.c_switch_ms += e.switch_pred_ms;
        out.amortized_ms += e.amortized_ms;
        out.slack_ms += e.slack_ms;
        out.actual_ms += r.per_frame_ms;
        actuals.push(r.per_frame_ms);
    }
    if out.decisions > 0 {
        let n = out.decisions as f64;
        out.l0_ms /= n;
        out.s0_ms /= n;
        out.s_heavy_ms /= n;
        out.c_switch_ms /= n;
        out.amortized_ms /= n;
        out.slack_ms /= n;
        out.actual_ms /= n;
        actuals.sort_by(|a, b| a.total_cmp(b));
        let idx = ((actuals.len() as f64 - 1.0) * 0.95).round() as usize;
        out.actual_p95_ms = actuals[idx.min(actuals.len() - 1)];
    }
    out
}

/// Why a GoF violated its SLO. The variants are ordered by attribution
/// precedence: the first matching cause wins, so attribution is
/// deterministic and every violation has exactly one cause.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum ViolationCause {
    /// Faults were absorbed or the fallback ladder fired: wasted or
    /// degraded work blew the budget.
    Fault,
    /// The scheduler already knew no branch could meet the SLO.
    Infeasible,
    /// A reconfiguration cost a large share (> 25%) of the per-frame
    /// budget this GoF.
    Switch,
    /// External GPU contention slowed kernels beyond the profile
    /// (slowdown > 1.15).
    Contention,
    /// None of the above: the branch simply ran over its predicted
    /// latency.
    KernelOverrun,
}

impl ViolationCause {
    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            ViolationCause::Fault => "fault",
            ViolationCause::Infeasible => "infeasible",
            ViolationCause::Switch => "switch",
            ViolationCause::Contention => "contention",
            ViolationCause::KernelOverrun => "kernel_overrun",
        }
    }
}

/// Attribute one violating GoF to its dominant cause.
pub fn attribute_violation(r: &DecisionRecord) -> ViolationCause {
    if r.faults > 0 || !r.degrades.is_empty() {
        ViolationCause::Fault
    } else if !r.explain.feasible {
        ViolationCause::Infeasible
    } else if r.frames > 0 && r.switch_ms / r.frames as f64 > 0.25 * r.explain.slo_ms {
        ViolationCause::Switch
    } else if r.slowdown > 1.15 {
        ViolationCause::Contention
    } else {
        ViolationCause::KernelOverrun
    }
}

/// Count SLO-violating GoFs by cause. A GoF violates when its achieved
/// per-frame latency exceeds the stream's SLO.
pub fn violation_attribution(records: &[DecisionRecord]) -> Vec<(ViolationCause, u64)> {
    let mut map: BTreeMap<ViolationCause, u64> = BTreeMap::new();
    for r in records {
        if r.explain.slo_ms > 0.0 && r.per_frame_ms > r.explain.slo_ms {
            *map.entry(attribute_violation(r)).or_insert(0) += 1;
        }
    }
    map.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::DecisionExplain;

    fn rec(key: &str, prev: &str, switched: bool, frames: usize) -> DecisionRecord {
        DecisionRecord {
            chosen_key: key.to_string(),
            prev_key: prev.to_string(),
            switched,
            frames,
            slowdown: 1.0,
            explain: DecisionExplain {
                feasible: true,
                slo_ms: 33.3,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn residency_counts_decisions_and_frames() {
        let records = vec![
            rec("a", "", false, 8),
            rec("b", "a", true, 8),
            rec("b", "b", false, 4),
        ];
        let res = branch_residency(&records);
        assert_eq!(res.len(), 2);
        assert_eq!(
            (res[0].key.as_str(), res[0].decisions, res[0].frames),
            ("a", 1, 8)
        );
        assert_eq!(
            (res[1].key.as_str(), res[1].decisions, res[1].frames),
            ("b", 2, 12)
        );
    }

    #[test]
    fn switch_matrix_skips_first_gof_and_non_switches() {
        let records = vec![
            rec("a", "", true, 8), // first GoF: no prev, excluded
            rec("b", "a", true, 8),
            rec("b", "b", false, 8),
            rec("a", "b", true, 8),
            rec("b", "a", true, 8),
        ];
        let m = switch_matrix(&records);
        assert_eq!(
            m,
            vec![
                ("a".to_string(), "b".to_string(), 2),
                ("b".to_string(), "a".to_string(), 1),
            ]
        );
    }

    #[test]
    fn budget_breakdown_averages_eq3_terms() {
        let mut a = rec("a", "", false, 8);
        a.explain.branch_kernel_ms = vec![10.0];
        a.explain.chosen = 0;
        a.explain.s0_ms = 2.0;
        a.explain.slack_ms = 4.0;
        a.per_frame_ms = 12.0;
        let mut b = a.clone();
        b.explain.branch_kernel_ms = vec![20.0];
        b.explain.s0_ms = 4.0;
        b.explain.slack_ms = 0.0;
        b.per_frame_ms = 22.0;
        let bd = budget_breakdown(&[a, b]);
        assert_eq!(bd.decisions, 2);
        assert!((bd.l0_ms - 15.0).abs() < 1e-12);
        assert!((bd.s0_ms - 3.0).abs() < 1e-12);
        assert!((bd.slack_ms - 2.0).abs() < 1e-12);
        assert!((bd.actual_ms - 17.0).abs() < 1e-12);
        assert!((bd.actual_p95_ms - 22.0).abs() < 1e-12);
    }

    #[test]
    fn attribution_precedence_is_fault_first() {
        let mut r = rec("a", "", false, 8);
        r.per_frame_ms = 50.0;
        r.faults = 2;
        r.explain.feasible = false;
        r.slowdown = 2.0;
        assert_eq!(attribute_violation(&r), ViolationCause::Fault);
        r.faults = 0;
        assert_eq!(attribute_violation(&r), ViolationCause::Infeasible);
        r.explain.feasible = true;
        assert_eq!(attribute_violation(&r), ViolationCause::Contention);
        r.slowdown = 1.0;
        assert_eq!(attribute_violation(&r), ViolationCause::KernelOverrun);
        r.switch_ms = 80.0; // 10 ms/frame > 0.25 * 33.3
        assert_eq!(attribute_violation(&r), ViolationCause::Switch);
    }

    #[test]
    fn violation_attribution_only_counts_violations() {
        let mut ok = rec("a", "", false, 8);
        ok.per_frame_ms = 10.0;
        let mut bad = rec("a", "", false, 8);
        bad.per_frame_ms = 50.0;
        let counts = violation_attribution(&[ok, bad]);
        assert_eq!(counts, vec![(ViolationCause::KernelOverrun, 1)]);
    }
}
