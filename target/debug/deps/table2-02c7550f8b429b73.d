/root/repo/target/debug/deps/table2-02c7550f8b429b73.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-02c7550f8b429b73: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
