//! The virtual clock all latencies are charged against.

/// A monotonically increasing virtual clock measured in milliseconds.
///
/// Nothing in the workspace reads wall-clock time for experiment results;
/// every latency number in the reproduced tables comes from charges against
/// a `VirtualClock`.
///
/// # Examples
///
/// ```
/// use lr_device::VirtualClock;
///
/// let mut clock = VirtualClock::new();
/// clock.advance(33.3);
/// clock.advance(16.7);
/// assert!((clock.now_ms() - 50.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct VirtualClock {
    now_ms: f64,
}

impl VirtualClock {
    /// Creates a clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current virtual time in milliseconds.
    pub fn now_ms(&self) -> f64 {
        self.now_ms
    }

    /// Advances the clock by `ms` milliseconds.
    ///
    /// # Panics
    ///
    /// Panics if `ms` is negative or non-finite — a negative charge would
    /// silently corrupt every downstream latency statistic.
    pub fn advance(&mut self, ms: f64) {
        assert!(ms.is_finite() && ms >= 0.0, "invalid clock advance: {ms}");
        self.now_ms += ms;
    }

    /// Resets the clock to zero.
    pub fn reset(&mut self) {
        self.now_ms = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero() {
        assert_eq!(VirtualClock::new().now_ms(), 0.0);
    }

    #[test]
    fn advances_accumulate() {
        let mut c = VirtualClock::new();
        c.advance(1.5);
        c.advance(2.5);
        assert_eq!(c.now_ms(), 4.0);
    }

    #[test]
    fn reset_returns_to_zero() {
        let mut c = VirtualClock::new();
        c.advance(10.0);
        c.reset();
        assert_eq!(c.now_ms(), 0.0);
    }

    #[test]
    #[should_panic(expected = "invalid clock advance")]
    fn negative_advance_panics() {
        VirtualClock::new().advance(-1.0);
    }

    #[test]
    #[should_panic(expected = "invalid clock advance")]
    fn nan_advance_panics() {
        VirtualClock::new().advance(f64::NAN);
    }
}
