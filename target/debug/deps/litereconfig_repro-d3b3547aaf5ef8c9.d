/root/repo/target/debug/deps/litereconfig_repro-d3b3547aaf5ef8c9.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/liblitereconfig_repro-d3b3547aaf5ef8c9.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
