//! AdaScale's multi-scale (MS) mode: adaptive per-frame input scaling.
//!
//! AdaScale (Chin et al., SysML'19) regresses the "optimal" input scale
//! for the *next* frame from the current frame's detections: frames whose
//! smallest confident object is large can be processed at a lower scale
//! with no accuracy loss, while frames with small objects need a high
//! scale. This module implements that feedback controller over the
//! [`DetectorSim`] of the AdaScale family — the `AdaScale-MS` row of
//! Table 3.

use rand::Rng;

use lr_video::FrameTruth;

use crate::branch::DetectorConfig;
use crate::detector::{DetectorFamily, DetectorOutput, DetectorSim};

/// The discrete scales AdaScale switches among (shortest-side pixels),
/// matching the paper's SS variants.
pub const SCALES: [u32; 4] = [240, 360, 480, 600];

/// The adaptive-scale detector.
#[derive(Debug, Clone)]
pub struct AdaScaleMs {
    sim: DetectorSim,
    current_scale: u32,
    /// Apparent size (px at detector scale) below which the controller
    /// scales up.
    min_app_size: f32,
    /// Apparent size above which it scales down.
    max_app_size: f32,
}

impl Default for AdaScaleMs {
    fn default() -> Self {
        Self::new()
    }
}

impl AdaScaleMs {
    /// Creates the controller starting at the middle scale.
    pub fn new() -> Self {
        Self {
            sim: DetectorSim::new(DetectorFamily::AdaScale),
            current_scale: 480,
            min_app_size: 24.0,
            max_app_size: 64.0,
        }
    }

    /// The scale the next frame will run at.
    pub fn current_scale(&self) -> u32 {
        self.current_scale
    }

    /// The detector config for the current scale.
    pub fn config(&self) -> DetectorConfig {
        DetectorConfig::new(self.current_scale, 100)
    }

    /// Runs one frame at the current scale, then updates the scale for
    /// the next frame from the observed detections.
    pub fn step(&mut self, truth: &FrameTruth, rng: &mut impl Rng) -> DetectorOutput {
        let cfg = self.config();
        let out = self.sim.detect(truth, cfg, rng);

        // Smallest confident detection, in pixels at the current scale.
        let scale_factor = self.current_scale as f32 / truth.width.min(truth.height).max(1.0);
        let min_side = out
            .detections
            .iter()
            .filter(|d| d.score > 0.3)
            .map(|d| d.bbox.w.min(d.bbox.h) * scale_factor)
            .fold(f32::INFINITY, f32::min);

        let idx = SCALES
            .iter()
            .position(|&s| s == self.current_scale)
            .unwrap_or(2);
        if min_side.is_finite() {
            if min_side < self.min_app_size && idx + 1 < SCALES.len() {
                self.current_scale = SCALES[idx + 1];
            } else if min_side > self.max_app_size && idx > 0 {
                self.current_scale = SCALES[idx - 1];
            }
        } else if idx + 1 < SCALES.len() {
            // Nothing detected: scale up to look harder.
            self.current_scale = SCALES[idx + 1];
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lr_video::{Video, VideoSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn video() -> Video {
        Video::generate(VideoSpec {
            id: 0,
            seed: 3131,
            width: 640.0,
            height: 480.0,
            num_frames: 300,
        })
    }

    #[test]
    fn controller_visits_multiple_scales() {
        let v = video();
        let mut ms = AdaScaleMs::new();
        let mut rng = StdRng::seed_from_u64(1);
        let mut scales = std::collections::HashSet::new();
        for f in &v.frames {
            let _ = ms.step(f, &mut rng);
            scales.insert(ms.current_scale());
        }
        assert!(
            scales.len() >= 2,
            "adaptive controller stuck at one scale: {scales:?}"
        );
    }

    #[test]
    fn scale_stays_within_catalog() {
        let v = video();
        let mut ms = AdaScaleMs::new();
        let mut rng = StdRng::seed_from_u64(2);
        for f in &v.frames {
            let _ = ms.step(f, &mut rng);
            assert!(SCALES.contains(&ms.current_scale()));
        }
    }

    #[test]
    fn empty_frame_scales_up() {
        let v = video();
        let mut empty = v.frames[0].clone();
        empty.objects.clear();
        let mut ms = AdaScaleMs::new();
        let before = ms.current_scale();
        let mut rng = StdRng::seed_from_u64(3);
        let _ = ms.step(&empty, &mut rng);
        assert!(ms.current_scale() >= before);
    }
}
