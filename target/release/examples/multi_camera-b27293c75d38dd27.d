/root/repo/target/release/examples/multi_camera-b27293c75d38dd27.d: examples/multi_camera.rs

/root/repo/target/release/examples/multi_camera-b27293c75d38dd27: examples/multi_camera.rs

examples/multi_camera.rs:
