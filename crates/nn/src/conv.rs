//! Forward-only 2-D convolutional stacks.
//!
//! The paper extracts "deep" content features (ResNet50, MobileNetV2) with
//! pretrained CNNs. This reproduction has no pretrained weights, so those
//! features are synthesized by small *fixed-weight* convolutional stacks:
//! random but deterministic filters followed by ReLU, striding, and global
//! average pooling. Such stacks are well-known to produce content-dependent
//! embeddings (random-feature networks) — which is all the scheduler's
//! accuracy predictor needs.
//!
//! No backpropagation is implemented here; these stacks are never trained.

use rand::Rng;

/// A channels-height-width `f32` feature map (CHW layout).
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureMap {
    channels: usize,
    height: usize,
    width: usize,
    data: Vec<f32>,
}

impl FeatureMap {
    /// Creates a zeroed feature map.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn zeros(channels: usize, height: usize, width: usize) -> Self {
        assert!(
            channels > 0 && height > 0 && width > 0,
            "feature map dimensions must be non-zero"
        );
        Self {
            channels,
            height,
            width,
            data: vec![0.0; channels * height * width],
        }
    }

    /// Creates a feature map from a CHW buffer.
    ///
    /// # Panics
    ///
    /// Panics if the buffer length does not match.
    pub fn from_chw(channels: usize, height: usize, width: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), channels * height * width, "CHW buffer mismatch");
        Self {
            channels,
            height,
            width,
            data,
        }
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Spatial height.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Spatial width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Value at `(c, y, x)`.
    pub fn get(&self, c: usize, y: usize, x: usize) -> f32 {
        self.data[(c * self.height + y) * self.width + x]
    }

    /// Sets the value at `(c, y, x)`.
    pub fn set(&mut self, c: usize, y: usize, x: usize, v: f32) {
        self.data[(c * self.height + y) * self.width + x] = v;
    }

    /// Raw CHW buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Global average pool: one value per channel.
    pub fn global_average_pool(&self) -> Vec<f32> {
        let hw = (self.height * self.width) as f32;
        (0..self.channels)
            .map(|c| {
                let start = c * self.height * self.width;
                self.data[start..start + self.height * self.width]
                    .iter()
                    .sum::<f32>()
                    / hw
            })
            .collect()
    }
}

/// A single 2-D convolution layer with square kernels, stride, and ReLU.
#[derive(Debug, Clone)]
pub struct Conv2d {
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    stride: usize,
    // Weights in [out_c][in_c][ky][kx] order, flattened.
    weights: Vec<f32>,
    bias: Vec<f32>,
}

impl Conv2d {
    /// Creates a conv layer with He-style random filters from `rng`.
    ///
    /// # Panics
    ///
    /// Panics if `kernel` or `stride` is zero.
    pub fn random(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(kernel > 0 && stride > 0, "kernel/stride must be positive");
        let fan_in = (in_channels * kernel * kernel) as f32;
        let bound = (2.0 / fan_in).sqrt();
        let weights = (0..out_channels * in_channels * kernel * kernel)
            .map(|_| rng.gen_range(-bound..=bound))
            .collect();
        let bias = (0..out_channels)
            .map(|_| rng.gen_range(-0.05..=0.05))
            .collect();
        Self {
            in_channels,
            out_channels,
            kernel,
            stride,
            weights,
            bias,
        }
    }

    /// Output spatial size for an input of the given size (valid padding).
    fn out_size(&self, input: usize) -> usize {
        if input < self.kernel {
            1
        } else {
            (input - self.kernel) / self.stride + 1
        }
    }

    /// Forward pass with ReLU.
    ///
    /// Inputs smaller than the kernel are zero-padded up to kernel size.
    ///
    /// # Panics
    ///
    /// Panics if the input channel count does not match.
    pub fn forward(&self, input: &FeatureMap) -> FeatureMap {
        assert_eq!(
            input.channels(),
            self.in_channels,
            "channel mismatch: input {} vs layer {}",
            input.channels(),
            self.in_channels
        );
        let oh = self.out_size(input.height());
        let ow = self.out_size(input.width());
        let mut out = FeatureMap::zeros(self.out_channels, oh, ow);
        let k = self.kernel;
        for oc in 0..self.out_channels {
            let w_base = oc * self.in_channels * k * k;
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = self.bias[oc];
                    for ic in 0..self.in_channels {
                        let w_ic = w_base + ic * k * k;
                        for ky in 0..k {
                            let iy = oy * self.stride + ky;
                            if iy >= input.height() {
                                continue;
                            }
                            for kx in 0..k {
                                let ix = ox * self.stride + kx;
                                if ix >= input.width() {
                                    continue;
                                }
                                acc += self.weights[w_ic + ky * k + kx] * input.get(ic, iy, ix);
                            }
                        }
                    }
                    out.set(oc, oy, ox, acc.max(0.0));
                }
            }
        }
        out
    }
}

/// A stack of convolution layers ending in global average pooling.
///
/// # Examples
///
/// ```
/// use lr_nn::conv::{ConvStack, FeatureMap};
///
/// let stack = ConvStack::random(&[(3, 8, 3, 2), (8, 16, 3, 2)], 42);
/// let input = FeatureMap::zeros(3, 32, 32);
/// let embedding = stack.embed(&input);
/// assert_eq!(embedding.len(), 16);
/// ```
#[derive(Debug, Clone)]
pub struct ConvStack {
    layers: Vec<Conv2d>,
}

impl ConvStack {
    /// Builds a stack from `(in_c, out_c, kernel, stride)` specs with
    /// deterministic random weights derived from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if specs are empty or channel counts do not chain.
    pub fn random(specs: &[(usize, usize, usize, usize)], seed: u64) -> Self {
        assert!(!specs.is_empty(), "at least one conv layer required");
        for w in specs.windows(2) {
            assert_eq!(w[0].1, w[1].0, "conv channel chain mismatch");
        }
        let mut rng = crate::init::seeded_rng(seed);
        let layers = specs
            .iter()
            .map(|&(ic, oc, k, s)| Conv2d::random(ic, oc, k, s, &mut rng))
            .collect();
        Self { layers }
    }

    /// Output embedding dimensionality.
    pub fn embedding_dim(&self) -> usize {
        self.layers.last().expect("non-empty").out_channels
    }

    /// Runs the stack and global-average-pools the final map into an
    /// embedding vector.
    pub fn embed(&self, input: &FeatureMap) -> Vec<f32> {
        let mut x = input.clone();
        for layer in &self.layers {
            x = layer.forward(&x);
        }
        x.global_average_pool()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_output_shape() {
        let mut rng = crate::init::seeded_rng(0);
        let conv = Conv2d::random(3, 4, 3, 2, &mut rng);
        let out = conv.forward(&FeatureMap::zeros(3, 9, 9));
        assert_eq!(
            (out.channels(), out.height(), out.width()),
            (4, 4, 4) // (9-3)/2+1 = 4.
        );
    }

    #[test]
    fn conv_identity_kernel_passes_values() {
        // A 1x1 kernel with weight 1 and zero bias is identity (plus ReLU).
        let conv = Conv2d {
            in_channels: 1,
            out_channels: 1,
            kernel: 1,
            stride: 1,
            weights: vec![1.0],
            bias: vec![0.0],
        };
        let mut input = FeatureMap::zeros(1, 2, 2);
        input.set(0, 0, 0, 3.0);
        input.set(0, 1, 1, -2.0);
        let out = conv.forward(&input);
        assert_eq!(out.get(0, 0, 0), 3.0);
        assert_eq!(out.get(0, 1, 1), 0.0); // ReLU clamps the negative.
    }

    #[test]
    fn global_average_pool_means_per_channel() {
        let mut fm = FeatureMap::zeros(2, 2, 2);
        for y in 0..2 {
            for x in 0..2 {
                fm.set(0, y, x, 1.0);
                fm.set(1, y, x, (y * 2 + x) as f32);
            }
        }
        assert_eq!(fm.global_average_pool(), vec![1.0, 1.5]);
    }

    #[test]
    fn stack_embedding_is_deterministic_and_content_dependent() {
        let stack = ConvStack::random(&[(3, 8, 3, 2), (8, 16, 3, 2)], 5);
        let zero = FeatureMap::zeros(3, 24, 24);
        let mut bright = FeatureMap::zeros(3, 24, 24);
        for c in 0..3 {
            for y in 0..24 {
                for x in 0..24 {
                    bright.set(c, y, x, 0.8);
                }
            }
        }
        let e0 = stack.embed(&zero);
        let e0b = stack.embed(&zero);
        let e1 = stack.embed(&bright);
        assert_eq!(e0, e0b, "embedding must be deterministic");
        assert_ne!(e0, e1, "embedding must depend on content");
        assert_eq!(e0.len(), 16);
    }

    #[test]
    fn tiny_input_is_padded_not_panicking() {
        let stack = ConvStack::random(&[(1, 4, 5, 2)], 9);
        let out = stack.embed(&FeatureMap::zeros(1, 2, 2));
        assert_eq!(out.len(), 4);
        assert!(out.iter().all(|v| v.is_finite()));
    }

    #[test]
    #[should_panic(expected = "conv channel chain mismatch")]
    fn stack_rejects_bad_chain() {
        let _ = ConvStack::random(&[(3, 8, 3, 2), (4, 16, 3, 2)], 0);
    }
}
