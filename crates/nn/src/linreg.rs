//! Ridge (L2-regularized) linear regression with a closed-form solve.
//!
//! The paper reuses ApproxDet's latency predictors: per-branch linear
//! regressions on the light-weight features. Those models are tiny (five
//! coefficients), so a closed-form normal-equation solve is the right
//! tool.

/// A fitted linear model `y = w . x + b`.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearModel {
    /// Feature weights.
    pub weights: Vec<f32>,
    /// Intercept.
    pub bias: f32,
}

impl LinearModel {
    /// Predicts for one input.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong width.
    pub fn predict(&self, x: &[f32]) -> f32 {
        assert_eq!(x.len(), self.weights.len(), "feature width mismatch");
        self.bias
            + self
                .weights
                .iter()
                .zip(x.iter())
                .map(|(&w, &v)| w * v)
                .sum::<f32>()
    }
}

/// Fits ridge regression by solving `(X^T X + lambda I) w = X^T y` over
/// inputs augmented with a constant-1 column (the intercept is not
/// regularized... the lambda on it is negligible for the use case).
///
/// Returns `None` when there are no examples or the system is singular
/// beyond repair (which cannot happen for `lambda > 0`).
///
/// # Panics
///
/// Panics if rows have inconsistent widths or `xs.len() != ys.len()`.
pub fn fit_ridge(xs: &[Vec<f32>], ys: &[f32], lambda: f32) -> Option<LinearModel> {
    if xs.is_empty() {
        return None;
    }
    assert_eq!(xs.len(), ys.len(), "xs/ys length mismatch");
    let d = xs[0].len();
    let n = d + 1; // + intercept column.

    // Accumulate the normal equations.
    let mut a = vec![vec![0.0f64; n]; n];
    let mut b = vec![0.0f64; n];
    for (x, &y) in xs.iter().zip(ys.iter()) {
        assert_eq!(x.len(), d, "ragged feature rows");
        let aug = |i: usize| -> f64 {
            if i < d {
                x[i] as f64
            } else {
                1.0
            }
        };
        for i in 0..n {
            let xi = aug(i);
            b[i] += xi * y as f64;
            for (j, aij) in a[i].iter_mut().enumerate() {
                *aij += xi * aug(j);
            }
        }
    }
    for (i, row) in a.iter_mut().enumerate().take(d) {
        row[i] += lambda as f64;
    }

    let w = solve_linear_system(a, b)?;
    Some(LinearModel {
        weights: w[..d].iter().map(|&v| v as f32).collect(),
        bias: w[d] as f32,
    })
}

/// Solves `A x = b` by Gaussian elimination with partial pivoting.
/// Returns `None` for singular systems.
pub fn solve_linear_system(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = b.len();
    assert!(a.len() == n && a.iter().all(|r| r.len() == n), "shape");
    for col in 0..n {
        // Pivot.
        let pivot = (col..n).max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))?;
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        // Eliminate below.
        let (upper, lower) = a.split_at_mut(col + 1);
        let pivot_row = &upper[col];
        for (off, row) in lower.iter_mut().enumerate() {
            let f = row[col] / pivot_row[col];
            if f == 0.0 {
                continue;
            }
            for (x, &p) in row[col..n].iter_mut().zip(&pivot_row[col..n]) {
                *x -= f * p;
            }
            b[col + 1 + off] -= f * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0f64; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for k in row + 1..n {
            acc -= a[row][k] * x[k];
        }
        x[row] = acc / a[row][row];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_identity_system() {
        let a = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let x = solve_linear_system(a, vec![3.0, -2.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12 && (x[1] + 2.0).abs() < 1e-12);
    }

    #[test]
    fn singular_system_returns_none() {
        let a = vec![vec![1.0, 1.0], vec![2.0, 2.0]];
        assert!(solve_linear_system(a, vec![1.0, 2.0]).is_none());
    }

    #[test]
    fn recovers_exact_linear_function() {
        // y = 2 x0 - 3 x1 + 0.5 on a grid.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..5 {
            for j in 0..5 {
                let x0 = i as f32;
                let x1 = j as f32;
                xs.push(vec![x0, x1]);
                ys.push(2.0 * x0 - 3.0 * x1 + 0.5);
            }
        }
        let m = fit_ridge(&xs, &ys, 1e-6).unwrap();
        assert!((m.weights[0] - 2.0).abs() < 1e-3);
        assert!((m.weights[1] + 3.0).abs() < 1e-3);
        assert!((m.bias - 0.5).abs() < 1e-3);
        assert!((m.predict(&[1.0, 1.0]) - (-0.5)).abs() < 1e-3);
    }

    #[test]
    fn ridge_shrinks_weights() {
        let xs: Vec<Vec<f32>> = (0..20).map(|i| vec![i as f32 / 10.0]).collect();
        let ys: Vec<f32> = xs.iter().map(|x| 4.0 * x[0]).collect();
        let small = fit_ridge(&xs, &ys, 1e-6).unwrap();
        let big = fit_ridge(&xs, &ys, 100.0).unwrap();
        assert!(big.weights[0].abs() < small.weights[0].abs());
    }

    #[test]
    fn empty_input_is_none() {
        assert!(fit_ridge(&[], &[], 1.0).is_none());
    }

    #[test]
    fn constant_target_fits_bias_only() {
        let xs: Vec<Vec<f32>> = (0..10).map(|i| vec![i as f32]).collect();
        let ys = vec![7.0f32; 10];
        let m = fit_ridge(&xs, &ys, 1e-3).unwrap();
        assert!((m.predict(&[3.0]) - 7.0).abs() < 0.05);
    }
}
