//! "Deep" content features: the ResNet50 and MobileNetV2 stand-ins.
//!
//! With no pretrained-model ecosystem available, these extractors are
//! fixed-weight random convolutional stacks (`lr-nn::conv::ConvStack`):
//! deterministic nonlinear projections of the raster whose embeddings are
//! strongly content-dependent. Random convolutional features are a
//! standard, well-studied substitute when pretrained backbones are
//! unavailable; the accuracy predictor only needs the embedding to carry
//! information about the content regime, which these do.
//!
//! Output dimensions match Table 1: ResNet50 -> 1024, MobileNetV2 -> 1280.

use lr_nn::conv::{ConvStack, FeatureMap};
use lr_video::RgbFrame;

/// Output dimensionality of the ResNet50 stand-in.
pub const RESNET50_DIM: usize = 1024;
/// Output dimensionality of the MobileNetV2 stand-in.
pub const MOBILENETV2_DIM: usize = 1280;

/// Both deep extractors, constructed once and reused (construction builds
/// the fixed random filters).
#[derive(Debug, Clone)]
pub struct DeepExtractors {
    resnet: ConvStack,
    mobilenet: ConvStack,
}

impl Default for DeepExtractors {
    fn default() -> Self {
        Self::new()
    }
}

impl DeepExtractors {
    /// Builds the two stacks with their canonical seeds.
    pub fn new() -> Self {
        // Shapes are chosen so the final global-average-pooled channel
        // count equals the paper's feature dimension while keeping the
        // compute small enough for debug-mode tests.
        let resnet = ConvStack::random(
            &[(3, 16, 5, 4), (16, 64, 3, 2), (64, RESNET50_DIM, 3, 2)],
            0x5E5E_0001,
        );
        let mobilenet = ConvStack::random(
            &[(3, 24, 5, 4), (24, 96, 3, 2), (96, MOBILENETV2_DIM, 3, 2)],
            0x5E5E_0002,
        );
        Self { resnet, mobilenet }
    }

    /// The ResNet50 stand-in embedding (1024-d).
    pub fn resnet50(&self, frame: &RgbFrame) -> Vec<f32> {
        self.resnet.embed(&to_feature_map(frame))
    }

    /// The MobileNetV2 stand-in embedding (1280-d).
    pub fn mobilenetv2(&self, frame: &RgbFrame) -> Vec<f32> {
        self.mobilenet.embed(&to_feature_map(frame))
    }
}

/// Converts a planar RGB frame into an `lr-nn` feature map (both are
/// channel-major, so this is a copy).
fn to_feature_map(frame: &RgbFrame) -> FeatureMap {
    FeatureMap::from_chw(3, frame.height(), frame.width(), frame.as_slice().to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lr_video::raster::rasterize;
    use lr_video::{Video, VideoSpec};

    fn frames() -> (RgbFrame, RgbFrame) {
        let v = Video::generate(VideoSpec {
            id: 0,
            seed: 51,
            width: 640.0,
            height: 480.0,
            num_frames: 40,
        });
        (
            rasterize(&v.frames[0], &v.style, 64),
            rasterize(&v.frames[30], &v.style, 64),
        )
    }

    #[test]
    fn dimensions_match_table1() {
        let (a, _) = frames();
        let ex = DeepExtractors::new();
        assert_eq!(ex.resnet50(&a).len(), RESNET50_DIM);
        assert_eq!(ex.mobilenetv2(&a).len(), MOBILENETV2_DIM);
    }

    #[test]
    fn embeddings_are_deterministic() {
        let (a, _) = frames();
        let e1 = DeepExtractors::new().resnet50(&a);
        let e2 = DeepExtractors::new().resnet50(&a);
        assert_eq!(e1, e2);
    }

    #[test]
    fn embeddings_depend_on_content() {
        let (a, b) = frames();
        let ex = DeepExtractors::new();
        assert_ne!(ex.resnet50(&a), ex.resnet50(&b));
        assert_ne!(ex.mobilenetv2(&a), ex.mobilenetv2(&b));
    }

    #[test]
    fn embeddings_are_finite() {
        let (a, _) = frames();
        let ex = DeepExtractors::new();
        assert!(ex.resnet50(&a).iter().all(|v| v.is_finite()));
        assert!(ex.mobilenetv2(&a).iter().all(|v| v.is_finite()));
    }
}
