//! Device profiles for the two evaluation boards.

/// The embedded board being simulated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceKind {
    /// NVIDIA Jetson TX2: 256-core Pascal GPU, 8 GB unified memory.
    /// All `base_tx2_ms` calibration numbers refer to this board.
    JetsonTx2,
    /// NVIDIA Jetson AGX Xavier: 512-core Volta GPU, 32 GB unified memory.
    /// Roughly 2x the GPU throughput of the TX2 in the paper's workloads
    /// (LiteReconfig sustains 50 fps there vs 30 fps on the TX2).
    AgxXavier,
}

impl DeviceKind {
    /// Short display name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            DeviceKind::JetsonTx2 => "TX2",
            DeviceKind::AgxXavier => "AGX Xavier",
        }
    }

    /// The latency SLOs the paper evaluates on this board, in ms.
    pub fn paper_slos_ms(self) -> [f64; 3] {
        match self {
            DeviceKind::JetsonTx2 => [33.3, 50.0, 100.0],
            DeviceKind::AgxXavier => [20.0, 33.3, 50.0],
        }
    }

    /// The full profile for this board.
    pub fn profile(self) -> DeviceProfile {
        match self {
            DeviceKind::JetsonTx2 => DeviceProfile {
                kind: self,
                gpu_speed_factor: 1.0,
                cpu_speed_factor: 1.0,
                memory_gb: 8.0,
            },
            DeviceKind::AgxXavier => DeviceProfile {
                kind: self,
                // Volta vs Pascal plus higher clocks: GPU ops run in about
                // half the time; the Carmel CPU cores are ~30% faster than
                // the TX2's Denver/A57 complex.
                gpu_speed_factor: 0.48,
                cpu_speed_factor: 0.75,
                memory_gb: 32.0,
            },
        }
    }
}

/// Speed and capacity parameters of a board.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceProfile {
    /// Which board this is.
    pub kind: DeviceKind,
    /// Multiplier applied to TX2-calibrated GPU-op latencies.
    pub gpu_speed_factor: f64,
    /// Multiplier applied to TX2-calibrated CPU-op latencies.
    pub cpu_speed_factor: f64,
    /// Unified memory capacity in GiB.
    pub memory_gb: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tx2_is_the_calibration_reference() {
        let p = DeviceKind::JetsonTx2.profile();
        assert_eq!(p.gpu_speed_factor, 1.0);
        assert_eq!(p.cpu_speed_factor, 1.0);
        assert_eq!(p.memory_gb, 8.0);
    }

    #[test]
    fn xavier_is_faster_and_bigger() {
        let tx2 = DeviceKind::JetsonTx2.profile();
        let xv = DeviceKind::AgxXavier.profile();
        assert!(xv.gpu_speed_factor < tx2.gpu_speed_factor);
        assert!(xv.cpu_speed_factor < tx2.cpu_speed_factor);
        assert!(xv.memory_gb > tx2.memory_gb);
    }

    #[test]
    fn paper_slos_match_tables() {
        assert_eq!(DeviceKind::JetsonTx2.paper_slos_ms(), [33.3, 50.0, 100.0]);
        assert_eq!(DeviceKind::AgxXavier.paper_slos_ms(), [20.0, 33.3, 50.0]);
    }
}
