//! The ratcheted baseline: committed per-rule violation counts that may
//! only go down.
//!
//! The baseline records, for every rule, the suppression-directive count
//! and a per-file finding count. `--check` fails when any rule's total
//! (or allow count) rises above the committed value and points at the
//! files that grew; `--update` rewrites the file from the current scan.
//! Per-file granularity is the sweet spot: coarse enough to survive
//! line-number churn from unrelated edits, fine enough that a check
//! failure names the offending file immediately.
//!
//! Serialization is a hand-rolled, deterministic JSON subset (objects,
//! strings, unsigned integers) — the workspace vendors no serde, and the
//! baseline must produce byte-identical files for identical counts.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::rules::{Finding, RuleId, ALL_RULES};

/// Committed (or freshly computed) counts for one rule.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RuleCounts {
    /// `lr-lint: allow(<rule>)` directives in the tree.
    pub allows: usize,
    /// Findings per workspace-relative file path.
    pub files: BTreeMap<String, usize>,
}

impl RuleCounts {
    /// Total findings across files.
    pub fn total(&self) -> usize {
        self.files.values().sum()
    }
}

/// The full baseline: counts per rule.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// Per-rule counts, keyed by canonical rule name.
    pub rules: BTreeMap<String, RuleCounts>,
}

impl Baseline {
    /// Builds a baseline from a scan's findings and allow census.
    pub fn from_scan(findings: &[Finding], allows: &[usize; ALL_RULES.len()]) -> Self {
        let mut rules: BTreeMap<String, RuleCounts> = ALL_RULES
            .iter()
            .enumerate()
            .map(|(i, r)| {
                (
                    r.name().to_string(),
                    RuleCounts {
                        allows: allows[i],
                        files: BTreeMap::new(),
                    },
                )
            })
            .collect();
        for f in findings {
            let entry = rules.entry(f.rule.name().to_string()).or_default();
            *entry.files.entry(f.file.clone()).or_insert(0) += 1;
        }
        Self { rules }
    }

    /// Counts for one rule (empty if absent).
    pub fn rule(&self, rule: RuleId) -> RuleCounts {
        self.rules.get(rule.name()).cloned().unwrap_or_default()
    }

    /// Renders the baseline as deterministic pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"version\": 1,\n  \"rules\": {\n");
        let n = self.rules.len();
        for (i, (name, counts)) in self.rules.iter().enumerate() {
            let _ = write!(
                out,
                "    {}: {{\n      \"allows\": {},\n      \"total\": {},\n      \"files\": {{",
                quote(name),
                counts.allows,
                counts.total()
            );
            if counts.files.is_empty() {
                out.push_str("}\n");
            } else {
                out.push('\n');
                let m = counts.files.len();
                for (j, (file, count)) in counts.files.iter().enumerate() {
                    let _ = write!(out, "        {}: {}", quote(file), count);
                    out.push_str(if j + 1 < m { ",\n" } else { "\n" });
                }
                out.push_str("      }\n");
            }
            out.push_str("    }");
            out.push_str(if i + 1 < n { ",\n" } else { "\n" });
        }
        out.push_str("  }\n}\n");
        out
    }

    /// Parses a baseline from JSON. The redundant `total` field is
    /// ignored on input (recomputed from `files`).
    pub fn parse(src: &str) -> Result<Self, String> {
        let value = json::parse(src)?;
        let root = value.as_object().ok_or("baseline root must be an object")?;
        let rules_val = root.get("rules").ok_or("missing \"rules\" key")?;
        let rules_obj = rules_val.as_object().ok_or("\"rules\" must be an object")?;
        let mut rules = BTreeMap::new();
        for (name, v) in rules_obj {
            let obj = v
                .as_object()
                .ok_or_else(|| format!("rule {name} must be an object"))?;
            let allows = obj
                .get("allows")
                .and_then(json::Value::as_usize)
                .unwrap_or(0);
            let mut files = BTreeMap::new();
            if let Some(files_obj) = obj.get("files").and_then(json::Value::as_object) {
                for (file, count) in files_obj {
                    let count = count
                        .as_usize()
                        .ok_or_else(|| format!("count for {file} must be an integer"))?;
                    files.insert(file.clone(), count);
                }
            }
            rules.insert(name.clone(), RuleCounts { allows, files });
        }
        Ok(Self { rules })
    }
}

fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A minimal JSON reader: objects, strings, and unsigned integers — the
/// exact subset the baseline format uses.
mod json {
    use std::collections::BTreeMap;

    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        Object(BTreeMap<String, Value>),
        String(String),
        Number(u64),
    }

    impl Value {
        pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
            match self {
                Value::Object(m) => Some(m),
                _ => None,
            }
        }

        pub fn as_usize(&self) -> Option<usize> {
            match self {
                Value::Number(n) => Some(*n as usize),
                _ => None,
            }
        }
    }

    pub fn parse(src: &str) -> Result<Value, String> {
        let chars: Vec<char> = src.chars().collect();
        let mut p = Parser { chars, i: 0 };
        let v = p.value()?;
        p.skip_ws();
        if p.i < p.chars.len() {
            return Err(format!("trailing input at offset {}", p.i));
        }
        Ok(v)
    }

    struct Parser {
        chars: Vec<char>,
        i: usize,
    }

    impl Parser {
        fn skip_ws(&mut self) {
            while self.chars.get(self.i).is_some_and(|c| c.is_whitespace()) {
                self.i += 1;
            }
        }

        fn consume(&mut self, c: char) -> Result<(), String> {
            self.skip_ws();
            if self.chars.get(self.i) == Some(&c) {
                self.i += 1;
                Ok(())
            } else {
                Err(format!("expected '{c}' at offset {}", self.i))
            }
        }

        fn value(&mut self) -> Result<Value, String> {
            self.skip_ws();
            match self.chars.get(self.i) {
                Some('{') => self.object(),
                Some('"') => Ok(Value::String(self.string()?)),
                Some(c) if c.is_ascii_digit() => self.number(),
                other => Err(format!("unexpected {other:?} at offset {}", self.i)),
            }
        }

        fn object(&mut self) -> Result<Value, String> {
            self.consume('{')?;
            let mut map = BTreeMap::new();
            self.skip_ws();
            if self.chars.get(self.i) == Some(&'}') {
                self.i += 1;
                return Ok(Value::Object(map));
            }
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.consume(':')?;
                let val = self.value()?;
                map.insert(key, val);
                self.skip_ws();
                match self.chars.get(self.i) {
                    Some(',') => self.i += 1,
                    Some('}') => {
                        self.i += 1;
                        break;
                    }
                    other => return Err(format!("expected ',' or '}}', got {other:?}")),
                }
            }
            Ok(Value::Object(map))
        }

        fn string(&mut self) -> Result<String, String> {
            self.consume('"')?;
            let mut out = String::new();
            loop {
                match self.chars.get(self.i) {
                    Some('"') => {
                        self.i += 1;
                        return Ok(out);
                    }
                    Some('\\') => {
                        self.i += 1;
                        match self.chars.get(self.i) {
                            Some('n') => out.push('\n'),
                            Some(&c) => out.push(c),
                            None => return Err("unterminated escape".into()),
                        }
                        self.i += 1;
                    }
                    Some(&c) => {
                        out.push(c);
                        self.i += 1;
                    }
                    None => return Err("unterminated string".into()),
                }
            }
        }

        fn number(&mut self) -> Result<Value, String> {
            let mut n: u64 = 0;
            let start = self.i;
            while let Some(c) = self.chars.get(self.i) {
                if let Some(d) = c.to_digit(10) {
                    n = n.saturating_mul(10).saturating_add(d as u64);
                    self.i += 1;
                } else {
                    break;
                }
            }
            if self.i == start {
                return Err(format!("expected digits at offset {start}"));
            }
            Ok(Value::Number(n))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::scan_source;

    fn scan_to_baseline(path: &str, src: &str) -> Baseline {
        let scan = scan_source(path, src);
        Baseline::from_scan(&scan.findings, &scan.allows)
    }

    #[test]
    fn roundtrip_preserves_counts() {
        let src = "fn f() { let m = HashMap::new(); m.get(&0).unwrap(); }\n// lr-lint: allow(p1)\nfn g() {}";
        let b = scan_to_baseline("crates/core/src/x.rs", src);
        let parsed = Baseline::parse(&b.to_json()).expect("parse back");
        assert_eq!(parsed, b);
        assert_eq!(parsed.rule(RuleId::D2).total(), 1);
        assert_eq!(parsed.rule(RuleId::P1).total(), 1);
        assert_eq!(parsed.rule(RuleId::P1).allows, 1);
    }

    #[test]
    fn json_output_is_deterministic_and_sorted() {
        let src = "fn f() { let a = HashSet::new(); }";
        let b1 = scan_to_baseline("crates/a.rs", src);
        let b2 = scan_to_baseline("crates/a.rs", src);
        assert_eq!(b1.to_json(), b2.to_json());
        let json = b1.to_json();
        // All five rules present, in name order.
        let d1 = json.find("\"D1\"").expect("D1");
        let p1 = json.find("\"P1\"").expect("P1");
        assert!(d1 < p1);
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(Baseline::parse("").is_err());
        assert!(Baseline::parse("{\"rules\": 3}").is_err());
        assert!(Baseline::parse("{\"rules\": {}} trailing").is_err());
        assert!(Baseline::parse("{\"version\": 1}").is_err());
    }

    #[test]
    fn empty_baseline_has_all_rules_at_zero() {
        let b = scan_to_baseline("crates/x.rs", "fn clean() {}");
        for rule in ALL_RULES {
            assert_eq!(b.rule(rule).total(), 0, "{rule:?}");
            assert_eq!(b.rule(rule).allows, 0, "{rule:?}");
        }
        let parsed = Baseline::parse(&b.to_json()).expect("parse");
        assert_eq!(parsed, b);
    }

    #[test]
    fn quoting_escapes_specials() {
        assert_eq!(quote("a\"b\\c"), "\"a\\\"b\\\\c\"");
    }
}
