/root/repo/target/release/deps/figure2-6cea6bc8b6d41c3d.d: crates/bench/src/bin/figure2.rs

/root/repo/target/release/deps/figure2-6cea6bc8b6d41c3d: crates/bench/src/bin/figure2.rs

crates/bench/src/bin/figure2.rs:
