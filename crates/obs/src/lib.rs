//! `lr-obs`: deterministic observability for the LiteReconfig runtime.
//!
//! The paper's contribution is a *decision procedure* — which features to
//! extract and which branch to run under
//! `L0(b,f_L) + S0 + S(f_H) + C(b0,b) <= SLO` — so the system's primary
//! observability artifact is the **decision record**: one typed record
//! per GoF carrying the recruited features with their `Ben(·)` values,
//! the per-branch predicted accuracies, the full latency-budget
//! decomposition, the chosen branch, and the actual outcome (including
//! any fallback-ladder degradation). Around it sit:
//!
//! - a **virtual-clock span** API ([`ObsSink::span_begin`] /
//!   [`ObsSink::span_end`]): nestable spans stamped with
//!   `DeviceSim::now_ms` — the *simulated* clock — so tracing performs
//!   zero wall-clock reads (lr-lint rule D1 keeps holding) and can never
//!   perturb the run it observes;
//! - a deterministic **metrics registry** ([`Metrics`]): counters and
//!   fixed-bucket histograms in `BTreeMap`s, merged across streams in a
//!   serial, stream-ordered pass so rendered output is byte-identical
//!   for any `LR_POOL_THREADS`;
//! - a **JSONL trace sink** ([`ObsBundle::to_jsonl`]) plus a minimal
//!   parser ([`trace::parse_jsonl`]) and an analysis layer ([`analyze`]):
//!   per-branch residency, switch matrices, budget breakdowns, and
//!   SLO-violation attribution.
//!
//! # Determinism rules for observers
//!
//! 1. An observer may **read** the virtual clock but never advance it:
//!    span timestamps come from `now_ms()`, which is side-effect-free.
//! 2. An observer may never draw from any RNG. Everything it records is
//!    derived from values the runtime already computed.
//! 3. Per-stream sinks buffer privately; all cross-stream merging
//!    happens serially in `(stream, gof)` order after the run.
//! 4. The no-op default ([`NullSink`]) makes the instrumented code paths
//!    byte-identical to the uninstrumented ones: every `results_*.txt`
//!    regenerates identically with tracing off, counting-only, or full
//!    tracing on.
//!
//! This crate is std-only and dependency-free so every runtime crate
//! (`litereconfig`, `lr-kernels`, `lr-serve`) can depend on it without
//! cycles.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyze;
pub mod metrics;
pub mod record;
pub mod sink;
pub mod stream;
pub mod trace;

pub use metrics::{Histogram, Metrics};
pub use record::{
    DecisionExplain, DecisionRecord, FeatureBen, RoundRecord, SpanRecord, TraceEvent,
};
pub use sink::{NullSink, ObsSink, SpanKind};
pub use stream::{ObsMode, StreamObs};
pub use trace::{ObsBundle, Value};
