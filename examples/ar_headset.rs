//! AR headset: a stringent 50 fps (20 ms) objective on the Xavier-class
//! device — the paper's headline "50 fps on AGX Xavier" claim (C1).
//!
//! Compares the four LiteReconfig variants at 20 ms and shows why the
//! cost-benefit analyzer matters: the MobileNet content feature costs
//! 163 ms to use, nearly an order of magnitude over the whole budget, so
//! recruiting it blindly destroys either latency or accuracy.
//!
//! ```sh
//! cargo run --release --example ar_headset
//! ```

use std::sync::Arc;

use litereconfig::offline::{profile_videos, OfflineConfig};
use litereconfig::pipeline::{run_adaptive, RunConfig};
use litereconfig::trainer::{train_scheduler, TrainConfig};
use litereconfig::{FeatureService, Policy};
use lr_device::DeviceKind;
use lr_features::FeatureKind;
use lr_kernels::branch::small_catalog;
use lr_kernels::DetectorFamily;
use lr_video::{Dataset, DatasetConfig, Split};

fn main() {
    let dataset = Dataset::new(DatasetConfig {
        train_vision: 0,
        train_scheduler: 4,
        validation: 3,
        id_offset: 9_000,
    });
    let train_videos = dataset.videos(Split::TrainScheduler);
    let val_videos = dataset.videos(Split::Validation);

    let mut svc = FeatureService::new();
    let offline_cfg = OfflineConfig {
        snippet_len: 50,
        ..OfflineConfig::paper(small_catalog(), DetectorFamily::FasterRcnn)
    };
    let offline = profile_videos(&train_videos, &offline_cfg, &mut svc);
    let trained = Arc::new(train_scheduler(
        &offline,
        DetectorFamily::FasterRcnn,
        &TrainConfig::tiny(),
    ));

    let slo_ms = 20.0; // 50 fps.
    println!("=== AR headset: 50 fps object detection on AGX Xavier ===\n");
    let variants: [(&str, Policy); 4] = [
        ("LiteReconfig-MinCost", Policy::MinCost),
        (
            "LiteReconfig-MaxContent-ResNet",
            Policy::MaxContent(FeatureKind::ResNet50),
        ),
        (
            "LiteReconfig-MaxContent-MobileNet",
            Policy::MaxContent(FeatureKind::MobileNetV2),
        ),
        ("LiteReconfig (cost-benefit)", Policy::CostBenefit),
    ];
    for (label, policy) in variants {
        let cfg = RunConfig::clean(DeviceKind::AgxXavier, 0.0, slo_ms, 21);
        let r = run_adaptive(&val_videos, trained.clone(), policy, &cfg, &mut svc);
        println!(
            "{label:<36} mAP {:>5.1}%  mean {:>5.1} ms  P95 {:>5.1} ms  {}",
            r.map_pct(),
            r.latency.mean(),
            r.latency.p95(),
            if r.meets_slo(slo_ms) {
                "50 fps sustained"
            } else {
                "SLO violated"
            }
        );
    }
}
