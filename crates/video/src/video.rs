//! Whole videos: specs, styles, and generated frame truths.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::object::GtObject;
use crate::regime::Regime;
use crate::scene::{Scene, SceneConfig};

/// Source resolutions sampled for videos, mirroring the mixed resolutions
/// of ILSVRC VID footage.
pub const RESOLUTIONS: [(f32, f32); 4] = [
    (1280.0, 720.0),
    (856.0, 480.0),
    (640.0, 480.0),
    (320.0, 240.0),
];

/// Ground truth for a single frame.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameTruth {
    /// Identifier of the video stream this frame belongs to (the video
    /// seed). Detector simulators hash it together with object ids to
    /// draw *temporally persistent* detection outcomes.
    pub stream_id: u64,
    /// Zero-based frame index within the video.
    pub frame_index: u32,
    /// Source frame width in pixels.
    pub width: f32,
    /// Source frame height in pixels.
    pub height: f32,
    /// The latent content regime the frame was generated under. The
    /// scheduler never sees this directly — it must infer content
    /// characteristics through features.
    pub regime: Regime,
    /// Visible ground-truth objects.
    pub objects: Vec<GtObject>,
}

impl FrameTruth {
    /// Mean ground-truth object speed in pixels/frame (0 when empty).
    pub fn mean_speed(&self) -> f32 {
        if self.objects.is_empty() {
            return 0.0;
        }
        self.objects.iter().map(GtObject::speed).sum::<f32>() / self.objects.len() as f32
    }

    /// Mean relative object scale (0 when empty).
    pub fn mean_relative_scale(&self) -> f32 {
        if self.objects.is_empty() {
            return 0.0;
        }
        self.objects
            .iter()
            .map(|o| o.relative_scale(self.width, self.height))
            .sum::<f32>()
            / self.objects.len() as f32
    }
}

/// Immutable description of a video before generation.
#[derive(Debug, Clone, PartialEq)]
pub struct VideoSpec {
    /// Unique video id within the dataset.
    pub id: u32,
    /// Generation seed (fully determines the video).
    pub seed: u64,
    /// Source width in pixels.
    pub width: f32,
    /// Source height in pixels.
    pub height: f32,
    /// Number of frames.
    pub num_frames: usize,
}

impl VideoSpec {
    /// Derives a spec deterministically from an id, using the id itself to
    /// pick resolution and length (VID videos range from tens of frames to
    /// over a thousand; we use 240–600).
    pub fn from_id(id: u32) -> Self {
        let mut rng = StdRng::seed_from_u64(0x5EED_0000_u64 + id as u64);
        let (width, height) = RESOLUTIONS[rng.gen_range(0..RESOLUTIONS.len())];
        let num_frames = rng.gen_range(240..=600);
        Self {
            id,
            seed: (id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x517E_C0DE,
            width,
            height,
            num_frames,
        }
    }
}

/// Per-video rendering style (background palette and texture), derived
/// from the seed so that pixel features vary across videos.
#[derive(Debug, Clone, PartialEq)]
pub struct VideoStyle {
    /// Background gradient color at the top of the frame.
    pub bg_top: [f32; 3],
    /// Background gradient color at the bottom of the frame.
    pub bg_bottom: [f32; 3],
    /// Spatial frequency of the background texture.
    pub texture_freq: f32,
}

impl VideoStyle {
    /// Derives a style from a seed.
    pub fn from_seed(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xBADC_0FFE);
        let hue = rng.gen_range(0.0..360.0);
        let bg_top = crate::classes::hsv_to_rgb(hue, rng.gen_range(0.1..0.4), 0.8);
        let bg_bottom =
            crate::classes::hsv_to_rgb((hue + 40.0) % 360.0, rng.gen_range(0.1..0.4), 0.45);
        Self {
            bg_top,
            bg_bottom,
            texture_freq: rng.gen_range(0.5..3.0),
        }
    }
}

/// A fully generated video: spec, style, and per-frame ground truth.
#[derive(Debug, Clone)]
pub struct Video {
    /// The video's spec.
    pub spec: VideoSpec,
    /// The video's rendering style.
    pub style: VideoStyle,
    /// Ground truth for every frame, in order.
    pub frames: Vec<FrameTruth>,
}

impl Video {
    /// Generates the video described by `spec`.
    pub fn generate(spec: VideoSpec) -> Self {
        let cfg = SceneConfig {
            width: spec.width,
            height: spec.height,
            ..SceneConfig::default()
        };
        let mut scene = Scene::new(cfg, spec.seed);
        let frames = (0..spec.num_frames).map(|_| scene.step()).collect();
        let style = VideoStyle::from_seed(spec.seed);
        Self {
            spec,
            style,
            frames,
        }
    }

    /// Number of frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// True if the video has no frames.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Iterates over non-overlapping snippets of `n` frames (the paper's
    /// accuracy-prediction granularity, N = 100). The final partial snippet
    /// is included if it has at least `n / 2` frames.
    pub fn snippets(&self, n: usize) -> Vec<&[FrameTruth]> {
        assert!(n > 0, "snippet length must be positive");
        let mut out = Vec::new();
        let mut start = 0;
        while start + n <= self.frames.len() {
            out.push(&self.frames[start..start + n]);
            start += n;
        }
        let rem = self.frames.len() - start;
        if rem >= n / 2 && rem > 0 {
            out.push(&self.frames[start..]);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let spec = VideoSpec {
            id: 0,
            seed: 9,
            width: 640.0,
            height: 480.0,
            num_frames: 60,
        };
        let a = Video::generate(spec.clone());
        let b = Video::generate(spec);
        assert_eq!(a.frames.len(), b.frames.len());
        for (fa, fb) in a.frames.iter().zip(b.frames.iter()) {
            assert_eq!(fa, fb);
        }
    }

    #[test]
    fn snippets_partition_without_overlap() {
        let spec = VideoSpec {
            id: 0,
            seed: 2,
            width: 320.0,
            height: 240.0,
            num_frames: 250,
        };
        let v = Video::generate(spec);
        let snippets = v.snippets(100);
        // 250 frames -> [0,100), [100,200), and the 50-frame remainder.
        assert_eq!(snippets.len(), 3);
        assert_eq!(snippets[0].len(), 100);
        assert_eq!(snippets[2].len(), 50);
        assert_eq!(snippets[1][0].frame_index, 100);
    }

    #[test]
    fn short_remainder_is_dropped() {
        let spec = VideoSpec {
            id: 0,
            seed: 2,
            width: 320.0,
            height: 240.0,
            num_frames: 130,
        };
        let v = Video::generate(spec);
        // 30-frame remainder < 50 is dropped.
        assert_eq!(v.snippets(100).len(), 1);
    }

    #[test]
    fn style_is_deterministic_and_seed_dependent() {
        assert_eq!(VideoStyle::from_seed(1), VideoStyle::from_seed(1));
        assert_ne!(VideoStyle::from_seed(1), VideoStyle::from_seed(2));
    }

    #[test]
    fn frame_summaries_are_finite() {
        let spec = VideoSpec {
            id: 0,
            seed: 4,
            width: 640.0,
            height: 480.0,
            num_frames: 100,
        };
        let v = Video::generate(spec);
        for f in &v.frames {
            assert!(f.mean_speed().is_finite());
            assert!(f.mean_relative_scale().is_finite());
        }
    }
}
