/root/repo/target/debug/deps/lr_features-016a35cae09da910.d: crates/features/src/lib.rs crates/features/src/cost.rs crates/features/src/cpop.rs crates/features/src/deep.rs crates/features/src/hoc.rs crates/features/src/hog.rs crates/features/src/light.rs

/root/repo/target/debug/deps/lr_features-016a35cae09da910: crates/features/src/lib.rs crates/features/src/cost.rs crates/features/src/cpop.rs crates/features/src/deep.rs crates/features/src/hoc.rs crates/features/src/hog.rs crates/features/src/light.rs

crates/features/src/lib.rs:
crates/features/src/cost.rs:
crates/features/src/cpop.rs:
crates/features/src/deep.rs:
crates/features/src/hoc.rs:
crates/features/src/hog.rs:
crates/features/src/light.rs:
