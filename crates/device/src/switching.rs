//! Branch switching costs (§3.5, Figure 5).
//!
//! Switching the MBEK from one execution branch to another costs time: the
//! first inference of the new branch is slower than its steady state
//! (different TensorFlow graph segments, re-allocated activations, ...).
//! Figure 5 shows three regularities the model reproduces:
//!
//! 1. costs are mostly below 10 ms;
//! 2. costs are higher when the *destination* branch is heavy
//!    (`shape=576, nprop=100`) and when the *source* branch is light
//!    (`shape=576, nprop=1`) — a light branch leaves less of the graph
//!    warm for the heavier successor;
//! 3. online runs occasionally show 1–5 s cold-miss outliers at
//!    non-repeating cells, which "become rarer still as the system runs
//!    for a longer period of time".
//!
//! The *offline* model is deterministic (it is what the scheduler's cost
//! term `C(b0, b)` uses); the *online* sampler adds the stochastic
//! cold-miss process.

use std::collections::HashSet;

use rand::Rng;

/// Deterministic expected switching cost, parameterized by the steady-state
/// detector latencies of the source and destination branches (a
/// knob-agnostic proxy for "how heavy" each branch is).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwitchingCostModel {
    /// Constant component of every switch, ms.
    pub base_ms: f64,
    /// Cost per ms of destination-branch heaviness.
    pub dst_coeff: f64,
    /// Extra cost added when the source branch is light, decaying with
    /// source heaviness.
    pub src_light_bonus_ms: f64,
    /// Decay scale (ms of source latency) for the light-source bonus.
    pub src_scale_ms: f64,
}

impl SwitchingCostModel {
    /// Parameters calibrated so costs land in the ranges of Figure 5(a):
    /// a few ms for most pairs, approaching ~10 ms for light-source /
    /// heavy-destination pairs.
    pub fn paper_default() -> Self {
        Self {
            base_ms: 1.2,
            dst_coeff: 0.028,
            src_light_bonus_ms: 4.5,
            src_scale_ms: 60.0,
        }
    }

    /// Expected cost of switching from a branch with steady-state detector
    /// latency `src_ms` to one with `dst_ms`. Staying on the same branch
    /// costs nothing, which callers should handle by passing equal ids —
    /// this function only sees latencies and always returns a positive
    /// cost.
    pub fn offline_cost_ms(&self, src_ms: f64, dst_ms: f64) -> f64 {
        let light_src = self.src_light_bonus_ms * (-src_ms.max(0.0) / self.src_scale_ms).exp();
        self.base_ms + self.dst_coeff * dst_ms.max(0.0) + light_src
    }
}

impl Default for SwitchingCostModel {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Online switching-cost sampler with the cold-miss outlier process.
#[derive(Debug, Clone)]
pub struct OnlineSwitchSampler {
    model: SwitchingCostModel,
    // lr-lint: allow(d2) — membership-only set (insert/contains), never iterated.
    warmed: HashSet<u64>,
    /// Probability that switching to a never-before-used branch triggers a
    /// cold graph build (the 1–5 s outliers of Figure 5(b)).
    cold_miss_prob: f64,
    /// Residual outlier probability after the branch is warm.
    warm_outlier_prob: f64,
}

impl OnlineSwitchSampler {
    /// Creates a sampler over the given deterministic model.
    pub fn new(model: SwitchingCostModel) -> Self {
        Self {
            model,
            warmed: HashSet::new(), // lr-lint: allow(d2)
            cold_miss_prob: 0.25,
            warm_outlier_prob: 0.002,
        }
    }

    /// Number of branches already warmed in this run.
    pub fn warmed_count(&self) -> usize {
        self.warmed.len()
    }

    /// Marks a branch as warm without charging anything (the paper preheats
    /// all branches "with several video frames in the beginning").
    pub fn preheat(&mut self, branch_key: u64) {
        self.warmed.insert(branch_key);
    }

    /// Samples the actual cost of a switch to `dst_key`.
    ///
    /// The expected component comes from the deterministic model; if the
    /// destination has never run in this process, a cold miss may add a
    /// 1–5 s outlier. The destination is warm afterwards either way, so
    /// outliers become rarer as the run progresses — matching Figure 5(b).
    pub fn sample_ms(&mut self, src_ms: f64, dst_ms: f64, dst_key: u64, rng: &mut impl Rng) -> f64 {
        let mut cost = self.model.offline_cost_ms(src_ms, dst_ms) * rng.gen_range(0.7..1.3);
        let outlier_prob = if self.warmed.contains(&dst_key) {
            self.warm_outlier_prob
        } else {
            self.cold_miss_prob
        };
        if rng.gen::<f64>() < outlier_prob {
            cost += rng.gen_range(1000.0..5000.0);
        }
        self.warmed.insert(dst_key);
        cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn typical_costs_are_below_ten_ms() {
        let m = SwitchingCostModel::paper_default();
        // A mid-weight to mid-weight switch.
        let c = m.offline_cost_ms(80.0, 90.0);
        assert!((0.0..10.0).contains(&c), "cost {c}");
    }

    #[test]
    fn heavy_destination_costs_more() {
        let m = SwitchingCostModel::paper_default();
        assert!(m.offline_cost_ms(80.0, 250.0) > m.offline_cost_ms(80.0, 40.0));
    }

    #[test]
    fn light_source_costs_more() {
        let m = SwitchingCostModel::paper_default();
        assert!(m.offline_cost_ms(20.0, 100.0) > m.offline_cost_ms(200.0, 100.0));
    }

    #[test]
    fn preheated_branches_rarely_spike() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut s = OnlineSwitchSampler::new(SwitchingCostModel::paper_default());
        for key in 0..8u64 {
            s.preheat(key);
        }
        let mut spikes = 0;
        for i in 0..2000 {
            let c = s.sample_ms(80.0, 80.0, i % 8, &mut rng);
            if c > 500.0 {
                spikes += 1;
            }
        }
        assert!(spikes < 20, "too many warm outliers: {spikes}");
    }

    #[test]
    fn cold_branches_spike_then_warm_up() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut s = OnlineSwitchSampler::new(SwitchingCostModel::paper_default());
        // Visit 200 distinct cold branches: expect a good number of spikes.
        let cold_spikes = (0..200u64)
            .filter(|&k| s.sample_ms(80.0, 80.0, k, &mut rng) > 500.0)
            .count();
        assert!(cold_spikes > 20, "cold spikes {cold_spikes}");
        // Revisit the same branches: spikes nearly vanish.
        let warm_spikes = (0..200u64)
            .filter(|&k| s.sample_ms(80.0, 80.0, k, &mut rng) > 500.0)
            .count();
        assert!(warm_spikes <= 3, "warm spikes {warm_spikes}");
        assert_eq!(s.warmed_count(), 200);
    }
}
