/root/repo/target/release/deps/properties-000a9545d07bb7b4.d: tests/properties.rs

/root/repo/target/release/deps/properties-000a9545d07bb7b4: tests/properties.rs

tests/properties.rs:
