//! Ground-truth trace export/import.
//!
//! Serializes a video's per-frame ground truth to a simple CSV layout so
//! traces can be inspected with external tools or pinned as regression
//! fixtures. The format is line-oriented:
//!
//! ```text
//! frame,stream,width,height,regime,id,class,x,y,w,h,vx,vy,difficulty
//! ```
//!
//! One row per (frame, object); frames with no objects emit a single row
//! with an empty object id.

use crate::classes::ObjectClass;
use crate::geometry::BBox;
use crate::object::GtObject;
use crate::regime::{ClutterLevel, MotionLevel, Regime};
use crate::video::{FrameTruth, Video};

/// Serializes a video's ground truth to trace CSV.
pub fn export_csv(video: &Video) -> String {
    let mut out =
        String::from("frame,stream,width,height,regime,id,class,x,y,w,h,vx,vy,difficulty\n");
    for f in &video.frames {
        if f.objects.is_empty() {
            out.push_str(&format!(
                "{},{},{},{},{},,,,,,,,,\n",
                f.frame_index,
                f.stream_id,
                f.width,
                f.height,
                f.regime.index()
            ));
            continue;
        }
        for o in &f.objects {
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
                f.frame_index,
                f.stream_id,
                f.width,
                f.height,
                f.regime.index(),
                o.id,
                o.class.index(),
                o.bbox.x,
                o.bbox.y,
                o.bbox.w,
                o.bbox.h,
                o.velocity.0,
                o.velocity.1,
                o.difficulty
            ));
        }
    }
    out
}

/// Parses trace CSV back into frame truths.
///
/// Color jitter is not serialized (it only affects rendering); imported
/// objects carry zero jitter.
///
/// # Errors
///
/// Returns a description of the first malformed line.
pub fn import_csv(csv: &str) -> Result<Vec<FrameTruth>, String> {
    let mut frames: Vec<FrameTruth> = Vec::new();
    for (lineno, line) in csv.lines().enumerate().skip(1) {
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 14 {
            return Err(format!(
                "line {}: expected 14 fields, got {}",
                lineno + 1,
                fields.len()
            ));
        }
        let parse_f = |s: &str, name: &str| -> Result<f32, String> {
            s.parse()
                .map_err(|_| format!("line {}: bad {name} '{s}'", lineno + 1))
        };
        let frame_index: u32 = fields[0]
            .parse()
            .map_err(|_| format!("line {}: bad frame index", lineno + 1))?;
        let stream_id: u64 = fields[1]
            .parse()
            .map_err(|_| format!("line {}: bad stream id", lineno + 1))?;
        let width = parse_f(fields[2], "width")?;
        let height = parse_f(fields[3], "height")?;
        let regime_idx: usize = fields[4]
            .parse()
            .map_err(|_| format!("line {}: bad regime", lineno + 1))?;
        let regime = regime_from_index(regime_idx)
            .ok_or_else(|| format!("line {}: regime {} out of range", lineno + 1, regime_idx))?;

        // Start a new frame when the index advances.
        let need_new = frames.last().is_none_or(|f| f.frame_index != frame_index);
        if need_new {
            frames.push(FrameTruth {
                stream_id,
                frame_index,
                width,
                height,
                regime,
                objects: Vec::new(),
            });
        }
        if fields[5].is_empty() {
            continue; // Empty-frame marker row.
        }
        let id: u32 = fields[5]
            .parse()
            .map_err(|_| format!("line {}: bad object id", lineno + 1))?;
        let class_idx: usize = fields[6]
            .parse()
            .map_err(|_| format!("line {}: bad class", lineno + 1))?;
        if class_idx >= crate::classes::NUM_CLASSES {
            return Err(format!(
                "line {}: class {} out of range",
                lineno + 1,
                class_idx
            ));
        }
        let obj = GtObject {
            id,
            class: ObjectClass::new(class_idx),
            bbox: BBox::new(
                parse_f(fields[7], "x")?,
                parse_f(fields[8], "y")?,
                parse_f(fields[9], "w")?,
                parse_f(fields[10], "h")?,
            ),
            velocity: (parse_f(fields[11], "vx")?, parse_f(fields[12], "vy")?),
            difficulty: parse_f(fields[13], "difficulty")?,
            color_jitter: [0.0; 3],
        };
        frames.last_mut().expect("frame exists").objects.push(obj);
    }
    Ok(frames)
}

/// Inverse of [`Regime::index`].
fn regime_from_index(idx: usize) -> Option<Regime> {
    let motion = match idx / 2 {
        0 => MotionLevel::Slow,
        1 => MotionLevel::Medium,
        2 => MotionLevel::Fast,
        _ => return None,
    };
    let clutter = match idx % 2 {
        0 => ClutterLevel::Sparse,
        _ => ClutterLevel::Cluttered,
    };
    Some(Regime { motion, clutter })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::video::VideoSpec;

    fn video() -> Video {
        Video::generate(VideoSpec {
            id: 0,
            seed: 5151,
            width: 640.0,
            height: 480.0,
            num_frames: 40,
        })
    }

    #[test]
    fn round_trip_preserves_geometry_and_classes() {
        let v = video();
        let csv = export_csv(&v);
        let frames = import_csv(&csv).expect("import");
        assert_eq!(frames.len(), v.frames.len());
        for (a, b) in v.frames.iter().zip(frames.iter()) {
            assert_eq!(a.frame_index, b.frame_index);
            assert_eq!(a.regime, b.regime);
            assert_eq!(a.objects.len(), b.objects.len());
            for (oa, ob) in a.objects.iter().zip(b.objects.iter()) {
                assert_eq!(oa.id, ob.id);
                assert_eq!(oa.class, ob.class);
                assert!((oa.bbox.x - ob.bbox.x).abs() < 1e-3);
                assert!((oa.difficulty - ob.difficulty).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn regime_index_round_trips() {
        for r in Regime::all() {
            assert_eq!(regime_from_index(r.index()), Some(r));
        }
        assert_eq!(regime_from_index(6), None);
    }

    #[test]
    fn malformed_lines_error_with_line_numbers() {
        let v = video();
        let mut csv = export_csv(&v);
        csv.push_str("not,a,valid,row\n");
        let err = import_csv(&csv).unwrap_err();
        assert!(err.contains("expected 14 fields"), "{err}");
    }

    #[test]
    fn out_of_range_class_is_rejected() {
        let csv = "header\n0,1,640,480,0,5,99,0,0,10,10,0,0,0.1\n";
        let err = import_csv(csv).unwrap_err();
        assert!(err.contains("class 99 out of range"), "{err}");
    }

    #[test]
    fn empty_frames_survive_round_trip() {
        let mut v = video();
        v.frames[3].objects.clear();
        let frames = import_csv(&export_csv(&v)).expect("import");
        assert!(frames[3].objects.is_empty());
        assert_eq!(frames.len(), v.frames.len());
    }
}
