/root/repo/target/debug/deps/figure4-e4aef56e629a8d9d.d: crates/bench/src/bin/figure4.rs

/root/repo/target/debug/deps/figure4-e4aef56e629a8d9d: crates/bench/src/bin/figure4.rs

crates/bench/src/bin/figure4.rs:
