//! Scene dynamics: objects spawning, moving, and despawning under a
//! regime-driven stochastic process.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::classes::{ObjectClass, NUM_CLASSES};
use crate::geometry::BBox;
use crate::object::GtObject;
use crate::regime::{Regime, RegimeChain};
use crate::video::FrameTruth;

/// Static configuration of a scene.
#[derive(Debug, Clone)]
pub struct SceneConfig {
    /// Source frame width in pixels.
    pub width: f32,
    /// Source frame height in pixels.
    pub height: f32,
    /// Mean regime dwell time in frames.
    pub mean_regime_dwell: f32,
    /// Hard upper bound on concurrent objects.
    pub max_objects: usize,
}

impl Default for SceneConfig {
    fn default() -> Self {
        Self {
            width: 1280.0,
            height: 720.0,
            mean_regime_dwell: 180.0,
            max_objects: 12,
        }
    }
}

/// Mutable per-object simulation state.
#[derive(Debug, Clone)]
struct ActiveObject {
    id: u32,
    class: ObjectClass,
    cx: f32,
    cy: f32,
    w: f32,
    h: f32,
    vx: f32,
    vy: f32,
    difficulty: f32,
    color_jitter: [f32; 3],
    /// Phase for the slow size oscillation.
    size_phase: f32,
    base_w: f32,
    base_h: f32,
}

/// A running scene simulation.
///
/// `Scene` is a deterministic function of its seed: stepping two scenes
/// with identical configs and seeds yields identical frame truths.
#[derive(Debug, Clone)]
pub struct Scene {
    cfg: SceneConfig,
    rng: StdRng,
    chain: RegimeChain,
    objects: Vec<ActiveObject>,
    next_id: u32,
    frame_index: u32,
    stream_id: u64,
}

impl Scene {
    /// Creates a scene and pre-populates it with the regime's target
    /// object count so videos do not start empty.
    pub fn new(cfg: SceneConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let chain = RegimeChain::new(cfg.mean_regime_dwell, &mut rng);
        let mut scene = Self {
            cfg,
            rng,
            chain,
            objects: Vec::new(),
            next_id: 0,
            frame_index: 0,
            stream_id: seed,
        };
        let target = scene.chain.current().clutter.target_object_count();
        for _ in 0..target {
            scene.spawn_object();
        }
        scene
    }

    /// The current regime.
    pub fn regime(&self) -> Regime {
        self.chain.current()
    }

    /// Advances the simulation by one frame and returns its ground truth.
    pub fn step(&mut self) -> FrameTruth {
        let regime = self.chain.step(&mut self.rng);
        self.adjust_population(regime);
        self.advance_objects(regime);
        let truth = self.snapshot(regime);
        self.frame_index += 1;
        truth
    }

    /// Spawns or despawns towards the regime's target population.
    fn adjust_population(&mut self, regime: Regime) {
        let target = regime.clutter.target_object_count();
        if self.objects.len() < target && self.rng.gen::<f32>() < 0.15 {
            self.spawn_object();
        } else if self.objects.len() > target && self.rng.gen::<f32>() < 0.08 {
            let idx = self.rng.gen_range(0..self.objects.len());
            self.objects.swap_remove(idx);
        }
        // Rare churn even at the target count, so object identities change.
        if !self.objects.is_empty() && self.rng.gen::<f32>() < 0.005 {
            let idx = self.rng.gen_range(0..self.objects.len());
            self.objects.swap_remove(idx);
            if self.objects.len() < self.cfg.max_objects {
                self.spawn_object();
            }
        }
    }

    fn spawn_object(&mut self) {
        if self.objects.len() >= self.cfg.max_objects {
            return;
        }
        let regime = self.chain.current();
        let diag = (self.cfg.width * self.cfg.width + self.cfg.height * self.cfg.height).sqrt();
        let short = self.cfg.width.min(self.cfg.height);
        // Log-normal-ish size spread about the regime's typical scale.
        let scale = regime.clutter.object_scale() * self.rng.gen_range(0.5..1.8);
        let aspect = self.rng.gen_range(0.6..1.7);
        let w = (scale * short * aspect).clamp(8.0, self.cfg.width * 0.8);
        let h = (scale * short / aspect).clamp(8.0, self.cfg.height * 0.8);
        let speed = regime.motion.speed_scale() * diag * self.rng.gen_range(0.5..1.5);
        let dir = self.rng.gen_range(0.0..std::f32::consts::TAU);
        let id = self.next_id;
        self.next_id += 1;
        self.objects.push(ActiveObject {
            id,
            class: ObjectClass::new(self.rng.gen_range(0..NUM_CLASSES)),
            cx: self.rng.gen_range(w / 2.0..self.cfg.width - w / 2.0),
            cy: self.rng.gen_range(h / 2.0..self.cfg.height - h / 2.0),
            w,
            h,
            vx: speed * dir.cos(),
            vy: speed * dir.sin(),
            difficulty: self.rng.gen_range(0.0..0.7),
            color_jitter: [
                self.rng.gen_range(-0.12..0.12),
                self.rng.gen_range(-0.12..0.12),
                self.rng.gen_range(-0.12..0.12),
            ],
            size_phase: self.rng.gen_range(0.0..std::f32::consts::TAU),
            base_w: w,
            base_h: h,
        });
    }

    fn advance_objects(&mut self, regime: Regime) {
        let diag = (self.cfg.width * self.cfg.width + self.cfg.height * self.cfg.height).sqrt();
        let target_speed = regime.motion.speed_scale() * diag;
        for obj in &mut self.objects {
            // Relax speed towards the regime target and jitter direction.
            let speed = (obj.vx * obj.vx + obj.vy * obj.vy).sqrt().max(1e-6);
            let new_speed = speed + 0.1 * (target_speed - speed);
            let angle = obj.vy.atan2(obj.vx) + self.rng.gen_range(-0.25..0.25);
            obj.vx = new_speed * angle.cos();
            obj.vy = new_speed * angle.sin();

            obj.cx += obj.vx;
            obj.cy += obj.vy;

            // Bounce off frame edges.
            if obj.cx < obj.w / 2.0 {
                obj.cx = obj.w / 2.0;
                obj.vx = obj.vx.abs();
            }
            if obj.cx > self.cfg.width - obj.w / 2.0 {
                obj.cx = self.cfg.width - obj.w / 2.0;
                obj.vx = -obj.vx.abs();
            }
            if obj.cy < obj.h / 2.0 {
                obj.cy = obj.h / 2.0;
                obj.vy = obj.vy.abs();
            }
            if obj.cy > self.cfg.height - obj.h / 2.0 {
                obj.cy = self.cfg.height - obj.h / 2.0;
                obj.vy = -obj.vy.abs();
            }

            // Slow apparent-size oscillation (approach/recede).
            obj.size_phase += 0.02;
            let s = 1.0 + 0.2 * obj.size_phase.sin();
            obj.w = obj.base_w * s;
            obj.h = obj.base_h * s;

            // Difficulty wanders slightly.
            obj.difficulty = (obj.difficulty + self.rng.gen_range(-0.01..0.01)).clamp(0.0, 0.95);
        }
    }

    fn snapshot(&self, regime: Regime) -> FrameTruth {
        let objects = self
            .objects
            .iter()
            .map(|o| GtObject {
                id: o.id,
                class: o.class,
                bbox: BBox::from_center(o.cx, o.cy, o.w, o.h)
                    .clamped(self.cfg.width, self.cfg.height),
                velocity: (o.vx, o.vy),
                difficulty: o.difficulty,
                color_jitter: o.color_jitter,
            })
            .filter(|o| o.bbox.is_valid())
            .collect();
        FrameTruth {
            stream_id: self.stream_id,
            frame_index: self.frame_index,
            width: self.cfg.width,
            height: self.cfg.height,
            regime,
            objects,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scene_is_deterministic_per_seed() {
        let run = || {
            let mut s = Scene::new(SceneConfig::default(), 77);
            (0..50).map(|_| s.step()).collect::<Vec<_>>()
        };
        let a = run();
        let b = run();
        assert_eq!(a.len(), b.len());
        for (fa, fb) in a.iter().zip(b.iter()) {
            assert_eq!(fa.objects, fb.objects);
            assert_eq!(fa.regime, fb.regime);
        }
    }

    #[test]
    fn objects_stay_within_frame() {
        let cfg = SceneConfig::default();
        let (w, h) = (cfg.width, cfg.height);
        let mut s = Scene::new(cfg, 3);
        for _ in 0..500 {
            let frame = s.step();
            for o in &frame.objects {
                assert!(o.bbox.x >= -1e-3 && o.bbox.right() <= w + 1e-3);
                assert!(o.bbox.y >= -1e-3 && o.bbox.bottom() <= h + 1e-3);
            }
        }
    }

    #[test]
    fn population_tracks_regime_target() {
        let mut s = Scene::new(SceneConfig::default(), 11);
        // Run long enough to visit multiple regimes and average counts by
        // clutter level.
        let mut sparse_counts = Vec::new();
        let mut cluttered_counts = Vec::new();
        for _ in 0..4000 {
            let f = s.step();
            match f.regime.clutter {
                crate::regime::ClutterLevel::Sparse => sparse_counts.push(f.objects.len()),
                crate::regime::ClutterLevel::Cluttered => cluttered_counts.push(f.objects.len()),
            }
        }
        if !sparse_counts.is_empty() && !cluttered_counts.is_empty() {
            let mean = |v: &[usize]| v.iter().sum::<usize>() as f32 / v.len() as f32;
            assert!(
                mean(&cluttered_counts) > mean(&sparse_counts),
                "cluttered regimes should carry more objects"
            );
        }
    }

    #[test]
    fn ids_are_unique_within_a_frame() {
        let mut s = Scene::new(SceneConfig::default(), 5);
        for _ in 0..200 {
            let f = s.step();
            let mut ids: Vec<_> = f.objects.iter().map(|o| o.id).collect();
            ids.sort_unstable();
            let n = ids.len();
            ids.dedup();
            assert_eq!(ids.len(), n);
        }
    }

    #[test]
    fn fast_regimes_move_objects_faster() {
        // Compare measured mean speed in slow vs fast regimes.
        let mut s = Scene::new(SceneConfig::default(), 23);
        let mut slow = Vec::new();
        let mut fast = Vec::new();
        for _ in 0..6000 {
            let f = s.step();
            let speeds: Vec<f32> = f.objects.iter().map(|o| o.speed()).collect();
            if speeds.is_empty() {
                continue;
            }
            let mean = speeds.iter().sum::<f32>() / speeds.len() as f32;
            match f.regime.motion {
                crate::regime::MotionLevel::Slow => slow.push(mean),
                crate::regime::MotionLevel::Fast => fast.push(mean),
                _ => {}
            }
        }
        if !slow.is_empty() && !fast.is_empty() {
            let m = |v: &[f32]| v.iter().sum::<f32>() / v.len() as f32;
            assert!(m(&fast) > 2.0 * m(&slow));
        }
    }
}
