//! Histogram of Colors (HoC), `f_H^1`.
//!
//! A 256-bin histogram per RGB channel, concatenated to 768 dimensions and
//! normalized to sum to 1 per channel — a direct implementation of the
//! classic color-histogram feature (Novak & Shafer, CVPR'92) the paper
//! uses.

use lr_video::RgbFrame;

/// Bins per channel.
pub const BINS: usize = 256;

/// Output dimensionality (3 channels x 256 bins).
pub const DIM: usize = 3 * BINS;

/// Extracts the 768-dimensional HoC feature from a frame.
pub fn extract(frame: &RgbFrame) -> Vec<f32> {
    let mut hist = vec![0.0f32; DIM];
    let n = frame.width() * frame.height();
    let data = frame.as_slice();
    for c in 0..3 {
        let plane = &data[c * n..(c + 1) * n];
        for &v in plane {
            let bin = ((v * 255.0) as usize).min(BINS - 1);
            hist[c * BINS + bin] += 1.0;
        }
    }
    let inv = 1.0 / n as f32;
    for v in &mut hist {
        *v *= inv;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use lr_video::raster::rasterize;
    use lr_video::{Video, VideoSpec};

    fn frame() -> RgbFrame {
        let v = Video::generate(VideoSpec {
            id: 0,
            seed: 31,
            width: 640.0,
            height: 480.0,
            num_frames: 5,
        });
        rasterize(&v.frames[2], &v.style, 64)
    }

    #[test]
    fn histogram_has_768_dims() {
        assert_eq!(extract(&frame()).len(), 768);
    }

    #[test]
    fn each_channel_sums_to_one() {
        let h = extract(&frame());
        for c in 0..3 {
            let s: f32 = h[c * BINS..(c + 1) * BINS].iter().sum();
            assert!((s - 1.0).abs() < 1e-4, "channel {c} sums to {s}");
        }
    }

    #[test]
    fn black_image_concentrates_in_bin_zero() {
        let img = RgbFrame::new(8, 8);
        let h = extract(&img);
        for c in 0..3 {
            assert!((h[c * BINS] - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn extraction_is_deterministic() {
        let f = frame();
        assert_eq!(extract(&f), extract(&f));
    }

    #[test]
    fn different_content_gives_different_histograms() {
        let a = extract(&frame());
        let b = extract(&RgbFrame::new(64, 64));
        assert_ne!(a, b);
    }
}
