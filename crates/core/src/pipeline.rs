//! The online streaming loop: scheduler + MBEK + device + evaluation.

use std::collections::HashSet;
use std::sync::Arc;

use lr_device::switching::OnlineSwitchSampler;
use lr_device::{DeviceKind, DeviceSim};
use lr_eval::{LatencyStats, MapAccumulator};
use lr_video::{BBox, Video};

use crate::featsvc::FeatureService;
use crate::offline::{to_gt_boxes, to_pred_boxes};
use crate::scheduler::{Policy, Scheduler, TrainedScheduler};

/// Configuration of one online run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Board to simulate.
    pub device: DeviceKind,
    /// GPU contention percentage (the paper evaluates 0 and 50).
    pub contention_pct: f64,
    /// Latency SLO in milliseconds (P95 target).
    pub slo_ms: f64,
    /// Run seed.
    pub seed: u64,
    /// Preheat all branches before the run (the paper preloads and
    /// preheats every branch; disable to expose the cold-miss switching
    /// outliers of Figure 5(b)).
    pub preheat: bool,
    /// Fixed per-frame pipeline overhead charged as-is (ApproxDet's
    /// legacy Python/TF pipeline; 0 for everything else).
    pub fixed_overhead_ms_per_frame: f64,
    /// Whether the scheduler's latency model is told about that overhead.
    pub overhead_known_to_scheduler: bool,
    /// Kernel latency multiplier (implementation inefficiency).
    pub kernel_latency_factor: f64,
    /// Whether the scheduler adapts its latency model online (contention
    /// awareness). SSD+/YOLO+ are not contention-adaptive.
    pub contention_adaptive: bool,
}

impl RunConfig {
    /// A clean LiteReconfig run.
    pub fn clean(device: DeviceKind, contention_pct: f64, slo_ms: f64, seed: u64) -> Self {
        Self {
            device,
            contention_pct,
            slo_ms,
            seed,
            preheat: true,
            fixed_overhead_ms_per_frame: 0.0,
            overhead_known_to_scheduler: false,
            kernel_latency_factor: 1.0,
            contention_adaptive: true,
        }
    }
}

/// Where the virtual time of a run went.
#[derive(Debug, Clone, Default)]
pub struct Breakdown {
    /// Detector (GPU) milliseconds.
    pub detector_ms: f64,
    /// Tracker (CPU) milliseconds.
    pub tracker_ms: f64,
    /// Scheduler modeling milliseconds (features, models, solver).
    pub scheduler_ms: f64,
    /// Branch-switching milliseconds.
    pub switch_ms: f64,
    /// Fixed pipeline overhead milliseconds.
    pub overhead_ms: f64,
    /// Frames processed.
    pub frames: usize,
}

impl Breakdown {
    /// Total milliseconds across components.
    pub fn total_ms(&self) -> f64 {
        self.detector_ms + self.tracker_ms + self.scheduler_ms + self.switch_ms + self.overhead_ms
    }

    /// Mean per-frame cost of a component, as a fraction of the SLO
    /// (Figure 3's y-axis).
    pub fn fraction_of_slo(&self, component_ms: f64, slo_ms: f64) -> f64 {
        if self.frames == 0 {
            return 0.0;
        }
        component_ms / self.frames as f64 / slo_ms
    }
}

/// One recorded branch switch.
#[derive(Debug, Clone, Copy)]
pub struct SwitchEvent {
    /// Source branch key (0 when switching from the unconfigured state).
    pub src_key: u64,
    /// Destination branch key.
    pub dst_key: u64,
    /// Sampled switching cost in ms (before device scaling).
    pub cost_ms: f64,
}

/// The outcome of a run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// mAP over all frames of all videos (0..1).
    pub map: f64,
    /// Per-frame latency samples (GoF-amortized, as the paper reports).
    pub latency: LatencyStats,
    /// Component breakdown.
    pub breakdown: Breakdown,
    /// Distinct branch keys executed (Figure 4's branch coverage).
    pub branches_used: HashSet<u64>,
    /// Decision counts per branch key.
    pub branch_decisions: std::collections::HashMap<u64, usize>,
    /// All branch switches with their sampled costs (Figure 5).
    pub switches: Vec<SwitchEvent>,
    /// Total scheduling decisions.
    pub decisions: usize,
    /// Decisions where no branch satisfied the constraint.
    pub infeasible_decisions: usize,
}

impl RunResult {
    /// mAP in percent.
    pub fn map_pct(&self) -> f64 {
        self.map * 100.0
    }

    /// True if the 95th-percentile latency met the SLO.
    pub fn meets_slo(&self, slo_ms: f64) -> bool {
        self.latency.p95() <= slo_ms
    }
}

/// Runs an adaptive protocol (any LiteReconfig variant, ApproxDet, SSD+,
/// YOLO+) over a set of videos.
pub fn run_adaptive(
    videos: &[Video],
    trained: Arc<TrainedScheduler>,
    policy: Policy,
    cfg: &RunConfig,
    svc: &mut FeatureService,
) -> RunResult {
    let mut device = DeviceSim::new(cfg.device, cfg.contention_pct, cfg.seed);
    let mut mbek =
        lr_kernels::Mbek::new(trained.family).with_latency_factor(cfg.kernel_latency_factor);
    let mut scheduler = Scheduler::new(trained.clone(), policy, cfg.slo_ms);
    if !cfg.contention_adaptive {
        scheduler = scheduler.with_frozen_latency_model();
    }
    if cfg.overhead_known_to_scheduler {
        scheduler = scheduler.with_known_overhead(cfg.fixed_overhead_ms_per_frame);
    }
    let mut sampler = OnlineSwitchSampler::new(trained.switching);
    if cfg.preheat {
        for b in &trained.catalog {
            sampler.preheat(b.key());
        }
    }

    let mut acc = MapAccumulator::new();
    let mut latency = LatencyStats::new();
    let mut breakdown = Breakdown::default();
    let mut branches_used = HashSet::new();
    let mut branch_decisions: std::collections::HashMap<u64, usize> =
        std::collections::HashMap::new();
    let mut switches = Vec::new();
    let mut decisions = 0usize;
    let mut infeasible = 0usize;

    for video in videos {
        scheduler.reset_stream();
        let mut boxes: Vec<BBox> = Vec::new();
        let mut t = 0usize;
        while t < video.len() {
            // Scheduler decision (all costs charged inside).
            let before = device.now_ms();
            let decision = scheduler.decide(video, t, &boxes, svc, &mut device);
            let sched_ms = device.now_ms() - before;
            decisions += 1;
            if !decision.feasible {
                infeasible += 1;
            }

            // Branch switch if needed.
            let mut switch_ms = 0.0;
            let dst_key = trained.catalog[decision.branch_idx].key();
            let need_switch = scheduler.current_branch() != Some(decision.branch_idx)
                || mbek.branch().is_none();
            if need_switch {
                let src_idx = scheduler.current_branch();
                let src_ms = src_idx.map_or(80.0, |i| trained.det_inference_ms[i]);
                let src_key = src_idx.map_or(0, |i| trained.catalog[i].key());
                let cost = sampler.sample_ms(
                    src_ms,
                    trained.det_inference_ms[decision.branch_idx],
                    dst_key,
                    device.rng(),
                );
                switch_ms =
                    device.charge_fixed(cost * device.profile().gpu_speed_factor);
                switches.push(SwitchEvent {
                    src_key,
                    dst_key,
                    cost_ms: cost,
                });
                mbek.set_branch(trained.catalog[decision.branch_idx]);
                scheduler.commit_branch(decision.branch_idx);
            }
            branches_used.insert(dst_key);
            *branch_decisions.entry(dst_key).or_insert(0) += 1;

            // Light features used for the latency observation must match
            // what the scheduler saw.
            let light = svc.light(video, t, &boxes);

            // Execute the GoF.
            let branch = trained.catalog[decision.branch_idx];
            let end = (t + branch.gof_size.max(1) as usize).min(video.len());
            let frames = &video.frames[t..end];
            let result = mbek.run_gof(frames, &mut device);

            // Fixed pipeline overhead per frame.
            let mut overhead_ms = 0.0;
            if cfg.fixed_overhead_ms_per_frame > 0.0 {
                for _ in frames {
                    overhead_ms += device.charge_fixed(cfg.fixed_overhead_ms_per_frame);
                }
            }

            // Accounting: GoF-amortized per-frame latency samples.
            let gof_total = sched_ms + switch_ms + result.kernel_ms() + overhead_ms;
            let per_frame = gof_total / frames.len() as f64;
            for (truth, dets) in frames.iter().zip(result.per_frame.iter()) {
                acc.add_frame(&to_gt_boxes(truth), &to_pred_boxes(dets));
                latency.record(per_frame);
            }
            breakdown.detector_ms += result.detector_ms;
            breakdown.tracker_ms += result.tracker_ms;
            breakdown.scheduler_ms += sched_ms;
            breakdown.switch_ms += switch_ms;
            breakdown.overhead_ms += overhead_ms;
            breakdown.frames += frames.len();

            // Feed observations back to the scheduler.
            let n = frames.len() as f64;
            scheduler.observe_latency(
                decision.branch_idx,
                &light,
                result.detector_ms / n,
                result.tracker_ms / n,
            );
            scheduler.record_detection(t, result.first_frame_output.proposal_logits.clone());
            // The light features of the next decision come from the most
            // recent *detector* output — matching the offline protocol,
            // where they were collected from reference detections (tracked
            // boxes under- and mis-count objects on weak branches, which
            // would skew the models' input distribution).
            boxes = result
                .first_frame_output
                .detections
                .iter()
                .map(|det| det.bbox)
                .collect();
            t = end;
        }
    }

    RunResult {
        map: acc.finalize(0.5).map,
        latency,
        breakdown,
        branches_used,
        branch_decisions,
        switches,
        decisions,
        infeasible_decisions: infeasible,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::featsvc::FeatureService;
    use crate::offline::{profile_videos, OfflineConfig};
    use crate::trainer::{train_scheduler, TrainConfig};
    use lr_kernels::branch::small_catalog;
    use lr_kernels::DetectorFamily;
    use lr_video::VideoSpec;

    fn setup() -> (Arc<TrainedScheduler>, Vec<Video>, FeatureService) {
        let train_videos: Vec<Video> = (0..2)
            .map(|i| {
                Video::generate(VideoSpec {
                    id: i,
                    seed: 600 + i as u64,
                    width: 640.0,
                    height: 480.0,
                    num_frames: 80,
                })
            })
            .collect();
        let mut svc = FeatureService::new();
        let cfg = OfflineConfig {
            snippet_len: 40,
            catalog: small_catalog(),
            family: DetectorFamily::FasterRcnn,
            reference_detector: lr_kernels::DetectorConfig::new(576, 100),
            seed: 11,
        };
        let ds = profile_videos(&train_videos, &cfg, &mut svc);
        let trained = Arc::new(train_scheduler(
            &ds,
            DetectorFamily::FasterRcnn,
            &TrainConfig::tiny(),
        ));
        let val_videos: Vec<Video> = (0..2)
            .map(|i| {
                Video::generate(VideoSpec {
                    id: 100 + i,
                    seed: 700 + i as u64,
                    width: 640.0,
                    height: 480.0,
                    num_frames: 100,
                })
            })
            .collect();
        (trained, val_videos, svc)
    }

    #[test]
    fn run_covers_every_frame() {
        let (trained, videos, mut svc) = setup();
        let cfg = RunConfig::clean(DeviceKind::JetsonTx2, 0.0, 100.0, 1);
        let r = run_adaptive(&videos, trained, Policy::MinCost, &cfg, &mut svc);
        let total_frames: usize = videos.iter().map(Video::len).sum();
        assert_eq!(r.breakdown.frames, total_frames);
        assert_eq!(r.latency.count(), total_frames);
        assert!(r.map > 0.0, "mAP must be non-trivial, got {}", r.map);
        assert!(r.decisions > 0);
    }

    #[test]
    fn loose_slo_meets_latency_objective() {
        let (trained, videos, mut svc) = setup();
        let cfg = RunConfig::clean(DeviceKind::JetsonTx2, 0.0, 100.0, 2);
        let r = run_adaptive(&videos, trained, Policy::MinCost, &cfg, &mut svc);
        assert!(
            r.meets_slo(100.0),
            "P95 {} exceeds 100 ms SLO",
            r.latency.p95()
        );
    }

    #[test]
    fn contention_adaptive_run_survives_contention() {
        let (trained, videos, mut svc) = setup();
        let cfg = RunConfig::clean(DeviceKind::JetsonTx2, 50.0, 100.0, 3);
        let r = run_adaptive(&videos, trained, Policy::MinCost, &cfg, &mut svc);
        // With adaptation the P95 should stay within ~the SLO even under
        // 50% GPU contention (generous 1.2x tolerance for the short test).
        assert!(
            r.latency.p95() < 120.0,
            "P95 {} under contention",
            r.latency.p95()
        );
    }

    #[test]
    fn breakdown_accounts_for_all_time() {
        let (trained, videos, mut svc) = setup();
        let cfg = RunConfig::clean(DeviceKind::JetsonTx2, 0.0, 50.0, 4);
        let r = run_adaptive(&videos, trained, Policy::MinCost, &cfg, &mut svc);
        let sample_total: f64 = r.latency.mean() * r.latency.count() as f64;
        assert!(
            (sample_total - r.breakdown.total_ms()).abs() < 1.0,
            "samples {} vs breakdown {}",
            sample_total,
            r.breakdown.total_ms()
        );
    }

    #[test]
    fn fixed_overhead_inflates_latency() {
        let (trained, videos, mut svc) = setup();
        let mut cfg = RunConfig::clean(DeviceKind::JetsonTx2, 0.0, 100.0, 5);
        let clean = run_adaptive(
            &videos,
            trained.clone(),
            Policy::MinCost,
            &cfg,
            &mut svc,
        );
        cfg.fixed_overhead_ms_per_frame = 48.0;
        cfg.overhead_known_to_scheduler = true;
        let heavy = run_adaptive(&videos, trained, Policy::MinCost, &cfg, &mut svc);
        assert!(heavy.latency.mean() > clean.latency.mean() + 40.0);
    }

    #[test]
    fn branch_coverage_is_recorded() {
        let (trained, videos, mut svc) = setup();
        let cfg = RunConfig::clean(DeviceKind::JetsonTx2, 0.0, 50.0, 6);
        let r = run_adaptive(&videos, trained, Policy::MinCost, &cfg, &mut svc);
        assert!(!r.branches_used.is_empty());
        assert!(!r.switches.is_empty(), "the first configuration is a switch");
    }
}
