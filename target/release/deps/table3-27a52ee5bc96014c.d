/root/repo/target/release/deps/table3-27a52ee5bc96014c.d: crates/bench/src/bin/table3.rs

/root/repo/target/release/deps/table3-27a52ee5bc96014c: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
