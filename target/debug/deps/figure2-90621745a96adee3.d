/root/repo/target/debug/deps/figure2-90621745a96adee3.d: crates/bench/src/bin/figure2.rs

/root/repo/target/debug/deps/figure2-90621745a96adee3: crates/bench/src/bin/figure2.rs

crates/bench/src/bin/figure2.rs:
