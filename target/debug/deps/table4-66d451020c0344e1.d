/root/repo/target/debug/deps/table4-66d451020c0344e1.d: crates/bench/src/bin/table4.rs

/root/repo/target/debug/deps/table4-66d451020c0344e1: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
