/root/repo/target/debug/examples/traffic_monitor-4731ccf6903d498f.d: examples/traffic_monitor.rs Cargo.toml

/root/repo/target/debug/examples/libtraffic_monitor-4731ccf6903d498f.rmeta: examples/traffic_monitor.rs Cargo.toml

examples/traffic_monitor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
