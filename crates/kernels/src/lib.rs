//! The multi-branch execution kernel (MBEK) and baseline kernels.
//!
//! Following ApproxDet's design (which LiteReconfig adopts), the MBEK is a
//! Faster R-CNN object detector paired with one of four object trackers in
//! a tracking-by-detection scheme: the detector runs on the first frame of
//! every Group-of-Frames (GoF), the tracker propagates its boxes across
//! the remaining frames. An [`branch::Branch`] fixes the knobs:
//!
//! - `shape`  — detector input resolution (224 / 320 / 448 / 576);
//! - `nprop`  — region proposals kept in the RPN (1 … 100);
//! - `tracker` — MedianFlow / KCF / CSRT / Optical Flow (absent when the
//!   detector runs every frame);
//! - `si`     — GoF size (frames per detection);
//! - `ds`     — tracker input downsampling ratio.
//!
//! The detectors are **analytic simulators**: they consume ground truth
//! and emit noisy detections whose hit probability, localization jitter,
//! and classification confusion depend on the knobs and the content
//! (apparent object size, motion blur, clutter), calibrated so the
//! accuracy-vs-knob trends match the published system. Accuracy numbers
//! downstream are *computed* by evaluating these detections with real mAP
//! — never asserted. Latency is charged to the `lr-device` virtual clock
//! from knob-dependent tables.
//!
//! Besides the Faster R-CNN MBEK, the crate provides the paper's baseline
//! kernels: YOLOv3 and SSD-MobileNetV2 one-stage detectors (for the YOLO+
//! and SSD+ protocols), EfficientDet D0/D3, AdaScale, and the
//! accuracy-optimized video detectors SELSA / MEGA / REPP of Table 3.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adascale;
pub mod branch;
pub mod detector;
pub mod heavy;
pub mod latency;
pub mod mbek;
pub mod tracker;

pub use branch::{Branch, DetectorConfig, TrackerKind};
pub use detector::{Detection, DetectorFamily, DetectorSim};
pub use mbek::{GofError, GofOptions, GofResult, Mbek};
pub use tracker::TrackerSim;
