//! Figure 2: accuracy-vs-latency curves for the content-agnostic
//! strategy, the ResNet content-aware strategy, and the MobileNet
//! content-aware strategy — the motivation for cost-benefit analysis.
//!
//! Each strategy pays its real feature costs; sweeping the SLO traces the
//! curve. The paper's shape: ResNet-aware dominates content-agnostic
//! (detector-byproduct features are nearly free), while MobileNet-aware
//! falls below it (its 153.96 ms extraction eats the kernel's budget).
//!
//! Usage: `cargo run --release -p lr-bench --bin figure2 [small|paper]`

use litereconfig::pipeline::{run_adaptive, RunConfig};
use litereconfig::{FeatureService, Policy};
use lr_bench::{scale_from_args, Suite};
use lr_device::DeviceKind;
use lr_eval::TextTable;
use lr_features::FeatureKind;

fn main() {
    let suite = Suite::build(scale_from_args());
    let slos = [25.0, 33.3, 50.0, 66.7, 100.0];
    let strategies = [
        ("content-agnostic", Policy::MinCost),
        (
            "content-aware (ResNet)",
            Policy::MaxContent(FeatureKind::ResNet50),
        ),
        (
            "content-aware (MobileNet)",
            Policy::MaxContent(FeatureKind::MobileNetV2),
        ),
    ];

    let mut table = TextTable::new(&[
        "Strategy",
        "SLO (ms)",
        "mAP (%)",
        "Mean latency (ms)",
        "P95 (ms)",
    ]);
    // Independent (strategy, SLO) cells fan out over the pool; rows come
    // back in sweep order with per-worker feature caches.
    let cells: Vec<(usize, usize)> = (0..strategies.len())
        .flat_map(|si| (0..slos.len()).map(move |li| (si, li)))
        .collect();
    let raster_size = suite.svc.raster_size();
    let pool = lr_pool::Pool::from_env();
    let rows = pool.par_map_init(
        &cells,
        || FeatureService::with_raster_size(raster_size),
        |svc, _, &(si, li)| {
            let (name, policy) = &strategies[si];
            let slo = slos[li];
            let cfg = RunConfig::clean(
                DeviceKind::JetsonTx2,
                0.0,
                slo,
                3000 + si as u64 * 10 + li as u64,
            );
            let r = run_adaptive(&suite.val_videos, suite.frcnn.clone(), *policy, &cfg, svc);
            eprintln!("[figure2] {name} @{slo} -> {:.1}", r.map_pct());
            vec![
                name.to_string(),
                format!("{slo}"),
                format!("{:.1}", r.map_pct()),
                format!("{:.1}", r.latency.mean()),
                format!("{:.1}", r.latency.p95()),
            ]
        },
    );
    for row in rows {
        table.add_row_owned(row);
    }
    println!("\nFigure 2 data: accuracy vs latency per strategy (TX2, no contention)\n");
    println!("{}", table.render());
    println!("CSV:\n{}", table.render_csv());
}
