//! Integration tests pinning down the scheduler's decision behavior —
//! the mechanisms behind each of the paper's claims, tested directly.

use std::sync::Arc;

use litereconfig::offline::{profile_videos, OfflineConfig};
use litereconfig::trainer::{train_scheduler, TrainConfig};
use litereconfig::{FeatureService, Policy, Scheduler, TrainedScheduler};
use lr_device::{DeviceKind, DeviceSim};
use lr_features::FeatureKind;
use lr_kernels::branch::small_catalog;
use lr_kernels::DetectorFamily;
use lr_video::{Dataset, DatasetConfig, Split, Video};

fn build() -> (Arc<TrainedScheduler>, Video, FeatureService) {
    let dataset = Dataset::new(DatasetConfig {
        train_vision: 0,
        train_scheduler: 3,
        validation: 1,
        id_offset: 40_000,
    });
    let train = dataset.videos(Split::TrainScheduler);
    let val = dataset.video(Split::Validation, 0);
    let mut svc = FeatureService::new();
    let cfg = OfflineConfig {
        snippet_len: 50,
        ..OfflineConfig::paper(small_catalog(), DetectorFamily::FasterRcnn)
    };
    let ds = profile_videos(&train, &cfg, &mut svc);
    // The byproduct-gating tests below need content models for the
    // detector-derived features, which the default tiny config skips.
    let train_cfg = TrainConfig {
        heavy_kinds: vec![
            FeatureKind::HoC,
            FeatureKind::CPoP,
            FeatureKind::ResNet50,
            FeatureKind::MobileNetV2,
        ],
        ..TrainConfig::tiny()
    };
    let trained = Arc::new(train_scheduler(&ds, DetectorFamily::FasterRcnn, &train_cfg));
    (trained, val, svc)
}

/// The decision must always return a valid catalog index and charge a
/// plausible scheduler cost.
#[test]
fn decisions_are_well_formed_across_slos() {
    let (trained, video, mut svc) = build();
    for slo in [10.0, 20.0, 33.3, 50.0, 100.0, 500.0] {
        let mut dev = DeviceSim::new(DeviceKind::JetsonTx2, 0.0, 1);
        let mut s = Scheduler::new(trained.clone(), Policy::CostBenefit, slo);
        let d = s.decide(&video, 0, &[], &mut svc, &mut dev);
        assert!(d.branch_idx < trained.catalog.len());
        assert!(d.scheduler_ms >= 0.0 && d.scheduler_ms < 500.0);
        assert!(d.predicted_kernel_ms >= 0.0);
    }
}

/// An infeasible SLO must trigger the cheapest-branch fallback, flagged
/// as infeasible.
#[test]
fn impossible_slo_falls_back_to_cheapest_branch() {
    let (trained, video, mut svc) = build();
    let mut dev = DeviceSim::new(DeviceKind::JetsonTx2, 0.0, 2);
    let mut s = Scheduler::new(trained.clone(), Policy::MinCost, 0.2);
    let d = s.decide(&video, 0, &[], &mut svc, &mut dev);
    assert!(!d.feasible, "0.2 ms cannot be feasible");
    // The fallback is the branch with minimum predicted latency.
    let light = svc.light(&video, 0, &[]);
    let cheapest = (0..trained.catalog.len())
        .min_by(|&a, &b| {
            trained
                .latency
                .predict_kernel_ms(a, &light, 1.0, 1.0)
                .total_cmp(&trained.latency.predict_kernel_ms(b, &light, 1.0, 1.0))
        })
        .unwrap();
    assert_eq!(d.branch_idx, cheapest);
}

/// Detector-byproduct features become available only after a detection is
/// recorded, and the scheduler uses them afterwards.
#[test]
fn byproduct_features_unlock_after_detection() {
    let (trained, video, mut svc) = build();
    let mut dev = DeviceSim::new(DeviceKind::JetsonTx2, 0.0, 3);
    let mut s = Scheduler::new(
        trained.clone(),
        Policy::MaxContent(FeatureKind::CPoP),
        100.0,
    );
    let d0 = s.decide(&video, 0, &[], &mut svc, &mut dev);
    assert!(d0.features.is_empty(), "CPoP cannot be available yet");
    s.record_detection(0, vec![vec![0.0; 31]; 4]);
    let d1 = s.decide(&video, 8, &[], &mut svc, &mut dev);
    assert_eq!(d1.features, vec![FeatureKind::CPoP]);
}

/// After a stream reset the byproducts are gone again.
#[test]
fn stream_reset_clears_byproducts() {
    let (trained, video, mut svc) = build();
    let mut dev = DeviceSim::new(DeviceKind::JetsonTx2, 0.0, 4);
    let mut s = Scheduler::new(
        trained.clone(),
        Policy::MaxContent(FeatureKind::ResNet50),
        100.0,
    );
    s.record_detection(0, vec![vec![0.0; 31]; 4]);
    let before = s.decide(&video, 8, &[], &mut svc, &mut dev);
    assert!(!before.features.is_empty());
    s.reset_stream();
    let after = s.decide(&video, 8, &[], &mut svc, &mut dev);
    assert!(after.features.is_empty());
}

/// The tail-aware correction rises faster than the mean when observations
/// are volatile — the mechanism that protects the P95 under bursty
/// contention.
#[test]
fn volatile_latencies_inflate_the_correction_beyond_the_mean() {
    let (trained, _, _) = build();
    let light = vec![0.4, 0.3, 0.2, 0.01];
    let (pred_det, _) = trained.latency.predict_parts(0, &light);

    let mut steady = Scheduler::new(trained.clone(), Policy::MinCost, 50.0);
    let mut bursty = Scheduler::new(trained.clone(), Policy::MinCost, 50.0);
    for i in 0..60 {
        steady.observe_latency(0, &light, pred_det * 2.0, 0.0);
        // Same mean (2x) but alternating 1x / 3x.
        let f = if i % 2 == 0 { 1.0 } else { 3.0 };
        bursty.observe_latency(0, &light, pred_det * f, 0.0);
    }
    assert!(
        bursty.gpu_correction() > steady.gpu_correction() + 0.2,
        "bursty {} vs steady {}",
        bursty.gpu_correction(),
        steady.gpu_correction()
    );
}

/// Switching costs enter the optimizer: with the current branch set, an
/// identical-latency alternative must be penalized by the switch.
#[test]
fn committed_branch_has_zero_switch_cost() {
    let (trained, _, _) = build();
    let mut s = Scheduler::new(trained.clone(), Policy::MinCost, 50.0);
    for idx in 0..trained.catalog.len() {
        s.commit_branch(idx);
        assert_eq!(s.expected_switch_ms(idx), 0.0);
        let other = (idx + 1) % trained.catalog.len();
        assert!(s.expected_switch_ms(other) > 0.0);
    }
}

/// MaxContent must never recruit more than its single designated feature,
/// and CostBenefit never more than two (the configured cap).
#[test]
fn feature_counts_respect_policy_caps() {
    let (trained, video, mut svc) = build();
    let mut dev = DeviceSim::new(DeviceKind::JetsonTx2, 0.0, 5);
    let mut max_content =
        Scheduler::new(trained.clone(), Policy::MaxContent(FeatureKind::HoC), 200.0);
    let mut cost_benefit = Scheduler::new(trained.clone(), Policy::CostBenefit, 200.0);
    for t in [0usize, 8, 16] {
        let d = max_content.decide(&video, t, &[], &mut svc, &mut dev);
        assert!(d.features.len() <= 1);
        let d = cost_benefit.decide(&video, t, &[], &mut svc, &mut dev);
        assert!(d.features.len() <= 2);
    }
}
