/root/repo/target/debug/deps/lr_bench-3acf3234cd80abb1.d: crates/bench/src/lib.rs crates/bench/src/suite.rs

/root/repo/target/debug/deps/liblr_bench-3acf3234cd80abb1.rlib: crates/bench/src/lib.rs crates/bench/src/suite.rs

/root/repo/target/debug/deps/liblr_bench-3acf3234cd80abb1.rmeta: crates/bench/src/lib.rs crates/bench/src/suite.rs

crates/bench/src/lib.rs:
crates/bench/src/suite.rs:
