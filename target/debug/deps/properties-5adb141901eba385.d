/root/repo/target/debug/deps/properties-5adb141901eba385.d: tests/properties.rs

/root/repo/target/debug/deps/properties-5adb141901eba385: tests/properties.rs

tests/properties.rs:
