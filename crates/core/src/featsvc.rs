//! Runtime feature extraction with per-frame raster caching.

use std::collections::HashMap;

use lr_features::{cpop, hoc, hog, DeepExtractors, FeatureKind, LightFeatures};
use lr_video::raster::{rasterize, DEFAULT_RASTER_SIZE};
use lr_video::{BBox, RgbFrame, Video};

/// Extracts content features from video frames.
///
/// Rasterization (the most expensive real computation) is cached per
/// `(video seed, frame index)`; the cache is bounded and cleared wholesale
/// when full — experiments stream videos in order, so eviction hygiene is
/// not worth the complexity.
///
/// Note that *virtual* extraction latencies are charged by the scheduler
/// from the Table 1 cost table, not here; this service only computes the
/// feature values.
#[derive(Debug)]
pub struct FeatureService {
    deep: DeepExtractors,
    raster_size: usize,
    cache: HashMap<(u64, u32), RgbFrame>,
    max_cache: usize,
}

impl Default for FeatureService {
    fn default() -> Self {
        Self::new()
    }
}

impl FeatureService {
    /// Creates a service with the default 64x64 raster.
    pub fn new() -> Self {
        Self::with_raster_size(DEFAULT_RASTER_SIZE)
    }

    /// Creates a service with a custom raster edge length.
    ///
    /// # Panics
    ///
    /// Panics if `raster_size` is below the HOG minimum (16).
    pub fn with_raster_size(raster_size: usize) -> Self {
        assert!(raster_size >= 16, "raster too small: {raster_size}");
        Self {
            deep: DeepExtractors::new(),
            raster_size,
            cache: HashMap::new(),
            max_cache: 2048,
        }
    }

    /// The configured raster edge length.
    pub fn raster_size(&self) -> usize {
        self.raster_size
    }

    /// Rasterizes (or fetches from cache) a frame of a video.
    ///
    /// # Panics
    ///
    /// Panics if `frame_idx` is out of range.
    pub fn raster(&mut self, video: &Video, frame_idx: usize) -> &RgbFrame {
        assert!(frame_idx < video.len(), "frame {frame_idx} out of range");
        let key = (video.spec.seed, frame_idx as u32);
        if self.cache.len() >= self.max_cache && !self.cache.contains_key(&key) {
            self.cache.clear();
        }
        let size = self.raster_size;
        self.cache
            .entry(key)
            .or_insert_with(|| rasterize(&video.frames[frame_idx], &video.style, size))
    }

    /// The light feature vector for a frame, given the boxes the kernel
    /// currently believes in.
    pub fn light(&self, video: &Video, frame_idx: usize, boxes: &[BBox]) -> Vec<f32> {
        let truth = &video.frames[frame_idx];
        LightFeatures::from_boxes(truth.width, truth.height, boxes).to_vec()
    }

    /// Extracts a heavy content feature from a frame.
    ///
    /// CPoP is assembled from detector proposal logits, which the caller
    /// must supply (`proposal_logits`); other features come from the
    /// raster. Returns `None` for [`FeatureKind::CPoP`] without logits and
    /// for [`FeatureKind::Light`] (use [`Self::light`]).
    pub fn extract_heavy(
        &mut self,
        kind: FeatureKind,
        video: &Video,
        frame_idx: usize,
        proposal_logits: Option<&[Vec<f32>]>,
    ) -> Option<Vec<f32>> {
        match kind {
            FeatureKind::Light => None,
            FeatureKind::HoC => Some(hoc::extract(self.raster(video, frame_idx))),
            FeatureKind::Hog => Some(hog::extract(self.raster(video, frame_idx))),
            FeatureKind::ResNet50 => {
                let raster = self.raster(video, frame_idx).clone();
                Some(self.deep.resnet50(&raster))
            }
            FeatureKind::MobileNetV2 => {
                let raster = self.raster(video, frame_idx).clone();
                Some(self.deep.mobilenetv2(&raster))
            }
            FeatureKind::CPoP => proposal_logits.map(cpop::cpop_vector),
        }
    }

    /// The dimensionality a heavy feature has under this service's raster
    /// size (HOG scales with raster size; others are fixed).
    pub fn feature_dim(&self, kind: FeatureKind) -> usize {
        match kind {
            FeatureKind::Hog => hog::dim_for(self.raster_size),
            other => other.cost().dim,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lr_video::VideoSpec;

    fn video() -> Video {
        Video::generate(VideoSpec {
            id: 0,
            seed: 101,
            width: 640.0,
            height: 480.0,
            num_frames: 12,
        })
    }

    #[test]
    fn raster_is_cached() {
        let v = video();
        let mut svc = FeatureService::new();
        let a = svc.raster(&v, 3).clone();
        let b = svc.raster(&v, 3).clone();
        assert_eq!(a, b);
        assert_eq!(svc.cache.len(), 1);
    }

    #[test]
    fn all_heavy_features_have_expected_dims() {
        let v = video();
        let mut svc = FeatureService::new();
        let logits = vec![vec![0.0f32; 31]; 3];
        for kind in lr_features::HEAVY_FEATURE_KINDS {
            let f = svc
                .extract_heavy(kind, &v, 0, Some(&logits))
                .unwrap_or_else(|| panic!("{kind:?} failed"));
            assert_eq!(f.len(), svc.feature_dim(kind), "{kind:?}");
        }
    }

    #[test]
    fn cpop_without_logits_is_none() {
        let v = video();
        let mut svc = FeatureService::new();
        assert!(svc.extract_heavy(FeatureKind::CPoP, &v, 0, None).is_none());
    }

    #[test]
    fn light_features_reflect_boxes() {
        let v = video();
        let svc = FeatureService::new();
        let empty = svc.light(&v, 0, &[]);
        let boxes = [BBox::new(0.0, 0.0, 64.0, 48.0)];
        let one = svc.light(&v, 0, &boxes);
        assert_eq!(empty.len(), 4);
        assert!(one[2] > empty[2], "object count dimension must grow");
    }

    #[test]
    fn cache_clears_when_full_instead_of_growing() {
        let v = video();
        let mut svc = FeatureService::new();
        svc.max_cache = 4;
        for i in 0..12 {
            let _ = svc.raster(&v, i);
        }
        assert!(svc.cache.len() <= 4 + 1);
    }
}
