/root/repo/target/debug/deps/serve_scaling-7c4f42266aa0480c.d: crates/bench/src/bin/serve_scaling.rs

/root/repo/target/debug/deps/serve_scaling-7c4f42266aa0480c: crates/bench/src/bin/serve_scaling.rs

crates/bench/src/bin/serve_scaling.rs:
