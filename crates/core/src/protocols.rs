//! Protocol specifications for every system in the paper's evaluation.
//!
//! Table 2 compares seven adaptive protocols; Table 3 adds the
//! accuracy-optimized baselines. Each adaptive protocol is a combination
//! of a detector family, a scheduling policy, and pipeline
//! characteristics (contention adaptivity, legacy overheads); static
//! protocols run a fixed detector on every frame, and heavy protocols run
//! the simulated SELSA/MEGA/REPP models.

use std::sync::Arc;

use lr_device::{DeviceKind, DeviceSim, MemoryModel, OpUnit};
use lr_eval::{LatencyStats, MapAccumulator};
use lr_features::FeatureKind;
use lr_kernels::heavy::HeavyModel;
use lr_kernels::{latency, DetectorConfig, DetectorFamily, DetectorSim};
use lr_video::Video;

use crate::offline::{to_gt_boxes, to_pred_boxes};
use crate::pipeline::{run_adaptive, Breakdown, RunConfig, RunResult};
use crate::scheduler::{Policy, TrainedScheduler};
use crate::FeatureService;

/// The adaptive protocols of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AdaptiveProtocol {
    /// SSD-MobileNetV2 with ApproxDet-style knobs; latency-adaptive but
    /// not contention-adaptive.
    SsdPlus,
    /// YOLOv3 with the same knobs; latency-adaptive but not
    /// contention-adaptive.
    YoloPlus,
    /// The SOTA baseline: content-agnostic, contention-adaptive, but with
    /// a legacy pipeline whose fixed overhead dominates tight SLOs.
    ApproxDet,
    /// LiteReconfig, content-agnostic variant.
    LiteReconfigMinCost,
    /// LiteReconfig always using the ResNet50 content feature.
    LiteReconfigMaxContentResNet,
    /// LiteReconfig always using the MobileNetV2 content feature.
    LiteReconfigMaxContentMobileNet,
    /// The full system with cost-benefit analysis.
    LiteReconfig,
}

impl AdaptiveProtocol {
    /// All Table 2 protocols in presentation order.
    pub fn all() -> [AdaptiveProtocol; 7] {
        [
            AdaptiveProtocol::SsdPlus,
            AdaptiveProtocol::YoloPlus,
            AdaptiveProtocol::ApproxDet,
            AdaptiveProtocol::LiteReconfigMinCost,
            AdaptiveProtocol::LiteReconfigMaxContentResNet,
            AdaptiveProtocol::LiteReconfigMaxContentMobileNet,
            AdaptiveProtocol::LiteReconfig,
        ]
    }

    /// Display name as used in Table 2.
    pub fn name(self) -> &'static str {
        match self {
            AdaptiveProtocol::SsdPlus => "SSD+",
            AdaptiveProtocol::YoloPlus => "YOLO+",
            AdaptiveProtocol::ApproxDet => "ApproxDet",
            AdaptiveProtocol::LiteReconfigMinCost => "LiteReconfig-MinCost",
            AdaptiveProtocol::LiteReconfigMaxContentResNet => "LiteReconfig-MaxContent-ResNet",
            AdaptiveProtocol::LiteReconfigMaxContentMobileNet => {
                "LiteReconfig-MaxContent-MobileNet"
            }
            AdaptiveProtocol::LiteReconfig => "LiteReconfig",
        }
    }

    /// Which detector family the protocol's MBEK uses.
    pub fn family(self) -> DetectorFamily {
        match self {
            AdaptiveProtocol::SsdPlus => DetectorFamily::Ssd,
            AdaptiveProtocol::YoloPlus => DetectorFamily::Yolo,
            _ => DetectorFamily::FasterRcnn,
        }
    }

    /// The scheduling policy.
    pub fn policy(self) -> Policy {
        match self {
            AdaptiveProtocol::LiteReconfigMaxContentResNet => {
                Policy::MaxContent(FeatureKind::ResNet50)
            }
            AdaptiveProtocol::LiteReconfigMaxContentMobileNet => {
                Policy::MaxContent(FeatureKind::MobileNetV2)
            }
            AdaptiveProtocol::LiteReconfig => Policy::CostBenefit,
            _ => Policy::MinCost,
        }
    }

    /// Whether the protocol adapts its latency model to contention.
    pub fn contention_adaptive(self) -> bool {
        !matches!(self, AdaptiveProtocol::SsdPlus | AdaptiveProtocol::YoloPlus)
    }

    /// Fixed per-frame pipeline overhead, ms (ApproxDet's legacy stack,
    /// calibrated so its published SLO failures reproduce: it meets a
    /// 100 ms SLO on the TX2 but fails 33.3/50 ms there and every Xavier
    /// objective).
    pub fn fixed_overhead_ms(self) -> f64 {
        match self {
            AdaptiveProtocol::ApproxDet => 50.5,
            _ => 0.0,
        }
    }

    /// Kernel latency multiplier (implementation inefficiency).
    pub fn kernel_latency_factor(self) -> f64 {
        match self {
            AdaptiveProtocol::ApproxDet => 1.15,
            _ => 1.0,
        }
    }

    /// Builds the run configuration for a scenario.
    pub fn run_config(
        self,
        device: DeviceKind,
        contention_pct: f64,
        slo_ms: f64,
        seed: u64,
    ) -> RunConfig {
        RunConfig {
            device,
            contention_pct,
            slo_ms,
            seed,
            preheat: true,
            fixed_overhead_ms_per_frame: self.fixed_overhead_ms(),
            overhead_known_to_scheduler: self.fixed_overhead_ms() > 0.0,
            kernel_latency_factor: self.kernel_latency_factor(),
            contention_adaptive: self.contention_adaptive(),
            fault: None,
            gof_deadline_factor: None,
        }
    }

    /// Runs the protocol over videos with a trained scheduler for its
    /// family.
    #[allow(clippy::too_many_arguments)]
    pub fn run(
        self,
        videos: &[Video],
        trained: Arc<TrainedScheduler>,
        device: DeviceKind,
        contention_pct: f64,
        slo_ms: f64,
        seed: u64,
        svc: &mut FeatureService,
    ) -> RunResult {
        assert_eq!(
            trained.family,
            self.family(),
            "trained scheduler family mismatch for {}",
            self.name()
        );
        let cfg = self.run_config(device, contention_pct, slo_ms, seed);
        run_adaptive(videos, trained, self.policy(), &cfg, svc)
    }
}

/// Runs a fixed detector configuration on every frame (EfficientDet,
/// AdaScale single-scale variants). Used by Table 3 and the AdaScale
/// comparison.
pub fn run_static_detector(
    family: DetectorFamily,
    cfg: DetectorConfig,
    videos: &[Video],
    device_kind: DeviceKind,
    contention_pct: f64,
    seed: u64,
) -> RunResult {
    let mut device = DeviceSim::new(device_kind, contention_pct, seed);
    let sim = DetectorSim::new(family);
    let mut acc = MapAccumulator::new();
    let mut stats = LatencyStats::new();
    let mut breakdown = Breakdown::default();
    for video in videos {
        for truth in &video.frames {
            let ms = device.charge(OpUnit::Gpu, latency::detector_base_ms(family, cfg));
            let out = sim.detect(truth, cfg, device.rng());
            acc.add_frame(&to_gt_boxes(truth), &to_pred_boxes(&out.detections));
            stats.record(ms);
            breakdown.detector_ms += ms;
            breakdown.frames += 1;
        }
    }
    RunResult {
        map: acc.finalize(0.5).map,
        latency: stats,
        breakdown,
        branches_used: std::iter::once(cfg.key()).collect(),
        branch_decisions: std::collections::BTreeMap::new(),
        switches: Vec::new(),
        decisions: 0,
        infeasible_decisions: 0,
        degrade_events: Vec::new(),
        faults: 0,
        degraded_gofs: 0,
    }
}

/// Runs AdaScale in its adaptive multi-scale (MS) mode: the input scale
/// of each frame is regressed from the previous frame's detections.
pub fn run_adascale_ms(videos: &[Video], device_kind: DeviceKind, seed: u64) -> RunResult {
    let mut device = DeviceSim::new(device_kind, 0.0, seed);
    let mut acc = MapAccumulator::new();
    let mut stats = LatencyStats::new();
    let mut breakdown = Breakdown::default();
    let mut branches = std::collections::BTreeSet::new();
    for video in videos {
        let mut ms = lr_kernels::adascale::AdaScaleMs::new();
        for truth in &video.frames {
            let cfg = ms.config();
            let charged = device.charge(
                OpUnit::Gpu,
                latency::detector_base_ms(DetectorFamily::AdaScale, cfg),
            );
            let out = ms.step(truth, device.rng());
            acc.add_frame(&to_gt_boxes(truth), &to_pred_boxes(&out.detections));
            stats.record(charged);
            breakdown.detector_ms += charged;
            breakdown.frames += 1;
            branches.insert(cfg.key());
        }
    }
    RunResult {
        map: acc.finalize(0.5).map,
        latency: stats,
        breakdown,
        branches_used: branches,
        branch_decisions: std::collections::BTreeMap::new(),
        switches: Vec::new(),
        decisions: 0,
        infeasible_decisions: 0,
        degrade_events: Vec::new(),
        faults: 0,
        degraded_gofs: 0,
    }
}

/// Runs a heavyweight Table 3 model; returns `Err` with the OOM message
/// when the model does not fit the board.
pub fn run_heavy_model(
    model: HeavyModel,
    videos: &[Video],
    device_kind: DeviceKind,
    seed: u64,
) -> Result<RunResult, String> {
    let profile = device_kind.profile();
    let mut mem = MemoryModel::new(&profile);
    mem.try_load(model.name(), model.peak_memory_gb())
        .map_err(|e| e.to_string())?;

    let mut device = DeviceSim::new(device_kind, 0.0, seed);
    let mut acc = MapAccumulator::new();
    let mut stats = LatencyStats::new();
    let mut breakdown = Breakdown::default();
    let base = model.mean_latency_tx2_ms();
    for video in videos {
        for truth in &video.frames {
            let ms = device.charge(OpUnit::Gpu, base);
            let dets = model.detect(truth, device.rng());
            acc.add_frame(&to_gt_boxes(truth), &to_pred_boxes(&dets));
            stats.record(ms);
            breakdown.detector_ms += ms;
            breakdown.frames += 1;
        }
    }
    Ok(RunResult {
        map: acc.finalize(0.5).map,
        latency: stats,
        breakdown,
        branches_used: std::collections::BTreeSet::new(),
        branch_decisions: std::collections::BTreeMap::new(),
        switches: Vec::new(),
        decisions: 0,
        infeasible_decisions: 0,
        degrade_events: Vec::new(),
        faults: 0,
        degraded_gofs: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lr_video::VideoSpec;

    fn videos() -> Vec<Video> {
        vec![Video::generate(VideoSpec {
            id: 0,
            seed: 800,
            width: 640.0,
            height: 480.0,
            num_frames: 60,
        })]
    }

    #[test]
    fn protocol_metadata_is_consistent() {
        for p in AdaptiveProtocol::all() {
            let _ = p.name();
            assert!(p.kernel_latency_factor() >= 1.0);
            assert!(p.fixed_overhead_ms() >= 0.0);
        }
        assert!(!AdaptiveProtocol::SsdPlus.contention_adaptive());
        assert!(AdaptiveProtocol::LiteReconfig.contention_adaptive());
        assert_eq!(AdaptiveProtocol::LiteReconfig.policy(), Policy::CostBenefit);
    }

    #[test]
    fn efficientdet_d0_matches_table3_latency() {
        let r = run_static_detector(
            DetectorFamily::EfficientDetD0,
            DetectorConfig::new(512, 100),
            &videos(),
            DeviceKind::JetsonTx2,
            0.0,
            1,
        );
        assert!(
            (120.0..160.0).contains(&r.latency.mean()),
            "D0 latency {}",
            r.latency.mean()
        );
        assert!(r.map > 0.2);
    }

    #[test]
    fn heavy_model_ooms_on_tx2() {
        let err = run_heavy_model(
            HeavyModel::ReppOverFgfa,
            &videos(),
            DeviceKind::JetsonTx2,
            1,
        )
        .unwrap_err();
        assert!(err.contains("OOM"), "{err}");
    }

    #[test]
    fn selsa_runs_slow_but_accurate() {
        let r = run_heavy_model(
            HeavyModel::SelsaResNet50,
            &videos(),
            DeviceKind::JetsonTx2,
            2,
        )
        .unwrap();
        assert!(r.latency.mean() > 1500.0);
        assert!(r.map > 0.5, "SELSA mAP {}", r.map);
    }
}
