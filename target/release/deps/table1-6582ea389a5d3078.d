/root/repo/target/release/deps/table1-6582ea389a5d3078.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-6582ea389a5d3078: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
