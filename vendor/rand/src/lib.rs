//! Offline stand-in for the subset of the `rand` 0.8 API used by this
//! workspace.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the few primitives it needs: a seedable deterministic
//! generator ([`rngs::StdRng`], xoshiro256** seeded via SplitMix64), the
//! [`Rng`] extension trait (`gen`, `gen_range`, `gen_bool`) and
//! [`seq::SliceRandom`] (`shuffle`, `choose`).
//!
//! The value streams differ from upstream `rand` for the same seed —
//! everything in this workspace asserts determinism and statistical
//! properties, never exact draws — but the API is call-compatible, so
//! swapping the real crate back in is a one-line `Cargo.toml` change.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform random bits.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed;

    /// Builds the generator from a full raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64` convenience seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be drawn uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// Numeric types [`Rng::gen_range`] can draw over.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws uniformly from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Draws uniformly from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_uniform_float {
    ($t:ty) => {
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "gen_range: empty range {lo}..{hi}");
                let u = <$t as Standard>::sample(rng);
                lo + u * (hi - lo)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "gen_range: empty range {lo}..={hi}");
                let u = <$t as Standard>::sample(rng);
                lo + u * (hi - lo)
            }
        }
    };
}

impl_uniform_float!(f32);
impl_uniform_float!(f64);

macro_rules! impl_uniform_int {
    ($t:ty) => {
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "gen_range: empty range {lo}..{hi}");
                let span = (hi as i128 - lo as i128) as u128;
                // Modulo bias is < span/2^64, negligible for simulation use.
                let draw = rng.next_u64() as u128 % span;
                (lo as i128 + draw as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "gen_range: empty range {lo}..={hi}");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = rng.next_u64() as u128 % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    };
}

impl_uniform_int!(usize);
impl_uniform_int!(u8);
impl_uniform_int!(u16);
impl_uniform_int!(u32);
impl_uniform_int!(u64);
impl_uniform_int!(i8);
impl_uniform_int!(i16);
impl_uniform_int!(i32);
impl_uniform_int!(i64);

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange {
    /// The element type produced.
    type Output;

    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

impl<T: SampleUniform> SampleRange for Range<T> {
    type Output = T;

    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange for RangeInclusive<T> {
    type Output = T;

    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// High-level draws, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniform value of type `T` (floats in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws uniformly from a range (`lo..hi` or `lo..=hi`).
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p {p} outside [0, 1]");
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic generator: xoshiro256** with SplitMix64 seeding.
    ///
    /// Not the upstream `StdRng` algorithm (ChaCha12) — value streams
    /// differ — but the same API, determinism and statistical quality
    /// for simulation purposes.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // All-zero state is a fixed point of xoshiro; reseed via SplitMix.
            if s == [0; 4] {
                return Self::seed_from_u64(0);
            }
            Self { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Slice helpers.

    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng>(&mut self, rng: &mut R);

        /// Returns a uniformly random element, or `None` if empty.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let draw = |seed| {
            let mut r = StdRng::seed_from_u64(seed);
            (0..16).map(|_| r.gen::<f64>()).collect::<Vec<_>>()
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8));
    }

    #[test]
    fn unit_interval_and_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(1);
        let n = 50_000;
        let mean: f64 = (0..n)
            .map(|_| {
                let x = r.gen::<f64>();
                assert!((0.0..1.0).contains(&x));
                x
            })
            .sum::<f64>()
            / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = r.gen_range(3..9usize);
            assert!((3..9).contains(&x));
            let y = r.gen_range(240..=600i32);
            assert!((240..=600).contains(&y));
            let z = r.gen_range(-1.5..=1.5f32);
            assert!((-1.5..=1.5).contains(&z));
        }
    }

    #[test]
    fn integer_inclusive_range_hits_both_ends() {
        let mut r = StdRng::seed_from_u64(3);
        let draws: Vec<usize> = (0..1000).map(|_| r.gen_range(0..=3usize)).collect();
        for v in 0..=3 {
            assert!(draws.contains(&v), "value {v} never drawn");
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = StdRng::seed_from_u64(4);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "50 elements left in order");
    }

    #[test]
    fn choose_covers_elements() {
        let mut r = StdRng::seed_from_u64(5);
        let v = [1, 2, 3];
        assert!(v.choose(&mut r).is_some());
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut r).is_none());
    }
}
