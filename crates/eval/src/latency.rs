//! Latency statistics: mean and percentiles.

/// Accumulates per-frame latency samples and reports the statistics the
/// paper uses: mean latency and P95 (the SLO is a 95th-percentile bound,
/// i.e. a < 5% violation rate).
#[derive(Debug, Clone, Default)]
pub struct LatencyStats {
    samples: Vec<f64>,
}

impl LatencyStats {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one latency sample in milliseconds.
    ///
    /// # Panics
    ///
    /// Panics on negative or non-finite samples.
    pub fn record(&mut self, ms: f64) {
        assert!(ms.is_finite() && ms >= 0.0, "invalid latency sample {ms}");
        self.samples.push(ms);
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Mean latency (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// The `q`-quantile via nearest-rank on the sorted samples
    /// (`q` in `[0, 1]`; 0 when empty).
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn percentile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0,1]");
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    /// The 95th percentile.
    pub fn p95(&self) -> f64 {
        self.percentile(0.95)
    }

    /// The 99th percentile.
    pub fn p99(&self) -> f64 {
        self.percentile(0.99)
    }

    /// Maximum sample (0 when empty).
    pub fn max(&self) -> f64 {
        self.samples.iter().copied().fold(0.0, f64::max)
    }

    /// Fraction of samples strictly above `slo_ms` (the SLO violation
    /// rate; 0 when empty).
    pub fn violation_rate(&self, slo_ms: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().filter(|&&s| s > slo_ms).count() as f64 / self.samples.len() as f64
    }

    /// Merges another collector's samples into this one.
    pub fn merge(&mut self, other: &LatencyStats) {
        self.samples.extend_from_slice(&other.samples);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(values: &[f64]) -> LatencyStats {
        let mut s = LatencyStats::new();
        for &v in values {
            s.record(v);
        }
        s
    }

    #[test]
    fn mean_of_known_values() {
        assert_eq!(filled(&[1.0, 2.0, 3.0]).mean(), 2.0);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = LatencyStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.p95(), 0.0);
        assert_eq!(s.violation_rate(10.0), 0.0);
    }

    #[test]
    fn p95_of_hundred_uniform_samples() {
        let values: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = filled(&values);
        assert_eq!(s.p95(), 95.0);
        assert_eq!(s.percentile(1.0), 100.0);
        assert_eq!(s.percentile(0.0), 1.0);
    }

    #[test]
    fn percentile_is_order_invariant() {
        let a = filled(&[5.0, 1.0, 3.0, 2.0, 4.0]);
        let b = filled(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(a.p95(), b.p95());
        assert_eq!(a.mean(), b.mean());
    }

    #[test]
    fn violation_rate_counts_strict_exceedances() {
        let s = filled(&[10.0, 20.0, 30.0, 40.0]);
        assert_eq!(s.violation_rate(25.0), 0.5);
        assert_eq!(s.violation_rate(40.0), 0.0);
    }

    #[test]
    fn merge_combines_samples() {
        let mut a = filled(&[1.0, 2.0]);
        let b = filled(&[3.0, 4.0]);
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.mean(), 2.5);
    }

    #[test]
    #[should_panic(expected = "invalid latency sample")]
    fn negative_sample_panics() {
        LatencyStats::new().record(-1.0);
    }

    #[test]
    fn p95_tracks_heavy_tail() {
        // 99 fast frames and one huge spike: P95 stays low, max is huge.
        let mut values = vec![10.0; 99];
        values.push(5000.0);
        let s = filled(&values);
        assert_eq!(s.p95(), 10.0);
        assert_eq!(s.max(), 5000.0);
    }
}
