/root/repo/target/debug/deps/litereconfig_repro-e19f6b6b41d406e5.d: src/lib.rs

/root/repo/target/debug/deps/liblitereconfig_repro-e19f6b6b41d406e5.rlib: src/lib.rs

/root/repo/target/debug/deps/liblitereconfig_repro-e19f6b6b41d406e5.rmeta: src/lib.rs

src/lib.rs:
