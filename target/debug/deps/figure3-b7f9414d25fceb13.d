/root/repo/target/debug/deps/figure3-b7f9414d25fceb13.d: crates/bench/src/bin/figure3.rs

/root/repo/target/debug/deps/figure3-b7f9414d25fceb13: crates/bench/src/bin/figure3.rs

crates/bench/src/bin/figure3.rs:
