/root/repo/target/release/deps/calibrate-e09700055a87cdc9.d: crates/bench/src/bin/calibrate.rs

/root/repo/target/release/deps/calibrate-e09700055a87cdc9: crates/bench/src/bin/calibrate.rs

crates/bench/src/bin/calibrate.rs:
