/root/repo/target/release/deps/ablations-ea6636bf2eef0d27.d: crates/bench/src/bin/ablations.rs

/root/repo/target/release/deps/ablations-ea6636bf2eef0d27: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
