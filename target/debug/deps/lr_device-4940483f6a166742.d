/root/repo/target/debug/deps/lr_device-4940483f6a166742.d: crates/device/src/lib.rs crates/device/src/clock.rs crates/device/src/contention.rs crates/device/src/executor.rs crates/device/src/memory.rs crates/device/src/noise.rs crates/device/src/profile.rs crates/device/src/switching.rs

/root/repo/target/debug/deps/lr_device-4940483f6a166742: crates/device/src/lib.rs crates/device/src/clock.rs crates/device/src/contention.rs crates/device/src/executor.rs crates/device/src/memory.rs crates/device/src/noise.rs crates/device/src/profile.rs crates/device/src/switching.rs

crates/device/src/lib.rs:
crates/device/src/clock.rs:
crates/device/src/contention.rs:
crates/device/src/executor.rs:
crates/device/src/memory.rs:
crates/device/src/noise.rs:
crates/device/src/profile.rs:
crates/device/src/switching.rs:
