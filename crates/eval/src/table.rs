//! Plain-text result tables for the experiment harness.

/// A fixed-width text table with a header row.
///
/// # Examples
///
/// ```
/// use lr_eval::TextTable;
///
/// let mut t = TextTable::new(&["Model", "mAP (%)", "P95 (ms)"]);
/// t.add_row(&["LiteReconfig", "45.4", "32.2"]);
/// let rendered = t.render();
/// assert!(rendered.contains("LiteReconfig"));
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `header` is empty.
    pub fn new(header: &[&str]) -> Self {
        assert!(!header.is_empty(), "table needs at least one column");
        Self {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn add_row(&mut self, row: &[&str]) {
        assert_eq!(
            row.len(),
            self.header.len(),
            "row width {} != header width {}",
            row.len(),
            self.header.len()
        );
        self.rows.push(row.iter().map(|s| s.to_string()).collect());
    }

    /// Appends a row of owned strings.
    pub fn add_row_owned(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table with aligned columns and a separator line.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (c, cell) in cells.iter().enumerate() {
                if c > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:width$}", cell, width = widths[c]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders as comma-separated values (for downstream plotting).
    pub fn render_csv(&self) -> String {
        let mut out = String::new();
        let escape = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        out.push_str(
            &self
                .header
                .iter()
                .map(|s| escape(s))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|s| escape(s)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = TextTable::new(&["a", "bbbb"]);
        t.add_row(&["xxxx", "y"]);
        let rendered = t.render();
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines.len(), 3);
        // Second column starts at the same offset in header and row.
        let h = lines[0].find("bbbb").unwrap();
        let r = lines[2].find('y').unwrap();
        assert_eq!(h, r);
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = TextTable::new(&["name", "value"]);
        t.add_row(&["a,b", "1"]);
        assert!(t.render_csv().contains("\"a,b\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = TextTable::new(&["a", "b"]);
        t.add_row(&["only-one"]);
    }

    #[test]
    fn num_rows_counts() {
        let mut t = TextTable::new(&["a"]);
        t.add_row(&["1"]);
        t.add_row(&["2"]);
        assert_eq!(t.num_rows(), 2);
    }
}
