//! Inspect one scheduler decision inside a serving trace: load a JSONL
//! trace written by the `trace` bench (or any `ObsBundle::to_jsonl`
//! output), pick one `(stream, gof)`, and print the full decision
//! record — the Eq. 3 budget terms the scheduler saw, the features it
//! paid for, the branch it chose — next to the span tree of what then
//! actually ran on the virtual clock.
//!
//! ```sh
//! cargo run --release -p lr-bench --bin trace -- small   # writes target/trace.jsonl
//! cargo run --release --example trace_inspect            # first decision
//! cargo run --release --example trace_inspect -- target/trace.jsonl 2 5
//! ```

use lr_obs::trace::{parse_jsonl, Value};

fn num(v: &Value, key: &str) -> f64 {
    v.get(key).and_then(Value::as_f64).unwrap_or(f64::NAN)
}

fn int(v: &Value, key: &str) -> u64 {
    v.get(key).and_then(Value::as_u64).unwrap_or(0)
}

fn text<'a>(v: &'a Value, key: &str) -> &'a str {
    v.get(key).and_then(Value::as_str).unwrap_or("")
}

fn flag(v: &Value, key: &str) -> bool {
    v.get(key).and_then(Value::as_bool).unwrap_or(false)
}

fn is_type(v: &Value, ty: &str) -> bool {
    text(v, "type") == ty
}

fn print_decision(d: &Value) {
    println!(
        "decision stream={} gof={} @ {:.2} ms (video {}, frames {}..{})",
        int(d, "stream"),
        int(d, "gof"),
        num(d, "t_ms"),
        int(d, "video"),
        int(d, "start_frame"),
        int(d, "start_frame") + int(d, "frames"),
    );
    let prev = text(d, "prev_key");
    println!(
        "  chose   {}{}",
        text(d, "chosen_key"),
        if flag(d, "switched") {
            format!(
                "  (switched from {})",
                if prev.is_empty() { "<none>" } else { prev }
            )
        } else {
            String::new()
        }
    );
    if let Some(e) = d.get("explain") {
        println!(
            "  budget  SLO {:.1} ms -> usable {:.2} ms | S0 {:.2} + S(f_H) {:.2} + C(b0,b) {:.2} \
             -> amortized {:.2} ms/frame, predicted slack {:.2} ms",
            num(e, "slo_ms"),
            num(e, "budget_ms"),
            num(e, "s0_ms"),
            num(e, "s_heavy_ms"),
            num(e, "switch_pred_ms"),
            num(e, "amortized_ms"),
            num(e, "slack_ms"),
        );
        if let Some(feats) = e.get("features").and_then(Value::as_arr) {
            if !feats.is_empty() {
                let rendered: Vec<String> = feats
                    .iter()
                    .map(|f| format!("{} (Ben {:.3})", text(f, "name"), num(f, "ben")))
                    .collect();
                println!("  features {}", rendered.join(", "));
            }
        }
        let accs = e.get("branch_acc").and_then(Value::as_arr).unwrap_or(&[]);
        let kms = e
            .get("branch_kernel_ms")
            .and_then(Value::as_arr)
            .unwrap_or(&[]);
        let chosen = int(e, "chosen") as usize;
        println!("  branches (predicted accuracy / predicted kernel ms):");
        for (i, (a, k)) in accs.iter().zip(kms).enumerate() {
            println!(
                "    {} [{i:>2}] acc {:.4}  kernel {:.2} ms",
                if i == chosen { "->" } else { "  " },
                a.as_f64().unwrap_or(f64::NAN),
                k.as_f64().unwrap_or(f64::NAN),
            );
        }
        if !flag(e, "feasible") {
            println!("  NOTE: no branch fit the budget; fallback selection was used");
        }
        if flag(e, "cost_only") {
            println!("  NOTE: cost-only decision (accuracy models degraded)");
        }
    }
    println!(
        "  outcome per-frame {:.2} ms = sched {:.2} + switch {:.2} + kernel {:.2} + overhead {:.2} \
         (wasted {:.2}) | slowdown {:.2}x, faults {}{}",
        num(d, "per_frame_ms"),
        num(d, "sched_ms"),
        num(d, "switch_ms"),
        num(d, "kernel_ms"),
        num(d, "overhead_ms"),
        num(d, "wasted_ms"),
        num(d, "slowdown"),
        int(d, "faults"),
        if flag(d, "degraded") { ", degraded" } else { "" },
    );
    if let Some(degrades) = d.get("degrades").and_then(Value::as_arr) {
        if !degrades.is_empty() {
            let tags: Vec<&str> = degrades.iter().filter_map(Value::as_str).collect();
            println!("  degrade ladder: {}", tags.join(" -> "));
        }
    }
}

fn print_span_tree(events: &[Value], stream: u64, gof: u64) {
    println!("span tree (virtual-clock ms):");
    // Spans are emitted at span *end*, so children precede parents in
    // the trace; re-sort into begin order (ties broken by depth, so a
    // parent prints above children starting at the same instant).
    let mut spans: Vec<&Value> = events
        .iter()
        .filter(|s| is_type(s, "span") && int(s, "stream") == stream && int(s, "gof") == gof)
        .collect();
    spans.sort_by(|a, b| {
        num(a, "t0")
            .total_cmp(&num(b, "t0"))
            .then(int(a, "depth").cmp(&int(b, "depth")))
    });
    for s in spans.iter() {
        let depth = int(s, "depth") as usize;
        let label = text(s, "label");
        let t0 = num(s, "t0");
        let t1 = num(s, "t1");
        println!(
            "  {:indent$}{}{} [{t0:.3} .. {t1:.3}] {:.3} ms",
            "",
            text(s, "kind"),
            if label.is_empty() {
                String::new()
            } else {
                format!("({label})")
            },
            t1 - t0,
            indent = depth * 2,
        );
    }
    if spans.is_empty() {
        println!("  (no spans recorded for this GoF)");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let path = args.get(1).map_or("target/trace.jsonl", String::as_str);
    let src = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("trace_inspect: cannot read {path}: {e}");
            eprintln!("run `cargo run --release -p lr-bench --bin trace -- small` first");
            std::process::exit(2);
        }
    };
    let events = match parse_jsonl(&src) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("trace_inspect: {path} is not a valid trace: {e}");
            std::process::exit(2);
        }
    };
    let decisions: Vec<&Value> = events.iter().filter(|v| is_type(v, "decision")).collect();
    let spans = events.iter().filter(|v| is_type(v, "span")).count();
    let rounds = events.iter().filter(|v| is_type(v, "round")).count();
    println!(
        "{path}: {} decisions, {spans} spans, {rounds} rounds",
        decisions.len()
    );
    if decisions.is_empty() {
        eprintln!("trace_inspect: no decision records in {path} (was it a Counting-mode run?)");
        std::process::exit(2);
    }

    // Target (stream, gof): args 2 and 3, defaulting to the first
    // recorded decision.
    let stream = args
        .get(2)
        .and_then(|a| a.parse::<u64>().ok())
        .unwrap_or_else(|| int(decisions[0], "stream"));
    let gof = args
        .get(3)
        .and_then(|a| a.parse::<u64>().ok())
        .unwrap_or_else(|| int(decisions[0], "gof"));
    let Some(decision) = decisions
        .iter()
        .find(|d| int(d, "stream") == stream && int(d, "gof") == gof)
    else {
        eprintln!("trace_inspect: no decision for stream {stream} gof {gof}");
        let streams: Vec<String> = decisions
            .iter()
            .map(|d| format!("({}, {})", int(d, "stream"), int(d, "gof")))
            .take(8)
            .collect();
        eprintln!(
            "available (stream, gof) pairs start with: {}",
            streams.join(" ")
        );
        std::process::exit(2);
    };
    println!();
    print_decision(decision);
    println!();
    print_span_tree(&events, stream, gof);
}
