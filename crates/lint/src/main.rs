//! CLI for the workspace invariant checker.
//!
//! ```text
//! lr-lint --check                 # compare against lint_baseline.json (CI gate)
//! lr-lint --update                # regenerate the baseline from the current tree
//! lr-lint --explain <rule>        # document a rule (d1|d2|d3|n1|p1|o1)
//! lr-lint --root <dir>            # workspace root (default: current directory)
//! lr-lint --baseline <file>       # baseline path (default: <root>/lint_baseline.json)
//! ```
//!
//! Exit codes: 0 = ok, 1 = ratchet failure (--check found regressions),
//! 2 = usage or I/O error.

use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use lr_lint::baseline::Baseline;
use lr_lint::rules::{RuleId, ALL_RULES};
use lr_lint::{check, walk, WorkspaceScan};

enum Mode {
    Check,
    Update,
    Explain(RuleId),
}

struct Args {
    mode: Mode,
    root: PathBuf,
    baseline: Option<PathBuf>,
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&argv).and_then(run) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("lr-lint: {msg}");
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "usage: lr-lint [--check | --update | --explain <rule>] \
[--root <dir>] [--baseline <file>]";

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut mode = None;
    let mut root = None;
    let mut baseline = None;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--check" => mode = Some(Mode::Check),
            "--update" => mode = Some(Mode::Update),
            "--explain" => {
                let name = it.next().ok_or("--explain needs a rule name")?;
                let rule = RuleId::parse(name)
                    .ok_or_else(|| format!("unknown rule {name:?} (try d1, d2, d3, n1, p1, o1)"))?;
                mode = Some(Mode::Explain(rule));
            }
            "--root" => {
                let dir = it.next().ok_or("--root needs a directory")?;
                root = Some(PathBuf::from(dir));
            }
            "--baseline" => {
                let file = it.next().ok_or("--baseline needs a file path")?;
                baseline = Some(PathBuf::from(file));
            }
            other => return Err(format!("unrecognized argument {other:?}")),
        }
    }
    Ok(Args {
        mode: mode.unwrap_or(Mode::Check),
        root: root.unwrap_or_else(|| PathBuf::from(".")),
        baseline,
    })
}

fn run(args: Args) -> Result<ExitCode, String> {
    if let Mode::Explain(rule) = args.mode {
        println!("{} — {}", rule.name(), rule.summary());
        println!();
        println!("{}", rule.explain());
        return Ok(ExitCode::SUCCESS);
    }

    let baseline_path = args
        .baseline
        .unwrap_or_else(|| args.root.join("lint_baseline.json"));

    let files = walk::collect_rs_files(&args.root)
        .map_err(|e| format!("walking {}: {e}", args.root.display()))?;
    if files.is_empty() {
        return Err(format!("no .rs files under {}", args.root.display()));
    }
    let mut sources = Vec::with_capacity(files.len());
    for f in &files {
        let src = fs::read_to_string(&f.abs).map_err(|e| format!("reading {}: {e}", f.rel))?;
        sources.push((f.rel.clone(), src));
    }
    let scan = WorkspaceScan::from_sources(sources.iter().map(|(p, s)| (p.as_str(), s.as_str())));

    match args.mode {
        Mode::Explain(_) => unreachable!("handled above"),
        Mode::Update => {
            let json = scan.to_baseline().to_json();
            fs::write(&baseline_path, &json)
                .map_err(|e| format!("writing {}: {e}", baseline_path.display()))?;
            println!(
                "lr-lint: wrote {} from {} files",
                baseline_path.display(),
                scan.files_scanned
            );
            print_totals(&scan);
            Ok(ExitCode::SUCCESS)
        }
        Mode::Check => {
            let committed = fs::read_to_string(&baseline_path).map_err(|e| {
                format!(
                    "reading {}: {e} (run `lr-lint --update` to create it)",
                    baseline_path.display()
                )
            })?;
            let committed = Baseline::parse(&committed)
                .map_err(|e| format!("parsing {}: {e}", baseline_path.display()))?;
            let report = check(&scan, &committed);
            for (rule, cur, base) in &report.improved {
                println!(
                    "lr-lint: {} improved ({base} -> {cur}); run `lr-lint --update` to ratchet",
                    rule.name()
                );
            }
            if report.passed() {
                println!(
                    "lr-lint: OK — {} files, no rule above baseline",
                    scan.files_scanned
                );
                print_totals(&scan);
                Ok(ExitCode::SUCCESS)
            } else {
                for reg in &report.regressions {
                    eprintln!(
                        "lr-lint: {} regressed: {} findings (baseline {}), {} allows (baseline {})",
                        reg.rule.name(),
                        reg.current,
                        reg.committed,
                        reg.allows.0,
                        reg.allows.1
                    );
                    for f in &reg.new_sites {
                        eprintln!("  {}:{}: {}", f.file, f.line, f.excerpt);
                    }
                    eprintln!(
                        "  fix the new sites or see `lr-lint --explain {}`",
                        reg.rule.name().to_lowercase()
                    );
                }
                Ok(ExitCode::from(1))
            }
        }
    }
}

fn print_totals(scan: &WorkspaceScan) {
    let b = scan.to_baseline();
    for rule in ALL_RULES {
        let counts = b.rule(rule);
        println!(
            "  {}: {} findings, {} allows — {}",
            rule.name(),
            counts.total(),
            counts.allows,
            rule.summary()
        );
    }
}
