//! Table 3: LiteReconfig vs accuracy-optimized video object detectors
//! (SELSA, MEGA, REPP, EfficientDet, AdaScale) on the TX2.
//!
//! Every row is an independent seeded run, so the baseline rows fan out
//! over an `lr-pool` worker pool (results return in row order) and the
//! three LiteReconfig rows fan out with per-worker feature caches.
//!
//! Usage: `cargo run --release -p lr-bench --bin table3 [small|paper]`

use litereconfig::pipeline::run_adaptive;
use litereconfig::protocols::{run_heavy_model, run_static_detector, AdaptiveProtocol};
use lr_bench::{scale_from_args, Suite};
use lr_device::DeviceKind;
use lr_eval::TextTable;
use lr_kernels::heavy::HeavyModel;
use lr_kernels::{DetectorConfig, DetectorFamily};

/// One baseline row of the table; all variants run on the heavy-model
/// video subset with the seed the sequential sweep used.
enum Baseline {
    Heavy(HeavyModel),
    Static {
        family: DetectorFamily,
        cfg: DetectorConfig,
        name: &'static str,
        mem: &'static str,
        seed: u64,
    },
    AdaScaleMs,
}

fn main() {
    let suite = Suite::build(scale_from_args());
    // The heavy models are painfully slow even virtually; a subset of the
    // validation videos gives stable mAP at a fraction of the cost.
    let heavy_videos = &suite.val_videos[..suite.val_videos.len().min(4)];

    let mut table = TextTable::new(&[
        "Model, latency SLO",
        "mAP (%)",
        "Mean latency (ms)",
        "Memory (GB)",
    ]);

    let mut baselines: Vec<Baseline> = HeavyModel::all().into_iter().map(Baseline::Heavy).collect();
    for (family, name, mem) in [
        (DetectorFamily::EfficientDetD3, "EfficientDet D3", "5.68"),
        (DetectorFamily::EfficientDetD0, "EfficientDet D0", "2.22"),
    ] {
        baselines.push(Baseline::Static {
            family,
            cfg: DetectorConfig::new(512, 100),
            name,
            mem,
            seed: 2,
        });
    }
    baselines.push(Baseline::AdaScaleMs);
    for (name, shape) in [
        ("AdaScale-SS-600, no SLO", 600),
        ("AdaScale-SS-480, no SLO", 480),
        ("AdaScale-SS-360, no SLO", 360),
        ("AdaScale-SS-240, no SLO", 240),
    ] {
        baselines.push(Baseline::Static {
            family: DetectorFamily::AdaScale,
            cfg: DetectorConfig::new(shape, 100),
            name,
            mem: "3.2",
            seed: 3,
        });
    }

    let pool = lr_pool::Pool::from_env();
    let baseline_rows = pool.par_map(&baselines, |b| match b {
        Baseline::Heavy(model) => {
            match run_heavy_model(*model, heavy_videos, DeviceKind::JetsonTx2, 1) {
                Ok(r) => vec![
                    format!("{}, no SLO", model.name()),
                    format!("{:.1}", r.map_pct()),
                    format!("{:.0}", r.latency.mean()),
                    format!("{:.2}", model.reported_memory_gb()),
                ],
                Err(_) => vec![
                    format!("{}, no SLO", model.name()),
                    "OOM".into(),
                    "OOM".into(),
                    format!("{:.2}", model.reported_memory_gb()),
                ],
            }
        }
        Baseline::Static {
            family,
            cfg,
            name,
            mem,
            seed,
        } => {
            let r = run_static_detector(
                *family,
                *cfg,
                heavy_videos,
                DeviceKind::JetsonTx2,
                0.0,
                *seed,
            );
            vec![
                name.to_string(),
                format!("{:.1}", r.map_pct()),
                if *family == DetectorFamily::AdaScale {
                    format!("{:.1}", r.latency.mean())
                } else {
                    format!("{:.0}", r.latency.mean())
                },
                mem.to_string(),
            ]
        }
        Baseline::AdaScaleMs => {
            let r =
                litereconfig::protocols::run_adascale_ms(heavy_videos, DeviceKind::JetsonTx2, 5);
            vec![
                "AdaScale-MS, no SLO".to_string(),
                format!("{:.1}", r.map_pct()),
                format!("{:.1}", r.latency.mean()),
                "3.26".into(),
            ]
        }
    });
    for row in baseline_rows {
        table.add_row_owned(row);
    }

    // LiteReconfig at the three TX2 SLOs (full validation set).
    let slos = [100.0f64, 50.0, 33.3];
    let raster_size = suite.svc.raster_size();
    let lr_results = pool.par_map_init(
        &slos,
        || litereconfig::FeatureService::with_raster_size(raster_size),
        |svc, _, &slo| {
            let r = run_adaptive(
                &suite.val_videos,
                suite.frcnn.clone(),
                litereconfig::Policy::CostBenefit,
                &AdaptiveProtocol::LiteReconfig.run_config(DeviceKind::JetsonTx2, 0.0, slo, 4),
                svc,
            );
            (r.map_pct(), r.latency.mean())
        },
    );
    let mut lr_mean_33 = None;
    for (&slo, &(map_pct, mean)) in slos.iter().zip(&lr_results) {
        if slo == 33.3 {
            lr_mean_33 = Some(mean);
        }
        table.add_row_owned(vec![
            format!("LiteReconfig, {slo} ms"),
            format!("{map_pct:.1}"),
            format!("{mean:.1}"),
            "4.1".into(),
        ]);
    }

    println!("Table 3: comparison with accuracy-optimized solutions (TX2)\n");
    println!("{}", table.render());

    // Speedup claims (C3): LiteReconfig vs SELSA / MEGA / REPP.
    if let Some(lr) = lr_mean_33 {
        println!("Speedups of LiteReconfig @33.3 ms SLO (paper: 74.9x / 30.5x / 20.0x):");
        for (name, ms) in [
            ("SELSA-ResNet-50", 2112.0),
            ("MEGA-ResNet-50 (base)", 861.0),
            ("REPP over YOLOv3", 565.0),
        ] {
            println!("  vs {name:<22} {:.1}x", ms / lr);
        }
    }
}
