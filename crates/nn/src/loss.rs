//! Loss functions.

use crate::tensor::Matrix;

/// Mean squared error over all elements: `mean((pred - target)^2)`.
///
/// # Panics
///
/// Panics if the shapes differ.
pub fn mse(pred: &Matrix, target: &Matrix) -> f32 {
    let d = pred.sub(target);
    let loss = d.as_slice().iter().map(|v| v * v).sum::<f32>() / d.as_slice().len() as f32;
    crate::debug_assert_finite!(loss, "mse loss");
    loss
}

/// Gradient of [`mse`] with respect to `pred`: `2 (pred - target) / n`.
pub fn mse_gradient(pred: &Matrix, target: &Matrix) -> Matrix {
    let n = (pred.rows() * pred.cols()) as f32;
    pred.sub(target).scaled(2.0 / n)
}

/// Gradient of the *per-example* MSE (mean over the batch, sum over
/// output dimensions): `2 (pred - target) / batch`.
///
/// Use this for training multi-output regressors: normalizing by the
/// output count as well (as [`mse_gradient`] does) shrinks per-output
/// gradients with the output width, which stalls learning for wide heads
/// (e.g. one output per execution branch).
pub fn mse_gradient_batch_mean(pred: &Matrix, target: &Matrix) -> Matrix {
    let n = pred.rows() as f32;
    pred.sub(target).scaled(2.0 / n)
}

/// Mean absolute error — used only for reporting, never for training.
pub fn mae(pred: &Matrix, target: &Matrix) -> f32 {
    let d = pred.sub(target);
    let loss = d.as_slice().iter().map(|v| v.abs()).sum::<f32>() / d.as_slice().len() as f32;
    crate::debug_assert_finite!(loss, "mae loss");
    loss
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_of_equal_is_zero() {
        let a = Matrix::row_vector(&[1.0, 2.0, 3.0]);
        assert_eq!(mse(&a, &a), 0.0);
    }

    #[test]
    fn mse_known_value() {
        let p = Matrix::row_vector(&[0.0, 0.0]);
        let t = Matrix::row_vector(&[1.0, -1.0]);
        assert_eq!(mse(&p, &t), 1.0);
    }

    #[test]
    fn mse_gradient_direction() {
        let p = Matrix::row_vector(&[2.0]);
        let t = Matrix::row_vector(&[1.0]);
        let g = mse_gradient(&p, &t);
        assert_eq!(g, Matrix::row_vector(&[2.0]));
    }

    #[test]
    fn mae_known_value() {
        let p = Matrix::row_vector(&[0.0, 0.0]);
        let t = Matrix::row_vector(&[3.0, -1.0]);
        assert_eq!(mae(&p, &t), 2.0);
    }

    /// The MSE gradient should match a finite-difference estimate.
    #[test]
    fn mse_gradient_matches_finite_difference() {
        let mut p = Matrix::row_vector(&[0.3, -0.4, 0.9]);
        let t = Matrix::row_vector(&[0.1, 0.2, 0.5]);
        let g = mse_gradient(&p, &t);
        let eps = 1e-3;
        for i in 0..3 {
            let orig = p.as_slice()[i];
            p.as_mut_slice()[i] = orig + eps;
            let lp = mse(&p, &t);
            p.as_mut_slice()[i] = orig - eps;
            let lm = mse(&p, &t);
            p.as_mut_slice()[i] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!((numeric - g.as_slice()[i]).abs() < 1e-3);
        }
    }
}
