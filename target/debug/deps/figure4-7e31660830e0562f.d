/root/repo/target/debug/deps/figure4-7e31660830e0562f.d: crates/bench/src/bin/figure4.rs

/root/repo/target/debug/deps/figure4-7e31660830e0562f: crates/bench/src/bin/figure4.rs

crates/bench/src/bin/figure4.rs:
