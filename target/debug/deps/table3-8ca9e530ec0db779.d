/root/repo/target/debug/deps/table3-8ca9e530ec0db779.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-8ca9e530ec0db779: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
