/root/repo/target/debug/deps/substrate_invariants-21f0774369fd945d.d: tests/substrate_invariants.rs

/root/repo/target/debug/deps/substrate_invariants-21f0774369fd945d: tests/substrate_invariants.rs

tests/substrate_invariants.rs:
