/root/repo/target/debug/deps/lr_eval-5542cbb9e274968c.d: crates/eval/src/lib.rs crates/eval/src/latency.rs crates/eval/src/map.rs crates/eval/src/report.rs crates/eval/src/table.rs Cargo.toml

/root/repo/target/debug/deps/liblr_eval-5542cbb9e274968c.rmeta: crates/eval/src/lib.rs crates/eval/src/latency.rs crates/eval/src/map.rs crates/eval/src/report.rs crates/eval/src/table.rs Cargo.toml

crates/eval/src/lib.rs:
crates/eval/src/latency.rs:
crates/eval/src/map.rs:
crates/eval/src/report.rs:
crates/eval/src/table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
