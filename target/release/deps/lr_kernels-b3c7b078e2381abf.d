/root/repo/target/release/deps/lr_kernels-b3c7b078e2381abf.d: crates/kernels/src/lib.rs crates/kernels/src/adascale.rs crates/kernels/src/branch.rs crates/kernels/src/detector.rs crates/kernels/src/heavy.rs crates/kernels/src/latency.rs crates/kernels/src/mbek.rs crates/kernels/src/tracker.rs

/root/repo/target/release/deps/liblr_kernels-b3c7b078e2381abf.rlib: crates/kernels/src/lib.rs crates/kernels/src/adascale.rs crates/kernels/src/branch.rs crates/kernels/src/detector.rs crates/kernels/src/heavy.rs crates/kernels/src/latency.rs crates/kernels/src/mbek.rs crates/kernels/src/tracker.rs

/root/repo/target/release/deps/liblr_kernels-b3c7b078e2381abf.rmeta: crates/kernels/src/lib.rs crates/kernels/src/adascale.rs crates/kernels/src/branch.rs crates/kernels/src/detector.rs crates/kernels/src/heavy.rs crates/kernels/src/latency.rs crates/kernels/src/mbek.rs crates/kernels/src/tracker.rs

crates/kernels/src/lib.rs:
crates/kernels/src/adascale.rs:
crates/kernels/src/branch.rs:
crates/kernels/src/detector.rs:
crates/kernels/src/heavy.rs:
crates/kernels/src/latency.rs:
crates/kernels/src/mbek.rs:
crates/kernels/src/tracker.rs:
