//! LiteReconfig: cost and content aware reconfiguration of video object
//! detection systems for mobile GPUs.
//!
//! This crate is the paper's primary contribution — the scheduler that
//! decides, per Group-of-Frames, (a) which *features* to extract for
//! making its decision and (b) which *execution branch* of the MBEK to
//! run, solving
//!
//! ```text
//! b* = argmax_b A(b, f)
//!      s.t. L0(b, f_L) + S0 + S(f_H) + C(b0, b) <= SLO      (Eq. 3)
//! ```
//!
//! with a greedy cost-benefit selection of the heavy feature set `f_H`
//! (Eq. 4) driven by offline `Ben(·)` lookup tables.
//!
//! Module map:
//!
//! - [`featsvc`]: runtime feature extraction (rasterization, HoC/HOG/deep
//!   embeddings, CPoP assembly) with per-frame caching;
//! - [`offline`]: the offline profiling pass over the scheduler-training
//!   split — per-snippet content features, per-branch mAP labels, and
//!   per-branch latency observations;
//! - [`predictor`]: the content-aware accuracy models (6-layer MLPs, one
//!   per content feature) and the per-branch latency regressions with
//!   online contention correction;
//! - [`bentable`]: the `Ben(f_H)` benefit lookup tables;
//! - [`scheduler`]: the online scheduler (all four LiteReconfig variants
//!   plus the forced-feature mode of Table 4);
//! - [`pipeline`]: the streaming execution loop tying scheduler, MBEK,
//!   device, and evaluation together;
//! - [`protocols`]: protocol specifications for every system in Tables 2
//!   and 3 (LiteReconfig variants, ApproxDet, SSD+, YOLO+, EfficientDet,
//!   AdaScale, SELSA/MEGA/REPP);
//! - [`trainer`]: end-to-end offline training producing a
//!   [`scheduler::TrainedScheduler`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bentable;
pub mod featsvc;
pub mod offline;
pub mod pipeline;
pub mod predictor;
pub mod protocols;
pub mod scheduler;
pub mod trainer;

pub use featsvc::FeatureService;
pub use pipeline::{DegradeEvent, DegradeKind, GofStep, RunConfig, RunResult, StreamPipeline};
pub use scheduler::{Policy, Scheduler, TrainedScheduler};
pub use trainer::{train_scheduler, TrainConfig};
