//! Serving outcome: per-stream and aggregate statistics.

use lr_eval::LatencyStats;

use crate::admission::AdmissionDecision;
use crate::slo::SloClass;

/// Outcome of one offered stream.
#[derive(Debug, Clone)]
pub struct StreamReport {
    /// Stream name from the spec.
    pub name: String,
    /// Service class.
    pub class: SloClass,
    /// Admission verdict.
    pub decision: AdmissionDecision,
    /// Whether backpressure degraded the stream mid-run (on top of any
    /// admission-time degradation).
    pub degraded_midrun: bool,
    /// mAP over all processed frames (0 for rejected streams).
    pub map: f64,
    /// GoF-amortized per-frame latency samples.
    pub latency: LatencyStats,
    /// Fraction of frames over the class SLO.
    pub violation_rate: f64,
    /// Frames processed.
    pub frames: usize,
    /// GoFs executed.
    pub gofs: usize,
    /// Mean endogenous GPU slowdown observed across GoFs (1 = alone).
    pub mean_slowdown: f64,
}

impl StreamReport {
    /// True unless the stream was rejected at admission.
    pub fn admitted(&self) -> bool {
        self.decision != AdmissionDecision::Rejected
    }
}

/// Outcome of one serving run.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Whether admission control was enabled.
    pub admission_enabled: bool,
    /// Per-stream outcomes, in offer order.
    pub streams: Vec<StreamReport>,
}

impl ServeReport {
    /// Streams offered.
    pub fn offered(&self) -> usize {
        self.streams.len()
    }

    /// Streams admitted at full quality.
    pub fn admitted(&self) -> usize {
        self.streams
            .iter()
            .filter(|s| s.decision == AdmissionDecision::Admitted)
            .count()
    }

    /// Streams admitted degraded (at admission time).
    pub fn degraded(&self) -> usize {
        self.streams
            .iter()
            .filter(|s| s.decision == AdmissionDecision::Degraded)
            .count()
    }

    /// Streams rejected.
    pub fn rejected(&self) -> usize {
        self.streams
            .iter()
            .filter(|s| s.decision == AdmissionDecision::Rejected)
            .count()
    }

    /// Pooled latency samples of all admitted streams.
    pub fn admitted_latency(&self) -> LatencyStats {
        let mut all = LatencyStats::new();
        for s in self.streams.iter().filter(|s| s.admitted()) {
            all.merge(&s.latency);
        }
        all
    }

    /// Frame-weighted SLO-violation rate over admitted streams (each
    /// frame judged against its own stream's class SLO).
    pub fn admitted_violation_rate(&self) -> f64 {
        let mut violations = 0.0;
        let mut frames = 0usize;
        for s in self.streams.iter().filter(|s| s.admitted()) {
            violations += s.violation_rate * s.frames as f64;
            frames += s.frames;
        }
        if frames == 0 {
            0.0
        } else {
            violations / frames as f64
        }
    }

    /// Mean mAP over admitted streams (unweighted; 0 when none).
    pub fn admitted_mean_map(&self) -> f64 {
        let admitted: Vec<_> = self.streams.iter().filter(|s| s.admitted()).collect();
        if admitted.is_empty() {
            return 0.0;
        }
        admitted.iter().map(|s| s.map).sum::<f64>() / admitted.len() as f64
    }

    /// A per-stream table plus an aggregate footer.
    pub fn format_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<8} {:>6} {:>9} {:>6} {:>7} {:>7} {:>7} {:>7} {:>6} {:>6}\n",
            "stream",
            "class",
            "decision",
            "mAP%",
            "p50ms",
            "p95ms",
            "p99ms",
            "viol%",
            "slow",
            "gofs"
        ));
        for s in &self.streams {
            let decision = match (s.decision, s.degraded_midrun) {
                (AdmissionDecision::Rejected, _) => "reject".to_string(),
                (AdmissionDecision::Degraded, _) => "degrade".to_string(),
                (AdmissionDecision::Admitted, true) => "admit*".to_string(),
                (AdmissionDecision::Admitted, false) => "admit".to_string(),
            };
            if s.admitted() {
                out.push_str(&format!(
                    "{:<8} {:>6} {:>9} {:>6.1} {:>7.1} {:>7.1} {:>7.1} {:>7.1} {:>6.2} {:>6}\n",
                    s.name,
                    s.class.label(),
                    decision,
                    s.map * 100.0,
                    s.latency.percentile(0.5),
                    s.latency.p95(),
                    s.latency.p99(),
                    s.violation_rate * 100.0,
                    s.mean_slowdown,
                    s.gofs,
                ));
            } else {
                out.push_str(&format!(
                    "{:<8} {:>6} {:>9} {:>6} {:>7} {:>7} {:>7} {:>7} {:>6} {:>6}\n",
                    s.name,
                    s.class.label(),
                    decision,
                    "-",
                    "-",
                    "-",
                    "-",
                    "-",
                    "-",
                    "-"
                ));
            }
        }
        let agg = self.admitted_latency();
        out.push_str(&format!(
            "admitted {}/{} (degraded {}, rejected {}) | agg p50 {:.1} p95 {:.1} p99 {:.1} ms | viol {:.1}% | mean mAP {:.1}%\n",
            self.admitted() + self.degraded(),
            self.offered(),
            self.degraded(),
            self.rejected(),
            agg.percentile(0.5),
            agg.p95(),
            agg.p99(),
            self.admitted_violation_rate() * 100.0,
            self.admitted_mean_map() * 100.0,
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(name: &str, decision: AdmissionDecision, samples: &[f64]) -> StreamReport {
        let mut latency = LatencyStats::new();
        for &s in samples {
            latency.record(s);
        }
        let violation_rate = latency.violation_rate(50.0);
        StreamReport {
            name: name.to_string(),
            class: SloClass::Silver,
            decision,
            degraded_midrun: false,
            map: 0.5,
            violation_rate,
            frames: samples.len(),
            gofs: samples.len().div_ceil(8),
            mean_slowdown: 1.0,
            latency,
        }
    }

    #[test]
    fn aggregate_counts_and_rates() {
        let r = ServeReport {
            admission_enabled: true,
            streams: vec![
                stream("a", AdmissionDecision::Admitted, &[10.0, 60.0]),
                stream("b", AdmissionDecision::Degraded, &[20.0, 20.0]),
                stream("c", AdmissionDecision::Rejected, &[]),
            ],
        };
        assert_eq!(r.offered(), 3);
        assert_eq!(r.admitted(), 1);
        assert_eq!(r.degraded(), 1);
        assert_eq!(r.rejected(), 1);
        assert_eq!(r.admitted_latency().count(), 4);
        // 1 violation out of 4 admitted frames.
        assert!((r.admitted_violation_rate() - 0.25).abs() < 1e-9);
        let table = r.format_table();
        assert!(table.contains("reject"));
        assert!(table.contains("degrade"));
    }
}
