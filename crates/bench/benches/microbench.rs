//! Micro-benchmarks over the hot paths of the reproduction: feature
//! extraction, accuracy-model inference, the scheduler decision, GoF
//! execution, and mAP evaluation.
//!
//! Criterion is unavailable offline, so this is a plain `harness = false`
//! binary with a warmup + timed-loop harness. Run with
//! `cargo bench -p lr-bench` (always in release).

use std::sync::Arc;
use std::time::Instant;

use litereconfig::offline::{profile_videos, OfflineConfig};
use litereconfig::trainer::{train_scheduler, TrainConfig};
use litereconfig::{FeatureService, Policy, Scheduler};
use lr_device::{DeviceKind, DeviceSim};
use lr_eval::MapAccumulator;
use lr_features::FeatureKind;
use lr_kernels::branch::small_catalog;
use lr_kernels::{Branch, DetectorFamily, Mbek, TrackerKind};
use lr_video::raster::rasterize;
use lr_video::{Dataset, DatasetConfig, Split, Video, VideoSpec};

/// Times `f` over enough iterations to fill ~200 ms after a short warmup
/// and prints mean per-iteration time.
fn bench<T>(name: &str, mut f: impl FnMut() -> T) {
    // Warmup and calibration: measure one call to pick the iteration count.
    let t0 = Instant::now();
    std::hint::black_box(f());
    let once = t0.elapsed().as_secs_f64().max(1e-9);
    let iters = ((0.2 / once) as usize).clamp(10, 100_000);
    let t1 = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    let per_iter = t1.elapsed().as_secs_f64() / iters as f64;
    let (val, unit) = if per_iter >= 1e-3 {
        (per_iter * 1e3, "ms")
    } else {
        (per_iter * 1e6, "us")
    };
    println!("{name:<28} {val:>10.3} {unit}/iter  ({iters} iters)");
}

fn test_video() -> Video {
    Video::generate(VideoSpec {
        id: 0,
        seed: 4242,
        width: 640.0,
        height: 480.0,
        num_frames: 64,
    })
}

fn bench_features() {
    let v = test_video();
    let img = rasterize(&v.frames[0], &v.style, 64);
    let mut svc = FeatureService::new();
    let logits = vec![vec![0.0f32; 31]; 8];

    bench("features/rasterize_64", || {
        rasterize(&v.frames[0], &v.style, 64)
    });
    bench("features/hoc", || lr_features::hoc::extract(&img));
    bench("features/hog", || lr_features::hog::extract(&img));
    bench("features/resnet50_standin", || {
        svc.extract_heavy(FeatureKind::ResNet50, &v, 0, None)
    });
    bench("features/cpop", || lr_features::cpop::cpop_vector(&logits));
}

fn bench_kernels() {
    let v = test_video();
    let mut dev = DeviceSim::new(DeviceKind::JetsonTx2, 0.0, 1);
    let mut mbek = Mbek::new(DetectorFamily::FasterRcnn);
    mbek.set_branch(Branch::tracked(448, 100, TrackerKind::Csrt, 8, 4));

    bench("kernels/gof_8_frames", || {
        mbek.run_gof(&v.frames[0..8], &mut dev)
    });
    let det = lr_kernels::DetectorSim::new(DetectorFamily::FasterRcnn);
    bench("kernels/detect_frame", || {
        det.detect(
            &v.frames[0],
            lr_kernels::DetectorConfig::new(448, 100),
            dev.rng(),
        )
    });
}

fn bench_scheduler() {
    let dataset = Dataset::new(DatasetConfig {
        train_vision: 0,
        train_scheduler: 2,
        validation: 0,
        id_offset: 30_000,
    });
    let train = dataset.videos(Split::TrainScheduler);
    let mut svc = FeatureService::new();
    let cfg = OfflineConfig {
        snippet_len: 50,
        ..OfflineConfig::paper(small_catalog(), DetectorFamily::FasterRcnn)
    };
    let ds = profile_videos(&train, &cfg, &mut svc);
    let trained = Arc::new(train_scheduler(
        &ds,
        DetectorFamily::FasterRcnn,
        &TrainConfig::tiny(),
    ));
    let v = test_video();
    let mut dev = DeviceSim::new(DeviceKind::JetsonTx2, 0.0, 2);

    {
        let mut s = Scheduler::new(trained.clone(), Policy::MinCost, 50.0);
        bench("scheduler/decide_mincost", || {
            s.decide(&v, 0, &[], &mut svc, &mut dev)
        });
    }
    {
        let mut s = Scheduler::new(trained.clone(), Policy::CostBenefit, 50.0);
        bench("scheduler/decide_cost_benefit", || {
            s.decide(&v, 0, &[], &mut svc, &mut dev)
        });
    }
    let light_model = &trained.accuracy[&FeatureKind::Light];
    bench("scheduler/accuracy_mlp_infer", || {
        light_model.predict(&[0.4, 0.3, 0.2, 0.01], None)
    });
}

fn bench_eval() {
    let v = test_video();
    let mut dev = DeviceSim::new(DeviceKind::JetsonTx2, 0.0, 3);
    let det = lr_kernels::DetectorSim::new(DetectorFamily::FasterRcnn);
    let frames: Vec<_> = v
        .frames
        .iter()
        .map(|f| {
            let out = det.detect(f, lr_kernels::DetectorConfig::new(448, 100), dev.rng());
            (
                litereconfig::offline::to_gt_boxes(f),
                litereconfig::offline::to_pred_boxes(&out.detections),
            )
        })
        .collect();

    bench("eval/map_64_frames", || {
        let mut acc = MapAccumulator::new();
        for (gt, pred) in &frames {
            acc.add_frame(gt, pred);
        }
        acc.finalize(0.5).map
    });
}

fn main() {
    println!("{:-<60}", "");
    bench_features();
    bench_kernels();
    bench_scheduler();
    bench_eval();
    println!("{:-<60}", "");
}
