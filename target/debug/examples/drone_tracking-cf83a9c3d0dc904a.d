/root/repo/target/debug/examples/drone_tracking-cf83a9c3d0dc904a.d: examples/drone_tracking.rs Cargo.toml

/root/repo/target/debug/examples/libdrone_tracking-cf83a9c3d0dc904a.rmeta: examples/drone_tracking.rs Cargo.toml

examples/drone_tracking.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
