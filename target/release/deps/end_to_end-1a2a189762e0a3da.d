/root/repo/target/release/deps/end_to_end-1a2a189762e0a3da.d: tests/end_to_end.rs

/root/repo/target/release/deps/end_to_end-1a2a189762e0a3da: tests/end_to_end.rs

tests/end_to_end.rs:
