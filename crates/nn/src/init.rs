//! Deterministic weight initialization.
//!
//! All initializers take an explicit RNG so that the entire training
//! pipeline is reproducible from a single seed — a property the experiment
//! harness relies on when regenerating tables.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::tensor::Matrix;

/// Creates a seeded RNG for weight initialization.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Xavier/Glorot uniform initialization for a `fan_in x fan_out` weight
/// matrix: `U(-sqrt(6/(fan_in+fan_out)), +sqrt(6/(fan_in+fan_out)))`.
pub fn xavier_uniform(fan_in: usize, fan_out: usize, rng: &mut impl Rng) -> Matrix {
    let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
    uniform(fan_in, fan_out, bound, rng)
}

/// He/Kaiming uniform initialization, appropriate before ReLU activations:
/// `U(-sqrt(6/fan_in), +sqrt(6/fan_in))`.
pub fn he_uniform(fan_in: usize, fan_out: usize, rng: &mut impl Rng) -> Matrix {
    let bound = (6.0 / fan_in as f32).sqrt();
    uniform(fan_in, fan_out, bound, rng)
}

/// Uniform initialization in `[-bound, bound]`.
pub fn uniform(rows: usize, cols: usize, bound: f32, rng: &mut impl Rng) -> Matrix {
    let data = (0..rows * cols)
        .map(|_| rng.gen_range(-bound..=bound))
        .collect();
    Matrix::from_vec(rows, cols, data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xavier_is_deterministic_per_seed() {
        let a = xavier_uniform(8, 4, &mut seeded_rng(7));
        let b = xavier_uniform(8, 4, &mut seeded_rng(7));
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = xavier_uniform(8, 4, &mut seeded_rng(1));
        let b = xavier_uniform(8, 4, &mut seeded_rng(2));
        assert_ne!(a, b);
    }

    #[test]
    fn xavier_respects_bound() {
        let fan_in = 100;
        let fan_out = 50;
        let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
        let w = xavier_uniform(fan_in, fan_out, &mut seeded_rng(3));
        assert!(w.as_slice().iter().all(|v| v.abs() <= bound));
    }

    #[test]
    fn he_respects_bound() {
        let bound = (6.0_f32 / 64.0).sqrt();
        let w = he_uniform(64, 32, &mut seeded_rng(4));
        assert!(w.as_slice().iter().all(|v| v.abs() <= bound));
    }
}
