/root/repo/target/release/deps/figure5-ac31be19d8af490a.d: crates/bench/src/bin/figure5.rs

/root/repo/target/release/deps/figure5-ac31be19d8af490a: crates/bench/src/bin/figure5.rs

crates/bench/src/bin/figure5.rs:
