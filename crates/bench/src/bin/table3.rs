//! Table 3: LiteReconfig vs accuracy-optimized video object detectors
//! (SELSA, MEGA, REPP, EfficientDet, AdaScale) on the TX2.
//!
//! Usage: `cargo run --release -p lr-bench --bin table3 [small|paper]`

use litereconfig::pipeline::run_adaptive;
use litereconfig::protocols::{run_heavy_model, run_static_detector, AdaptiveProtocol};
use lr_bench::{scale_from_args, Suite};
use lr_device::DeviceKind;
use lr_eval::TextTable;
use lr_kernels::heavy::HeavyModel;
use lr_kernels::{DetectorConfig, DetectorFamily};

fn main() {
    let mut suite = Suite::build(scale_from_args());
    // The heavy models are painfully slow even virtually; a subset of the
    // validation videos gives stable mAP at a fraction of the cost.
    let heavy_videos = &suite.val_videos[..suite.val_videos.len().min(4)];

    let mut table = TextTable::new(&[
        "Model, latency SLO",
        "mAP (%)",
        "Mean latency (ms)",
        "Memory (GB)",
    ]);

    for model in HeavyModel::all() {
        match run_heavy_model(model, heavy_videos, DeviceKind::JetsonTx2, 1) {
            Ok(r) => table.add_row_owned(vec![
                format!("{}, no SLO", model.name()),
                format!("{:.1}", r.map_pct()),
                format!("{:.0}", r.latency.mean()),
                format!("{:.2}", model.reported_memory_gb()),
            ]),
            Err(_) => table.add_row_owned(vec![
                format!("{}, no SLO", model.name()),
                "OOM".into(),
                "OOM".into(),
                format!("{:.2}", model.reported_memory_gb()),
            ]),
        }
    }

    // EfficientDet D3 / D0.
    for (family, name, mem) in [
        (DetectorFamily::EfficientDetD3, "EfficientDet D3", 5.68),
        (DetectorFamily::EfficientDetD0, "EfficientDet D0", 2.22),
    ] {
        let r = run_static_detector(
            family,
            DetectorConfig::new(512, 100),
            heavy_videos,
            DeviceKind::JetsonTx2,
            0.0,
            2,
        );
        table.add_row_owned(vec![
            name.to_string(),
            format!("{:.1}", r.map_pct()),
            format!("{:.0}", r.latency.mean()),
            format!("{mem:.2}"),
        ]);
    }

    // AdaScale multi-scale: the real adaptive controller.
    {
        let r = litereconfig::protocols::run_adascale_ms(heavy_videos, DeviceKind::JetsonTx2, 5);
        table.add_row_owned(vec![
            "AdaScale-MS, no SLO".to_string(),
            format!("{:.1}", r.map_pct()),
            format!("{:.1}", r.latency.mean()),
            "3.26".into(),
        ]);
    }
    // AdaScale single-scale variants.
    for (name, shape) in [
        ("AdaScale-SS-600, no SLO", 600),
        ("AdaScale-SS-480, no SLO", 480),
        ("AdaScale-SS-360, no SLO", 360),
        ("AdaScale-SS-240, no SLO", 240),
    ] {
        let r = run_static_detector(
            DetectorFamily::AdaScale,
            DetectorConfig::new(shape, 100),
            heavy_videos,
            DeviceKind::JetsonTx2,
            0.0,
            3,
        );
        table.add_row_owned(vec![
            name.to_string(),
            format!("{:.1}", r.map_pct()),
            format!("{:.1}", r.latency.mean()),
            "3.2".into(),
        ]);
    }

    // LiteReconfig at the three TX2 SLOs (full validation set).
    let mut lr_mean_33 = None;
    for slo in [100.0, 50.0, 33.3] {
        let r = run_adaptive(
            &suite.val_videos,
            suite.frcnn.clone(),
            litereconfig::Policy::CostBenefit,
            &AdaptiveProtocol::LiteReconfig.run_config(DeviceKind::JetsonTx2, 0.0, slo, 4),
            &mut suite.svc,
        );
        if slo == 33.3 {
            lr_mean_33 = Some(r.latency.mean());
        }
        table.add_row_owned(vec![
            format!("LiteReconfig, {slo} ms"),
            format!("{:.1}", r.map_pct()),
            format!("{:.1}", r.latency.mean()),
            "4.1".into(),
        ]);
    }

    println!("Table 3: comparison with accuracy-optimized solutions (TX2)\n");
    println!("{}", table.render());

    // Speedup claims (C3): LiteReconfig vs SELSA / MEGA / REPP.
    if let Some(lr) = lr_mean_33 {
        println!("Speedups of LiteReconfig @33.3 ms SLO (paper: 74.9x / 30.5x / 20.0x):");
        for (name, ms) in [
            ("SELSA-ResNet-50", 2112.0),
            ("MEGA-ResNet-50 (base)", 861.0),
            ("REPP over YOLOv3", 565.0),
        ] {
            println!("  vs {name:<22} {:.1}x", ms / lr);
        }
    }
}
