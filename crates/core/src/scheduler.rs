//! The online scheduler: feature selection and branch selection.
//!
//! Once per GoF, at its first frame, the scheduler:
//!
//! 1. extracts the free light features and queries the content-agnostic
//!    accuracy model and the per-branch latency model;
//! 2. runs the **cost-benefit feature selection** (Eq. 4): greedily
//!    recruits heavy features whose offline `Ben(·)` exceeds nothing —
//!    i.e. improves the objective — *and* whose extraction+prediction
//!    cost still leaves a feasible branch under the SLO;
//! 3. extracts the selected features (detector-byproduct features come
//!    from the previous GoF's detection at marginal cost), queries their
//!    content-aware accuracy models, and ensembles the predictions;
//! 4. solves the constrained optimization (Eq. 3): the feasible branch —
//!    per-frame kernel latency plus amortized scheduler and switching
//!    cost within the (headroom-adjusted) SLO — with the highest
//!    predicted accuracy.
//!
//! Every model query and feature extraction charges its Table 1 cost to
//! the virtual device; the scheduler's own overhead therefore competes
//! with the kernel for the latency budget, which is the paper's central
//! tension.

use std::collections::BTreeMap;
use std::sync::Arc;

use lr_device::{DeviceSim, OpError, OpUnit, SwitchingCostModel};
use lr_features::{FeatureKind, HEAVY_FEATURE_KINDS};
use lr_kernels::{Branch, DetectorFamily};
use lr_obs::{DecisionExplain, FeatureBen, NullSink, ObsSink, SpanKind};
use lr_video::{BBox, Video};

use crate::bentable::BenTable;
use crate::featsvc::FeatureService;
use crate::predictor::{AccuracyModel, LatencyModel};

/// Scheduling policy: which LiteReconfig variant (or ablation) runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Content-agnostic: light features only (LiteReconfig-MinCost).
    MinCost,
    /// Always recruit one fixed content feature, paying its cost
    /// (LiteReconfig-MaxContent-ResNet / -MobileNet).
    MaxContent(FeatureKind),
    /// Full LiteReconfig: cost-benefit feature selection.
    CostBenefit,
    /// Table 4 ablation: always use one feature, charging nothing and
    /// constraining the MBEK only.
    ForcedFeatureFree(FeatureKind),
}

/// Everything produced by offline training; shared across runs.
#[derive(Debug, Clone)]
pub struct TrainedScheduler {
    /// The branch catalog decisions index into.
    pub catalog: Vec<Branch>,
    /// Accuracy models per feature kind (always contains `Light`).
    pub accuracy: BTreeMap<FeatureKind, AccuracyModel>,
    /// Per-branch latency regressions.
    pub latency: LatencyModel,
    /// Benefit lookup tables.
    pub ben: BenTable,
    /// Deterministic switching-cost model used in the optimizer.
    pub switching: SwitchingCostModel,
    /// Steady-state detector milliseconds per inference, per branch —
    /// the heaviness weights the switching model consumes.
    pub det_inference_ms: Vec<f64>,
    /// The detector family the catalog runs on (detector-byproduct
    /// features are only available on Faster R-CNN).
    pub family: DetectorFamily,
}

/// A scheduling decision for one GoF.
#[derive(Debug, Clone)]
pub struct Decision {
    /// Index of the chosen branch in the catalog.
    pub branch_idx: usize,
    /// Heavy features actually recruited for this decision.
    pub features: Vec<FeatureKind>,
    /// Virtual milliseconds the scheduler charged for this decision.
    pub scheduler_ms: f64,
    /// Predicted per-frame kernel latency of the chosen branch.
    pub predicted_kernel_ms: f64,
    /// False when no branch satisfied the constraint and the minimum-
    /// latency branch was used as a fallback.
    pub feasible: bool,
    /// Transient scheduler-op faults absorbed while making this decision
    /// (failed feature extraction/prediction ops; wasted time is included
    /// in `scheduler_ms`).
    pub faults: usize,
    /// True when the accuracy predictions were unusable — the light
    /// predict op faulted, or a prediction came back non-finite — and the
    /// branch was chosen on predicted cost alone.
    pub cost_only: bool,
    /// The full decision rationale for the observability layer. Built
    /// only when an enabled [`ObsSink`] asked for it (`None` otherwise,
    /// so un-observed runs allocate nothing).
    pub explain: Option<Box<DecisionExplain>>,
}

/// Fixed CPU cost of solving the constrained optimization.
const SOLVER_MS: f64 = 0.4;

/// The online scheduler state.
#[derive(Debug, Clone)]
pub struct Scheduler {
    trained: Arc<TrainedScheduler>,
    policy: Policy,
    slo_ms: f64,
    /// Feasibility is checked against `slo * headroom`, leaving room for
    /// latency noise — the paper's scheduler is deliberately conservative
    /// so the P95 stays under the SLO.
    headroom: f64,
    /// Whether the latency model adapts online (LiteReconfig and
    /// ApproxDet are contention-adaptive; SSD+ and YOLO+ are not).
    adaptive_latency: bool,
    gpu_ratio_mean: f64,
    gpu_ratio_sq: f64,
    cpu_ratio_mean: f64,
    cpu_ratio_sq: f64,
    current: Option<usize>,
    last_det_frame: Option<usize>,
    last_logits: Option<Vec<Vec<f32>>>,
    max_heavy: usize,
    /// Fixed per-frame pipeline overhead the predictor knows about (0 for
    /// LiteReconfig; ApproxDet's legacy pipeline carries a large one).
    known_overhead_ms: f64,
}

impl Scheduler {
    /// Creates a scheduler.
    ///
    /// # Panics
    ///
    /// Panics if `slo_ms` is not positive.
    pub fn new(trained: Arc<TrainedScheduler>, policy: Policy, slo_ms: f64) -> Self {
        assert!(slo_ms > 0.0, "SLO must be positive");
        Self {
            trained,
            policy,
            slo_ms,
            headroom: 0.88,
            adaptive_latency: true,
            gpu_ratio_mean: 1.0,
            gpu_ratio_sq: 1.0,
            cpu_ratio_mean: 1.0,
            cpu_ratio_sq: 1.0,
            current: None,
            last_det_frame: None,
            last_logits: None,
            max_heavy: 2,
            known_overhead_ms: 0.0,
        }
    }

    /// Declares a fixed per-frame pipeline overhead that the latency
    /// prediction accounts for (ApproxDet's profiled latencies include its
    /// own pipeline overhead, so its scheduler "knows" it).
    pub fn with_known_overhead(mut self, ms: f64) -> Self {
        assert!(ms >= 0.0 && ms.is_finite(), "bad overhead {ms}");
        self.known_overhead_ms = ms;
        self
    }

    /// Disables online latency adaptation (for the SSD+/YOLO+ baselines,
    /// which adapt to the SLO but not to contention).
    pub fn with_frozen_latency_model(mut self) -> Self {
        self.adaptive_latency = false;
        self
    }

    /// Overrides the feasibility headroom factor.
    pub fn with_headroom(mut self, headroom: f64) -> Self {
        self.set_headroom(headroom);
        self
    }

    /// Changes the feasibility headroom mid-run (a serving layer's
    /// admission controller tightens it to degrade a stream under
    /// overload).
    ///
    /// # Panics
    ///
    /// Panics if `headroom` is outside `[0.1, 1]`.
    pub fn set_headroom(&mut self, headroom: f64) {
        assert!((0.1..=1.0).contains(&headroom), "bad headroom {headroom}");
        self.headroom = headroom;
    }

    /// The current feasibility headroom factor.
    pub fn headroom(&self) -> f64 {
        self.headroom
    }

    /// The active policy.
    pub fn policy(&self) -> Policy {
        self.policy
    }

    /// The latency objective.
    pub fn slo_ms(&self) -> f64 {
        self.slo_ms
    }

    /// The branch currently configured (catalog index).
    pub fn current_branch(&self) -> Option<usize> {
        self.current
    }

    /// Current GPU latency correction (diagnostics).
    ///
    /// The correction targets the latency *tail*, not the mean: it is the
    /// EWMA mean of the observed/predicted ratio plus a fraction of its
    /// standard deviation, because the SLO is a 95th-percentile bound and
    /// bursty contention makes instantaneous slowdowns exceed the mean.
    pub fn gpu_correction(&self) -> f64 {
        let var = (self.gpu_ratio_sq - self.gpu_ratio_mean * self.gpu_ratio_mean).max(0.0);
        self.gpu_ratio_mean + 0.8 * var.sqrt()
    }

    /// Current CPU latency correction (diagnostics).
    pub fn cpu_correction(&self) -> f64 {
        let var = (self.cpu_ratio_sq - self.cpu_ratio_mean * self.cpu_ratio_mean).max(0.0);
        self.cpu_ratio_mean + 0.8 * var.sqrt()
    }

    /// Clears per-stream state at a video boundary: the detector
    /// byproducts reference frame indices of the previous video and must
    /// not leak into the next one. The configured branch and the latency
    /// corrections persist (the system keeps running).
    pub fn reset_stream(&mut self) {
        self.last_det_frame = None;
        self.last_logits = None;
    }

    /// Records the detector byproducts of the GoF that just ran, making
    /// the ResNet50/CPoP features available to the next decision.
    pub fn record_detection(&mut self, frame_idx: usize, proposal_logits: Vec<Vec<f32>>) {
        self.last_det_frame = Some(frame_idx);
        self.last_logits = Some(proposal_logits);
    }

    /// Updates the online latency corrections from an observed GoF.
    pub fn observe_latency(
        &mut self,
        branch_idx: usize,
        light: &[f32],
        observed_det_per_frame: f64,
        observed_trk_per_frame: f64,
    ) {
        if !self.adaptive_latency {
            return;
        }
        let (pred_det, pred_trk) = self.trained.latency.predict_parts(branch_idx, light);
        const ALPHA: f64 = 0.25;
        if pred_det > 0.05 && observed_det_per_frame > 0.0 {
            let ratio = (observed_det_per_frame / pred_det).clamp(0.2, 10.0);
            self.gpu_ratio_mean = (1.0 - ALPHA) * self.gpu_ratio_mean + ALPHA * ratio;
            self.gpu_ratio_sq = (1.0 - ALPHA) * self.gpu_ratio_sq + ALPHA * ratio * ratio;
        }
        if pred_trk > 0.05 && observed_trk_per_frame > 0.0 {
            let ratio = (observed_trk_per_frame / pred_trk).clamp(0.2, 10.0);
            self.cpu_ratio_mean = (1.0 - ALPHA) * self.cpu_ratio_mean + ALPHA * ratio;
            self.cpu_ratio_sq = (1.0 - ALPHA) * self.cpu_ratio_sq + ALPHA * ratio * ratio;
        }
    }

    /// Feeds an externally measured GPU slowdown factor straight into the
    /// latency correction.
    ///
    /// The per-GoF ratio EWMA in [`Scheduler::observe_latency`] needs
    /// several GoFs to converge after a load shift; a serving layer that
    /// *measures* aggregate GPU occupancy can hand the implied slowdown
    /// to the scheduler directly, so the very next decision predicts with
    /// it. The factor is relative to the uncontended device — exactly the
    /// scale of the detector-latency ratio the EWMA tracks, since the
    /// latency model was fit on uncontended profiles. No-op when the
    /// latency model is frozen (non-contention-adaptive baselines).
    pub fn observe_contention(&mut self, slowdown: f64) {
        if !self.adaptive_latency {
            return;
        }
        let ratio = slowdown.clamp(0.2, 10.0);
        const ALPHA: f64 = 0.25;
        self.gpu_ratio_mean = (1.0 - ALPHA) * self.gpu_ratio_mean + ALPHA * ratio;
        self.gpu_ratio_sq = (1.0 - ALPHA) * self.gpu_ratio_sq + ALPHA * ratio * ratio;
    }

    /// Expected switching cost from the current branch to `dst`.
    pub fn expected_switch_ms(&self, dst: usize) -> f64 {
        match self.current {
            Some(cur) if cur == dst => 0.0,
            Some(cur) => self.trained.switching.offline_cost_ms(
                self.trained.det_inference_ms[cur],
                self.trained.det_inference_ms[dst],
            ),
            // First configuration: treated as a switch from a mid-weight
            // branch (everything was preheated).
            None => self
                .trained
                .switching
                .offline_cost_ms(80.0, self.trained.det_inference_ms[dst]),
        }
    }

    /// Marks a branch as the currently running one (called by the
    /// pipeline after it actually switches the MBEK).
    pub fn commit_branch(&mut self, branch_idx: usize) {
        assert!(branch_idx < self.trained.catalog.len(), "bad branch index");
        self.current = Some(branch_idx);
    }

    /// Makes the scheduling decision for the GoF starting at `frame_idx`.
    ///
    /// `boxes` are the kernel's current tracked boxes (the free source of
    /// the object-count/size light features). All scheduler costs are
    /// charged to `device`.
    pub fn decide(
        &mut self,
        video: &Video,
        frame_idx: usize,
        boxes: &[BBox],
        svc: &mut FeatureService,
        device: &mut DeviceSim,
    ) -> Decision {
        self.decide_obs(video, frame_idx, boxes, svc, device, &mut NullSink)
    }

    /// [`Scheduler::decide`] with an observer: spans around the light
    /// pass, each heavy-feature pass, and the solve, plus a
    /// [`DecisionExplain`] on the returned decision when the sink is
    /// enabled. Observation only *reads* the virtual clock — with a
    /// [`NullSink`] this is byte-for-byte the plain `decide`.
    pub fn decide_obs(
        &mut self,
        video: &Video,
        frame_idx: usize,
        boxes: &[BBox],
        svc: &mut FeatureService,
        device: &mut DeviceSim,
        obs: &mut impl ObsSink,
    ) -> Decision {
        obs.span_begin(SpanKind::Decision, "", device.now_ms());
        let free_run = matches!(self.policy, Policy::ForcedFeatureFree(_));
        let budget = self.slo_ms * self.headroom;
        let n = self.trained.catalog.len();
        let mut sched_ms = 0.0;
        let mut faults = 0usize;
        let mut predict_faulted = false;

        // Step 1: light features + content-agnostic predictions.
        let light_cost = FeatureKind::Light.cost();
        if !free_run {
            obs.span_begin(SpanKind::LightFeature, "", device.now_ms());
            sched_ms += device.charge(OpUnit::Cpu, light_cost.extract_ms);
            match device.run_op(OpUnit::Gpu, light_cost.predict_ms) {
                Ok(ms) => sched_ms += ms,
                Err(OpError::Transient { wasted_ms }) => {
                    // The accuracy-model query died: its predictions are
                    // garbage. Fall through to a cost-only decision.
                    sched_ms += wasted_ms;
                    faults += 1;
                    predict_faulted = true;
                }
            }
            obs.span_end(device.now_ms());
        }
        let light = svc.light(video, frame_idx, boxes);
        let a_light = self.trained.accuracy[&FeatureKind::Light].predict(&light, None);
        let (gpu_corr, cpu_corr) = (self.gpu_correction(), self.cpu_correction());
        let kernel_pred: Vec<f64> = (0..n)
            .map(|b| {
                self.trained
                    .latency
                    .predict_kernel_ms(b, &light, gpu_corr, cpu_corr)
            })
            .collect();

        // The scheduler's fixed per-decision cost (light extract+predict
        // plus the solve), as seen by the constraint.
        let s0 = if free_run {
            0.0
        } else {
            light_cost.extract_ms + light_cost.predict_ms + SOLVER_MS
        };
        let fits = |b: usize, extra_sched_ms: f64, this: &Self| -> bool {
            let amortized = (s0 + extra_sched_ms + this.expected_switch_ms(b))
                / this.trained.catalog[b].gof_size.max(1) as f64;
            kernel_pred[b] + this.known_overhead_ms + amortized <= budget
        };

        // Step 2: feature selection.
        let selected = self.select_features(&a_light, &fits, budget);

        // Step 3: extract selected features and ensemble predictions.
        let mut content_preds: Vec<Vec<f32>> = Vec::new();
        let mut used = Vec::new();
        for &kind in &selected {
            let cost = kind.cost();
            let value = if kind.from_detector() {
                // `available()` gated selection on this, so `None` can
                // only mean the caller reset the stream mid-decision:
                // treat the feature as unavailable rather than panic.
                let Some(frame) = self.last_det_frame else {
                    continue;
                };
                let logits = self.last_logits.as_deref();
                svc.extract_heavy(kind, video, frame, logits)
            } else {
                svc.extract_heavy(kind, video, frame_idx, None)
            };
            let Some(feature) = value else { continue };
            if !free_run {
                let extract_ms = if kind.from_detector() {
                    cost.marginal_extract_ms
                } else {
                    cost.extract_ms
                };
                let unit = if cost.extract_on_gpu {
                    OpUnit::Gpu
                } else {
                    OpUnit::Cpu
                };
                // Extract then predict; a transient fault on either op
                // drops the feature (the ensemble just loses one vote).
                let mut op_failed = false;
                obs.span_begin(SpanKind::HeavyFeature, kind.name(), device.now_ms());
                for (u, ms) in [(unit, extract_ms), (OpUnit::Gpu, cost.predict_ms)] {
                    match device.run_op(u, ms) {
                        Ok(charged) => sched_ms += charged,
                        Err(OpError::Transient { wasted_ms }) => {
                            sched_ms += wasted_ms;
                            faults += 1;
                            op_failed = true;
                            break;
                        }
                    }
                }
                obs.span_end(device.now_ms());
                if op_failed {
                    continue;
                }
            }
            if let Some(model) = self.trained.accuracy.get(&kind) {
                content_preds.push(model.predict(&light, Some(&feature)));
                used.push(kind);
            }
        }

        if !free_run {
            obs.span_begin(SpanKind::Solve, "", device.now_ms());
            sched_ms += device.charge(OpUnit::Cpu, SOLVER_MS);
            obs.span_end(device.now_ms());
        }

        // Step 4: constrained optimization over the final predictions.
        let a_final: Vec<f32> = if content_preds.is_empty() {
            a_light
        } else {
            let mut mean = vec![0.0f32; n];
            for p in &content_preds {
                for (m, &v) in mean.iter_mut().zip(p.iter()) {
                    *m += v;
                }
            }
            let inv = 1.0 / content_preds.len() as f32;
            mean.iter_mut().for_each(|m| *m *= inv);
            mean
        };

        // Table 4's forced-feature mode ignores the feature's overhead in
        // the constraint as well (the latency objective applies to the
        // MBEK only).
        let extra = if free_run {
            0.0
        } else {
            self.feature_set_cost_ms(&used)
        };
        let cost_only = predict_faulted || a_final.iter().any(|a| !a.is_finite());
        let (branch_idx, feasible) = if cost_only {
            // The accuracy side is unusable (faulted predict op or a
            // non-finite prediction): fall back to cost-only selection —
            // the cheapest branch that fits the constraint, or the
            // cheapest overall when nothing fits.
            match (0..n)
                .filter(|&b| fits(b, extra, self))
                .min_by(|&i, &j| kernel_pred[i].total_cmp(&kernel_pred[j]))
            {
                Some(b) => (b, true),
                None => (Self::cheapest_branch(&kernel_pred), false),
            }
        } else {
            let mut best: Option<(usize, f32)> = None;
            for (b, &ab) in a_final.iter().enumerate().take(n) {
                if fits(b, extra, self) && best.is_none_or(|(_, bp)| ab > bp) {
                    best = Some((b, ab));
                }
            }
            match best {
                Some((b, _)) => (b, true),
                // Fallback: the cheapest branch.
                None => (Self::cheapest_branch(&kernel_pred), false),
            }
        };

        // Everything below is pure observation: values already computed,
        // clock only read.
        let explain = if obs.enabled() {
            let switch_pred_ms = self.expected_switch_ms(branch_idx);
            let amortized_ms = (s0 + extra + switch_pred_ms)
                / self.trained.catalog[branch_idx].gof_size.max(1) as f64;
            let slack_ms = budget - kernel_pred[branch_idx] - self.known_overhead_ms - amortized_ms;
            Some(Box::new(DecisionExplain {
                slo_ms: self.slo_ms,
                budget_ms: budget,
                features: used
                    .iter()
                    .map(|&k| FeatureBen {
                        name: k.name(),
                        ben: self.trained.ben.single(k, self.slo_ms),
                    })
                    .collect(),
                branch_acc: a_final.clone(),
                branch_kernel_ms: kernel_pred.clone(),
                s0_ms: s0,
                s_heavy_ms: extra,
                switch_pred_ms,
                amortized_ms,
                slack_ms,
                chosen: branch_idx,
                feasible,
                cost_only,
            }))
        } else {
            None
        };
        obs.span_end(device.now_ms());

        Decision {
            branch_idx,
            features: used,
            scheduler_ms: sched_ms,
            predicted_kernel_ms: kernel_pred[branch_idx],
            feasible,
            faults,
            cost_only,
            explain,
        }
    }

    /// Index of the branch with the lowest predicted kernel latency
    /// (total order over floats; index 0 for an empty slice, which the
    /// non-empty catalog invariant rules out).
    fn cheapest_branch(kernel_pred: &[f64]) -> usize {
        let mut best = 0usize;
        for (i, v) in kernel_pred.iter().enumerate().skip(1) {
            if v.total_cmp(&kernel_pred[best]) == std::cmp::Ordering::Less {
                best = i;
            }
        }
        best
    }

    /// True if a heavy feature can be recruited right now.
    fn available(&self, kind: FeatureKind) -> bool {
        if !self.trained.accuracy.contains_key(&kind) {
            return false;
        }
        if kind.from_detector() {
            self.trained.family == DetectorFamily::FasterRcnn
                && self.last_det_frame.is_some()
                && (kind != FeatureKind::CPoP || self.last_logits.is_some())
        } else {
            true
        }
    }

    /// The amortizable extract+predict cost of a feature set.
    fn feature_set_cost_ms(&self, set: &[FeatureKind]) -> f64 {
        set.iter()
            .map(|k| {
                let c = k.cost();
                let extract = if k.from_detector() {
                    c.marginal_extract_ms
                } else {
                    c.extract_ms
                };
                extract + c.predict_ms
            })
            .sum()
    }

    /// Policy-dependent heavy-feature selection (Eq. 4 for CostBenefit).
    fn select_features(
        &self,
        a_light: &[f32],
        fits: &dyn Fn(usize, f64, &Self) -> bool,
        _budget: f64,
    ) -> Vec<FeatureKind> {
        let n = self.trained.catalog.len();
        match self.policy {
            Policy::MinCost => Vec::new(),
            Policy::MaxContent(kind) | Policy::ForcedFeatureFree(kind) => {
                if self.available(kind) {
                    vec![kind]
                } else {
                    Vec::new()
                }
            }
            Policy::CostBenefit => {
                // Base objective: best content-agnostic feasible accuracy.
                let base = (0..n)
                    .filter(|&b| fits(b, 0.0, self))
                    .map(|b| a_light[b])
                    .fold(f32::NEG_INFINITY, f32::max);
                if !base.is_finite() {
                    // Nothing feasible even without features: stay light.
                    return Vec::new();
                }
                let mut selected: Vec<FeatureKind> = Vec::new();
                let mut current_value = base;
                // Offline Ben estimates carry estimation error and are
                // measured with fresh features; require a margin before
                // paying real extraction costs.
                const SELECTION_MARGIN: f32 = 0.015;
                while selected.len() < self.max_heavy {
                    let mut best_candidate: Option<(FeatureKind, f32)> = None;
                    for kind in HEAVY_FEATURE_KINDS {
                        if selected.contains(&kind) || !self.available(kind) {
                            continue;
                        }
                        let mut trial = selected.clone();
                        trial.push(kind);
                        let cost = self.feature_set_cost_ms(&trial);
                        if !(0..n).any(|b| fits(b, cost, self)) {
                            continue;
                        }
                        let value = base + self.trained.ben.set_benefit(&trial, self.slo_ms);
                        if value > current_value + SELECTION_MARGIN
                            && best_candidate.is_none_or(|(_, v)| value > v)
                        {
                            best_candidate = Some((kind, value));
                        }
                    }
                    match best_candidate {
                        Some((kind, value)) => {
                            selected.push(kind);
                            current_value = value;
                        }
                        None => break,
                    }
                }
                selected
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::featsvc::FeatureService;
    use crate::offline::{profile_videos, OfflineConfig};
    use crate::predictor::{AccuracyModel, AccuracyModelConfig, LatencyModel};
    use lr_device::DeviceKind;
    use lr_kernels::branch::small_catalog;
    use lr_video::VideoSpec;

    fn trained() -> Arc<TrainedScheduler> {
        let videos: Vec<Video> = (0..2)
            .map(|i| {
                Video::generate(VideoSpec {
                    id: i,
                    seed: 400 + i as u64,
                    width: 640.0,
                    height: 480.0,
                    num_frames: 80,
                })
            })
            .collect();
        let cfg = OfflineConfig {
            snippet_len: 40,
            catalog: small_catalog(),
            family: DetectorFamily::FasterRcnn,
            reference_detector: lr_kernels::DetectorConfig::new(576, 100),
            seed: 9,
        };
        let mut svc = FeatureService::new();
        let ds = profile_videos(&videos, &cfg, &mut svc);
        let mut accuracy = BTreeMap::new();
        accuracy.insert(
            FeatureKind::Light,
            AccuracyModel::train(FeatureKind::Light, &ds, &AccuracyModelConfig::tiny(), 1),
        );
        accuracy.insert(
            FeatureKind::HoC,
            AccuracyModel::train(FeatureKind::HoC, &ds, &AccuracyModelConfig::tiny(), 2),
        );
        accuracy.insert(
            FeatureKind::MobileNetV2,
            AccuracyModel::train(
                FeatureKind::MobileNetV2,
                &ds,
                &AccuracyModelConfig::tiny(),
                3,
            ),
        );
        let latency = LatencyModel::train(&ds);
        let ben = crate::bentable::BenTable::uniform(
            &[(FeatureKind::HoC, 0.02), (FeatureKind::MobileNetV2, 0.015)],
            &[33.3, 50.0, 100.0],
        );
        let det_inference_ms = ds
            .catalog
            .iter()
            .enumerate()
            .map(|(i, b)| {
                let mean: f64 = ds.records.iter().map(|r| r.branch_det_ms[i]).sum::<f64>()
                    / ds.records.len() as f64;
                mean * b.gof_size as f64
            })
            .collect();
        Arc::new(TrainedScheduler {
            catalog: ds.catalog.clone(),
            accuracy,
            latency,
            ben,
            switching: SwitchingCostModel::paper_default(),
            det_inference_ms,
            family: DetectorFamily::FasterRcnn,
        })
    }

    fn test_video() -> Video {
        Video::generate(VideoSpec {
            id: 99,
            seed: 999,
            width: 640.0,
            height: 480.0,
            num_frames: 60,
        })
    }

    #[test]
    fn mincost_uses_no_heavy_features() {
        let t = trained();
        let mut s = Scheduler::new(t, Policy::MinCost, 50.0);
        let v = test_video();
        let mut svc = FeatureService::new();
        let mut dev = DeviceSim::new(DeviceKind::JetsonTx2, 0.0, 1);
        let d = s.decide(&v, 0, &[], &mut svc, &mut dev);
        assert!(d.features.is_empty());
        assert!(d.scheduler_ms > 0.0, "light costs must be charged");
        assert!(d.scheduler_ms < 10.0, "MinCost must be cheap");
    }

    #[test]
    fn decision_respects_slo_scaling() {
        // Tighter SLOs must pick branches with lower predicted latency.
        let t = trained();
        let v = test_video();
        let mut svc = FeatureService::new();
        let mut dev = DeviceSim::new(DeviceKind::JetsonTx2, 0.0, 2);
        let mut tight = Scheduler::new(t.clone(), Policy::MinCost, 15.0);
        let mut loose = Scheduler::new(t, Policy::MinCost, 200.0);
        let dt = tight.decide(&v, 0, &[], &mut svc, &mut dev);
        let dl = loose.decide(&v, 0, &[], &mut svc, &mut dev);
        assert!(dt.predicted_kernel_ms <= dl.predicted_kernel_ms + 1e-6);
    }

    #[test]
    fn maxcontent_mobilenet_pays_its_cost() {
        let t = trained();
        let v = test_video();
        let mut svc = FeatureService::new();
        let mut dev = DeviceSim::new(DeviceKind::JetsonTx2, 0.0, 3);
        let mut s = Scheduler::new(t, Policy::MaxContent(FeatureKind::MobileNetV2), 100.0);
        let d = s.decide(&v, 0, &[], &mut svc, &mut dev);
        assert_eq!(d.features, vec![FeatureKind::MobileNetV2]);
        // 153.96 extract + 9.33 predict, plus light costs.
        assert!(d.scheduler_ms > 150.0, "scheduler cost {}", d.scheduler_ms);
    }

    #[test]
    fn forced_feature_free_charges_nothing() {
        let t = trained();
        let v = test_video();
        let mut svc = FeatureService::new();
        let mut dev = DeviceSim::new(DeviceKind::JetsonTx2, 0.0, 4);
        let mut s = Scheduler::new(t, Policy::ForcedFeatureFree(FeatureKind::MobileNetV2), 33.3);
        let before = dev.now_ms();
        let d = s.decide(&v, 0, &[], &mut svc, &mut dev);
        assert_eq!(dev.now_ms(), before, "free mode must not charge");
        assert_eq!(d.scheduler_ms, 0.0);
        assert_eq!(d.features, vec![FeatureKind::MobileNetV2]);
    }

    #[test]
    fn cost_benefit_declines_heavy_features_under_tight_slo() {
        // With a 6 ms SLO, even amortized over the longest GoF (20 frames
        // in the small catalog) MobileNetV2's 163 ms cannot fit, while a
        // cheap tracked branch alone still can; cost-benefit must decline
        // the feature rather than blow the budget.
        let t = trained();
        let v = test_video();
        let mut svc = FeatureService::new();
        let mut dev = DeviceSim::new(DeviceKind::JetsonTx2, 0.0, 5);
        let mut s = Scheduler::new(t, Policy::CostBenefit, 6.0);
        let d = s.decide(&v, 0, &[], &mut svc, &mut dev);
        assert!(
            !d.features.contains(&FeatureKind::MobileNetV2),
            "MobileNetV2 selected under a 6 ms SLO: {:?}",
            d.features
        );
    }

    #[test]
    fn cost_benefit_recruits_features_when_affordable() {
        let t = trained();
        let v = test_video();
        let mut svc = FeatureService::new();
        let mut dev = DeviceSim::new(DeviceKind::JetsonTx2, 0.0, 6);
        let mut s = Scheduler::new(t, Policy::CostBenefit, 100.0);
        let d = s.decide(&v, 0, &[], &mut svc, &mut dev);
        assert!(
            !d.features.is_empty(),
            "a 100 ms SLO affords content features"
        );
    }

    #[test]
    fn detector_features_require_byproducts() {
        let t = trained();
        let v = test_video();
        let mut svc = FeatureService::new();
        let mut dev = DeviceSim::new(DeviceKind::JetsonTx2, 0.0, 7);
        let mut s = Scheduler::new(t, Policy::MaxContent(FeatureKind::ResNet50), 100.0);
        // No detection recorded yet: falls back to light-only.
        let d = s.decide(&v, 0, &[], &mut svc, &mut dev);
        assert!(d.features.is_empty());
    }

    #[test]
    fn observe_latency_raises_gpu_correction_under_contention() {
        let t = trained();
        let mut s = Scheduler::new(t.clone(), Policy::MinCost, 50.0);
        let light = vec![0.4, 0.3, 0.2, 0.01];
        let (pred_det, _) = t.latency.predict_parts(0, &light);
        // Observe the detector running 2x slower than predicted.
        for _ in 0..20 {
            s.observe_latency(0, &light, pred_det * 2.0, 0.0);
        }
        assert!(
            s.gpu_correction() > 1.5,
            "correction {} did not adapt",
            s.gpu_correction()
        );
    }

    #[test]
    fn frozen_latency_model_ignores_observations() {
        let t = trained();
        let mut s = Scheduler::new(t, Policy::MinCost, 50.0).with_frozen_latency_model();
        let light = vec![0.4, 0.3, 0.2, 0.01];
        for _ in 0..20 {
            s.observe_latency(0, &light, 100.0, 100.0);
        }
        assert_eq!(s.gpu_correction(), 1.0);
    }

    #[test]
    fn faulted_predict_op_falls_back_to_cost_only() {
        let t = trained();
        let v = test_video();
        let mut svc = FeatureService::new();
        let mut dev = DeviceSim::new(DeviceKind::JetsonTx2, 0.0, 8);
        dev.set_fault_plan(Some(lr_device::FaultPlan::generate(
            lr_device::FaultConfig {
                transient_rate: 1.0,
                stall_rate: 0.0,
                ..lr_device::FaultConfig::moderate(21)
            },
        )));
        let mut s = Scheduler::new(t, Policy::CostBenefit, 50.0);
        let d = s.decide(&v, 0, &[], &mut svc, &mut dev);
        assert!(d.cost_only, "faulted predict op must force cost-only");
        assert!(d.faults >= 1);
        assert!(d.scheduler_ms > 0.0, "wasted op time must be accounted");
    }

    #[test]
    fn clean_device_decision_reports_no_faults() {
        let t = trained();
        let v = test_video();
        let mut svc = FeatureService::new();
        let mut dev = DeviceSim::new(DeviceKind::JetsonTx2, 0.0, 9);
        let mut s = Scheduler::new(t, Policy::CostBenefit, 50.0);
        let d = s.decide(&v, 0, &[], &mut svc, &mut dev);
        assert_eq!(d.faults, 0);
        assert!(!d.cost_only);
    }

    #[test]
    fn cheapest_branch_ignores_nan_predictions() {
        assert_eq!(Scheduler::cheapest_branch(&[3.0, f64::NAN, 1.0, 2.0]), 2);
        assert_eq!(Scheduler::cheapest_branch(&[f64::NAN, 5.0]), 1);
        assert_eq!(Scheduler::cheapest_branch(&[4.0]), 0);
    }

    #[test]
    fn switch_cost_is_zero_for_same_branch() {
        let t = trained();
        let mut s = Scheduler::new(t, Policy::MinCost, 50.0);
        s.commit_branch(3);
        assert_eq!(s.expected_switch_ms(3), 0.0);
        assert!(s.expected_switch_ms(0) > 0.0);
    }
}
