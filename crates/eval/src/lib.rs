//! Evaluation: mean average precision, latency statistics, and result
//! tables.
//!
//! Accuracy in this workspace is never asserted — it is computed by
//! matching simulated detections against ground truth with the standard
//! VOC protocol (greedy IoU >= 0.5 matching, all-point interpolated AP,
//! mAP over classes with ground truth), the same protocol the paper uses
//! on ImageNet VID. Latency statistics mirror the paper's reporting: mean
//! per-frame latency and the 95th percentile (P95) against which the SLO
//! is checked.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod latency;
pub mod map;
pub mod report;
pub mod table;

pub use latency::LatencyStats;
pub use map::{GtBox, MapAccumulator, MapResult, PredBox};
pub use table::TextTable;
