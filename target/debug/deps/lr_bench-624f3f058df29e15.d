/root/repo/target/debug/deps/lr_bench-624f3f058df29e15.d: crates/bench/src/lib.rs crates/bench/src/suite.rs

/root/repo/target/debug/deps/lr_bench-624f3f058df29e15: crates/bench/src/lib.rs crates/bench/src/suite.rs

crates/bench/src/lib.rs:
crates/bench/src/suite.rs:
