/root/repo/target/debug/deps/litereconfig_repro-2c7cc9583fe1c586.d: src/lib.rs

/root/repo/target/debug/deps/litereconfig_repro-2c7cc9583fe1c586: src/lib.rs

src/lib.rs:
