/root/repo/target/debug/deps/lr_serve-9be18ccbdc0ab8c9.d: crates/serve/src/lib.rs crates/serve/src/admission.rs crates/serve/src/dispatch.rs crates/serve/src/report.rs crates/serve/src/shared.rs crates/serve/src/slo.rs

/root/repo/target/debug/deps/lr_serve-9be18ccbdc0ab8c9: crates/serve/src/lib.rs crates/serve/src/admission.rs crates/serve/src/dispatch.rs crates/serve/src/report.rs crates/serve/src/shared.rs crates/serve/src/slo.rs

crates/serve/src/lib.rs:
crates/serve/src/admission.rs:
crates/serve/src/dispatch.rs:
crates/serve/src/report.rs:
crates/serve/src/shared.rs:
crates/serve/src/slo.rs:
