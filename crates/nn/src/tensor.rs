//! Dense row-major matrices and the small set of kernels the library needs.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major `f32` matrix.
///
/// This is the only tensor type in the crate. Vectors are represented as
/// `1 x n` or `n x 1` matrices, and mini-batches as `batch x dim` matrices.
///
/// # Examples
///
/// ```
/// use lr_nn::Matrix;
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Matrix::identity(2);
/// assert_eq!(a.matmul(&b), a);
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)?;
        if self.rows * self.cols <= 16 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

impl Matrix {
    /// Creates a matrix of zeros with the given shape.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix filled with a constant value.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        let mut m = Self::zeros(rows, cols);
        m.data.fill(value);
        m
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match shape {}x{}",
            data.len(),
            rows,
            cols
        );
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        Self { rows, cols, data }
    }

    /// Creates a matrix from a slice of equally-sized rows.
    ///
    /// # Panics
    ///
    /// Panics if rows are empty or have differing lengths.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "at least one row required");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows are not allowed");
            data.extend_from_slice(r);
        }
        Self::from_vec(rows.len(), cols, data)
    }

    /// Creates a `1 x n` row vector from a slice.
    pub fn row_vector(values: &[f32]) -> Self {
        Self::from_vec(1, values.len(), values.to_vec())
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The underlying row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the underlying row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// A view of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row {} out of bounds ({})", r, self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// A mutable view of row `r`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row {} out of bounds ({})", r, self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        // Loop order (i, k, j) keeps the inner loop contiguous in both the
        // output row and the rhs row, which matters for the larger feature
        // projections (5400 -> 256).
        for i in 0..self.rows {
            let a_row = &self.data[i * self.cols..(i + 1) * self.cols];
            let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Matrix product with the transpose of `rhs`: `self * rhs^T`.
    pub fn matmul_transposed(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.cols,
            "matmul_transposed shape mismatch: {}x{} * ({}x{})^T",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        for i in 0..self.rows {
            let a_row = self.row(i);
            for j in 0..rhs.rows {
                let b_row = rhs.row(j);
                let mut acc = 0.0;
                for (&a, &b) in a_row.iter().zip(b_row.iter()) {
                    acc += a * b;
                }
                out[(i, j)] = acc;
            }
        }
        out
    }

    /// Product of the transpose of `self` with `rhs`: `self^T * rhs`.
    pub fn transposed_matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, rhs.rows,
            "transposed_matmul shape mismatch: ({}x{})^T * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.cols, rhs.cols);
        for k in 0..self.rows {
            let a_row = self.row(k);
            let b_row = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Element-wise sum with another matrix of the same shape.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, rhs: &Matrix) -> Matrix {
        self.zip_with(rhs, |a, b| a + b)
    }

    /// Element-wise difference.
    pub fn sub(&self, rhs: &Matrix) -> Matrix {
        self.zip_with(rhs, |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    pub fn hadamard(&self, rhs: &Matrix) -> Matrix {
        self.zip_with(rhs, |a, b| a * b)
    }

    /// Adds a `1 x cols` row vector to every row (bias broadcast).
    ///
    /// # Panics
    ///
    /// Panics if `bias` is not `1 x self.cols()`.
    pub fn add_row_broadcast(&self, bias: &Matrix) -> Matrix {
        assert_eq!(bias.rows, 1, "bias must be a row vector");
        assert_eq!(bias.cols, self.cols, "bias width mismatch");
        let mut out = self.clone();
        for r in 0..out.rows {
            for (o, &b) in out.row_mut(r).iter_mut().zip(bias.data.iter()) {
                *o += b;
            }
        }
        out
    }

    /// Sums each column into a `1 x cols` row vector.
    pub fn sum_rows(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        for r in 0..self.rows {
            for (o, &v) in out.data.iter_mut().zip(self.row(r).iter()) {
                *o += v;
            }
        }
        out
    }

    /// Scales every element in place.
    pub fn scale_in_place(&mut self, s: f32) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Returns a scaled copy.
    pub fn scaled(&self, s: f32) -> Matrix {
        let mut out = self.clone();
        out.scale_in_place(s);
        out
    }

    /// Applies a function element-wise, returning a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        let data = self.data.iter().map(|&v| f(v)).collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// `self += rhs * s` (axpy), in place.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn axpy_in_place(&mut self, rhs: &Matrix, s: f32) {
        assert_eq!(self.rows, rhs.rows, "axpy row mismatch");
        assert_eq!(self.cols, rhs.cols, "axpy col mismatch");
        for (a, &b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a += b * s;
        }
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f32 {
        self.data.iter().sum::<f32>() / self.data.len() as f32
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|&v| v * v).sum::<f32>().sqrt()
    }

    /// True if every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    fn zip_with(&self, rhs: &Matrix, f: impl Fn(f32, f32) -> f32) -> Matrix {
        assert_eq!(self.rows, rhs.rows, "row mismatch");
        assert_eq!(self.cols, rhs.cols, "col mismatch");
        let data = self
            .data
            .iter()
            .zip(rhs.data.iter())
            .map(|(&a, &b)| f(a, b))
            .collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f32;

    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_small() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_rows(&[&[1.0, -2.0, 0.5], &[0.0, 3.0, 4.0]]);
        assert_eq!(a.matmul(&Matrix::identity(3)), a);
    }

    #[test]
    fn matmul_transposed_matches_explicit_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[1.0, 0.0, 1.0], &[2.0, 1.0, 0.0]]);
        assert_eq!(a.matmul_transposed(&b), a.matmul(&b.transpose()));
    }

    #[test]
    fn transposed_matmul_matches_explicit_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0]]);
        assert_eq!(a.transposed_matmul(&b), a.transpose().matmul(&b));
    }

    #[test]
    fn bias_broadcast_adds_to_every_row() {
        let a = Matrix::zeros(3, 2);
        let bias = Matrix::row_vector(&[1.0, -1.0]);
        let out = a.add_row_broadcast(&bias);
        for r in 0..3 {
            assert_eq!(out.row(r), &[1.0, -1.0]);
        }
    }

    #[test]
    fn sum_rows_collapses_to_column_sums() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        assert_eq!(a.sum_rows(), Matrix::row_vector(&[9.0, 12.0]));
    }

    #[test]
    fn axpy_accumulates_scaled() {
        let mut a = Matrix::full(2, 2, 1.0);
        let b = Matrix::full(2, 2, 2.0);
        a.axpy_in_place(&b, 0.5);
        assert_eq!(a, Matrix::full(2, 2, 2.0));
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_length_mismatch_panics() {
        let _ = Matrix::from_vec(2, 2, vec![0.0; 3]);
    }

    #[test]
    fn mean_and_norm() {
        let a = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert_eq!(a.mean(), 3.5);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-6);
    }
}
