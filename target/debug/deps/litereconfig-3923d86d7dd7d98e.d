/root/repo/target/debug/deps/litereconfig-3923d86d7dd7d98e.d: crates/core/src/lib.rs crates/core/src/bentable.rs crates/core/src/featsvc.rs crates/core/src/offline.rs crates/core/src/pipeline.rs crates/core/src/predictor.rs crates/core/src/protocols.rs crates/core/src/scheduler.rs crates/core/src/trainer.rs Cargo.toml

/root/repo/target/debug/deps/liblitereconfig-3923d86d7dd7d98e.rmeta: crates/core/src/lib.rs crates/core/src/bentable.rs crates/core/src/featsvc.rs crates/core/src/offline.rs crates/core/src/pipeline.rs crates/core/src/predictor.rs crates/core/src/protocols.rs crates/core/src/scheduler.rs crates/core/src/trainer.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/bentable.rs:
crates/core/src/featsvc.rs:
crates/core/src/offline.rs:
crates/core/src/pipeline.rs:
crates/core/src/predictor.rs:
crates/core/src/protocols.rs:
crates/core/src/scheduler.rs:
crates/core/src/trainer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
