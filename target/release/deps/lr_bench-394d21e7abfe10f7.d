/root/repo/target/release/deps/lr_bench-394d21e7abfe10f7.d: crates/bench/src/lib.rs crates/bench/src/suite.rs

/root/repo/target/release/deps/lr_bench-394d21e7abfe10f7: crates/bench/src/lib.rs crates/bench/src/suite.rs

crates/bench/src/lib.rs:
crates/bench/src/suite.rs:
