//! Dense row-major matrices and the small set of kernels the library needs.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major `f32` matrix.
///
/// This is the only tensor type in the crate. Vectors are represented as
/// `1 x n` or `n x 1` matrices, and mini-batches as `batch x dim` matrices.
///
/// # Examples
///
/// ```
/// use lr_nn::Matrix;
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Matrix::identity(2);
/// assert_eq!(a.matmul(&b), a);
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)?;
        if self.rows * self.cols <= 16 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

impl Matrix {
    /// Creates a matrix of zeros with the given shape.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix filled with a constant value.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        let mut m = Self::zeros(rows, cols);
        m.data.fill(value);
        m
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match shape {}x{}",
            data.len(),
            rows,
            cols
        );
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        Self { rows, cols, data }
    }

    /// Creates a matrix from a slice of equally-sized rows.
    ///
    /// # Panics
    ///
    /// Panics if rows are empty or have differing lengths.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "at least one row required");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows are not allowed");
            data.extend_from_slice(r);
        }
        Self::from_vec(rows.len(), cols, data)
    }

    /// Creates a `1 x n` row vector from a slice.
    pub fn row_vector(values: &[f32]) -> Self {
        Self::from_vec(1, values.len(), values.to_vec())
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The underlying row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the underlying row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// A view of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row {} out of bounds ({})", r, self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// A mutable view of row `r`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row {} out of bounds ({})", r, self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self * rhs`.
    ///
    /// Delegates to the blocked kernel ([`Matrix::matmul_into`]); the
    /// result is bit-identical to the reference i-k-j loop because
    /// blocking never reorders the per-element accumulation.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        self.matmul_into(rhs, &mut out);
        out
    }

    /// Matrix product `self * rhs` written into `out`, which is resized
    /// to `self.rows x rhs.cols` and fully overwritten. Reusing one
    /// scratch matrix across calls avoids a fresh allocation per product,
    /// which matters on the scheduler's per-GoF inference hot path.
    ///
    /// The kernel is blocked over (row, inner-dim) tiles so the `rhs`
    /// panel loaded for a tile is reused across a strip of output rows.
    /// For every output element the inner dimension is still walked in
    /// ascending order with the same zero-skip as the reference i-k-j
    /// loop, so the f32 accumulation order — and therefore the result —
    /// is bit-identical for any tile size.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        out.resize(self.rows, rhs.cols);
        self.matmul_rows_into(rhs, 0, self.rows, &mut out.data);
        crate::debug_assert_finite!(&*out, "matmul");
    }

    /// Reference (i, j, k) matmul kept for kernel cross-checking. Its
    /// accumulation order differs from [`Matrix::matmul`], so outputs
    /// agree only up to f32 rounding.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul_naive(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for j in 0..rhs.cols {
                let mut acc = 0.0f32;
                for k in 0..self.cols {
                    acc += self.data[i * self.cols + k] * rhs.data[k * rhs.cols + j];
                }
                out.data[i * rhs.cols + j] = acc;
            }
        }
        crate::debug_assert_finite!(out, "matmul_naive");
        out
    }

    /// Matrix product `self * rhs` with output rows partitioned across a
    /// worker pool. Each row's accumulation is independent and uses the
    /// same kernel as [`Matrix::matmul`], so the result is bit-identical
    /// to the serial product for any thread count.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul_with_pool(&self, rhs: &Matrix, pool: &lr_pool::Pool) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let chunks = pool.threads().min(self.rows).max(1);
        let per = self.rows.div_ceil(chunks);
        let ranges: Vec<(usize, usize)> = (0..chunks)
            .map(|c| (c * per, ((c + 1) * per).min(self.rows)))
            .filter(|&(lo, hi)| lo < hi)
            .collect();
        let parts = pool.par_map(&ranges, |&(lo, hi)| {
            let mut buf = vec![0.0f32; (hi - lo) * rhs.cols];
            self.matmul_rows_into(rhs, lo, hi, &mut buf);
            buf
        });
        let mut data = Vec::with_capacity(self.rows * rhs.cols);
        for part in parts {
            data.extend_from_slice(&part);
        }
        let out = Matrix::from_vec(self.rows, rhs.cols, data);
        crate::debug_assert_finite!(out, "matmul_with_pool");
        out
    }

    /// Blocked kernel for output rows `row_lo..row_hi`; `out` holds
    /// exactly those rows and is fully overwritten. Row tiling reuses
    /// each `rhs` panel across a strip of output rows; per element the
    /// inner dimension stays ascending (bit-identical to i-k-j).
    fn matmul_rows_into(&self, rhs: &Matrix, row_lo: usize, row_hi: usize, out: &mut [f32]) {
        const BLOCK_I: usize = 16;
        const BLOCK_K: usize = 64;
        debug_assert_eq!(out.len(), (row_hi - row_lo) * rhs.cols);
        out.fill(0.0);
        let n = rhs.cols;
        for ii in (row_lo..row_hi).step_by(BLOCK_I) {
            let i_end = (ii + BLOCK_I).min(row_hi);
            for kk in (0..self.cols).step_by(BLOCK_K) {
                let k_end = (kk + BLOCK_K).min(self.cols);
                for i in ii..i_end {
                    let a_tile = &self.data[i * self.cols + kk..i * self.cols + k_end];
                    let out_row = &mut out[(i - row_lo) * n..(i - row_lo + 1) * n];
                    for (dk, &a) in a_tile.iter().enumerate() {
                        if a == 0.0 {
                            continue;
                        }
                        let k = kk + dk;
                        let b_row = &rhs.data[k * n..(k + 1) * n];
                        for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                            *o += a * b;
                        }
                    }
                }
            }
        }
    }

    /// Matrix product with the transpose of `rhs`: `self * rhs^T`.
    pub fn matmul_transposed(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.cols,
            "matmul_transposed shape mismatch: {}x{} * ({}x{})^T",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        for i in 0..self.rows {
            let a_row = self.row(i);
            for j in 0..rhs.rows {
                let b_row = rhs.row(j);
                let mut acc = 0.0;
                for (&a, &b) in a_row.iter().zip(b_row.iter()) {
                    acc += a * b;
                }
                out[(i, j)] = acc;
            }
        }
        crate::debug_assert_finite!(out, "matmul_transposed");
        out
    }

    /// Product of the transpose of `self` with `rhs`: `self^T * rhs`.
    pub fn transposed_matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, rhs.rows,
            "transposed_matmul shape mismatch: ({}x{})^T * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.cols, rhs.cols);
        for k in 0..self.rows {
            let a_row = self.row(k);
            let b_row = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a * b;
                }
            }
        }
        crate::debug_assert_finite!(out, "transposed_matmul");
        out
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Element-wise sum with another matrix of the same shape.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, rhs: &Matrix) -> Matrix {
        self.zip_with(rhs, |a, b| a + b)
    }

    /// Element-wise difference.
    pub fn sub(&self, rhs: &Matrix) -> Matrix {
        self.zip_with(rhs, |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    pub fn hadamard(&self, rhs: &Matrix) -> Matrix {
        self.zip_with(rhs, |a, b| a * b)
    }

    /// Adds a `1 x cols` row vector to every row (bias broadcast).
    ///
    /// # Panics
    ///
    /// Panics if `bias` is not `1 x self.cols()`.
    pub fn add_row_broadcast(&self, bias: &Matrix) -> Matrix {
        let mut out = self.clone();
        out.add_row_broadcast_in_place(bias);
        out
    }

    /// Adds a `1 x cols` row vector to every row, in place.
    ///
    /// # Panics
    ///
    /// Panics if `bias` is not `1 x self.cols()`.
    pub fn add_row_broadcast_in_place(&mut self, bias: &Matrix) {
        assert_eq!(bias.rows, 1, "bias must be a row vector");
        assert_eq!(bias.cols, self.cols, "bias width mismatch");
        for r in 0..self.rows {
            let cols = self.cols;
            for (o, &b) in self.data[r * cols..(r + 1) * cols]
                .iter_mut()
                .zip(bias.data.iter())
            {
                *o += b;
            }
        }
    }

    /// Reshapes in place to `rows x cols`, reusing the existing buffer.
    /// Element values after a resize are unspecified (callers are
    /// expected to overwrite them); this exists so scratch matrices can
    /// be recycled across calls without reallocating.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn resize(&mut self, rows: usize, cols: usize) {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        self.rows = rows;
        self.cols = cols;
        self.data.resize(rows * cols, 0.0);
    }

    /// Sums each column into a `1 x cols` row vector.
    pub fn sum_rows(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        for r in 0..self.rows {
            for (o, &v) in out.data.iter_mut().zip(self.row(r).iter()) {
                *o += v;
            }
        }
        out
    }

    /// Scales every element in place.
    pub fn scale_in_place(&mut self, s: f32) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Returns a scaled copy.
    pub fn scaled(&self, s: f32) -> Matrix {
        let mut out = self.clone();
        out.scale_in_place(s);
        out
    }

    /// Applies a function element-wise, returning a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        let data = self.data.iter().map(|&v| f(v)).collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// `self += rhs * s` (axpy), in place.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn axpy_in_place(&mut self, rhs: &Matrix, s: f32) {
        assert_eq!(self.rows, rhs.rows, "axpy row mismatch");
        assert_eq!(self.cols, rhs.cols, "axpy col mismatch");
        for (a, &b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a += b * s;
        }
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f32 {
        self.data.iter().sum::<f32>() / self.data.len() as f32
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|&v| v * v).sum::<f32>().sqrt()
    }

    /// True if every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    fn zip_with(&self, rhs: &Matrix, f: impl Fn(f32, f32) -> f32) -> Matrix {
        assert_eq!(self.rows, rhs.rows, "row mismatch");
        assert_eq!(self.cols, rhs.cols, "col mismatch");
        let data = self
            .data
            .iter()
            .zip(rhs.data.iter())
            .map(|(&a, &b)| f(a, b))
            .collect();
        let out = Matrix::from_vec(self.rows, self.cols, data);
        crate::debug_assert_finite!(out, "elementwise zip");
        out
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f32;

    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_small() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_rows(&[&[1.0, -2.0, 0.5], &[0.0, 3.0, 4.0]]);
        assert_eq!(a.matmul(&Matrix::identity(3)), a);
    }

    #[test]
    fn matmul_transposed_matches_explicit_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[1.0, 0.0, 1.0], &[2.0, 1.0, 0.0]]);
        assert_eq!(a.matmul_transposed(&b), a.matmul(&b.transpose()));
    }

    #[test]
    fn transposed_matmul_matches_explicit_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0]]);
        assert_eq!(a.transposed_matmul(&b), a.transpose().matmul(&b));
    }

    #[test]
    fn bias_broadcast_adds_to_every_row() {
        let a = Matrix::zeros(3, 2);
        let bias = Matrix::row_vector(&[1.0, -1.0]);
        let out = a.add_row_broadcast(&bias);
        for r in 0..3 {
            assert_eq!(out.row(r), &[1.0, -1.0]);
        }
    }

    #[test]
    fn sum_rows_collapses_to_column_sums() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        assert_eq!(a.sum_rows(), Matrix::row_vector(&[9.0, 12.0]));
    }

    #[test]
    fn axpy_accumulates_scaled() {
        let mut a = Matrix::full(2, 2, 1.0);
        let b = Matrix::full(2, 2, 2.0);
        a.axpy_in_place(&b, 0.5);
        assert_eq!(a, Matrix::full(2, 2, 2.0));
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_length_mismatch_panics() {
        let _ = Matrix::from_vec(2, 2, vec![0.0; 3]);
    }

    #[test]
    fn mean_and_norm() {
        let a = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert_eq!(a.mean(), 3.5);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn blocked_matmul_matches_naive_on_random_matrices() {
        // Shapes straddle the 16/64 tile boundaries on purpose.
        let mut rng = crate::init::seeded_rng(2024);
        for &(m, k, n) in &[(1usize, 5usize, 3usize), (17, 65, 9), (33, 130, 20)] {
            let a = crate::init::he_uniform(m, k, &mut rng);
            let b = crate::init::he_uniform(k, n, &mut rng);
            let blocked = a.matmul(&b);
            let naive = a.matmul_naive(&b);
            for (x, y) in blocked.as_slice().iter().zip(naive.as_slice()) {
                assert!(
                    (x - y).abs() <= 1e-4 * (1.0 + y.abs()),
                    "blocked {x} vs naive {y}"
                );
            }
        }
    }

    #[test]
    fn matmul_into_reuses_scratch_and_matches_matmul() {
        let mut rng = crate::init::seeded_rng(7);
        let mut scratch = Matrix::zeros(1, 1);
        for &(m, k, n) in &[(3usize, 4usize, 5usize), (20, 70, 6), (5, 2, 9)] {
            let a = crate::init::he_uniform(m, k, &mut rng);
            let b = crate::init::he_uniform(k, n, &mut rng);
            a.matmul_into(&b, &mut scratch);
            assert_eq!(scratch, a.matmul(&b));
        }
    }

    #[test]
    fn pool_matmul_is_bit_identical_for_any_thread_count() {
        let mut rng = crate::init::seeded_rng(55);
        let a = crate::init::he_uniform(37, 90, &mut rng);
        let b = crate::init::he_uniform(90, 23, &mut rng);
        let serial = a.matmul(&b);
        for threads in [1, 2, 4, 7] {
            let pool = lr_pool::Pool::new(threads);
            assert_eq!(a.matmul_with_pool(&b, &pool), serial);
        }
    }
}
