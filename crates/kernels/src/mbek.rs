//! The GoF executor: tracking-by-detection over a Group-of-Frames.

use lr_device::{DeviceSim, OpUnit};
use lr_video::FrameTruth;

use crate::branch::Branch;
use crate::detector::{Detection, DetectorFamily, DetectorOutput, DetectorSim};
use crate::latency;
use crate::tracker::TrackerSim;

/// Everything produced by running one GoF under a branch.
#[derive(Debug, Clone)]
pub struct GofResult {
    /// Detections per frame, aligned with the input frames.
    pub per_frame: Vec<Vec<Detection>>,
    /// Virtual milliseconds charged to the detector (GPU).
    pub detector_ms: f64,
    /// Virtual milliseconds charged to the tracker (CPU), summed over the
    /// GoF.
    pub tracker_ms: f64,
    /// The first frame's raw detector output: the source of the ResNet50
    /// and CPoP features.
    pub first_frame_output: DetectorOutput,
}

impl GofResult {
    /// Total kernel time charged over the GoF.
    pub fn kernel_ms(&self) -> f64 {
        self.detector_ms + self.tracker_ms
    }

    /// Mean per-frame kernel latency over the GoF (the paper's time
    /// metric).
    pub fn mean_frame_ms(&self) -> f64 {
        self.kernel_ms() / self.per_frame.len().max(1) as f64
    }
}

/// The multi-branch execution kernel.
///
/// Holds a detector family plus the currently configured branch's tracker
/// state. Switching branches is the scheduler's job (and is charged via
/// the switching-cost model in `lr-device`); `Mbek` just executes.
#[derive(Debug, Clone)]
pub struct Mbek {
    detector: DetectorSim,
    tracker: Option<TrackerSim>,
    branch: Option<Branch>,
    /// Multiplier on kernel base latencies — models implementation
    /// inefficiency of older pipelines (ApproxDet's TF-1.14 stack).
    latency_factor: f64,
}

impl Mbek {
    /// Creates an MBEK over the given detector family (the paper's MBEK
    /// uses Faster R-CNN; YOLO+/SSD+ reuse the same executor).
    pub fn new(family: DetectorFamily) -> Self {
        Self {
            detector: DetectorSim::new(family),
            tracker: None,
            branch: None,
            latency_factor: 1.0,
        }
    }

    /// Scales all kernel latencies by `factor` (>= 1 models a slower
    /// implementation of the same kernels).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive.
    pub fn with_latency_factor(mut self, factor: f64) -> Self {
        assert!(factor > 0.0, "latency factor must be positive");
        self.latency_factor = factor;
        self
    }

    /// The detector family.
    pub fn family(&self) -> DetectorFamily {
        self.detector.family()
    }

    /// The currently configured branch.
    pub fn branch(&self) -> Option<Branch> {
        self.branch
    }

    /// Configures the execution branch, resetting tracker state.
    pub fn set_branch(&mut self, branch: Branch) {
        self.tracker = branch
            .tracker
            .map(|kind| TrackerSim::new(kind, branch.downsample));
        self.branch = Some(branch);
    }

    /// Runs one GoF over `frames` (detector on the first frame, tracker on
    /// the rest; detector on *every* frame for detector-only branches),
    /// charging all kernel latencies to `device`.
    ///
    /// # Panics
    ///
    /// Panics if no branch is configured or `frames` is empty.
    pub fn run_gof(&mut self, frames: &[FrameTruth], device: &mut DeviceSim) -> GofResult {
        let branch = self.branch.expect("no branch configured");
        assert!(!frames.is_empty(), "empty GoF");

        let mut per_frame = Vec::with_capacity(frames.len());
        let mut detector_ms = 0.0;
        let mut tracker_ms = 0.0;

        // Detection frame.
        let det_base = latency::detector_base_ms(self.detector.family(), branch.detector)
            * self.latency_factor;
        detector_ms += device.charge(OpUnit::Gpu, det_base);
        let first_output = self
            .detector
            .detect(&frames[0], branch.detector, device.rng());
        per_frame.push(first_output.detections.clone());
        if let Some(tracker) = &mut self.tracker {
            tracker.reinit(&first_output.detections, &frames[0]);
        }

        // Remaining frames.
        for frame in &frames[1..] {
            match &mut self.tracker {
                Some(tracker) => {
                    let base = latency::tracker_base_ms(
                        tracker.kind(),
                        branch.downsample,
                        tracker.num_tracks(),
                    ) * self.latency_factor;
                    tracker_ms += device.charge(OpUnit::Cpu, base);
                    let boxes = tracker.step(frame, device.rng());
                    per_frame.push(boxes);
                }
                None => {
                    detector_ms += device.charge(OpUnit::Gpu, det_base);
                    let out = self.detector.detect(frame, branch.detector, device.rng());
                    per_frame.push(out.detections);
                }
            }
        }

        GofResult {
            per_frame,
            detector_ms,
            tracker_ms,
            first_frame_output: first_output,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::branch::TrackerKind;
    use lr_device::DeviceKind;
    use lr_video::{Video, VideoSpec};

    fn video() -> Video {
        Video::generate(VideoSpec {
            id: 0,
            seed: 81,
            width: 640.0,
            height: 480.0,
            num_frames: 64,
        })
    }

    #[test]
    fn tracked_gof_charges_one_detection() {
        let v = video();
        let mut dev = DeviceSim::new(DeviceKind::JetsonTx2, 0.0, 1);
        let mut mbek = Mbek::new(DetectorFamily::FasterRcnn);
        mbek.set_branch(Branch::tracked(448, 20, TrackerKind::Kcf, 8, 4));
        let r = mbek.run_gof(&v.frames[0..8], &mut dev);
        assert_eq!(r.per_frame.len(), 8);
        assert!(r.detector_ms > 0.0);
        assert!(r.tracker_ms > 0.0);
        // One detection charge: far below 8x the detector cost.
        assert!(
            r.detector_ms
                < 2.0
                    * latency::detector_base_ms(
                        DetectorFamily::FasterRcnn,
                        crate::branch::DetectorConfig::new(448, 20),
                    )
        );
    }

    #[test]
    fn detector_only_branch_detects_every_frame() {
        let v = video();
        let mut dev = DeviceSim::new(DeviceKind::JetsonTx2, 0.0, 2);
        let mut mbek = Mbek::new(DetectorFamily::FasterRcnn);
        mbek.set_branch(Branch::detector_only(224, 5));
        let r = mbek.run_gof(&v.frames[0..4], &mut dev);
        assert_eq!(r.per_frame.len(), 4);
        assert_eq!(r.tracker_ms, 0.0);
        let one = latency::detector_base_ms(
            DetectorFamily::FasterRcnn,
            crate::branch::DetectorConfig::new(224, 5),
        );
        assert!(r.detector_ms > 3.0 * one, "expected ~4 detector charges");
    }

    #[test]
    fn tracked_branch_is_cheaper_per_frame_than_detector_only() {
        let v = video();
        let mut dev = DeviceSim::new(DeviceKind::JetsonTx2, 0.0, 3);
        let mut mbek = Mbek::new(DetectorFamily::FasterRcnn);

        mbek.set_branch(Branch::detector_only(448, 100));
        let dense = mbek.run_gof(&v.frames[0..20], &mut dev);

        mbek.set_branch(Branch::tracked(448, 100, TrackerKind::MedianFlow, 20, 4));
        let tracked = mbek.run_gof(&v.frames[0..20], &mut dev);

        assert!(
            tracked.mean_frame_ms() < dense.mean_frame_ms() / 3.0,
            "tracked {} vs dense {}",
            tracked.mean_frame_ms(),
            dense.mean_frame_ms()
        );
    }

    #[test]
    fn device_clock_advances_by_kernel_time() {
        let v = video();
        let mut dev = DeviceSim::new(DeviceKind::JetsonTx2, 0.0, 4);
        let mut mbek = Mbek::new(DetectorFamily::FasterRcnn);
        mbek.set_branch(Branch::tracked(320, 5, TrackerKind::Csrt, 8, 1));
        let before = dev.now_ms();
        let r = mbek.run_gof(&v.frames[0..8], &mut dev);
        assert!((dev.now_ms() - before - r.kernel_ms()).abs() < 1e-6);
    }

    #[test]
    fn first_frame_output_has_proposals() {
        let v = video();
        let mut dev = DeviceSim::new(DeviceKind::JetsonTx2, 0.0, 5);
        let mut mbek = Mbek::new(DetectorFamily::FasterRcnn);
        mbek.set_branch(Branch::tracked(576, 100, TrackerKind::Kcf, 8, 4));
        let r = mbek.run_gof(&v.frames[0..8], &mut dev);
        assert!(!r.first_frame_output.proposal_logits.is_empty());
    }

    #[test]
    #[should_panic(expected = "no branch configured")]
    fn running_without_branch_panics() {
        let v = video();
        let mut dev = DeviceSim::new(DeviceKind::JetsonTx2, 0.0, 6);
        let mut mbek = Mbek::new(DetectorFamily::FasterRcnn);
        let _ = mbek.run_gof(&v.frames[0..4], &mut dev);
    }
}
