//! Behavioural object-tracker simulators.
//!
//! Real trackers (MedianFlow, KCF, CSRT, sparse optical flow) propagate
//! boxes between detector runs. Their failure modes are well understood:
//! positional drift that accumulates with object speed, occasional track
//! loss (the box stops following the object), and lag in scale adaptation.
//! The simulator reproduces those processes per tracker type; downsampled
//! tracker input (`ds`) is cheaper (see `latency.rs`) but drifts faster.
//!
//! The parameters are ordered so the classic cost/robustness trade-off
//! holds: CSRT is the most robust and most expensive, MedianFlow the
//! cheapest and most fragile, with KCF and optical flow in between (and
//! optical flow especially blur-sensitive).

use std::collections::HashMap;

use rand::Rng;

use lr_video::{BBox, FrameTruth, ObjectClass};

use crate::branch::TrackerKind;
use crate::detector::{randn, Detection};

/// Drift/loss parameters per tracker type.
#[derive(Debug, Clone, Copy)]
struct TrackerParams {
    /// Per-frame positional drift as a fraction of object speed.
    drift: f32,
    /// Base per-frame track-loss probability.
    base_loss: f32,
    /// Additional loss probability per unit of relative speed.
    speed_loss: f32,
    /// Pull-back factor re-locking the track onto the object.
    lock: f32,
    /// Loss inflation per downsampling step (CSRT depends on fine
    /// spatial features and suffers most from coarse input).
    ds_loss_coeff: f32,
}

impl TrackerKind {
    fn params(self) -> TrackerParams {
        match self {
            TrackerKind::MedianFlow => TrackerParams {
                drift: 0.50,
                base_loss: 0.005,
                speed_loss: 3.0,
                lock: 0.03,
                ds_loss_coeff: 0.12,
            },
            TrackerKind::Kcf => TrackerParams {
                drift: 0.32,
                base_loss: 0.004,
                speed_loss: 2.0,
                lock: 0.05,
                ds_loss_coeff: 0.15,
            },
            // CSRT: blur-robust (low speed sensitivity) but reliant on
            // fine spatial detail, so downsampling hurts it the most.
            TrackerKind::Csrt => TrackerParams {
                drift: 0.14,
                base_loss: 0.0015,
                speed_loss: 0.9,
                lock: 0.06,
                ds_loss_coeff: 0.45,
            },
            // Optical flow: near-perfect on slow, smooth content; flow
            // constancy collapses under large displacements.
            TrackerKind::OpticalFlow => TrackerParams {
                drift: 0.10,
                base_loss: 0.002,
                speed_loss: 4.5,
                lock: 0.05,
                ds_loss_coeff: 0.08,
            },
        }
    }
}

/// A live track.
#[derive(Debug, Clone)]
struct Track {
    gt_id: Option<u32>,
    bbox: BBox,
    class: ObjectClass,
    score: f32,
    /// Offset of the tracked box center from the true center.
    offset: (f32, f32),
    /// Multiplicative scale error (0 = perfect).
    scale_err: f32,
    /// True while the track still follows its object.
    locked: bool,
    /// Accumulated loss hazard; the track fails when it crosses
    /// `loss_threshold`.
    hazard: f32,
    /// Exponential survival threshold, drawn deterministically at
    /// (re)initialization so that branch labels are comparable across
    /// branches (common random numbers) instead of re-rolling track
    /// losses i.i.d. per frame.
    loss_threshold: f32,
}

/// A tracker simulator holding the current track set.
#[derive(Debug, Clone)]
pub struct TrackerSim {
    kind: TrackerKind,
    downsample: u32,
    tracks: Vec<Track>,
}

impl TrackerSim {
    /// Creates a tracker.
    ///
    /// # Panics
    ///
    /// Panics if `downsample` is zero.
    pub fn new(kind: TrackerKind, downsample: u32) -> Self {
        assert!(downsample >= 1, "downsample must be >= 1");
        Self {
            kind,
            downsample,
            tracks: Vec::new(),
        }
    }

    /// The tracker type.
    pub fn kind(&self) -> TrackerKind {
        self.kind
    }

    /// Number of live tracks.
    pub fn num_tracks(&self) -> usize {
        self.tracks.len()
    }

    /// Re-initializes the track set from fresh detections (called on every
    /// detection frame of a GoF). `truth` is the frame the detections came
    /// from; it seeds each track's deterministic survival threshold.
    pub fn reinit(&mut self, detections: &[Detection], truth: &FrameTruth) {
        self.tracks = detections
            .iter()
            .enumerate()
            .map(|(i, d)| {
                let u = survival_uniform(
                    truth.stream_id,
                    d.gt_id.unwrap_or(0xFFFF_0000 + i as u32),
                    truth.frame_index,
                );
                Track {
                    gt_id: d.gt_id,
                    bbox: d.bbox,
                    class: d.class,
                    score: d.score,
                    offset: (0.0, 0.0),
                    scale_err: 0.0,
                    locked: true,
                    hazard: 0.0,
                    // Exponential survival: lost when the accumulated
                    // hazard exceeds -ln(u).
                    loss_threshold: -(u.max(1e-6).ln()),
                }
            })
            .collect();
    }

    /// Propagates all tracks across one frame and returns the tracked
    /// boxes as detections.
    pub fn step(&mut self, truth: &FrameTruth, rng: &mut impl Rng) -> Vec<Detection> {
        let p = self.kind.params();
        let ds_drift = (self.downsample as f32).sqrt();
        let ds_loss = 1.0 + p.ds_loss_coeff * (self.downsample as f32 - 1.0);
        // lr-lint: allow(d2) — pure per-id lookup, never iterated.
        let by_id: HashMap<u32, &lr_video::GtObject> =
            truth.objects.iter().map(|o| (o.id, o)).collect();
        let short_side = truth.width.min(truth.height).max(1.0);

        let mut out = Vec::with_capacity(self.tracks.len());
        for track in &mut self.tracks {
            let gt = track.gt_id.and_then(|id| by_id.get(&id));
            match gt {
                Some(obj) if track.locked => {
                    let speed = obj.speed();
                    let speed_rel = speed / short_side;
                    // Track loss grows with speed and downsampling; the
                    // hazard accumulates against the track's survival
                    // threshold (deterministic per track).
                    let p_loss = ((p.base_loss + p.speed_loss * speed_rel) * ds_loss).min(0.5);
                    track.hazard += p_loss;
                    if track.hazard >= track.loss_threshold {
                        track.locked = false;
                    } else {
                        // Drift: a random positional error proportional to
                        // how far the object moved, minus the tracker's
                        // re-locking pull.
                        let drift_mag = p.drift * speed * ds_drift;
                        track.offset.0 = track.offset.0 * (1.0 - p.lock) + randn(rng) * drift_mag;
                        track.offset.1 = track.offset.1 * (1.0 - p.lock) + randn(rng) * drift_mag;
                        // Scale adaptation lags the true size.
                        track.scale_err = track.scale_err * (1.0 - p.lock)
                            + randn(rng) * p.drift * 0.05 * ds_drift;
                        let (cx, cy) = obj.bbox.center();
                        let s = (1.0 + track.scale_err).clamp(0.5, 2.0);
                        track.bbox = BBox::from_center(
                            cx + track.offset.0,
                            cy + track.offset.1,
                            obj.bbox.w * s,
                            obj.bbox.h * s,
                        )
                        .clamped(truth.width, truth.height);
                        track.score *= 0.997;
                    }
                }
                _ => {
                    // Object gone, track lost, or false-positive track:
                    // the box goes stale and its confidence decays.
                    track.locked = false;
                    track.score *= 0.93;
                }
            }
            if track.bbox.is_valid() && track.score > 0.02 {
                out.push(Detection {
                    bbox: track.bbox,
                    class: track.class,
                    score: track.score,
                    gt_id: track.gt_id,
                });
            }
        }
        out
    }
}

/// Deterministic uniform in `(0, 1]` for track survival (splitmix64).
fn survival_uniform(stream: u64, obj: u32, frame: u32) -> f32 {
    let mut z = stream
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(((obj as u64) << 32) | frame as u64)
        .wrapping_add(0x5175_7261_6C69_7665);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    ((z >> 40) as f32 + 1.0) / (1u64 << 24) as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::branch::DetectorConfig;
    use crate::detector::{DetectorFamily, DetectorSim};
    use lr_video::{Video, VideoSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn video() -> Video {
        Video::generate(VideoSpec {
            id: 0,
            seed: 71,
            width: 640.0,
            height: 480.0,
            num_frames: 200,
        })
    }

    /// Mean IoU between tracked boxes and their ground-truth objects after
    /// propagating `horizon` frames from a detection at frame `start`.
    fn mean_iou_after(kind: TrackerKind, ds: u32, horizon: usize, seed: u64) -> f32 {
        let v = video();
        let det = DetectorSim::new(DetectorFamily::FasterRcnn);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut total = 0.0;
        let mut count = 0usize;
        for start in (0..150).step_by(30) {
            let out = det.detect(&v.frames[start], DetectorConfig::new(576, 100), &mut rng);
            let mut tracker = TrackerSim::new(kind, ds);
            tracker.reinit(&out.detections, &v.frames[start]);
            let mut boxes = Vec::new();
            for f in &v.frames[start + 1..start + 1 + horizon] {
                boxes = tracker.step(f, &mut rng);
            }
            let truth = &v.frames[start + horizon];
            let by_id: HashMap<u32, &lr_video::GtObject> =
                truth.objects.iter().map(|o| (o.id, o)).collect();
            for b in &boxes {
                if let Some(obj) = b.gt_id.and_then(|id| by_id.get(&id)) {
                    total += b.bbox.iou(&obj.bbox);
                    count += 1;
                }
            }
        }
        total / count.max(1) as f32
    }

    #[test]
    fn csrt_tracks_better_than_medianflow() {
        let csrt = mean_iou_after(TrackerKind::Csrt, 1, 20, 1);
        let mf = mean_iou_after(TrackerKind::MedianFlow, 1, 20, 1);
        assert!(csrt > mf, "CSRT {csrt} vs MedianFlow {mf}");
    }

    #[test]
    fn tracking_quality_decays_with_horizon() {
        let short = mean_iou_after(TrackerKind::Kcf, 1, 3, 2);
        let long = mean_iou_after(TrackerKind::Kcf, 1, 40, 2);
        assert!(short > long, "short {short} vs long {long}");
    }

    #[test]
    fn downsampling_degrades_tracking() {
        let full = mean_iou_after(TrackerKind::Kcf, 1, 20, 3);
        let ds4 = mean_iou_after(TrackerKind::Kcf, 4, 20, 3);
        assert!(full > ds4, "full {full} vs ds4 {ds4}");
    }

    #[test]
    fn reinit_replaces_tracks() {
        let v = video();
        let det = DetectorSim::new(DetectorFamily::FasterRcnn);
        let mut rng = StdRng::seed_from_u64(4);
        let out = det.detect(&v.frames[0], DetectorConfig::new(576, 100), &mut rng);
        let mut tracker = TrackerSim::new(TrackerKind::Csrt, 1);
        tracker.reinit(&out.detections, &v.frames[0]);
        assert_eq!(tracker.num_tracks(), out.detections.len());
        tracker.reinit(&[], &v.frames[0]);
        assert_eq!(tracker.num_tracks(), 0);
    }

    #[test]
    fn stale_tracks_fade_out() {
        // A track whose object vanished decays until it stops reporting.
        let v = video();
        let det = DetectorSim::new(DetectorFamily::FasterRcnn);
        let mut rng = StdRng::seed_from_u64(5);
        let out = det.detect(&v.frames[0], DetectorConfig::new(576, 100), &mut rng);
        let mut tracker = TrackerSim::new(TrackerKind::Kcf, 1);
        tracker.reinit(&out.detections, &v.frames[0]);
        // Feed a frame with no objects: every track goes stale.
        let mut empty = v.frames[1].clone();
        empty.objects.clear();
        let mut last_len = usize::MAX;
        for _ in 0..120 {
            let boxes = tracker.step(&empty, &mut rng);
            assert!(boxes.len() <= last_len.max(1));
            last_len = boxes.len();
        }
        assert_eq!(last_len, 0, "stale tracks must eventually vanish");
    }

    #[test]
    fn tracked_boxes_stay_in_frame() {
        let v = video();
        let det = DetectorSim::new(DetectorFamily::FasterRcnn);
        let mut rng = StdRng::seed_from_u64(6);
        let out = det.detect(&v.frames[0], DetectorConfig::new(576, 100), &mut rng);
        let mut tracker = TrackerSim::new(TrackerKind::MedianFlow, 4);
        tracker.reinit(&out.detections, &v.frames[0]);
        for f in &v.frames[1..60] {
            for b in tracker.step(f, &mut rng) {
                assert!(b.bbox.x >= 0.0 && b.bbox.right() <= f.width + 1e-3);
                assert!(b.bbox.y >= 0.0 && b.bbox.bottom() <= f.height + 1e-3);
            }
        }
    }
}
