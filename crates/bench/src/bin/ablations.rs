//! Ablations of LiteReconfig's design choices (DESIGN.md §5):
//!
//! 1. the switching-cost term `C(b0, b)` in the optimizer (on/off);
//! 2. cost-benefit feature selection vs always-all-features;
//! 3. feasibility headroom (the conservatism that protects the P95);
//! 4. snippet length N for the accuracy labels.
//!
//! Usage: `cargo run --release -p lr-bench --bin ablations [small|paper]`

use std::sync::Arc;

use litereconfig::offline::{profile_videos, OfflineConfig};
use litereconfig::pipeline::{run_adaptive, RunConfig};
use litereconfig::scheduler::Scheduler;
use litereconfig::trainer::train_scheduler;
use litereconfig::Policy;
use lr_bench::{scale_from_args, ExperimentScale, Suite};
use lr_device::{DeviceKind, SwitchingCostModel};
use lr_eval::TextTable;
use lr_kernels::DetectorFamily;
use lr_video::{Dataset, Split};

fn main() {
    let scale = scale_from_args();
    let suite = Suite::build(scale);
    let slo = 33.3;
    let raster_size = suite.svc.raster_size();
    let pool = lr_pool::Pool::from_env();
    let fresh_svc = || litereconfig::FeatureService::with_raster_size(raster_size);

    // --- Ablation 1: switching-cost term on/off. -------------------------
    // Turning the term off is equivalent to a zero-cost switching model in
    // the *optimizer* (execution still pays real switching costs).
    let mut no_switch = (*suite.frcnn).clone();
    no_switch.switching = SwitchingCostModel {
        base_ms: 0.0,
        dst_coeff: 0.0,
        src_light_bonus_ms: 0.0,
        src_scale_ms: 1.0,
    };
    let no_switch = Arc::new(no_switch);

    let mut t1 = TextTable::new(&["Optimizer", "mAP (%)", "P95 (ms)", "Switches"]);
    let optimizer_arms = [
        ("with C(b0,b)", suite.frcnn.clone()),
        ("without C(b0,b)", no_switch),
    ];
    for row in pool.par_map_init(&optimizer_arms, fresh_svc, |svc, _, (name, trained)| {
        let cfg = RunConfig::clean(DeviceKind::JetsonTx2, 0.0, slo, 6000);
        let r = run_adaptive(
            &suite.val_videos,
            trained.clone(),
            Policy::CostBenefit,
            &cfg,
            svc,
        );
        vec![
            name.to_string(),
            format!("{:.1}", r.map_pct()),
            format!("{:.1}", r.latency.p95()),
            r.switches.len().to_string(),
        ]
    }) {
        t1.add_row_owned(row);
    }
    println!(
        "\nAblation 1: switching-cost term in the optimizer ({slo} ms, TX2)\n{}",
        t1.render()
    );

    // --- Ablation 2: feature selection policy. ---------------------------
    let mut t2 = TextTable::new(&[
        "Feature policy",
        "mAP (%)",
        "P95 (ms)",
        "Scheduler ms/frame",
    ]);
    let policies: [(&str, Policy); 3] = [
        ("cost-benefit (paper)", Policy::CostBenefit),
        ("none (MinCost)", Policy::MinCost),
        (
            "always-MobileNet (most expensive)",
            Policy::MaxContent(lr_features::FeatureKind::MobileNetV2),
        ),
    ];
    for row in pool.par_map_init(&policies, fresh_svc, |svc, i, (name, policy)| {
        let cfg = RunConfig::clean(DeviceKind::JetsonTx2, 0.0, slo, 6100 + i as u64);
        let r = run_adaptive(&suite.val_videos, suite.frcnn.clone(), *policy, &cfg, svc);
        vec![
            name.to_string(),
            format!("{:.1}", r.map_pct()),
            format!("{:.1}", r.latency.p95()),
            format!(
                "{:.2}",
                r.breakdown.scheduler_ms / r.breakdown.frames.max(1) as f64
            ),
        ]
    }) {
        t2.add_row_owned(row);
    }
    println!(
        "Ablation 2: feature selection policy ({slo} ms, TX2)\n{}",
        t2.render()
    );

    // --- Ablation 3: feasibility headroom. --------------------------------
    let mut t3 = TextTable::new(&["Headroom", "mAP (%)", "P95 (ms)", "Meets SLO"]);
    let headrooms = [1.0, 0.95, 0.88, 0.75];
    for row in pool.par_map_init(&headrooms, fresh_svc, |svc, i, &headroom| {
        let cfg = RunConfig::clean(DeviceKind::JetsonTx2, 0.0, slo, 6200 + i as u64);
        // Reimplement the inner loop with a custom scheduler headroom.
        let r = run_with_headroom(&suite, svc, headroom, &cfg);
        vec![
            format!("{headroom:.2}"),
            format!("{:.1}", r.0),
            format!("{:.1}", r.1),
            if r.1 <= slo { "yes" } else { "NO" }.to_string(),
        ]
    }) {
        t3.add_row_owned(row);
    }
    println!(
        "Ablation 3: feasibility headroom ({slo} ms, TX2)\n{}",
        t3.render()
    );

    // --- Ablation 4: snippet length N. ------------------------------------
    // Shorter snippets = finer-grained but noisier labels; very long
    // snippets tend toward a content-agnostic model (paper footnote 3).
    let mut t4 = TextTable::new(&["Snippet N", "Records", "Light-model regret @100ms"]);
    let dataset = Dataset::new(scale.dataset_config());
    let train_videos = dataset.videos(Split::TrainScheduler);
    let lens: &[usize] = if scale == ExperimentScale::Small {
        &[25, 50]
    } else {
        &[50, 100, 200]
    };
    for row in pool.par_map_init(lens, fresh_svc, |svc, _, &n| {
        let cfg = OfflineConfig {
            snippet_len: n,
            ..OfflineConfig::paper(scale.frcnn_catalog(), DetectorFamily::FasterRcnn)
        };
        let ds = profile_videos(&train_videos, &cfg, svc);
        let trained = train_scheduler(&ds, DetectorFamily::FasterRcnn, &scale.train_config());
        let light = &trained.accuracy[&lr_features::FeatureKind::Light];
        let mut regret = 0.0f32;
        for r in &ds.records {
            let pred = light.predict(&r.light, None);
            let mut best = (0usize, f32::NEG_INFINITY);
            for (i, &p) in pred.iter().enumerate() {
                if r.branch_det_ms[i] + r.branch_trk_ms[i] <= 100.0 && p > best.1 {
                    best = (i, p);
                }
            }
            regret += ds.oracle_map_under_budget(r, 100.0) - r.branch_map[best.0];
        }
        vec![
            n.to_string(),
            ds.len().to_string(),
            format!("{:.3}", regret / ds.len().max(1) as f32),
        ]
    }) {
        t4.add_row_owned(row);
    }
    println!(
        "Ablation 4: snippet length N (offline label granularity)\n{}",
        t4.render()
    );

    // --- Ablation 5: optimizer (paper's SGD+momentum vs Adam). -----------
    // Retrains the light accuracy model with both optimizers on identical
    // data/architecture and compares the fit.
    {
        use lr_nn::adam::{Adam, AdamMlp};
        use lr_nn::{Matrix, Mlp, MlpConfig, Sgd};
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let ds = &suite.frcnn_dataset;
        let n = ds.len();
        let out_dim = ds.catalog.len();
        let mut x = Vec::new();
        let mut y = Vec::new();
        for r in &ds.records {
            x.extend_from_slice(&r.light);
            y.extend_from_slice(&r.branch_map);
        }
        let x = Matrix::from_vec(n, 4, x);
        let y = Matrix::from_vec(n, out_dim, y);
        let cfg = MlpConfig {
            hidden_activation: lr_nn::layers::Activation::LeakyRelu,
            ..MlpConfig::regression(4, &[96, 96, 96, 96], out_dim)
        };

        let mut rng = StdRng::seed_from_u64(77);
        let mut sgd_net = Mlp::new(&cfg, &mut rng);
        let sgd_hist = sgd_net.fit(
            &x,
            &y,
            Sgd::paper(0.004, 1e-4).with_grad_clip(2.0),
            150,
            32,
            &mut rng,
        );
        let mut rng = StdRng::seed_from_u64(77);
        let mut adam_net = AdamMlp::new(&cfg, &mut rng);
        let adam_hist = adam_net.fit(&x, &y, Adam::default(), 150, 32, &mut rng);
        println!(
            "Ablation 5: optimizer — SGD+momentum (paper) final MSE {:.4}, Adam final MSE {:.4}",
            sgd_hist.last().copied().unwrap_or(f32::NAN),
            adam_hist.last().copied().unwrap_or(f32::NAN)
        );
    }
}

/// Runs the full policy with a custom scheduler headroom; returns
/// (mAP %, P95 ms). This duplicates a small part of `run_adaptive` because
/// headroom is a scheduler-construction parameter. The feature service is
/// passed separately so concurrent arms can each use their own cache.
fn run_with_headroom(
    suite: &Suite,
    svc: &mut litereconfig::FeatureService,
    headroom: f64,
    cfg: &RunConfig,
) -> (f64, f64) {
    use litereconfig::offline::{to_gt_boxes, to_pred_boxes};
    use lr_device::switching::OnlineSwitchSampler;
    use lr_device::DeviceSim;
    use lr_eval::{LatencyStats, MapAccumulator};

    let trained = suite.frcnn.clone();
    let mut device = DeviceSim::new(cfg.device, cfg.contention_pct, cfg.seed);
    let mut mbek = lr_kernels::Mbek::new(trained.family);
    let mut scheduler =
        Scheduler::new(trained.clone(), Policy::CostBenefit, cfg.slo_ms).with_headroom(headroom);
    let mut sampler = OnlineSwitchSampler::new(trained.switching);
    for b in &trained.catalog {
        sampler.preheat(b.key());
    }
    let mut acc = MapAccumulator::new();
    let mut lat = LatencyStats::new();
    for video in &suite.val_videos {
        scheduler.reset_stream();
        let mut boxes: Vec<lr_video::BBox> = Vec::new();
        let mut t = 0usize;
        while t < video.len() {
            let before = device.now_ms();
            let d = scheduler.decide(video, t, &boxes, svc, &mut device);
            let sched_ms = device.now_ms() - before;
            let mut switch_ms = 0.0;
            if scheduler.current_branch() != Some(d.branch_idx) || mbek.branch().is_none() {
                let src = scheduler
                    .current_branch()
                    .map_or(80.0, |i| trained.det_inference_ms[i]);
                let cost = sampler.sample_ms(
                    src,
                    trained.det_inference_ms[d.branch_idx],
                    trained.catalog[d.branch_idx].key(),
                    device.rng(),
                );
                switch_ms = device.charge_fixed(cost * device.profile().gpu_speed_factor);
                mbek.set_branch(trained.catalog[d.branch_idx]);
                scheduler.commit_branch(d.branch_idx);
            }
            let branch = trained.catalog[d.branch_idx];
            let end = (t + branch.gof_size.max(1) as usize).min(video.len());
            let frames = &video.frames[t..end];
            let light = svc.light(video, t, &boxes);
            let result = mbek.run_gof(frames, &mut device);
            let per_frame = (sched_ms + switch_ms + result.kernel_ms()) / frames.len() as f64;
            for (truth, dets) in frames.iter().zip(result.per_frame.iter()) {
                acc.add_frame(&to_gt_boxes(truth), &to_pred_boxes(dets));
                lat.record(per_frame);
            }
            let n = frames.len() as f64;
            scheduler.observe_latency(
                d.branch_idx,
                &light,
                result.detector_ms / n,
                result.tracker_ms / n,
            );
            scheduler.record_detection(t, result.first_frame_output.proposal_logits.clone());
            boxes = result
                .first_frame_output
                .detections
                .iter()
                .map(|x| x.bbox)
                .collect();
            t = end;
        }
    }
    (acc.finalize(0.5).map * 100.0, lat.p95())
}
