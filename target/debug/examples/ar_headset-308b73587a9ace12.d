/root/repo/target/debug/examples/ar_headset-308b73587a9ace12.d: examples/ar_headset.rs Cargo.toml

/root/repo/target/debug/examples/libar_headset-308b73587a9ace12.rmeta: examples/ar_headset.rs Cargo.toml

examples/ar_headset.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
