/root/repo/target/release/deps/lr_video-d9bfbe92d9045643.d: crates/video/src/lib.rs crates/video/src/classes.rs crates/video/src/dataset.rs crates/video/src/geometry.rs crates/video/src/object.rs crates/video/src/raster.rs crates/video/src/regime.rs crates/video/src/scene.rs crates/video/src/trace.rs crates/video/src/video.rs

/root/repo/target/release/deps/lr_video-d9bfbe92d9045643: crates/video/src/lib.rs crates/video/src/classes.rs crates/video/src/dataset.rs crates/video/src/geometry.rs crates/video/src/object.rs crates/video/src/raster.rs crates/video/src/regime.rs crates/video/src/scene.rs crates/video/src/trace.rs crates/video/src/video.rs

crates/video/src/lib.rs:
crates/video/src/classes.rs:
crates/video/src/dataset.rs:
crates/video/src/geometry.rs:
crates/video/src/object.rs:
crates/video/src/raster.rs:
crates/video/src/regime.rs:
crates/video/src/scene.rs:
crates/video/src/trace.rs:
crates/video/src/video.rs:
