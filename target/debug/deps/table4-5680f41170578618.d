/root/repo/target/debug/deps/table4-5680f41170578618.d: crates/bench/src/bin/table4.rs

/root/repo/target/debug/deps/table4-5680f41170578618: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
