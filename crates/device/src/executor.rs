//! The device simulator: charges op latencies against the virtual clock.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::clock::VirtualClock;
use crate::contention::ContentionGenerator;
use crate::fault::{FaultEvent, FaultPlan, OpError};
use crate::noise::LatencyNoise;
use crate::profile::{DeviceKind, DeviceProfile};

/// Which execution unit an op runs on. GPU ops are subject to GPU
/// contention; CPU ops are not.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpUnit {
    /// Runs on the mobile GPU (detectors, CNN feature extractors, the
    /// accuracy-prediction networks).
    Gpu,
    /// Runs on the CPU complex (trackers, HoC/HOG extraction, light
    /// features, the optimization solve).
    Cpu,
}

/// Construction errors for [`DeviceSim`].
#[derive(Debug, Clone, PartialEq)]
pub enum DeviceError {
    /// The requested static contention level is outside `[0, 99]` percent.
    ContentionOutOfRange(f64),
}

impl std::fmt::Display for DeviceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeviceError::ContentionOutOfRange(pct) => {
                write!(f, "contention level {pct}% outside [0, 99]")
            }
        }
    }
}

impl std::error::Error for DeviceError {}

/// A simulated device: profile + contention + noise + clock.
///
/// Contention comes from one of two sources:
///
/// - the paper's **static** contention generator (`contention_pct`), an
///   exogenous knob used by the single-stream experiments; or
/// - an **external** slowdown factor supplied by a serving layer (see the
///   `lr-serve` crate), derived endogenously from the measured GPU
///   occupancy of co-scheduled streams. While set, it overrides the
///   static generator for GPU ops.
///
/// The simulator also keeps per-unit **busy accounting**: cumulative GPU
/// *demand* (device cycles requested, excluding any contention stretch)
/// and CPU busy time. The serving layer uses the demand counter to
/// measure occupancy, which closes the contention feedback loop.
///
/// # Examples
///
/// ```
/// use lr_device::{DeviceKind, DeviceSim, OpUnit};
///
/// let mut dev = DeviceSim::new(DeviceKind::JetsonTx2, 0.0, 7);
/// let charged = dev.charge(OpUnit::Gpu, 30.0);
/// assert!(charged > 0.0);
/// assert!((dev.now_ms() - charged).abs() < 1e-9);
/// assert!((dev.gpu_demand_ms() - charged).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct DeviceSim {
    profile: DeviceProfile,
    contention: ContentionGenerator,
    /// Endogenous GPU slowdown factor supplied by a serving layer;
    /// overrides the static generator while set.
    external_gpu_slowdown: Option<f64>,
    noise: LatencyNoise,
    clock: VirtualClock,
    rng: StdRng,
    gpu_demand_ms: f64,
    cpu_busy_ms: f64,
    /// Deterministic fault schedule consulted by [`DeviceSim::run_op`].
    /// `None` (the default) means no faults: `run_op` degenerates to
    /// [`DeviceSim::charge`] with byte-identical results — the plan
    /// draws from its own counter hash, never from `rng`, so attaching
    /// or removing it cannot perturb the latency-noise stream.
    fault_plan: Option<FaultPlan>,
    faults_injected: usize,
    stalls_injected: usize,
}

impl DeviceSim {
    /// Creates a device simulator, validating the contention level.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::ContentionOutOfRange`] if `contention_pct`
    /// is outside `[0, 99]` (or not finite).
    pub fn try_new(kind: DeviceKind, contention_pct: f64, seed: u64) -> Result<Self, DeviceError> {
        let contention = ContentionGenerator::try_new(contention_pct)
            .map_err(|_| DeviceError::ContentionOutOfRange(contention_pct))?;
        Ok(Self {
            profile: kind.profile(),
            contention,
            external_gpu_slowdown: None,
            noise: LatencyNoise::default(),
            clock: VirtualClock::new(),
            rng: StdRng::seed_from_u64(seed ^ 0x0D3B_1CE5),
            gpu_demand_ms: 0.0,
            cpu_busy_ms: 0.0,
            fault_plan: None,
            faults_injected: 0,
            stalls_injected: 0,
        })
    }

    /// Creates a device simulator.
    ///
    /// # Panics
    ///
    /// Panics if `contention_pct` is outside `[0, 99]`. Use
    /// [`DeviceSim::try_new`] for a non-panicking constructor.
    pub fn new(kind: DeviceKind, contention_pct: f64, seed: u64) -> Self {
        Self::try_new(kind, contention_pct, seed)
            .unwrap_or_else(|e| panic!("DeviceSim::new: {e} (use try_new to handle this)"))
    }

    /// Replaces the latency noise model (tests use [`LatencyNoise::none`]).
    pub fn with_noise(mut self, noise: LatencyNoise) -> Self {
        self.noise = noise;
        self
    }

    /// Attaches a deterministic fault schedule; [`DeviceSim::run_op`]
    /// consults it for every GPU op.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.set_fault_plan(Some(plan));
        self
    }

    /// Installs or removes the fault schedule mid-run.
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.fault_plan = plan;
    }

    /// The installed fault schedule, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault_plan.as_ref()
    }

    /// Transient op failures injected so far.
    pub fn faults_injected(&self) -> usize {
        self.faults_injected
    }

    /// Stall spikes injected so far (absorbed: callers only saw a slow
    /// op).
    pub fn stalls_injected(&self) -> usize {
        self.stalls_injected
    }

    /// The device profile.
    pub fn profile(&self) -> &DeviceProfile {
        &self.profile
    }

    /// Current GPU contention level in percent (the static generator's;
    /// an external slowdown is reported by
    /// [`DeviceSim::external_gpu_slowdown`]).
    pub fn contention_pct(&self) -> f64 {
        self.contention.gpu_level_pct()
    }

    /// Changes the contention level mid-run (the paper's CG is toggled
    /// between experiments).
    ///
    /// # Panics
    ///
    /// Panics if `pct` is outside `[0, 99]`.
    pub fn set_contention_pct(&mut self, pct: f64) {
        self.contention = ContentionGenerator::new(pct);
    }

    /// Supplies an endogenous GPU slowdown factor (≥ 1) measured by a
    /// serving layer from co-scheduled streams' GPU occupancy. While set
    /// it replaces the static contention generator for GPU ops.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not finite or below 1.
    pub fn set_external_gpu_slowdown(&mut self, factor: f64) {
        assert!(
            factor.is_finite() && factor >= 1.0,
            "external GPU slowdown {factor} must be finite and >= 1"
        );
        self.external_gpu_slowdown = Some(factor);
    }

    /// The currently supplied external GPU slowdown factor, if any.
    pub fn external_gpu_slowdown(&self) -> Option<f64> {
        self.external_gpu_slowdown
    }

    /// Removes the external slowdown; the static generator applies again.
    pub fn clear_external_gpu_slowdown(&mut self) {
        self.external_gpu_slowdown = None;
    }

    /// Current virtual time in milliseconds.
    pub fn now_ms(&self) -> f64 {
        self.clock.now_ms()
    }

    /// Resets the virtual clock (not the RNG) to zero.
    pub fn reset_clock(&mut self) {
        self.clock.reset();
    }

    /// Advances the clock to `ms` without charging any work — the
    /// device sitting idle (e.g. a paced stream waiting for its next
    /// frame to arrive). A time already in the past is a no-op.
    ///
    /// # Panics
    ///
    /// Panics if `ms` is non-finite.
    pub fn idle_until(&mut self, ms: f64) {
        assert!(ms.is_finite(), "invalid idle target: {ms}");
        let gap = ms - self.clock.now_ms();
        if gap > 0.0 {
            self.clock.advance(gap);
        }
    }

    /// Cumulative GPU cycles demanded, in milliseconds of device time
    /// *excluding* contention stretch: how long the GPU itself worked for
    /// this simulator, regardless of how long the op took wall-clock
    /// under time-sharing. Includes noise (real kernels jitter).
    pub fn gpu_demand_ms(&self) -> f64 {
        self.gpu_demand_ms
    }

    /// Cumulative CPU busy milliseconds (never contention-stretched).
    pub fn cpu_busy_ms(&self) -> f64 {
        self.cpu_busy_ms
    }

    /// The instantaneous GPU contention factor for one op.
    fn sample_contention(&mut self) -> f64 {
        match self.external_gpu_slowdown {
            // Endogenous signal: jitter around the supplied factor the
            // same way the CG's bursts jitter around its mean.
            Some(f) => 1.0 + (f - 1.0) * self.rng.gen_range(0.7..1.3),
            None => self.contention.sample_gpu_slowdown(&mut self.rng),
        }
    }

    /// The mean GPU contention factor currently in effect.
    fn mean_contention(&self) -> f64 {
        match self.external_gpu_slowdown {
            Some(f) => f,
            None => self.contention.mean_gpu_slowdown(),
        }
    }

    /// Charges an op with the given TX2-calibrated base latency; advances
    /// the clock and returns the actual charged milliseconds.
    ///
    /// # Panics
    ///
    /// Panics if `base_tx2_ms` is negative or non-finite.
    pub fn charge(&mut self, unit: OpUnit, base_tx2_ms: f64) -> f64 {
        self.charge_inner(unit, base_tx2_ms, 1.0, 1.0)
    }

    /// The shared charging path: samples contention and noise (in that
    /// order, so `run_op` with an idle fault plan consumes exactly the
    /// RNG draws `charge` does), stretches *demand* by `demand_factor`
    /// (throttle/stall episodes: the silicon genuinely works longer) and
    /// truncates the charge to `completed` of the op (a transiently
    /// failed op burns only its waste fraction).
    fn charge_inner(
        &mut self,
        unit: OpUnit,
        base_tx2_ms: f64,
        demand_factor: f64,
        completed: f64,
    ) -> f64 {
        assert!(
            base_tx2_ms.is_finite() && base_tx2_ms >= 0.0,
            "invalid base latency: {base_tx2_ms}"
        );
        let device_factor = match unit {
            OpUnit::Gpu => self.profile.gpu_speed_factor,
            OpUnit::Cpu => self.profile.cpu_speed_factor,
        };
        let contention_factor = match unit {
            OpUnit::Gpu => self.sample_contention(),
            OpUnit::Cpu => 1.0,
        };
        let noise = self.noise.sample(&mut self.rng);
        let demand = base_tx2_ms * device_factor * noise * demand_factor * completed;
        let ms = demand * contention_factor;
        match unit {
            OpUnit::Gpu => self.gpu_demand_ms += demand,
            OpUnit::Cpu => self.cpu_busy_ms += demand,
        }
        self.clock.advance(ms);
        ms
    }

    /// Runs an op under the installed fault schedule: charges like
    /// [`DeviceSim::charge`] and returns the charged milliseconds, or a
    /// typed [`OpError`] when the plan injects a transient failure (the
    /// wasted time is already on the clock). Without a plan — and for
    /// CPU ops, which the GPU-side fault model never touches — this is
    /// exactly `charge`, bit for bit.
    ///
    /// # Panics
    ///
    /// Panics if `base_tx2_ms` is negative or non-finite.
    pub fn run_op(&mut self, unit: OpUnit, base_tx2_ms: f64) -> Result<f64, OpError> {
        let Some(plan) = &mut self.fault_plan else {
            return Ok(self.charge(unit, base_tx2_ms));
        };
        if unit == OpUnit::Cpu {
            return Ok(self.charge(unit, base_tx2_ms));
        }
        let throttle = plan.throttle_factor_at(self.clock.now_ms());
        let event = plan.next_gpu_event();
        let cfg = *plan.config();
        match event {
            FaultEvent::None => Ok(self.charge_inner(unit, base_tx2_ms, throttle, 1.0)),
            FaultEvent::Stall => {
                self.stalls_injected += 1;
                Ok(self.charge_inner(unit, base_tx2_ms, throttle * cfg.stall_factor, 1.0))
            }
            FaultEvent::Transient => {
                self.faults_injected += 1;
                let wasted_ms =
                    self.charge_inner(unit, base_tx2_ms, throttle, cfg.failure_waste_fraction);
                Err(OpError::Transient { wasted_ms })
            }
        }
    }

    /// Advances the clock by exactly `ms` (no device, contention, or
    /// noise factors). Used for costs that are already fully sampled
    /// (switching outliers) or that do not scale with the silicon
    /// (interpreter overhead of a legacy pipeline). Not attributed to
    /// either unit's busy accounting.
    ///
    /// # Panics
    ///
    /// Panics if `ms` is negative or non-finite.
    pub fn charge_fixed(&mut self, ms: f64) -> f64 {
        self.clock.advance(ms);
        ms
    }

    /// Like [`DeviceSim::charge_fixed`] but attributes the time to a
    /// unit's busy accounting (a branch switch occupies the GPU while the
    /// new model loads and warms up).
    ///
    /// # Panics
    ///
    /// Panics if `ms` is negative or non-finite.
    pub fn charge_fixed_on(&mut self, unit: OpUnit, ms: f64) -> f64 {
        match unit {
            OpUnit::Gpu => self.gpu_demand_ms += ms,
            OpUnit::Cpu => self.cpu_busy_ms += ms,
        }
        self.clock.advance(ms);
        ms
    }

    /// The *expected* latency of an op on this device at the current mean
    /// contention, without noise. Used when profiling offline tables, not
    /// by the online scheduler (which must learn its latency model from
    /// observed data).
    pub fn expected_ms(&self, unit: OpUnit, base_tx2_ms: f64) -> f64 {
        let device_factor = match unit {
            OpUnit::Gpu => self.profile.gpu_speed_factor,
            OpUnit::Cpu => self.profile.cpu_speed_factor,
        };
        let contention_factor = match unit {
            OpUnit::Gpu => self.mean_contention(),
            OpUnit::Cpu => 1.0,
        };
        base_tx2_ms * device_factor * contention_factor
    }

    /// Access to the device RNG for co-located stochastic processes
    /// (detection noise shares the device's randomness stream so whole
    /// experiment runs stay reproducible from one seed).
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_advances_clock_by_return_value() {
        let mut dev = DeviceSim::new(DeviceKind::JetsonTx2, 0.0, 1);
        let a = dev.charge(OpUnit::Gpu, 10.0);
        let b = dev.charge(OpUnit::Cpu, 5.0);
        assert!((dev.now_ms() - (a + b)).abs() < 1e-9);
    }

    #[test]
    fn idle_until_advances_without_charging() {
        let mut dev = DeviceSim::new(DeviceKind::JetsonTx2, 0.0, 1);
        dev.idle_until(125.0);
        assert!((dev.now_ms() - 125.0).abs() < 1e-9);
        assert_eq!(dev.gpu_demand_ms(), 0.0);
        assert_eq!(dev.cpu_busy_ms(), 0.0);
        // Idling to the past never rewinds the clock.
        dev.idle_until(50.0);
        assert!((dev.now_ms() - 125.0).abs() < 1e-9);
    }

    #[test]
    fn noiseless_tx2_charge_equals_base() {
        let mut dev =
            DeviceSim::new(DeviceKind::JetsonTx2, 0.0, 1).with_noise(LatencyNoise::none());
        assert_eq!(dev.charge(OpUnit::Gpu, 25.0), 25.0);
        assert_eq!(dev.charge(OpUnit::Cpu, 25.0), 25.0);
    }

    #[test]
    fn xavier_is_faster_than_tx2() {
        let mut tx2 =
            DeviceSim::new(DeviceKind::JetsonTx2, 0.0, 1).with_noise(LatencyNoise::none());
        let mut xv = DeviceSim::new(DeviceKind::AgxXavier, 0.0, 1).with_noise(LatencyNoise::none());
        assert!(xv.charge(OpUnit::Gpu, 30.0) < tx2.charge(OpUnit::Gpu, 30.0));
    }

    #[test]
    fn contention_slows_gpu_but_not_cpu() {
        let mut dev =
            DeviceSim::new(DeviceKind::JetsonTx2, 50.0, 2).with_noise(LatencyNoise::none());
        let n = 2000;
        let gpu_mean: f64 = (0..n).map(|_| dev.charge(OpUnit::Gpu, 10.0)).sum::<f64>() / n as f64;
        let cpu_mean: f64 = (0..n).map(|_| dev.charge(OpUnit::Cpu, 10.0)).sum::<f64>() / n as f64;
        assert!(gpu_mean > 15.0, "gpu mean {gpu_mean} not slowed");
        assert!((cpu_mean - 10.0).abs() < 1e-9, "cpu affected by contention");
    }

    #[test]
    fn expected_ms_reflects_mean_contention() {
        let dev = DeviceSim::new(DeviceKind::JetsonTx2, 50.0, 3);
        assert!((dev.expected_ms(OpUnit::Gpu, 10.0) - 20.0).abs() < 1e-9);
        assert!((dev.expected_ms(OpUnit::Cpu, 10.0) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn same_seed_same_charges() {
        let run = || {
            let mut dev = DeviceSim::new(DeviceKind::JetsonTx2, 30.0, 9);
            (0..50)
                .map(|_| dev.charge(OpUnit::Gpu, 12.0))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn reset_clock_keeps_rng_sequence() {
        let mut dev = DeviceSim::new(DeviceKind::JetsonTx2, 0.0, 4);
        let _ = dev.charge(OpUnit::Gpu, 10.0);
        dev.reset_clock();
        assert_eq!(dev.now_ms(), 0.0);
    }

    #[test]
    fn try_new_rejects_out_of_range_contention() {
        assert_eq!(
            DeviceSim::try_new(DeviceKind::JetsonTx2, 120.0, 1).unwrap_err(),
            DeviceError::ContentionOutOfRange(120.0)
        );
        assert_eq!(
            DeviceSim::try_new(DeviceKind::JetsonTx2, -1.0, 1).unwrap_err(),
            DeviceError::ContentionOutOfRange(-1.0)
        );
        assert!(DeviceSim::try_new(DeviceKind::JetsonTx2, 99.0, 1).is_ok());
    }

    #[test]
    #[should_panic(expected = "use try_new")]
    fn new_panics_with_clear_message() {
        let _ = DeviceSim::new(DeviceKind::JetsonTx2, 250.0, 1);
    }

    #[test]
    fn external_slowdown_overrides_static_contention() {
        let mut dev =
            DeviceSim::new(DeviceKind::JetsonTx2, 0.0, 5).with_noise(LatencyNoise::none());
        dev.set_external_gpu_slowdown(3.0);
        let n = 2000;
        let mean: f64 = (0..n).map(|_| dev.charge(OpUnit::Gpu, 10.0)).sum::<f64>() / n as f64;
        assert!(
            (25.0..35.0).contains(&mean),
            "mean {mean} far from 3x slowdown"
        );
        // CPU unaffected.
        assert_eq!(dev.charge(OpUnit::Cpu, 10.0), 10.0);
        // Expected-latency queries see the external factor too.
        assert!((dev.expected_ms(OpUnit::Gpu, 10.0) - 30.0).abs() < 1e-9);
        dev.clear_external_gpu_slowdown();
        assert_eq!(dev.charge(OpUnit::Gpu, 10.0), 10.0);
    }

    #[test]
    fn run_op_without_plan_is_charge_bit_for_bit() {
        let mut a = DeviceSim::new(DeviceKind::JetsonTx2, 30.0, 11);
        let mut b = DeviceSim::new(DeviceKind::JetsonTx2, 30.0, 11);
        for i in 0..200 {
            let unit = if i % 3 == 0 { OpUnit::Cpu } else { OpUnit::Gpu };
            let x = a.charge(unit, 12.0);
            let y = b.run_op(unit, 12.0).expect("no plan, no faults");
            assert_eq!(x.to_bits(), y.to_bits(), "op {i}");
        }
        assert_eq!(a.now_ms().to_bits(), b.now_ms().to_bits());
        assert_eq!(b.faults_injected(), 0);
    }

    #[test]
    fn idle_fault_plan_leaves_charges_bit_identical() {
        // A plan with zero rates and a throttle horizon of one window far
        // in the future must not perturb the noise stream.
        let mut cfg = crate::fault::FaultConfig::moderate(9);
        cfg.transient_rate = 0.0;
        cfg.stall_rate = 0.0;
        cfg.throttle_period_ms = 1e12;
        cfg.horizon_ms = 1e12;
        let mut a = DeviceSim::new(DeviceKind::JetsonTx2, 30.0, 12);
        let mut b = DeviceSim::new(DeviceKind::JetsonTx2, 30.0, 12)
            .with_fault_plan(crate::fault::FaultPlan::generate(cfg));
        for _ in 0..200 {
            let x = a.charge(OpUnit::Gpu, 12.0);
            let y = b.run_op(OpUnit::Gpu, 12.0).expect("rates are zero");
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn certain_transient_rate_fails_every_gpu_op() {
        let mut cfg = crate::fault::FaultConfig::moderate(5);
        cfg.transient_rate = 1.0;
        cfg.stall_rate = 0.0;
        let mut dev = DeviceSim::new(DeviceKind::JetsonTx2, 0.0, 13)
            .with_noise(LatencyNoise::none())
            .with_fault_plan(crate::fault::FaultPlan::generate(cfg));
        for _ in 0..10 {
            let err = dev.run_op(OpUnit::Gpu, 10.0).unwrap_err();
            let crate::fault::OpError::Transient { wasted_ms } = err;
            // Half the op's latency is burned (waste fraction 0.5),
            // possibly throttled.
            assert!(wasted_ms >= 5.0 - 1e-9, "wasted {wasted_ms}");
        }
        assert_eq!(dev.faults_injected(), 10);
        // CPU ops never fault.
        assert!(dev.run_op(OpUnit::Cpu, 10.0).is_ok());
        assert_eq!(dev.faults_injected(), 10);
    }

    #[test]
    fn throttle_window_stretches_gpu_ops() {
        let mut cfg = crate::fault::FaultConfig::moderate(6);
        cfg.transient_rate = 0.0;
        cfg.stall_rate = 0.0;
        cfg.throttle_factor = 3.0;
        let plan = crate::fault::FaultPlan::generate(cfg);
        // Find the first throttle window by probing the factor.
        let start = (0..4_000_000)
            .map(|i| i as f64 * 0.25)
            .find(|&t| plan.throttle_factor_at(t) > 1.0)
            .expect("a window exists");
        let mut dev = DeviceSim::new(DeviceKind::JetsonTx2, 0.0, 14)
            .with_noise(LatencyNoise::none())
            .with_fault_plan(plan);
        let clean = dev.run_op(OpUnit::Gpu, 10.0).expect("zero rates");
        assert_eq!(clean, 10.0);
        dev.idle_until(start + 1.0);
        let throttled = dev.run_op(OpUnit::Gpu, 10.0).expect("zero rates");
        assert_eq!(throttled, 30.0, "3x throttle inside the window");
    }

    #[test]
    fn faulted_device_is_deterministic() {
        let run = || {
            let cfg = crate::fault::FaultConfig::moderate(21);
            let mut dev = DeviceSim::new(DeviceKind::JetsonTx2, 20.0, 15)
                .with_fault_plan(crate::fault::FaultPlan::generate(cfg));
            let mut out = Vec::new();
            for _ in 0..300 {
                out.push(dev.run_op(OpUnit::Gpu, 8.0).map_err(|e| format!("{e}")));
            }
            (out, dev.now_ms().to_bits(), dev.faults_injected())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn demand_accounting_excludes_contention_stretch() {
        let mut dev =
            DeviceSim::new(DeviceKind::JetsonTx2, 0.0, 6).with_noise(LatencyNoise::none());
        dev.set_external_gpu_slowdown(4.0);
        let charged = dev.charge(OpUnit::Gpu, 10.0);
        assert!(charged > 20.0, "contention must stretch the charge");
        // ...but the demand is the un-stretched 10 ms of GPU cycles.
        assert!((dev.gpu_demand_ms() - 10.0).abs() < 1e-9);
        dev.charge(OpUnit::Cpu, 7.0);
        assert!((dev.cpu_busy_ms() - 7.0).abs() < 1e-9);
        dev.charge_fixed_on(OpUnit::Gpu, 2.5);
        assert!((dev.gpu_demand_ms() - 12.5).abs() < 1e-9);
        // Unattributed fixed charges advance the clock only.
        let demand_before = dev.gpu_demand_ms();
        dev.charge_fixed(5.0);
        assert_eq!(dev.gpu_demand_ms(), demand_before);
    }
}
