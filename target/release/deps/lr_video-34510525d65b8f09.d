/root/repo/target/release/deps/lr_video-34510525d65b8f09.d: crates/video/src/lib.rs crates/video/src/classes.rs crates/video/src/dataset.rs crates/video/src/geometry.rs crates/video/src/object.rs crates/video/src/raster.rs crates/video/src/regime.rs crates/video/src/scene.rs crates/video/src/trace.rs crates/video/src/video.rs

/root/repo/target/release/deps/liblr_video-34510525d65b8f09.rlib: crates/video/src/lib.rs crates/video/src/classes.rs crates/video/src/dataset.rs crates/video/src/geometry.rs crates/video/src/object.rs crates/video/src/raster.rs crates/video/src/regime.rs crates/video/src/scene.rs crates/video/src/trace.rs crates/video/src/video.rs

/root/repo/target/release/deps/liblr_video-34510525d65b8f09.rmeta: crates/video/src/lib.rs crates/video/src/classes.rs crates/video/src/dataset.rs crates/video/src/geometry.rs crates/video/src/object.rs crates/video/src/raster.rs crates/video/src/regime.rs crates/video/src/scene.rs crates/video/src/trace.rs crates/video/src/video.rs

crates/video/src/lib.rs:
crates/video/src/classes.rs:
crates/video/src/dataset.rs:
crates/video/src/geometry.rs:
crates/video/src/object.rs:
crates/video/src/raster.rs:
crates/video/src/regime.rs:
crates/video/src/scene.rs:
crates/video/src/trace.rs:
crates/video/src/video.rs:
