/root/repo/target/release/deps/table1-7c93be8f0bfb9d4c.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-7c93be8f0bfb9d4c: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
