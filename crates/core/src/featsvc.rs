//! Runtime feature extraction with per-frame raster caching.

use std::collections::BTreeMap;

use lr_features::{cpop, hoc, hog, DeepExtractors, FeatureKind, LightFeatures};
use lr_video::raster::{rasterize, DEFAULT_RASTER_SIZE};
use lr_video::{BBox, RgbFrame, Video};

/// What a cache entry holds for a `(video, frame, kind)` key.
///
/// Rasters and heavy feature vectors are pure functions of the video and
/// frame (CPoP is not — it depends on caller-supplied proposal logits —
/// so it is never cached), which means cache hits and misses can change
/// only how much work is done, never a value.
#[derive(Debug, Clone)]
enum Cached {
    Raster(RgbFrame),
    Feature(Vec<f32>),
}

/// Cache key: `(video seed, frame index, kind)`, where `kind` is `None`
/// for the raster itself and `Some(feature)` for an extracted vector.
type CacheKey = (u64, u32, Option<FeatureKind>);

/// Extracts content features from video frames.
///
/// Rasterization (the most expensive real computation) and the pure
/// heavy feature vectors derived from it are cached per
/// `(video seed, frame index, kind)` with bounded LRU eviction: when the
/// cache is full, the single least-recently-used entry is evicted, so a
/// working set that fits the bound stays warm even as other streams
/// churn through frames.
///
/// Note that *virtual* extraction latencies are charged by the scheduler
/// from the Table 1 cost table, not here; this service only computes the
/// feature values.
#[derive(Debug)]
pub struct FeatureService {
    deep: DeepExtractors,
    raster_size: usize,
    cache: BTreeMap<CacheKey, (Cached, u64)>,
    max_cache: usize,
    /// Monotonic access counter stamping cache entries for LRU eviction.
    tick: u64,
}

impl Default for FeatureService {
    fn default() -> Self {
        Self::new()
    }
}

impl FeatureService {
    /// Creates a service with the default 64x64 raster.
    pub fn new() -> Self {
        Self::with_raster_size(DEFAULT_RASTER_SIZE)
    }

    /// Creates a service with a custom raster edge length.
    ///
    /// # Panics
    ///
    /// Panics if `raster_size` is below the HOG minimum (16).
    pub fn with_raster_size(raster_size: usize) -> Self {
        assert!(raster_size >= 16, "raster too small: {raster_size}");
        Self {
            deep: DeepExtractors::new(),
            raster_size,
            cache: BTreeMap::new(),
            max_cache: 2048,
            tick: 0,
        }
    }

    /// The configured raster edge length.
    pub fn raster_size(&self) -> usize {
        self.raster_size
    }

    /// Evicts least-recently-used entries until an insert fits the bound.
    fn evict_to_cap(&mut self) {
        while self.cache.len() >= self.max_cache {
            // `min_by_key` is `None` only for an empty cache, which the
            // loop condition already rules out (`max_cache >= 1`).
            let Some(oldest) = self
                .cache
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(k, _)| *k)
            else {
                return;
            };
            self.cache.remove(&oldest);
        }
    }

    /// Marks a key as just-used and returns its cached value, if any.
    fn cache_touch(&mut self, key: &CacheKey) -> Option<&Cached> {
        self.tick += 1;
        let tick = self.tick;
        self.cache.get_mut(key).map(|entry| {
            entry.1 = tick;
            &entry.0
        })
    }

    /// Inserts a freshly computed value (evicting LRU entries if full)
    /// and stamps it as just-used.
    fn cache_insert(&mut self, key: CacheKey, value: Cached) {
        self.evict_to_cap();
        self.tick += 1;
        self.cache.insert(key, (value, self.tick));
    }

    /// Rasterizes (or fetches from cache) a frame of a video.
    ///
    /// # Panics
    ///
    /// Panics if `frame_idx` is out of range.
    pub fn raster(&mut self, video: &Video, frame_idx: usize) -> &RgbFrame {
        assert!(frame_idx < video.len(), "frame {frame_idx} out of range");
        let key = (video.spec.seed, frame_idx as u32, None);
        if self.cache_touch(&key).is_none() {
            let raster = rasterize(&video.frames[frame_idx], &video.style, self.raster_size);
            self.cache_insert(key, Cached::Raster(raster));
        }
        match &self.cache[&key].0 {
            Cached::Raster(r) => r,
            Cached::Feature(_) => unreachable!("raster key holds a raster"),
        }
    }

    /// The light feature vector for a frame, given the boxes the kernel
    /// currently believes in.
    pub fn light(&self, video: &Video, frame_idx: usize, boxes: &[BBox]) -> Vec<f32> {
        let truth = &video.frames[frame_idx];
        LightFeatures::from_boxes(truth.width, truth.height, boxes).to_vec()
    }

    /// Extracts a heavy content feature from a frame.
    ///
    /// CPoP is assembled from detector proposal logits, which the caller
    /// must supply (`proposal_logits`); other features come from the
    /// raster. Returns `None` for [`FeatureKind::CPoP`] without logits and
    /// for [`FeatureKind::Light`] (use [`Self::light`]).
    ///
    /// Raster-derived features are served from the LRU cache when warm;
    /// CPoP is never cached because its value depends on the supplied
    /// logits, not only on `(video, frame)`.
    pub fn extract_heavy(
        &mut self,
        kind: FeatureKind,
        video: &Video,
        frame_idx: usize,
        proposal_logits: Option<&[Vec<f32>]>,
    ) -> Option<Vec<f32>> {
        match kind {
            FeatureKind::Light => return None,
            FeatureKind::CPoP => return proposal_logits.map(cpop::cpop_vector),
            _ => {}
        }
        let key = (video.spec.seed, frame_idx as u32, Some(kind));
        if let Some(Cached::Feature(v)) = self.cache_touch(&key) {
            return Some(v.clone());
        }
        let value = match kind {
            FeatureKind::HoC => hoc::extract(self.raster(video, frame_idx)),
            FeatureKind::Hog => hog::extract(self.raster(video, frame_idx)),
            FeatureKind::ResNet50 => {
                let raster = self.raster(video, frame_idx).clone();
                self.deep.resnet50(&raster)
            }
            FeatureKind::MobileNetV2 => {
                let raster = self.raster(video, frame_idx).clone();
                self.deep.mobilenetv2(&raster)
            }
            FeatureKind::Light | FeatureKind::CPoP => unreachable!("handled above"),
        };
        self.cache_insert(key, Cached::Feature(value.clone()));
        Some(value)
    }

    /// The dimensionality a heavy feature has under this service's raster
    /// size (HOG scales with raster size; others are fixed).
    pub fn feature_dim(&self, kind: FeatureKind) -> usize {
        match kind {
            FeatureKind::Hog => hog::dim_for(self.raster_size),
            other => other.cost().dim,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lr_video::VideoSpec;

    fn video() -> Video {
        Video::generate(VideoSpec {
            id: 0,
            seed: 101,
            width: 640.0,
            height: 480.0,
            num_frames: 12,
        })
    }

    #[test]
    fn raster_is_cached() {
        let v = video();
        let mut svc = FeatureService::new();
        let a = svc.raster(&v, 3).clone();
        let b = svc.raster(&v, 3).clone();
        assert_eq!(a, b);
        assert_eq!(svc.cache.len(), 1);
    }

    #[test]
    fn all_heavy_features_have_expected_dims() {
        let v = video();
        let mut svc = FeatureService::new();
        let logits = vec![vec![0.0f32; 31]; 3];
        for kind in lr_features::HEAVY_FEATURE_KINDS {
            let f = svc
                .extract_heavy(kind, &v, 0, Some(&logits))
                .unwrap_or_else(|| panic!("{kind:?} failed"));
            assert_eq!(f.len(), svc.feature_dim(kind), "{kind:?}");
        }
    }

    #[test]
    fn cpop_without_logits_is_none() {
        let v = video();
        let mut svc = FeatureService::new();
        assert!(svc.extract_heavy(FeatureKind::CPoP, &v, 0, None).is_none());
    }

    #[test]
    fn light_features_reflect_boxes() {
        let v = video();
        let svc = FeatureService::new();
        let empty = svc.light(&v, 0, &[]);
        let boxes = [BBox::new(0.0, 0.0, 64.0, 48.0)];
        let one = svc.light(&v, 0, &boxes);
        assert_eq!(empty.len(), 4);
        assert!(one[2] > empty[2], "object count dimension must grow");
    }

    #[test]
    fn cache_evicts_lru_when_full_instead_of_growing() {
        let v = video();
        let mut svc = FeatureService::new();
        svc.max_cache = 4;
        for i in 0..12 {
            let _ = svc.raster(&v, i);
        }
        // Bounded: never exceeds the cap, and only the oldest entries
        // were evicted — the most recent 4 frames are still warm.
        assert_eq!(svc.cache.len(), 4);
        for i in 8..12 {
            assert!(
                svc.cache.contains_key(&(v.spec.seed, i as u32, None)),
                "frame {i} should still be cached"
            );
        }
    }

    #[test]
    fn lru_keeps_reused_entries_warm() {
        let v = video();
        let mut svc = FeatureService::new();
        svc.max_cache = 3;
        let _ = svc.raster(&v, 0);
        let _ = svc.raster(&v, 1);
        let _ = svc.raster(&v, 2);
        // Re-touch frame 0 so frame 1 becomes the LRU entry.
        let _ = svc.raster(&v, 0);
        let _ = svc.raster(&v, 3);
        assert!(svc.cache.contains_key(&(v.spec.seed, 0, None)));
        assert!(!svc.cache.contains_key(&(v.spec.seed, 1, None)));
        assert!(svc.cache.contains_key(&(v.spec.seed, 3, None)));
    }

    #[test]
    fn heavy_features_are_cached_per_kind() {
        let v = video();
        let mut svc = FeatureService::new();
        let a = svc.extract_heavy(FeatureKind::HoC, &v, 0, None).unwrap();
        assert!(svc
            .cache
            .contains_key(&(v.spec.seed, 0, Some(FeatureKind::HoC))));
        let b = svc.extract_heavy(FeatureKind::HoC, &v, 0, None).unwrap();
        assert_eq!(a, b, "cache hit must return the identical vector");
        // CPoP depends on caller-supplied logits and must never be cached.
        let logits = vec![vec![0.0f32; 31]; 3];
        let _ = svc.extract_heavy(FeatureKind::CPoP, &v, 0, Some(&logits));
        assert!(!svc
            .cache
            .contains_key(&(v.spec.seed, 0, Some(FeatureKind::CPoP))));
    }
}
