/root/repo/target/debug/examples/ar_headset-56136c36e6c8486a.d: examples/ar_headset.rs

/root/repo/target/debug/examples/ar_headset-56136c36e6c8486a: examples/ar_headset.rs

examples/ar_headset.rs:
