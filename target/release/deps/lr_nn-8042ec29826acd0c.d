/root/repo/target/release/deps/lr_nn-8042ec29826acd0c.d: crates/nn/src/lib.rs crates/nn/src/adam.rs crates/nn/src/conv.rs crates/nn/src/init.rs crates/nn/src/layers.rs crates/nn/src/linreg.rs crates/nn/src/loss.rs crates/nn/src/mlp.rs crates/nn/src/optim.rs crates/nn/src/tensor.rs

/root/repo/target/release/deps/lr_nn-8042ec29826acd0c: crates/nn/src/lib.rs crates/nn/src/adam.rs crates/nn/src/conv.rs crates/nn/src/init.rs crates/nn/src/layers.rs crates/nn/src/linreg.rs crates/nn/src/loss.rs crates/nn/src/mlp.rs crates/nn/src/optim.rs crates/nn/src/tensor.rs

crates/nn/src/lib.rs:
crates/nn/src/adam.rs:
crates/nn/src/conv.rs:
crates/nn/src/init.rs:
crates/nn/src/layers.rs:
crates/nn/src/linreg.rs:
crates/nn/src/loss.rs:
crates/nn/src/mlp.rs:
crates/nn/src/optim.rs:
crates/nn/src/tensor.rs:
