/root/repo/target/debug/deps/ablations-ebf70561e45395e3.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-ebf70561e45395e3: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
