//! Fault injection and graceful degradation: what a seeded schedule of
//! GPU thermal throttling, transient op failures, and stall spikes costs
//! end to end — and that the serving runtime absorbs every fault.
//!
//! Runs the mixed-class serving workload on TX2 and AGX Xavier twice:
//! once clean (no fault plan) and once with a moderate seeded
//! `FaultConfig`. The table contrasts mAP / p95 / SLO-violation rate and
//! reports the fault accounting (absorbed faults, degraded-GoF fraction,
//! evictions, terminal evictions) plus the backoff-driven recovery-time
//! distribution across evicted streams.
//!
//! Verified properties (the bin exits non-zero if any fails):
//! - the clean run reports zero faults, degraded GoFs, and evictions;
//! - the faulted run absorbs a nonzero number of faults without any
//!   panic — every fault lands in the fallback ladder or a typed
//!   eviction in the report;
//! - the same fault seed produces a byte-identical report under 1 and 4
//!   pool workers (the determinism contract extends to faulted runs).
//!
//! Usage: `cargo run --release -p lr-bench --bin faults [small|paper] [--check]`
//!
//! `--check` additionally compares the freshly rendered artifact against
//! the committed `results_faults.txt` and fails on any byte difference.

use std::sync::Arc;

use litereconfig::{FeatureService, Policy, TrainedScheduler};
use lr_bench::{scale_from_args, ExperimentScale, Suite};
use lr_device::{DeviceKind, FaultConfig};
use lr_eval::TextTable;
use lr_serve::{serve, ServeConfig, ServeReport, SloClass, StreamSpec};

const ARTIFACT: &str = "results_faults.txt";

fn mixed_specs(n: usize, frames: usize) -> Vec<StreamSpec> {
    (0..n)
        .map(|i| {
            let class = match i % 3 {
                0 => SloClass::Gold,
                1 => SloClass::Silver,
                _ => SloClass::Bronze,
            };
            StreamSpec::synthetic(i as u32, class, frames)
        })
        .collect()
}

/// The benchmark's fault schedule: `moderate` cadence with the transient
/// rate raised enough that the eviction/backoff path exercises at small
/// scale too.
fn bench_fault(seed: u64) -> FaultConfig {
    let mut f = FaultConfig::moderate(seed);
    f.transient_rate = 0.15;
    f.stall_rate = 0.04;
    f
}

fn run_mode(
    device: DeviceKind,
    fault: Option<FaultConfig>,
    pool_threads: usize,
    specs: &[StreamSpec],
    trained: Arc<TrainedScheduler>,
    raster_size: usize,
) -> ServeReport {
    let mut cfg = ServeConfig::new(device);
    cfg.seed = 42;
    cfg.pool_threads = pool_threads;
    cfg.fault = fault;
    cfg.fault_window_gofs = 3;
    cfg.fault_rate_threshold = 0.5;
    cfg.fault_backoff_ms = 250.0;
    let mut svc = FeatureService::with_raster_size(raster_size);
    serve(specs, trained, Policy::CostBenefit, &cfg, &mut svc)
}

/// min / median / max of per-stream mean recovery time, over streams
/// that were evicted at least once.
fn recovery_distribution(report: &ServeReport) -> Option<(f64, f64, f64)> {
    let mut samples: Vec<f64> = report
        .streams
        .iter()
        .filter(|s| s.evictions > 0)
        .map(|s| s.mean_recovery_ms())
        .collect();
    if samples.is_empty() {
        return None;
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    Some((
        samples[0],
        samples[samples.len() / 2],
        samples[samples.len() - 1],
    ))
}

fn main() {
    let t0 = std::time::Instant::now();
    let check = std::env::args().any(|a| a == "--check");
    let scale = scale_from_args();
    let suite = Suite::build(scale);
    let (n_streams, frames) = match scale {
        ExperimentScale::Small => (6, 96),
        ExperimentScale::Paper => (9, 240),
    };
    let specs = mixed_specs(n_streams, frames);
    let trained = suite.frcnn.clone();
    let raster_size = suite.svc.raster_size();

    let mut table = TextTable::new(&[
        "Device",
        "Mode",
        "Admit/Degr/Rej",
        "Mean mAP (%)",
        "Agg p50 (ms)",
        "Agg p95 (ms)",
        "Violations (%)",
        "Faults",
        "Degraded GoFs (%)",
        "Evictions (terminal)",
    ]);
    let mut recovery_lines = String::new();
    let mut checks_passed = true;

    for device in [DeviceKind::JetsonTx2, DeviceKind::AgxXavier] {
        for (mode, fault) in [("clean", None), ("faulted", Some(bench_fault(1717)))] {
            let report = run_mode(device, fault, 1, &specs, trained.clone(), raster_size);

            if fault.is_some() {
                // Determinism: the same fault seed must yield a
                // byte-identical report under parallel stepping.
                let parallel = run_mode(device, fault, 4, &specs, trained.clone(), raster_size);
                let a = format!("{}{}", report.format_table(), report.format_fault_table());
                let b = format!(
                    "{}{}",
                    parallel.format_table(),
                    parallel.format_fault_table()
                );
                if a != b {
                    eprintln!(
                        "[faults] CHECK FAILED: {} faulted report differs between 1 and 4 workers",
                        device.name()
                    );
                    checks_passed = false;
                }
                if report.total_faults() == 0 {
                    eprintln!(
                        "[faults] CHECK FAILED: {} faulted run absorbed zero faults",
                        device.name()
                    );
                    checks_passed = false;
                }
                match recovery_distribution(&report) {
                    Some((min, med, max)) => recovery_lines.push_str(&format!(
                        "{}: recovery per eviction min {:.0} / median {:.0} / max {:.0} ms \
                         over {} evictions ({} terminal)\n",
                        device.name(),
                        min,
                        med,
                        max,
                        report.total_evictions(),
                        report.terminal_evictions(),
                    )),
                    None => recovery_lines.push_str(&format!(
                        "{}: no stream exceeded its fault budget (0 evictions)\n",
                        device.name(),
                    )),
                }
            } else if report.total_faults() != 0
                || report.total_evictions() != 0
                || report.degraded_gof_fraction() != 0.0
            {
                eprintln!(
                    "[faults] CHECK FAILED: {} clean run reports fault activity",
                    device.name()
                );
                checks_passed = false;
            }

            let agg = report.admitted_latency();
            table.add_row_owned(vec![
                device.name().to_string(),
                mode.to_string(),
                format!(
                    "{}/{}/{}",
                    report.admitted(),
                    report.degraded(),
                    report.rejected()
                ),
                format!("{:.1}", report.admitted_mean_map() * 100.0),
                format!("{:.1}", agg.percentile(0.5)),
                format!("{:.1}", agg.p95()),
                format!("{:.1}", report.admitted_violation_rate() * 100.0),
                report.total_faults().to_string(),
                format!("{:.1}", report.degraded_gof_fraction() * 100.0),
                format!(
                    "{} ({})",
                    report.total_evictions(),
                    report.terminal_evictions()
                ),
            ]);
            eprintln!(
                "[faults] {} {} -> p95 {:.1} ms, {} faults, {} evictions ({:.0}s elapsed)",
                device.name(),
                mode,
                agg.p95(),
                report.total_faults(),
                report.total_evictions(),
                t0.elapsed().as_secs_f64()
            );
        }
    }

    let rendered = table.render();
    println!("{rendered}");
    let artifact = format!(
        "faults: seeded fault injection vs clean serving ({n_streams} streams x {frames} \
         frames, scale {scale:?})\n\
         Fault schedule: moderate cadence, transient rate 0.15, stall rate 0.04, seed 1717;\n\
         eviction after >=50% faulted GoFs in a 3-GoF window, re-admission after exponential\n\
         backoff from 250 ms. Every fault is absorbed by the fallback ladder or a typed\n\
         eviction; the same seed is byte-identical under 1 and 4 pool workers.\n\n\
         {rendered}\n{recovery_lines}checks: {}\n",
        if checks_passed { "PASS" } else { "FAIL" }
    );

    if check {
        match std::fs::read_to_string(ARTIFACT) {
            Ok(committed) if committed == artifact => {
                eprintln!("[faults] CHECK: committed {ARTIFACT} reproduced byte-identically");
            }
            Ok(_) => {
                eprintln!(
                    "[faults] CHECK FAILED: fresh artifact differs from committed {ARTIFACT}"
                );
                checks_passed = false;
            }
            Err(e) => {
                eprintln!("[faults] CHECK FAILED: cannot read committed {ARTIFACT}: {e}");
                checks_passed = false;
            }
        }
    }

    std::fs::write(ARTIFACT, &artifact).expect("write results_faults.txt");
    eprintln!(
        "[faults] wrote {ARTIFACT} in {:.0}s",
        t0.elapsed().as_secs_f64()
    );
    assert!(checks_passed, "faults acceptance checks failed");
}
