/root/repo/target/release/deps/lr_eval-f69facdf859b6d6a.d: crates/eval/src/lib.rs crates/eval/src/latency.rs crates/eval/src/map.rs crates/eval/src/report.rs crates/eval/src/table.rs

/root/repo/target/release/deps/lr_eval-f69facdf859b6d6a: crates/eval/src/lib.rs crates/eval/src/latency.rs crates/eval/src/map.rs crates/eval/src/report.rs crates/eval/src/table.rs

crates/eval/src/lib.rs:
crates/eval/src/latency.rs:
crates/eval/src/map.rs:
crates/eval/src/report.rs:
crates/eval/src/table.rs:
