//! End-to-end check of the endogenous contention loop: co-scheduling
//! streams on one device must slow each of them down relative to
//! running alone, because each stream's measured GPU occupancy becomes
//! the others' contention.

use std::sync::Arc;

use litereconfig::offline::{profile_videos, OfflineConfig};
use litereconfig::trainer::{train_scheduler, TrainConfig};
use litereconfig::{FeatureService, Policy, TrainedScheduler};
use lr_device::DeviceKind;
use lr_kernels::branch::small_catalog;
use lr_kernels::DetectorFamily;
use lr_serve::{serve, ServeConfig, SloClass, StreamSpec};
use lr_video::{Video, VideoSpec};

fn trained() -> Arc<TrainedScheduler> {
    let videos: Vec<Video> = (0..2)
        .map(|i| {
            Video::generate(VideoSpec {
                id: 870 + i,
                seed: 6_870 + i as u64,
                width: 640.0,
                height: 480.0,
                num_frames: 60,
            })
        })
        .collect();
    let mut svc = FeatureService::new();
    let cfg = OfflineConfig {
        snippet_len: 30,
        catalog: small_catalog(),
        family: DetectorFamily::FasterRcnn,
        reference_detector: lr_kernels::DetectorConfig::new(576, 100),
        seed: 77,
    };
    let ds = profile_videos(&videos, &cfg, &mut svc);
    Arc::new(train_scheduler(
        &ds,
        DetectorFamily::FasterRcnn,
        &TrainConfig::tiny(),
    ))
}

#[test]
fn two_co_scheduled_streams_each_observe_higher_gof_latency_than_alone() {
    let t = trained();
    let mut svc = FeatureService::new();
    // Tight SLO classes keep the streams busy (short frame periods), so
    // their occupancy windows genuinely overlap.
    let a = StreamSpec::synthetic(0, SloClass::Gold, 64);
    let b = StreamSpec::synthetic(1, SloClass::Gold, 64);
    // Freeze latency-model adaptation so both runs pick the same
    // branches: the latency comparison then isolates the endogenous
    // slowdown itself. (With adaptation on, a contended scheduler
    // reconfigures to cheaper branches — trading accuracy, not time.)
    let mut cfg = ServeConfig::new(DeviceKind::JetsonTx2).without_admission();
    cfg.contention_adaptive = false;

    let a_alone = serve(
        std::slice::from_ref(&a),
        t.clone(),
        Policy::MinCost,
        &cfg,
        &mut svc,
    );
    let b_alone = serve(
        std::slice::from_ref(&b),
        t.clone(),
        Policy::MinCost,
        &cfg,
        &mut svc,
    );
    let together = serve(&[a, b], t, Policy::MinCost, &cfg, &mut svc);

    // Alone, a stream observes no contention at all.
    assert!((a_alone.streams[0].mean_slowdown - 1.0).abs() < 1e-9);
    assert!((b_alone.streams[0].mean_slowdown - 1.0).abs() < 1e-9);

    // Together, each observes the other's load…
    for s in &together.streams {
        assert!(
            s.mean_slowdown > 1.0,
            "{} observed no contention when co-scheduled",
            s.name
        );
    }
    // …and each runs its GoFs slower than it did alone. Per-stream
    // seeds depend only on the stream itself, so each shared run is the
    // same run as its solo counterpart plus the other stream's load.
    let solo = [&a_alone.streams[0], &b_alone.streams[0]];
    for (shared, solo) in together.streams.iter().zip(solo) {
        assert!(
            shared.latency.mean() > solo.latency.mean(),
            "{}: shared mean {} ms not above solo mean {} ms",
            shared.name,
            shared.latency.mean(),
            solo.latency.mean()
        );
    }
}

#[test]
fn adaptive_schedulers_absorb_contention_by_reconfiguring() {
    let t = trained();
    let mut svc = FeatureService::new();
    let specs = vec![
        StreamSpec::synthetic(0, SloClass::Gold, 64),
        StreamSpec::synthetic(1, SloClass::Gold, 64),
    ];
    let mut frozen_cfg = ServeConfig::new(DeviceKind::JetsonTx2).without_admission();
    frozen_cfg.contention_adaptive = false;
    let adaptive_cfg = ServeConfig::new(DeviceKind::JetsonTx2).without_admission();

    let frozen = serve(&specs, t.clone(), Policy::MinCost, &frozen_cfg, &mut svc);
    let adaptive = serve(&specs, t, Policy::MinCost, &adaptive_cfg, &mut svc);

    // Both observe real contention, but the adaptive schedulers react to
    // it and hold their P95 at or below the frozen ones'.
    for (f, a) in frozen.streams.iter().zip(&adaptive.streams) {
        assert!(f.mean_slowdown > 1.0);
        assert!(a.mean_slowdown > 1.0);
        assert!(
            a.latency.p95() <= f.latency.p95() + 1e-9,
            "{}: adaptive p95 {} above frozen p95 {}",
            a.name,
            a.latency.p95(),
            f.latency.p95()
        );
    }
}
