/root/repo/target/debug/deps/litereconfig_repro-a6ea5b19872ec98e.d: src/lib.rs

/root/repo/target/debug/deps/liblitereconfig_repro-a6ea5b19872ec98e.rlib: src/lib.rs

/root/repo/target/debug/deps/liblitereconfig_repro-a6ea5b19872ec98e.rmeta: src/lib.rs

src/lib.rs:
