//! Figure 4: branch coverage — the number of distinct execution branches
//! each protocol invokes — for the four LiteReconfig variants and the
//! baselines.
//!
//! Usage: `cargo run --release -p lr-bench --bin figure4 [small|paper]`

use std::sync::Arc;

use litereconfig::protocols::AdaptiveProtocol;
use litereconfig::TrainedScheduler;
use lr_bench::{scale_from_args, Suite};
use lr_device::DeviceKind;
use lr_eval::TextTable;
use lr_kernels::DetectorFamily;

fn main() {
    let mut suite = Suite::build(scale_from_args());
    let ssd = suite.train_one_stage(DetectorFamily::Ssd);
    let yolo = suite.train_one_stage(DetectorFamily::Yolo);

    let slos = [33.3, 50.0, 100.0];
    let mut table = TextTable::new(&[
        "Protocol",
        "Branches @33.3ms",
        "Branches @50ms",
        "Branches @100ms",
        "Switches @33.3ms",
    ]);

    for (pi, protocol) in AdaptiveProtocol::all().iter().enumerate() {
        let trained: Arc<TrainedScheduler> = match protocol.family() {
            DetectorFamily::Ssd => ssd.clone(),
            DetectorFamily::Yolo => yolo.clone(),
            _ => suite.frcnn.clone(),
        };
        let mut coverage = Vec::new();
        let mut switches33 = 0usize;
        for (li, &slo) in slos.iter().enumerate() {
            let r = protocol.run(
                &suite.val_videos,
                trained.clone(),
                DeviceKind::JetsonTx2,
                0.0,
                slo,
                5000 + pi as u64 * 10 + li as u64,
                &mut suite.svc,
            );
            coverage.push(r.branches_used.len());
            if li == 0 {
                switches33 = r.switches.len();
            }
            eprintln!(
                "[figure4] {} @{slo}: {} branches, {} switches",
                protocol.name(),
                r.branches_used.len(),
                r.switches.len()
            );
        }
        table.add_row_owned(vec![
            protocol.name().to_string(),
            coverage[0].to_string(),
            coverage[1].to_string(),
            coverage[2].to_string(),
            switches33.to_string(),
        ]);
    }
    println!("\nFigure 4 data: branch coverage per protocol (TX2, no contention)\n");
    println!("{}", table.render());
    println!(
        "Expected shape: heavy-feature variants explore more branches than \
         MinCost; the full system sits between, trading exploration against \
         switching cost."
    );
}
