//! The GoF executor: tracking-by-detection over a Group-of-Frames.

use lr_device::{DeviceSim, OpError, OpUnit};
use lr_obs::{NullSink, ObsSink, SpanKind};
use lr_video::FrameTruth;

use crate::branch::Branch;
use crate::detector::{Detection, DetectorFamily, DetectorOutput, DetectorSim};
use crate::latency;
use crate::tracker::TrackerSim;

/// Why a GoF could not be executed. The caller (the pipeline's fallback
/// ladder) decides what absorbs it: a cheaper-branch retry, a
/// tracker-only GoF on the last known detections, or — for `NoBranch` —
/// nothing, because that is a programming error, not a fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GofError {
    /// No branch configured.
    NoBranch,
    /// The GoF's detection frame failed transiently. `wasted_ms` of
    /// virtual time is already charged to the device; no detections were
    /// produced.
    DetectorFault {
        /// Virtual milliseconds burned by the failed detector op.
        wasted_ms: f64,
    },
}

impl std::fmt::Display for GofError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GofError::NoBranch => write!(f, "no branch configured"),
            GofError::DetectorFault { wasted_ms } => {
                write!(f, "detection frame failed ({wasted_ms:.2} ms wasted)")
            }
        }
    }
}

impl std::error::Error for GofError {}

/// Execution options for one GoF.
#[derive(Debug, Clone, Copy, Default)]
pub struct GofOptions {
    /// Watchdog deadline on the GoF's total kernel milliseconds: once
    /// exceeded (a throttle episode, a stall spike), the remaining
    /// frames coast on the last produced boxes instead of charging more
    /// device time. `None` disables the watchdog (the clean-path
    /// default, which keeps fault-free runs byte-identical).
    pub deadline_ms: Option<f64>,
}

/// Everything produced by running one GoF under a branch.
#[derive(Debug, Clone)]
pub struct GofResult {
    /// Detections per frame, aligned with the input frames.
    pub per_frame: Vec<Vec<Detection>>,
    /// Virtual milliseconds charged to the detector (GPU).
    pub detector_ms: f64,
    /// Virtual milliseconds charged to the tracker (CPU), summed over the
    /// GoF.
    pub tracker_ms: f64,
    /// The first frame's raw detector output: the source of the ResNet50
    /// and CPoP features.
    pub first_frame_output: DetectorOutput,
    /// Mid-GoF transient detector failures absorbed by reusing the
    /// previous frame's detections (detector-only branches).
    pub absorbed_faults: usize,
    /// Frames that coasted on stale boxes after the watchdog fired (or,
    /// in a tracker-only fallback on a detector-only branch, the whole
    /// GoF).
    pub coasted_frames: usize,
    /// Whether the [`GofOptions::deadline_ms`] watchdog aborted the GoF.
    pub deadline_aborted: bool,
}

impl GofResult {
    /// Total kernel time charged over the GoF.
    pub fn kernel_ms(&self) -> f64 {
        self.detector_ms + self.tracker_ms
    }

    /// Mean per-frame kernel latency over the GoF (the paper's time
    /// metric).
    pub fn mean_frame_ms(&self) -> f64 {
        self.kernel_ms() / self.per_frame.len().max(1) as f64
    }
}

/// The multi-branch execution kernel.
///
/// Holds a detector family plus the currently configured branch's tracker
/// state. Switching branches is the scheduler's job (and is charged via
/// the switching-cost model in `lr-device`); `Mbek` just executes.
#[derive(Debug, Clone)]
pub struct Mbek {
    detector: DetectorSim,
    tracker: Option<TrackerSim>,
    branch: Option<Branch>,
    /// Multiplier on kernel base latencies — models implementation
    /// inefficiency of older pipelines (ApproxDet's TF-1.14 stack).
    latency_factor: f64,
}

impl Mbek {
    /// Creates an MBEK over the given detector family (the paper's MBEK
    /// uses Faster R-CNN; YOLO+/SSD+ reuse the same executor).
    pub fn new(family: DetectorFamily) -> Self {
        Self {
            detector: DetectorSim::new(family),
            tracker: None,
            branch: None,
            latency_factor: 1.0,
        }
    }

    /// Scales all kernel latencies by `factor` (>= 1 models a slower
    /// implementation of the same kernels).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive.
    pub fn with_latency_factor(mut self, factor: f64) -> Self {
        assert!(factor > 0.0, "latency factor must be positive");
        self.latency_factor = factor;
        self
    }

    /// The detector family.
    pub fn family(&self) -> DetectorFamily {
        self.detector.family()
    }

    /// The currently configured branch.
    pub fn branch(&self) -> Option<Branch> {
        self.branch
    }

    /// Configures the execution branch, resetting tracker state.
    pub fn set_branch(&mut self, branch: Branch) {
        self.tracker = branch
            .tracker
            .map(|kind| TrackerSim::new(kind, branch.downsample));
        self.branch = Some(branch);
    }

    /// Runs one GoF over `frames` (detector on the first frame, tracker on
    /// the rest; detector on *every* frame for detector-only branches),
    /// charging all kernel latencies to `device`.
    ///
    /// # Panics
    ///
    /// Panics if no branch is configured, `frames` is empty, or the
    /// detection frame's op fails (possible only under a nonzero
    /// [`lr_device::FaultPlan`] — fault-aware callers use
    /// [`Mbek::try_run_gof`]).
    pub fn run_gof(&mut self, frames: &[FrameTruth], device: &mut DeviceSim) -> GofResult {
        self.try_run_gof(frames, device, &GofOptions::default())
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fault-aware [`Mbek::run_gof`]: device ops go through
    /// [`DeviceSim::run_op`], so an injected transient failure on the
    /// detection frame surfaces as [`GofError::DetectorFault`] instead of
    /// a panic. Mid-GoF detector failures (detector-only branches) are
    /// absorbed by reusing the previous frame's detections; the optional
    /// [`GofOptions::deadline_ms`] watchdog coasts the remaining frames
    /// once the GoF's kernel time exceeds the deadline. With no fault
    /// plan on the device and no deadline, this is byte-identical to the
    /// pre-fault `run_gof`.
    ///
    /// # Panics
    ///
    /// Panics if `frames` is empty.
    pub fn try_run_gof(
        &mut self,
        frames: &[FrameTruth],
        device: &mut DeviceSim,
        opts: &GofOptions,
    ) -> Result<GofResult, GofError> {
        self.try_run_gof_obs(frames, device, opts, &mut NullSink)
    }

    /// [`Mbek::try_run_gof`] with an observer: a `Detect` span around the
    /// detection frame (closed even when the op faults, so the wasted
    /// time is visible) and a `Track` span around the rest of the GoF.
    /// Observation only reads the virtual clock — with a [`NullSink`]
    /// this is byte-for-byte the plain `try_run_gof`.
    ///
    /// # Panics
    ///
    /// Panics if `frames` is empty.
    pub fn try_run_gof_obs(
        &mut self,
        frames: &[FrameTruth],
        device: &mut DeviceSim,
        opts: &GofOptions,
        obs: &mut impl ObsSink,
    ) -> Result<GofResult, GofError> {
        let Some(branch) = self.branch else {
            return Err(GofError::NoBranch);
        };
        assert!(!frames.is_empty(), "empty GoF");

        let mut per_frame: Vec<Vec<Detection>> = Vec::with_capacity(frames.len());
        let mut detector_ms = 0.0;
        let mut tracker_ms = 0.0;
        let mut absorbed_faults = 0usize;
        let mut coasted_frames = 0usize;
        let mut deadline_aborted = false;

        // Detection frame. A transient failure here means the GoF has no
        // detections to track from: propagate to the caller's ladder.
        let det_base = latency::detector_base_ms(self.detector.family(), branch.detector)
            * self.latency_factor;
        obs.span_begin(SpanKind::Detect, "", device.now_ms());
        match device.run_op(OpUnit::Gpu, det_base) {
            Ok(ms) => detector_ms += ms,
            Err(OpError::Transient { wasted_ms }) => {
                obs.span_end(device.now_ms());
                return Err(GofError::DetectorFault { wasted_ms });
            }
        }
        let first_output = self
            .detector
            .detect(&frames[0], branch.detector, device.rng());
        per_frame.push(first_output.detections.clone());
        if let Some(tracker) = &mut self.tracker {
            tracker.reinit(&first_output.detections, &frames[0]);
        }
        obs.span_end(device.now_ms());

        // Remaining frames (one span for the whole tracked/re-detected
        // tail — per-frame spans would dwarf the trace).
        if frames.len() > 1 {
            obs.span_begin(SpanKind::Track, "", device.now_ms());
        }
        for (idx, frame) in frames.iter().enumerate().skip(1) {
            if let Some(deadline) = opts.deadline_ms {
                if detector_ms + tracker_ms > deadline {
                    // Watchdog: the GoF has already blown its budget
                    // (throttle episode, stall spike). Coast the rest on
                    // the last produced boxes — stale accuracy beats a
                    // cascading SLO violation.
                    let last = per_frame[idx - 1].clone();
                    coasted_frames = frames.len() - idx;
                    per_frame.extend(std::iter::repeat_n(last, coasted_frames));
                    deadline_aborted = true;
                    break;
                }
            }
            match &mut self.tracker {
                Some(tracker) => {
                    let base = latency::tracker_base_ms(
                        tracker.kind(),
                        branch.downsample,
                        tracker.num_tracks(),
                    ) * self.latency_factor;
                    tracker_ms += device.charge(OpUnit::Cpu, base);
                    let boxes = tracker.step(frame, device.rng());
                    per_frame.push(boxes);
                }
                None => match device.run_op(OpUnit::Gpu, det_base) {
                    Ok(ms) => {
                        detector_ms += ms;
                        let out = self.detector.detect(frame, branch.detector, device.rng());
                        per_frame.push(out.detections);
                    }
                    Err(OpError::Transient { wasted_ms }) => {
                        // Mid-GoF failure with prior detections in hand:
                        // absorb by holding the previous frame's boxes.
                        detector_ms += wasted_ms;
                        absorbed_faults += 1;
                        per_frame.push(per_frame[idx - 1].clone());
                    }
                },
            }
        }
        if frames.len() > 1 {
            obs.span_end(device.now_ms());
        }

        Ok(GofResult {
            per_frame,
            detector_ms,
            tracker_ms,
            first_frame_output: first_output,
            absorbed_faults,
            coasted_frames,
            deadline_aborted,
        })
    }

    /// Tracker-only fallback GoF: runs `frames` with **no** detection,
    /// seeding the branch's tracker from `seed_dets` (the last known-good
    /// detections). This is the bottom rung of the pipeline's fallback
    /// ladder after a detection failure. Detector-only branches have no
    /// tracker to seed, so the whole GoF coasts on `seed_dets` unchanged
    /// (charged nothing — the detector is the thing that failed).
    ///
    /// # Panics
    ///
    /// Panics if `frames` is empty.
    pub fn run_gof_fallback(
        &mut self,
        frames: &[FrameTruth],
        device: &mut DeviceSim,
        seed_dets: &[Detection],
    ) -> Result<GofResult, GofError> {
        self.run_gof_fallback_obs(frames, device, seed_dets, &mut NullSink)
    }

    /// [`Mbek::run_gof_fallback`] with an observer: one `Fallback` span
    /// over the whole tracker-only (or coasted) GoF. With a [`NullSink`]
    /// this is byte-for-byte the plain `run_gof_fallback`.
    ///
    /// # Panics
    ///
    /// Panics if `frames` is empty.
    pub fn run_gof_fallback_obs(
        &mut self,
        frames: &[FrameTruth],
        device: &mut DeviceSim,
        seed_dets: &[Detection],
        obs: &mut impl ObsSink,
    ) -> Result<GofResult, GofError> {
        let Some(branch) = self.branch else {
            return Err(GofError::NoBranch);
        };
        assert!(!frames.is_empty(), "empty GoF");
        obs.span_begin(SpanKind::Fallback, "", device.now_ms());

        let mut per_frame: Vec<Vec<Detection>> = Vec::with_capacity(frames.len());
        let mut tracker_ms = 0.0;
        let mut coasted_frames = 0usize;

        match &mut self.tracker {
            Some(tracker) => {
                tracker.reinit(seed_dets, &frames[0]);
                for frame in frames {
                    let base = latency::tracker_base_ms(
                        tracker.kind(),
                        branch.downsample,
                        tracker.num_tracks(),
                    ) * self.latency_factor;
                    tracker_ms += device.charge(OpUnit::Cpu, base);
                    per_frame.push(tracker.step(frame, device.rng()));
                }
            }
            None => {
                coasted_frames = frames.len();
                per_frame.extend(std::iter::repeat_n(seed_dets.to_vec(), coasted_frames));
            }
        }

        obs.span_end(device.now_ms());
        let first_frame_output = DetectorOutput {
            detections: per_frame[0].clone(),
            proposal_logits: Vec::new(),
        };
        Ok(GofResult {
            per_frame,
            detector_ms: 0.0,
            tracker_ms,
            first_frame_output,
            absorbed_faults: 0,
            coasted_frames,
            deadline_aborted: false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::branch::TrackerKind;
    use lr_device::DeviceKind;
    use lr_video::{Video, VideoSpec};

    fn video() -> Video {
        Video::generate(VideoSpec {
            id: 0,
            seed: 81,
            width: 640.0,
            height: 480.0,
            num_frames: 64,
        })
    }

    #[test]
    fn tracked_gof_charges_one_detection() {
        let v = video();
        let mut dev = DeviceSim::new(DeviceKind::JetsonTx2, 0.0, 1);
        let mut mbek = Mbek::new(DetectorFamily::FasterRcnn);
        mbek.set_branch(Branch::tracked(448, 20, TrackerKind::Kcf, 8, 4));
        let r = mbek.run_gof(&v.frames[0..8], &mut dev);
        assert_eq!(r.per_frame.len(), 8);
        assert!(r.detector_ms > 0.0);
        assert!(r.tracker_ms > 0.0);
        // One detection charge: far below 8x the detector cost.
        assert!(
            r.detector_ms
                < 2.0
                    * latency::detector_base_ms(
                        DetectorFamily::FasterRcnn,
                        crate::branch::DetectorConfig::new(448, 20),
                    )
        );
    }

    #[test]
    fn detector_only_branch_detects_every_frame() {
        let v = video();
        let mut dev = DeviceSim::new(DeviceKind::JetsonTx2, 0.0, 2);
        let mut mbek = Mbek::new(DetectorFamily::FasterRcnn);
        mbek.set_branch(Branch::detector_only(224, 5));
        let r = mbek.run_gof(&v.frames[0..4], &mut dev);
        assert_eq!(r.per_frame.len(), 4);
        assert_eq!(r.tracker_ms, 0.0);
        let one = latency::detector_base_ms(
            DetectorFamily::FasterRcnn,
            crate::branch::DetectorConfig::new(224, 5),
        );
        assert!(r.detector_ms > 3.0 * one, "expected ~4 detector charges");
    }

    #[test]
    fn tracked_branch_is_cheaper_per_frame_than_detector_only() {
        let v = video();
        let mut dev = DeviceSim::new(DeviceKind::JetsonTx2, 0.0, 3);
        let mut mbek = Mbek::new(DetectorFamily::FasterRcnn);

        mbek.set_branch(Branch::detector_only(448, 100));
        let dense = mbek.run_gof(&v.frames[0..20], &mut dev);

        mbek.set_branch(Branch::tracked(448, 100, TrackerKind::MedianFlow, 20, 4));
        let tracked = mbek.run_gof(&v.frames[0..20], &mut dev);

        assert!(
            tracked.mean_frame_ms() < dense.mean_frame_ms() / 3.0,
            "tracked {} vs dense {}",
            tracked.mean_frame_ms(),
            dense.mean_frame_ms()
        );
    }

    #[test]
    fn device_clock_advances_by_kernel_time() {
        let v = video();
        let mut dev = DeviceSim::new(DeviceKind::JetsonTx2, 0.0, 4);
        let mut mbek = Mbek::new(DetectorFamily::FasterRcnn);
        mbek.set_branch(Branch::tracked(320, 5, TrackerKind::Csrt, 8, 1));
        let before = dev.now_ms();
        let r = mbek.run_gof(&v.frames[0..8], &mut dev);
        assert!((dev.now_ms() - before - r.kernel_ms()).abs() < 1e-6);
    }

    #[test]
    fn first_frame_output_has_proposals() {
        let v = video();
        let mut dev = DeviceSim::new(DeviceKind::JetsonTx2, 0.0, 5);
        let mut mbek = Mbek::new(DetectorFamily::FasterRcnn);
        mbek.set_branch(Branch::tracked(576, 100, TrackerKind::Kcf, 8, 4));
        let r = mbek.run_gof(&v.frames[0..8], &mut dev);
        assert!(!r.first_frame_output.proposal_logits.is_empty());
    }

    #[test]
    #[should_panic(expected = "no branch configured")]
    fn running_without_branch_panics() {
        let v = video();
        let mut dev = DeviceSim::new(DeviceKind::JetsonTx2, 0.0, 6);
        let mut mbek = Mbek::new(DetectorFamily::FasterRcnn);
        let _ = mbek.run_gof(&v.frames[0..4], &mut dev);
    }

    #[test]
    fn try_run_gof_without_branch_is_typed_error() {
        let v = video();
        let mut dev = DeviceSim::new(DeviceKind::JetsonTx2, 0.0, 6);
        let mut mbek = Mbek::new(DetectorFamily::FasterRcnn);
        let err = mbek
            .try_run_gof(&v.frames[0..4], &mut dev, &GofOptions::default())
            .unwrap_err();
        assert_eq!(err, GofError::NoBranch);
    }

    #[test]
    fn try_run_gof_matches_run_gof_without_faults() {
        let v = video();
        let mut dev_a = DeviceSim::new(DeviceKind::JetsonTx2, 0.25, 7);
        let mut dev_b = DeviceSim::new(DeviceKind::JetsonTx2, 0.25, 7);
        let mut mbek_a = Mbek::new(DetectorFamily::FasterRcnn);
        let mut mbek_b = Mbek::new(DetectorFamily::FasterRcnn);
        mbek_a.set_branch(Branch::tracked(448, 20, TrackerKind::Kcf, 8, 4));
        mbek_b.set_branch(Branch::tracked(448, 20, TrackerKind::Kcf, 8, 4));
        let a = mbek_a.run_gof(&v.frames[0..8], &mut dev_a);
        let b = mbek_b
            .try_run_gof(&v.frames[0..8], &mut dev_b, &GofOptions::default())
            .unwrap();
        assert_eq!(a.detector_ms.to_bits(), b.detector_ms.to_bits());
        assert_eq!(a.tracker_ms.to_bits(), b.tracker_ms.to_bits());
        assert_eq!(a.per_frame.len(), b.per_frame.len());
        assert_eq!(b.absorbed_faults, 0);
        assert_eq!(b.coasted_frames, 0);
        assert!(!b.deadline_aborted);
    }

    #[test]
    fn certain_fault_on_detection_frame_propagates() {
        let v = video();
        let mut dev = DeviceSim::new(DeviceKind::JetsonTx2, 0.0, 8);
        dev.set_fault_plan(Some(lr_device::FaultPlan::generate(
            lr_device::FaultConfig {
                transient_rate: 1.0,
                stall_rate: 0.0,
                ..lr_device::FaultConfig::moderate(11)
            },
        )));
        let mut mbek = Mbek::new(DetectorFamily::FasterRcnn);
        mbek.set_branch(Branch::tracked(448, 20, TrackerKind::Kcf, 8, 4));
        let err = mbek
            .try_run_gof(&v.frames[0..8], &mut dev, &GofOptions::default())
            .unwrap_err();
        match err {
            GofError::DetectorFault { wasted_ms } => assert!(wasted_ms > 0.0),
            other => panic!("expected DetectorFault, got {other:?}"),
        }
    }

    #[test]
    fn mid_gof_fault_is_absorbed_on_detector_only_branch() {
        let v = video();
        // Scan seeds for a plan whose first GPU draw passes but a later
        // one fails — absorption only exists for mid-GoF failures.
        let mut found = false;
        for seed in 0..64 {
            let mut dev = DeviceSim::new(DeviceKind::JetsonTx2, 0.0, 9);
            dev.set_fault_plan(Some(lr_device::FaultPlan::generate(
                lr_device::FaultConfig {
                    transient_rate: 0.4,
                    stall_rate: 0.0,
                    ..lr_device::FaultConfig::moderate(seed)
                },
            )));
            let mut mbek = Mbek::new(DetectorFamily::FasterRcnn);
            mbek.set_branch(Branch::detector_only(224, 5));
            if let Ok(r) = mbek.try_run_gof(&v.frames[0..8], &mut dev, &GofOptions::default()) {
                if r.absorbed_faults > 0 {
                    assert_eq!(r.per_frame.len(), 8);
                    found = true;
                    break;
                }
            }
        }
        assert!(found, "no seed produced a mid-GoF absorbed fault");
    }

    #[test]
    fn deadline_watchdog_coasts_remaining_frames() {
        let v = video();
        let mut dev = DeviceSim::new(DeviceKind::JetsonTx2, 0.0, 10);
        let mut mbek = Mbek::new(DetectorFamily::FasterRcnn);
        mbek.set_branch(Branch::tracked(448, 20, TrackerKind::Kcf, 8, 4));
        let opts = GofOptions {
            deadline_ms: Some(0.01),
        };
        let r = mbek.try_run_gof(&v.frames[0..8], &mut dev, &opts).unwrap();
        assert!(r.deadline_aborted);
        assert_eq!(r.coasted_frames, 7);
        assert_eq!(r.per_frame.len(), 8);
        assert_eq!(r.tracker_ms, 0.0);
    }

    #[test]
    fn fallback_gof_tracks_from_seed_detections() {
        let v = video();
        let mut dev = DeviceSim::new(DeviceKind::JetsonTx2, 0.0, 11);
        let mut mbek = Mbek::new(DetectorFamily::FasterRcnn);
        mbek.set_branch(Branch::tracked(448, 20, TrackerKind::Kcf, 8, 4));
        let seeded = mbek.run_gof(&v.frames[0..8], &mut dev);
        let seed_dets = seeded.per_frame.last().unwrap().clone();
        let r = mbek
            .run_gof_fallback(&v.frames[8..16], &mut dev, &seed_dets)
            .unwrap();
        assert_eq!(r.per_frame.len(), 8);
        assert_eq!(r.detector_ms, 0.0);
        assert!(r.tracker_ms > 0.0);
        assert_eq!(r.coasted_frames, 0);
        assert!(r.first_frame_output.proposal_logits.is_empty());
    }

    #[test]
    fn fallback_gof_coasts_on_detector_only_branch() {
        let v = video();
        let mut dev = DeviceSim::new(DeviceKind::JetsonTx2, 0.0, 12);
        let mut mbek = Mbek::new(DetectorFamily::FasterRcnn);
        mbek.set_branch(Branch::tracked(448, 20, TrackerKind::Kcf, 8, 4));
        let seeded = mbek.run_gof(&v.frames[0..8], &mut dev);
        let seed_dets = seeded.per_frame.last().unwrap().clone();
        mbek.set_branch(Branch::detector_only(224, 5));
        let before = dev.now_ms();
        let r = mbek
            .run_gof_fallback(&v.frames[8..16], &mut dev, &seed_dets)
            .unwrap();
        assert_eq!(r.per_frame.len(), 8);
        assert_eq!(r.coasted_frames, 8);
        assert_eq!(r.kernel_ms(), 0.0);
        assert_eq!(dev.now_ms(), before);
        assert_eq!(r.per_frame[0].len(), seed_dets.len());
    }
}
