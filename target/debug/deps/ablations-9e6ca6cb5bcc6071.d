/root/repo/target/debug/deps/ablations-9e6ca6cb5bcc6071.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-9e6ca6cb5bcc6071: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
