/root/repo/target/debug/deps/pareto-056d198c32dcd3c7.d: crates/bench/src/bin/pareto.rs

/root/repo/target/debug/deps/pareto-056d198c32dcd3c7: crates/bench/src/bin/pareto.rs

crates/bench/src/bin/pareto.rs:
