/root/repo/target/debug/examples/traffic_monitor-0964dc9c193a3184.d: examples/traffic_monitor.rs

/root/repo/target/debug/examples/traffic_monitor-0964dc9c193a3184: examples/traffic_monitor.rs

examples/traffic_monitor.rs:
