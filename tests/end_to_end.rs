//! Cross-crate integration tests: the full offline-train / online-run
//! pipeline, exercised end to end at a small scale.

use std::sync::Arc;

use litereconfig::offline::{profile_videos, OfflineConfig};
use litereconfig::pipeline::{run_adaptive, RunConfig};
use litereconfig::trainer::{train_scheduler, TrainConfig};
use litereconfig::{FeatureService, Policy, TrainedScheduler};
use lr_device::DeviceKind;
use lr_kernels::branch::small_catalog;
use lr_kernels::DetectorFamily;
use lr_video::{Dataset, DatasetConfig, Split, Video};

/// Builds a small trained scheduler plus validation videos (shared by the
/// tests in this file; everything is deterministic per id_offset).
fn build(id_offset: u32) -> (Arc<TrainedScheduler>, Vec<Video>, FeatureService) {
    let dataset = Dataset::new(DatasetConfig {
        train_vision: 0,
        train_scheduler: 3,
        validation: 2,
        id_offset,
    });
    let train = dataset.videos(Split::TrainScheduler);
    let val = dataset.videos(Split::Validation);
    let mut svc = FeatureService::new();
    let cfg = OfflineConfig {
        snippet_len: 50,
        ..OfflineConfig::paper(small_catalog(), DetectorFamily::FasterRcnn)
    };
    let ds = profile_videos(&train, &cfg, &mut svc);
    let trained = Arc::new(train_scheduler(
        &ds,
        DetectorFamily::FasterRcnn,
        &TrainConfig::tiny(),
    ));
    (trained, val, svc)
}

#[test]
fn full_pipeline_meets_loose_slo_with_nontrivial_accuracy() {
    let (trained, val, mut svc) = build(20_000);
    let cfg = RunConfig::clean(DeviceKind::JetsonTx2, 0.0, 100.0, 1);
    let r = run_adaptive(&val, trained, Policy::CostBenefit, &cfg, &mut svc);
    assert!(r.map > 0.1, "mAP {} too low", r.map);
    assert!(r.meets_slo(100.0), "P95 {} violates SLO", r.latency.p95());
    let frames: usize = val.iter().map(Video::len).sum();
    assert_eq!(r.breakdown.frames, frames);
}

#[test]
fn tighter_slo_gives_lower_latency() {
    let (trained, val, mut svc) = build(21_000);
    let tight = run_adaptive(
        &val,
        trained.clone(),
        Policy::MinCost,
        &RunConfig::clean(DeviceKind::JetsonTx2, 0.0, 25.0, 2),
        &mut svc,
    );
    let loose = run_adaptive(
        &val,
        trained,
        Policy::MinCost,
        &RunConfig::clean(DeviceKind::JetsonTx2, 0.0, 100.0, 2),
        &mut svc,
    );
    // At this tiny training scale the model may settle on the same cheap
    // branch under both SLOs, so allow ties — but the tight run must never
    // be meaningfully slower.
    assert!(
        tight.latency.p95() <= loose.latency.p95() + 1.0,
        "tight {} > loose {}",
        tight.latency.p95(),
        loose.latency.p95()
    );
    assert!(tight.meets_slo(25.0), "tight run violated its own SLO");
}

#[test]
fn xavier_is_faster_than_tx2_for_the_same_policy() {
    let (trained, val, mut svc) = build(22_000);
    // Identical SLO: the Xavier run should show lower or equal detector
    // time for the same decisions envelope.
    let tx2 = run_adaptive(
        &val,
        trained.clone(),
        Policy::MinCost,
        &RunConfig::clean(DeviceKind::JetsonTx2, 0.0, 50.0, 3),
        &mut svc,
    );
    let xavier = run_adaptive(
        &val,
        trained,
        Policy::MinCost,
        &RunConfig::clean(DeviceKind::AgxXavier, 0.0, 50.0, 3),
        &mut svc,
    );
    // Xavier can afford at least the accuracy of the TX2 at equal SLO
    // (it typically exceeds it), and its latency stays within the SLO.
    assert!(xavier.meets_slo(50.0));
    assert!(xavier.map > tx2.map - 0.05);
}

#[test]
fn contention_blows_up_non_adaptive_but_not_adaptive_runs() {
    let (trained, val, mut svc) = build(23_000);
    let mut cfg = RunConfig::clean(DeviceKind::JetsonTx2, 50.0, 50.0, 4);
    let adaptive = run_adaptive(&val, trained.clone(), Policy::MinCost, &cfg, &mut svc);
    cfg.contention_adaptive = false;
    let frozen = run_adaptive(&val, trained, Policy::MinCost, &cfg, &mut svc);
    assert!(
        adaptive.latency.p95() < frozen.latency.p95(),
        "adaptive {} !< frozen {}",
        adaptive.latency.p95(),
        frozen.latency.p95()
    );
}

#[test]
fn mobilenet_variant_pays_for_its_feature() {
    let (trained, val, mut svc) = build(24_000);
    let cfg = RunConfig::clean(DeviceKind::JetsonTx2, 0.0, 33.3, 5);
    let mincost = run_adaptive(&val, trained.clone(), Policy::MinCost, &cfg, &mut svc);
    let mobilenet = run_adaptive(
        &val,
        trained,
        Policy::MaxContent(lr_features::FeatureKind::MobileNetV2),
        &cfg,
        &mut svc,
    );
    // Paying 163 ms per decision under a 33 ms budget must cost either
    // latency or accuracy relative to the content-agnostic variant.
    assert!(
        mobilenet.latency.p95() > mincost.latency.p95() - 1.0 || mobilenet.map < mincost.map + 0.02
    );
}

#[test]
fn runs_are_reproducible_per_seed() {
    let (trained, val, mut svc) = build(25_000);
    let cfg = RunConfig::clean(DeviceKind::JetsonTx2, 0.0, 50.0, 6);
    let a = run_adaptive(&val, trained.clone(), Policy::MinCost, &cfg, &mut svc);
    let b = run_adaptive(&val, trained, Policy::MinCost, &cfg, &mut svc);
    assert_eq!(a.map, b.map);
    assert_eq!(a.latency.p95(), b.latency.p95());
    assert_eq!(a.switches.len(), b.switches.len());
}

#[test]
fn preheating_suppresses_switching_outliers() {
    let (trained, val, mut svc) = build(26_000);
    let mut cfg = RunConfig::clean(DeviceKind::JetsonTx2, 0.0, 50.0, 7);
    cfg.preheat = false;
    let cold = run_adaptive(&val, trained.clone(), Policy::CostBenefit, &cfg, &mut svc);
    cfg.preheat = true;
    let warm = run_adaptive(&val, trained, Policy::CostBenefit, &cfg, &mut svc);
    let outliers =
        |r: &litereconfig::RunResult| r.switches.iter().filter(|s| s.cost_ms > 500.0).count();
    assert!(
        outliers(&warm) <= outliers(&cold),
        "preheating must not add outliers"
    );
}
