//! Criterion micro-benchmarks over the hot paths of the reproduction:
//! feature extraction, accuracy-model inference, the scheduler decision,
//! GoF execution, and mAP evaluation.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};

use litereconfig::offline::{profile_videos, OfflineConfig};
use litereconfig::trainer::{train_scheduler, TrainConfig};
use litereconfig::{FeatureService, Policy, Scheduler};
use lr_device::{DeviceKind, DeviceSim};
use lr_eval::MapAccumulator;
use lr_features::FeatureKind;
use lr_kernels::branch::small_catalog;
use lr_kernels::{Branch, DetectorFamily, Mbek, TrackerKind};
use lr_video::raster::rasterize;
use lr_video::{Dataset, DatasetConfig, Split, Video, VideoSpec};

fn test_video() -> Video {
    Video::generate(VideoSpec {
        id: 0,
        seed: 4242,
        width: 640.0,
        height: 480.0,
        num_frames: 64,
    })
}

fn bench_features(c: &mut Criterion) {
    let v = test_video();
    let img = rasterize(&v.frames[0], &v.style, 64);
    let mut svc = FeatureService::new();
    let logits = vec![vec![0.0f32; 31]; 8];

    let mut g = c.benchmark_group("features");
    g.bench_function("rasterize_64", |b| {
        b.iter(|| rasterize(&v.frames[0], &v.style, 64))
    });
    g.bench_function("hoc", |b| b.iter(|| lr_features::hoc::extract(&img)));
    g.bench_function("hog", |b| b.iter(|| lr_features::hog::extract(&img)));
    g.bench_function("resnet50_standin", |b| {
        b.iter(|| svc.extract_heavy(FeatureKind::ResNet50, &v, 0, None))
    });
    g.bench_function("cpop", |b| {
        b.iter(|| lr_features::cpop::cpop_vector(&logits))
    });
    g.finish();
}

fn bench_kernels(c: &mut Criterion) {
    let v = test_video();
    let mut dev = DeviceSim::new(DeviceKind::JetsonTx2, 0.0, 1);
    let mut mbek = Mbek::new(DetectorFamily::FasterRcnn);
    mbek.set_branch(Branch::tracked(448, 100, TrackerKind::Csrt, 8, 4));

    let mut g = c.benchmark_group("kernels");
    g.bench_function("gof_8_frames", |b| {
        b.iter(|| mbek.run_gof(&v.frames[0..8], &mut dev))
    });
    let det = lr_kernels::DetectorSim::new(DetectorFamily::FasterRcnn);
    g.bench_function("detect_frame", |b| {
        b.iter(|| det.detect(&v.frames[0], lr_kernels::DetectorConfig::new(448, 100), dev.rng()))
    });
    g.finish();
}

fn bench_scheduler(c: &mut Criterion) {
    let dataset = Dataset::new(DatasetConfig {
        train_vision: 0,
        train_scheduler: 2,
        validation: 0,
        id_offset: 30_000,
    });
    let train = dataset.videos(Split::TrainScheduler);
    let mut svc = FeatureService::new();
    let cfg = OfflineConfig {
        snippet_len: 50,
        ..OfflineConfig::paper(small_catalog(), DetectorFamily::FasterRcnn)
    };
    let ds = profile_videos(&train, &cfg, &mut svc);
    let trained = Arc::new(train_scheduler(
        &ds,
        DetectorFamily::FasterRcnn,
        &TrainConfig::tiny(),
    ));
    let v = test_video();
    let mut dev = DeviceSim::new(DeviceKind::JetsonTx2, 0.0, 2);

    let mut g = c.benchmark_group("scheduler");
    g.bench_function("decide_mincost", |b| {
        let mut s = Scheduler::new(trained.clone(), Policy::MinCost, 50.0);
        b.iter(|| s.decide(&v, 0, &[], &mut svc, &mut dev))
    });
    g.bench_function("decide_cost_benefit", |b| {
        let mut s = Scheduler::new(trained.clone(), Policy::CostBenefit, 50.0);
        b.iter(|| s.decide(&v, 0, &[], &mut svc, &mut dev))
    });
    let light_model = &trained.accuracy[&FeatureKind::Light];
    g.bench_function("accuracy_mlp_infer", |b| {
        b.iter(|| light_model.predict(&[0.4, 0.3, 0.2, 0.01], None))
    });
    g.finish();
}

fn bench_eval(c: &mut Criterion) {
    let v = test_video();
    let mut dev = DeviceSim::new(DeviceKind::JetsonTx2, 0.0, 3);
    let det = lr_kernels::DetectorSim::new(DetectorFamily::FasterRcnn);
    let frames: Vec<_> = v
        .frames
        .iter()
        .map(|f| {
            let out = det.detect(f, lr_kernels::DetectorConfig::new(448, 100), dev.rng());
            (
                litereconfig::offline::to_gt_boxes(f),
                litereconfig::offline::to_pred_boxes(&out.detections),
            )
        })
        .collect();

    c.bench_function("map_64_frames", |b| {
        b.iter(|| {
            let mut acc = MapAccumulator::new();
            for (gt, pred) in &frames {
                acc.add_frame(gt, pred);
            }
            acc.finalize(0.5).map
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_features, bench_kernels, bench_scheduler, bench_eval
}
criterion_main!(benches);
