//! End-to-end offline training: profiled dataset -> trained scheduler.

use std::collections::BTreeMap;

use lr_device::SwitchingCostModel;
use lr_features::FeatureKind;
use lr_kernels::DetectorFamily;

use crate::bentable::BenTable;
use crate::offline::OfflineDataset;
use crate::predictor::{AccuracyModel, AccuracyModelConfig, LatencyModel};
use crate::scheduler::TrainedScheduler;

/// Offline training configuration.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Accuracy-model hyper-parameters.
    pub model: AccuracyModelConfig,
    /// Heavy features to train content models for (the full system trains
    /// all five; baseline families train none).
    pub heavy_kinds: Vec<FeatureKind>,
    /// SLO buckets for the `Ben(·)` tables.
    pub slos_ms: Vec<f64>,
    /// Training seed.
    pub seed: u64,
}

impl TrainConfig {
    /// The paper's full configuration over the TX2 SLO set.
    pub fn paper() -> Self {
        Self {
            model: AccuracyModelConfig::paper(),
            heavy_kinds: lr_features::HEAVY_FEATURE_KINDS.to_vec(),
            slos_ms: vec![20.0, 33.3, 50.0, 100.0],
            seed: 0x72_47_11,
        }
    }

    /// A budget-friendly configuration for large sweeps.
    pub fn fast() -> Self {
        Self {
            model: AccuracyModelConfig::fast(),
            ..Self::paper()
        }
    }

    /// A tiny configuration for unit tests.
    pub fn tiny() -> Self {
        Self {
            model: AccuracyModelConfig::tiny(),
            heavy_kinds: vec![FeatureKind::HoC],
            slos_ms: vec![33.3, 100.0],
            seed: 0x72_47_11,
        }
    }

    /// Content-agnostic training (light model only) for the SSD+/YOLO+
    /// baselines.
    pub fn light_only(mut self) -> Self {
        self.heavy_kinds.clear();
        self
    }
}

/// Trains every scheduler component from an offline dataset.
///
/// # Panics
///
/// Panics on an empty dataset.
pub fn train_scheduler(
    dataset: &OfflineDataset,
    family: DetectorFamily,
    cfg: &TrainConfig,
) -> TrainedScheduler {
    assert!(!dataset.is_empty(), "cannot train on an empty dataset");

    // Per-feature models are seeded independently (`seed ^ kind`), so
    // they can train concurrently with results identical to the
    // sequential loop for any worker count.
    let kinds: Vec<FeatureKind> = std::iter::once(FeatureKind::Light)
        .chain(cfg.heavy_kinds.iter().copied())
        .collect();
    let pool = lr_pool::Pool::from_env();
    let models = pool.par_map(&kinds, |&kind| {
        AccuracyModel::train(kind, dataset, &cfg.model, cfg.seed)
    });
    let accuracy: BTreeMap<FeatureKind, AccuracyModel> = kinds.into_iter().zip(models).collect();

    let latency = LatencyModel::train(dataset);
    let ben = BenTable::compute(dataset, &accuracy, &cfg.slos_ms);

    let det_inference_ms = dataset
        .catalog
        .iter()
        .enumerate()
        .map(|(i, b)| {
            let mean: f64 = dataset
                .records
                .iter()
                .map(|r| r.branch_det_ms[i])
                .sum::<f64>()
                / dataset.records.len() as f64;
            mean * b.gof_size.max(1) as f64
        })
        .collect();

    TrainedScheduler {
        catalog: dataset.catalog.clone(),
        accuracy,
        latency,
        ben,
        switching: SwitchingCostModel::paper_default(),
        det_inference_ms,
        family,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::featsvc::FeatureService;
    use crate::offline::{profile_videos, OfflineConfig};
    use lr_kernels::branch::small_catalog;
    use lr_video::{Video, VideoSpec};

    fn dataset() -> OfflineDataset {
        let videos: Vec<Video> = (0..2)
            .map(|i| {
                Video::generate(VideoSpec {
                    id: i,
                    seed: 500 + i as u64,
                    width: 640.0,
                    height: 480.0,
                    num_frames: 80,
                })
            })
            .collect();
        let cfg = OfflineConfig {
            snippet_len: 40,
            catalog: small_catalog(),
            family: DetectorFamily::FasterRcnn,
            reference_detector: lr_kernels::DetectorConfig::new(576, 100),
            seed: 10,
        };
        profile_videos(&videos, &cfg, &mut FeatureService::new())
    }

    #[test]
    fn training_produces_all_components() {
        let ds = dataset();
        let trained = train_scheduler(&ds, DetectorFamily::FasterRcnn, &TrainConfig::tiny());
        assert!(trained.accuracy.contains_key(&FeatureKind::Light));
        assert!(trained.accuracy.contains_key(&FeatureKind::HoC));
        assert_eq!(trained.latency.num_branches(), ds.catalog.len());
        assert_eq!(trained.det_inference_ms.len(), ds.catalog.len());
        assert!(trained.det_inference_ms.iter().all(|&m| m > 0.0));
    }

    #[test]
    fn light_only_config_skips_content_models() {
        let ds = dataset();
        let cfg = TrainConfig::tiny().light_only();
        let trained = train_scheduler(&ds, DetectorFamily::Ssd, &cfg);
        assert_eq!(trained.accuracy.len(), 1);
        assert!(trained.accuracy.contains_key(&FeatureKind::Light));
    }

    #[test]
    fn detector_inference_cost_scales_with_shape() {
        let ds = dataset();
        let trained = train_scheduler(&ds, DetectorFamily::FasterRcnn, &TrainConfig::tiny());
        let light = trained
            .catalog
            .iter()
            .position(|b| b.detector.shape == 224 && b.detector.nprop == 5)
            .unwrap();
        let heavy = trained
            .catalog
            .iter()
            .position(|b| b.detector.shape == 448 && b.detector.nprop == 100)
            .unwrap();
        assert!(trained.det_inference_ms[heavy] > trained.det_inference_ms[light]);
    }
}
