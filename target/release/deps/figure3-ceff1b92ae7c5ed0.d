/root/repo/target/release/deps/figure3-ceff1b92ae7c5ed0.d: crates/bench/src/bin/figure3.rs

/root/repo/target/release/deps/figure3-ceff1b92ae7c5ed0: crates/bench/src/bin/figure3.rs

crates/bench/src/bin/figure3.rs:
