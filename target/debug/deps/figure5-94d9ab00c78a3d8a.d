/root/repo/target/debug/deps/figure5-94d9ab00c78a3d8a.d: crates/bench/src/bin/figure5.rs

/root/repo/target/debug/deps/figure5-94d9ab00c78a3d8a: crates/bench/src/bin/figure5.rs

crates/bench/src/bin/figure5.rs:
