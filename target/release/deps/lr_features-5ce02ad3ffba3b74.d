/root/repo/target/release/deps/lr_features-5ce02ad3ffba3b74.d: crates/features/src/lib.rs crates/features/src/cost.rs crates/features/src/cpop.rs crates/features/src/deep.rs crates/features/src/hoc.rs crates/features/src/hog.rs crates/features/src/light.rs

/root/repo/target/release/deps/liblr_features-5ce02ad3ffba3b74.rlib: crates/features/src/lib.rs crates/features/src/cost.rs crates/features/src/cpop.rs crates/features/src/deep.rs crates/features/src/hoc.rs crates/features/src/hog.rs crates/features/src/light.rs

/root/repo/target/release/deps/liblr_features-5ce02ad3ffba3b74.rmeta: crates/features/src/lib.rs crates/features/src/cost.rs crates/features/src/cpop.rs crates/features/src/deep.rs crates/features/src/hoc.rs crates/features/src/hog.rs crates/features/src/light.rs

crates/features/src/lib.rs:
crates/features/src/cost.rs:
crates/features/src/cpop.rs:
crates/features/src/deep.rs:
crates/features/src/hoc.rs:
crates/features/src/hog.rs:
crates/features/src/light.rs:
