/root/repo/target/release/examples/traffic_monitor-e9e7014d99455227.d: examples/traffic_monitor.rs

/root/repo/target/release/examples/traffic_monitor-e9e7014d99455227: examples/traffic_monitor.rs

examples/traffic_monitor.rs:
