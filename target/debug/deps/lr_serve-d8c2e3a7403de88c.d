/root/repo/target/debug/deps/lr_serve-d8c2e3a7403de88c.d: crates/serve/src/lib.rs crates/serve/src/admission.rs crates/serve/src/dispatch.rs crates/serve/src/report.rs crates/serve/src/shared.rs crates/serve/src/slo.rs

/root/repo/target/debug/deps/liblr_serve-d8c2e3a7403de88c.rlib: crates/serve/src/lib.rs crates/serve/src/admission.rs crates/serve/src/dispatch.rs crates/serve/src/report.rs crates/serve/src/shared.rs crates/serve/src/slo.rs

/root/repo/target/debug/deps/liblr_serve-d8c2e3a7403de88c.rmeta: crates/serve/src/lib.rs crates/serve/src/admission.rs crates/serve/src/dispatch.rs crates/serve/src/report.rs crates/serve/src/shared.rs crates/serve/src/slo.rs

crates/serve/src/lib.rs:
crates/serve/src/admission.rs:
crates/serve/src/dispatch.rs:
crates/serve/src/report.rs:
crates/serve/src/shared.rs:
crates/serve/src/slo.rs:
