//! Content feature extractors and their cost table (paper Table 1).
//!
//! The scheduler chooses among six features when predicting per-branch
//! accuracy:
//!
//! | Feature      | Dim (paper) | Dim (ours) | Extract unit | Notes |
//! |--------------|-------------|------------|--------------|-------|
//! | Light        | 4           | 4          | CPU          | height, width, #objects, mean object size |
//! | HoC          | 768         | 768        | CPU          | 256-bin histogram per RGB channel — real implementation |
//! | HOG          | 5400        | 1764       | CPU          | real HOG over the 64x64 raster (dim scales with raster size) |
//! | ResNet50     | 1024        | 1024       | GPU          | pooled detector backbone features — fixed-weight conv stack |
//! | CPoP         | 31          | 31         | GPU          | class predictions on proposals, from the detector |
//! | MobileNetV2  | 1280        | 1280       | GPU          | external extractor — fixed-weight conv stack |
//!
//! HoC and HOG are computed for real from rasterized frames. The two
//! "deep" features are fixed-weight random convolutional stacks (see
//! `lr-nn::conv`) — deterministic, content-dependent embeddings standing
//! in for pretrained CNNs, per the substitution table in `DESIGN.md`. CPoP
//! is assembled from the simulated detector's per-proposal class logits by
//! the caller via [`cpop::cpop_vector`].
//!
//! **Costs are virtual.** The wall-clock time these Rust implementations
//! take is irrelevant to the experiments; whenever a feature is extracted
//! or a prediction model queried, the pipeline charges the paper's Table 1
//! TX2 milliseconds to the virtual device clock. [`cost::FeatureCost`]
//! holds those numbers, including the *marginal* extraction cost of
//! ResNet50/CPoP when the MBEK's Faster R-CNN already computed them as a
//! byproduct (the effect Figure 2 highlights).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod cpop;
pub mod deep;
pub mod hoc;
pub mod hog;
pub mod light;

pub use cost::{FeatureCost, FeatureKind, ALL_FEATURE_KINDS, HEAVY_FEATURE_KINDS};
pub use deep::DeepExtractors;
pub use light::LightFeatures;
