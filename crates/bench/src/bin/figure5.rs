//! Figure 5: switching overhead between execution branches — offline
//! heatmap (deterministic model) and online heatmaps at two SLOs with the
//! cold-miss outliers.
//!
//! Usage: `cargo run --release -p lr-bench --bin figure5 [small|paper]`

use litereconfig::pipeline::run_adaptive;
use litereconfig::protocols::AdaptiveProtocol;
use lr_bench::{scale_from_args, Suite};
use lr_device::{DeviceKind, SwitchingCostModel};
use lr_eval::TextTable;
use lr_kernels::{latency, DetectorConfig, DetectorFamily};

/// The (shape, nprop) branch axes of Figure 5.
const AXES: [(u32, u32); 8] = [
    (224, 1),
    (224, 100),
    (320, 1),
    (320, 100),
    (448, 1),
    (448, 100),
    (576, 1),
    (576, 100),
];

fn main() {
    // (a) Offline heatmap from the deterministic model.
    let model = SwitchingCostModel::paper_default();
    let header: Vec<String> = std::iter::once("src \\ dst".to_string())
        .chain(AXES.iter().map(|(s, n)| format!("{s}x{n}")))
        .collect();
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut offline = TextTable::new(&header_refs);
    for &(ss, sn) in &AXES {
        let src_ms =
            latency::detector_base_ms(DetectorFamily::FasterRcnn, DetectorConfig::new(ss, sn));
        let mut row = vec![format!("{ss}x{sn}")];
        for &(ds, dn) in &AXES {
            let dst_ms =
                latency::detector_base_ms(DetectorFamily::FasterRcnn, DetectorConfig::new(ds, dn));
            row.push(format!("{:.1}", model.offline_cost_ms(src_ms, dst_ms)));
        }
        offline.add_row_owned(row);
    }
    println!("Figure 5(a): offline switching overhead between branches (ms)\n");
    println!("{}", offline.render());

    // (b) Online switching costs observed in real runs WITHOUT preheating,
    // exposing the 1-5 s cold-miss outliers at non-repeating cells. The
    // two SLO runs are independent, so they fan out over the pool.
    let suite = Suite::build(scale_from_args());
    let slos = [33.3f64, 50.0];
    let raster_size = suite.svc.raster_size();
    let pool = lr_pool::Pool::from_env();
    let all_costs: Vec<Vec<f64>> = pool.par_map_init(
        &slos,
        || litereconfig::FeatureService::with_raster_size(raster_size),
        |svc, run_idx, &slo| {
            let mut cfg = AdaptiveProtocol::LiteReconfig.run_config(
                DeviceKind::JetsonTx2,
                0.0,
                slo,
                90 + run_idx as u64,
            );
            cfg.preheat = false;
            let r = run_adaptive(
                &suite.val_videos,
                suite.frcnn.clone(),
                litereconfig::Policy::CostBenefit,
                &cfg,
                svc,
            );
            r.switches.iter().map(|s| s.cost_ms).collect()
        },
    );
    for (slo, costs) in slos.into_iter().zip(all_costs) {
        let outliers = costs.iter().filter(|&&c| c > 500.0).count();
        let typical: Vec<f64> = costs.iter().copied().filter(|&c| c <= 500.0).collect();
        let mean_typical = typical.iter().sum::<f64>() / typical.len().max(1) as f64;
        println!(
            "Figure 5(b) online, {slo} ms SLO: {} switches, typical cost {:.1} ms, \
             {} cold-miss outliers (1-5 s range: {})",
            costs.len(),
            mean_typical,
            outliers,
            costs
                .iter()
                .filter(|&&c| (1000.0..5500.0).contains(&c))
                .count()
        );
        // A small sample of the largest observed switches.
        let mut sorted = costs.clone();
        sorted.sort_by(|a, b| b.total_cmp(a));
        let top: Vec<String> = sorted.iter().take(5).map(|c| format!("{c:.0}")).collect();
        println!("  largest observed switch costs (ms): {}", top.join(", "));
    }
    println!(
        "\nAs in the paper, outliers appear only at first use of a branch \
         (cold graph build) and vanish as the system warms up; the \
         experiments in Table 2 preheat all branches."
    );
}
