/root/repo/target/debug/deps/lr_bench-4f529b96a80d1910.d: crates/bench/src/lib.rs crates/bench/src/suite.rs

/root/repo/target/debug/deps/lr_bench-4f529b96a80d1910: crates/bench/src/lib.rs crates/bench/src/suite.rs

crates/bench/src/lib.rs:
crates/bench/src/suite.rs:
