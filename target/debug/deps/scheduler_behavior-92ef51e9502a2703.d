/root/repo/target/debug/deps/scheduler_behavior-92ef51e9502a2703.d: tests/scheduler_behavior.rs

/root/repo/target/debug/deps/scheduler_behavior-92ef51e9502a2703: tests/scheduler_behavior.rs

tests/scheduler_behavior.rs:
