//! The JSONL trace format: serialization of an [`ObsBundle`] and a
//! minimal, dependency-free JSON parser for reading traces back.
//!
//! One JSON object per line. Floats are rendered with Rust's shortest
//! round-trip `Display`, so a parsed-and-reserialized trace is
//! byte-identical — the property the determinism tests lean on.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::metrics::Metrics;
use crate::record::{DecisionRecord, SpanRecord, TraceEvent};

/// A completed run's observability output: the merged metrics registry
/// and the event log in `(stream, gof)` order (rounds appended last).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ObsBundle {
    /// Metrics merged across all streams in stream order.
    pub metrics: Metrics,
    /// All trace events. Empty in `Counting` mode.
    pub events: Vec<TraceEvent>,
}

impl ObsBundle {
    /// The decision records in the bundle, in emission order.
    pub fn decisions(&self) -> impl Iterator<Item = &DecisionRecord> + '_ {
        self.events.iter().filter_map(|e| match e {
            TraceEvent::Decision(d) => Some(d.as_ref()),
            _ => None,
        })
    }

    /// The spans in the bundle, in emission order.
    pub fn spans(&self) -> impl Iterator<Item = &SpanRecord> + '_ {
        self.events.iter().filter_map(|e| match e {
            TraceEvent::Span(s) => Some(s),
            _ => None,
        })
    }

    /// Serialize the bundle as JSONL: a meta header, every event, then
    /// the metrics (counters and histograms).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{{\"type\":\"meta\",\"version\":1,\"events\":{}}}",
            self.events.len()
        );
        for ev in &self.events {
            match ev {
                TraceEvent::Span(s) => {
                    let _ = writeln!(
                        out,
                        "{{\"type\":\"span\",\"stream\":{},\"gof\":{},\"kind\":{},\"label\":{},\"depth\":{},\"t0\":{},\"t1\":{}}}",
                        s.stream,
                        s.gof,
                        json_str(s.kind.name()),
                        json_str(s.label),
                        s.depth,
                        json_f64(s.t0),
                        json_f64(s.t1),
                    );
                }
                TraceEvent::Decision(d) => {
                    let _ = writeln!(out, "{}", decision_line(d));
                }
                TraceEvent::Round(r) => {
                    let members: Vec<String> = r.members.iter().map(|m| m.to_string()).collect();
                    let _ = writeln!(
                        out,
                        "{{\"type\":\"round\",\"idx\":{},\"threshold_ms\":{},\"members\":[{}]}}",
                        r.idx,
                        json_f64(r.threshold_ms),
                        members.join(","),
                    );
                }
            }
        }
        for (name, v) in self.metrics.counters() {
            let _ = writeln!(
                out,
                "{{\"type\":\"counter\",\"name\":{},\"value\":{v}}}",
                json_str(name)
            );
        }
        for (name, h) in self.metrics.hists() {
            let bounds: Vec<String> = h.bounds().iter().map(|&b| json_f64(b)).collect();
            let counts: Vec<String> = h.counts().iter().map(|c| c.to_string()).collect();
            let _ = writeln!(
                out,
                "{{\"type\":\"hist\",\"name\":{},\"bounds\":[{}],\"counts\":[{}],\"sum\":{},\"count\":{}}}",
                json_str(name),
                bounds.join(","),
                counts.join(","),
                json_f64(h.sum()),
                h.count(),
            );
        }
        out
    }
}

fn decision_line(d: &DecisionRecord) -> String {
    let mut s = String::from("{\"type\":\"decision\"");
    let _ = write!(
        s,
        ",\"stream\":{},\"gof\":{},\"video\":{},\"start_frame\":{},\"t_ms\":{}",
        d.stream,
        d.gof,
        d.video_idx,
        d.start_frame,
        json_f64(d.t_ms)
    );
    let _ = write!(
        s,
        ",\"chosen_key\":{},\"prev_key\":{},\"switched\":{},\"frames\":{}",
        json_str(&d.chosen_key),
        json_str(&d.prev_key),
        d.switched,
        d.frames
    );
    let _ = write!(
        s,
        ",\"sched_ms\":{},\"switch_ms\":{},\"kernel_ms\":{},\"overhead_ms\":{},\"wasted_ms\":{},\"per_frame_ms\":{},\"slowdown\":{}",
        json_f64(d.sched_ms),
        json_f64(d.switch_ms),
        json_f64(d.kernel_ms),
        json_f64(d.overhead_ms),
        json_f64(d.wasted_ms),
        json_f64(d.per_frame_ms),
        json_f64(d.slowdown)
    );
    let degrades: Vec<String> = d.degrades.iter().map(|n| json_str(n)).collect();
    let _ = write!(
        s,
        ",\"faults\":{},\"degraded\":{},\"degrades\":[{}]",
        d.faults,
        d.degraded,
        degrades.join(",")
    );
    let e = &d.explain;
    let feats: Vec<String> = e
        .features
        .iter()
        .map(|f| {
            format!(
                "{{\"name\":{},\"ben\":{}}}",
                json_str(f.name),
                json_f64(f.ben as f64)
            )
        })
        .collect();
    let accs: Vec<String> = e.branch_acc.iter().map(|&a| json_f64(a as f64)).collect();
    let kms: Vec<String> = e.branch_kernel_ms.iter().map(|&k| json_f64(k)).collect();
    let _ = write!(
        s,
        ",\"explain\":{{\"slo_ms\":{},\"budget_ms\":{},\"features\":[{}],\"branch_acc\":[{}],\"branch_kernel_ms\":[{}],\"s0_ms\":{},\"s_heavy_ms\":{},\"switch_pred_ms\":{},\"amortized_ms\":{},\"slack_ms\":{},\"chosen\":{},\"feasible\":{},\"cost_only\":{}}}",
        json_f64(e.slo_ms),
        json_f64(e.budget_ms),
        feats.join(","),
        accs.join(","),
        kms.join(","),
        json_f64(e.s0_ms),
        json_f64(e.s_heavy_ms),
        json_f64(e.switch_pred_ms),
        json_f64(e.amortized_ms),
        json_f64(e.slack_ms),
        e.chosen,
        e.feasible,
        e.cost_only
    );
    s.push('}');
    s
}

/// Render an `f64` as a JSON number. Rust's `Display` is
/// shortest-round-trip, so parsing the output yields the same bits;
/// non-finite values (which JSON cannot carry) map to `null`.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // `Display` omits ".0" for integral floats; keep them numbers.
        s
    } else {
        "null".to_string()
    }
}

/// Escape a string as a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A parsed JSON value. Minimal by design: enough to read traces back,
/// nothing more.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null` (also produced for non-finite floats).
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Any JSON number, held as `f64`.
    Num(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Arr(Vec<Value>),
    /// JSON object with ordered keys.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as a float, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is a whole non-negative
    /// number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }
}

/// Parse one JSON document.
pub fn parse_json(src: &str) -> Result<Value, String> {
    let bytes = src.as_bytes();
    let mut pos = 0;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing input at byte {pos}"));
    }
    Ok(v)
}

/// Parse a JSONL document: one JSON value per non-empty line.
pub fn parse_jsonl(src: &str) -> Result<Vec<Value>, String> {
    let mut out = Vec::new();
    for (i, line) in src.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = parse_json(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        out.push(v);
    }
    Ok(out)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(Value::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(_) => parse_num(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("expected {lit:?} at byte {pos}", pos = *pos))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Value::Num)
        .map_err(|e| format!("bad number {text:?}: {e}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(b.get(*pos), Some(&b'"'));
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|e| format!("bad \\u escape: {e}"))?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err("bad escape".to_string()),
                }
                *pos += 1;
            }
            Some(_) => {
                // Advance over one UTF-8 scalar.
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let Some(c) = rest.chars().next() else {
                    return Err("unterminated string".to_string());
                };
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    *pos += 1; // '{'
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {}", *pos));
        }
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {}", *pos));
        }
        *pos += 1;
        let v = parse_value(b, pos)?;
        map.insert(key, v);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{DecisionExplain, FeatureBen, RoundRecord};
    use crate::sink::SpanKind;

    fn sample_bundle() -> ObsBundle {
        let mut metrics = Metrics::new();
        metrics.inc("decisions", 2);
        metrics.observe("per_frame_ms", &crate::metrics::LATENCY_BOUNDS, 7.25);
        let events = vec![
            TraceEvent::Span(SpanRecord {
                stream: 1,
                gof: 0,
                kind: SpanKind::Detect,
                label: "",
                depth: 0,
                t0: 1.5,
                t1: 9.875,
            }),
            TraceEvent::Decision(Box::new(DecisionRecord {
                stream: 1,
                gof: 0,
                chosen_key: "r448g8-medianflow".to_string(),
                prev_key: String::new(),
                frames: 8,
                per_frame_ms: 7.25,
                slowdown: 1.0,
                explain: DecisionExplain {
                    slo_ms: 33.3,
                    budget_ms: 29.304,
                    features: vec![FeatureBen {
                        name: "Light",
                        ben: 0.5,
                    }],
                    branch_acc: vec![0.25, 0.5],
                    branch_kernel_ms: vec![4.0, 9.0],
                    feasible: true,
                    chosen: 1,
                    ..Default::default()
                },
                ..Default::default()
            })),
            TraceEvent::Round(RoundRecord {
                idx: 0,
                threshold_ms: 12.5,
                members: vec![0, 1],
            }),
        ];
        ObsBundle { metrics, events }
    }

    #[test]
    fn jsonl_round_trips_through_the_parser() {
        let bundle = sample_bundle();
        let jsonl = bundle.to_jsonl();
        let values = parse_jsonl(&jsonl).expect("trace must parse");
        // meta + 3 events + 1 counter + 1 hist
        assert_eq!(values.len(), 6);
        assert_eq!(values[0].get("type").and_then(Value::as_str), Some("meta"));
        let span = &values[1];
        assert_eq!(span.get("kind").and_then(Value::as_str), Some("detect"));
        assert_eq!(span.get("t1").and_then(Value::as_f64), Some(9.875));
        let dec = &values[2];
        assert_eq!(
            dec.get("chosen_key").and_then(Value::as_str),
            Some("r448g8-medianflow")
        );
        let explain = dec.get("explain").expect("explain present");
        assert_eq!(
            explain
                .get("branch_acc")
                .and_then(Value::as_arr)
                .map(<[Value]>::len),
            Some(2)
        );
        let round = &values[3];
        assert_eq!(round.get("idx").and_then(Value::as_u64), Some(0));
    }

    #[test]
    fn serialization_is_deterministic() {
        let bundle = sample_bundle();
        assert_eq!(bundle.to_jsonl(), bundle.to_jsonl());
    }

    #[test]
    fn float_rendering_round_trips_bits() {
        for v in [0.0, 1.0, 33.3, 0.1 + 0.2, f64::MIN_POSITIVE, 1e300] {
            let s = json_f64(v);
            let back: f64 = s.parse().expect("parses");
            assert_eq!(back.to_bits(), v.to_bits(), "{v} -> {s}");
        }
        assert_eq!(json_f64(f64::NAN), "null");
    }

    #[test]
    fn strings_escape_and_unescape() {
        let nasty = "a\"b\\c\nd\te\u{1}f";
        let lit = json_str(nasty);
        let mut pos = 0;
        let parsed = parse_string(lit.as_bytes(), &mut pos).expect("parses");
        assert_eq!(parsed, nasty);
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_json("{\"a\":}").is_err());
        assert!(parse_json("[1,2").is_err());
        assert!(parse_json("{\"a\":1} trailing").is_err());
        assert!(parse_jsonl("{\"ok\":true}\nnot json\n").is_err());
    }
}
