/root/repo/target/release/deps/figure5-81b3abaae558395f.d: crates/bench/src/bin/figure5.rs

/root/repo/target/release/deps/figure5-81b3abaae558395f: crates/bench/src/bin/figure5.rs

crates/bench/src/bin/figure5.rs:
