/root/repo/target/release/deps/lr_bench-da298afca85b63ef.d: crates/bench/src/lib.rs crates/bench/src/suite.rs

/root/repo/target/release/deps/liblr_bench-da298afca85b63ef.rlib: crates/bench/src/lib.rs crates/bench/src/suite.rs

/root/repo/target/release/deps/liblr_bench-da298afca85b63ef.rmeta: crates/bench/src/lib.rs crates/bench/src/suite.rs

crates/bench/src/lib.rs:
crates/bench/src/suite.rs:
