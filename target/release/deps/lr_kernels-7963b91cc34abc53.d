/root/repo/target/release/deps/lr_kernels-7963b91cc34abc53.d: crates/kernels/src/lib.rs crates/kernels/src/adascale.rs crates/kernels/src/branch.rs crates/kernels/src/detector.rs crates/kernels/src/heavy.rs crates/kernels/src/latency.rs crates/kernels/src/mbek.rs crates/kernels/src/tracker.rs

/root/repo/target/release/deps/lr_kernels-7963b91cc34abc53: crates/kernels/src/lib.rs crates/kernels/src/adascale.rs crates/kernels/src/branch.rs crates/kernels/src/detector.rs crates/kernels/src/heavy.rs crates/kernels/src/latency.rs crates/kernels/src/mbek.rs crates/kernels/src/tracker.rs

crates/kernels/src/lib.rs:
crates/kernels/src/adascale.rs:
crates/kernels/src/branch.rs:
crates/kernels/src/detector.rs:
crates/kernels/src/heavy.rs:
crates/kernels/src/latency.rs:
crates/kernels/src/mbek.rs:
crates/kernels/src/tracker.rs:
