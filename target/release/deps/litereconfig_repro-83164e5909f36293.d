/root/repo/target/release/deps/litereconfig_repro-83164e5909f36293.d: src/lib.rs

/root/repo/target/release/deps/litereconfig_repro-83164e5909f36293: src/lib.rs

src/lib.rs:
