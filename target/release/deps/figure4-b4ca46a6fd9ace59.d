/root/repo/target/release/deps/figure4-b4ca46a6fd9ace59.d: crates/bench/src/bin/figure4.rs

/root/repo/target/release/deps/figure4-b4ca46a6fd9ace59: crates/bench/src/bin/figure4.rs

crates/bench/src/bin/figure4.rs:
