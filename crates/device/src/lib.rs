//! Virtual-time mobile GPU device model.
//!
//! The paper evaluates on NVIDIA Jetson TX2 and AGX Xavier boards. This
//! crate stands in for that hardware with a discrete virtual-time model:
//! every operation (a detector inference, a tracker update, a feature
//! extraction, a scheduler model query) *charges* a latency to a
//! [`clock::VirtualClock`], where the charge is
//!
//! ```text
//! charged_ms = base_tx2_ms * device_factor(unit) * contention_factor(unit) * noise
//! ```
//!
//! - `base_tx2_ms` values are calibrated to the paper's published TX2
//!   numbers (Table 1 for features, Tables 2–3 for kernels).
//! - The device factor scales GPU/CPU ops for the faster Xavier board.
//! - The [`contention::ContentionGenerator`] reproduces the paper's CG: a
//!   tunable 0–99% GPU contention level that inflates GPU-op latencies
//!   while leaving CPU ops (the trackers) untouched — which is exactly why
//!   contention-aware adaptation pays off.
//! - Noise is multiplicative log-normal-like jitter plus rare heavy-tail
//!   spikes, so P95 latency differs meaningfully from the mean.
//!
//! The crate also models **branch switching costs** (§3.5, Figure 5) and a
//! simple **memory model** used to reproduce the OOM rows of Table 3.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod contention;
pub mod executor;
pub mod fault;
pub mod memory;
pub mod noise;
pub mod profile;
pub mod switching;

pub use clock::VirtualClock;
pub use contention::ContentionGenerator;
pub use executor::{DeviceError, DeviceSim, OpUnit};
pub use fault::{FaultConfig, FaultEvent, FaultPlan, OpError};
pub use memory::MemoryModel;
pub use profile::{DeviceKind, DeviceProfile};
pub use switching::SwitchingCostModel;
