//! Latency noise: multiplicative jitter with a heavy tail.

use rand::Rng;

/// Samples multiplicative latency noise.
///
/// Real kernel launch latencies jitter a few percent run-to-run and
/// occasionally spike (scheduler preemption, memory pressure). The model
/// is a log-normal-like factor `exp(sigma * z)` (with `z` approximately
/// standard normal) plus a rare spike that multiplies latency by
/// `spike_factor`. The defaults make the P95/mean gap visible without
/// dominating it — matching the paper's observation that LiteReconfig must
/// stay conservatively below the SLO to bound P95.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyNoise {
    /// Log-scale jitter standard deviation.
    pub sigma: f64,
    /// Probability of a spike per op.
    pub spike_prob: f64,
    /// Multiplier applied on a spike.
    pub spike_factor: f64,
}

impl Default for LatencyNoise {
    fn default() -> Self {
        Self {
            sigma: 0.06,
            spike_prob: 0.004,
            spike_factor: 1.8,
        }
    }
}

impl LatencyNoise {
    /// A zero-noise configuration for deterministic tests.
    pub fn none() -> Self {
        Self {
            sigma: 0.0,
            spike_prob: 0.0,
            spike_factor: 1.0,
        }
    }

    /// Samples one noise factor (always >= a small positive bound).
    pub fn sample(&self, rng: &mut impl Rng) -> f64 {
        let z = approx_standard_normal(rng);
        let mut factor = (self.sigma * z).exp();
        if self.spike_prob > 0.0 && rng.gen::<f64>() < self.spike_prob {
            factor *= self.spike_factor;
        }
        factor.max(0.5)
    }
}

/// Approximates a standard normal via the sum of 12 uniforms (Irwin–Hall),
/// which is plenty for latency jitter and avoids a distributions crate.
fn approx_standard_normal(rng: &mut impl Rng) -> f64 {
    let s: f64 = (0..12).map(|_| rng.gen::<f64>()).sum();
    s - 6.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zero_noise_is_identity() {
        let n = LatencyNoise::none();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(n.sample(&mut rng), 1.0);
        }
    }

    #[test]
    fn mean_factor_is_near_one() {
        let n = LatencyNoise::default();
        let mut rng = StdRng::seed_from_u64(2);
        let k = 50_000;
        let mean: f64 = (0..k).map(|_| n.sample(&mut rng)).sum::<f64>() / k as f64;
        assert!((0.95..1.1).contains(&mean), "mean noise factor {mean}");
    }

    #[test]
    fn spikes_appear_at_roughly_the_configured_rate() {
        let n = LatencyNoise {
            sigma: 0.0,
            spike_prob: 0.01,
            spike_factor: 3.0,
        };
        let mut rng = StdRng::seed_from_u64(3);
        let k = 100_000;
        let spikes = (0..k).filter(|_| n.sample(&mut rng) > 2.0).count();
        let rate = spikes as f64 / k as f64;
        assert!(
            (0.005..0.02).contains(&rate),
            "spike rate {rate} far from 0.01"
        );
    }

    #[test]
    fn standard_normal_approximation_moments() {
        let mut rng = StdRng::seed_from_u64(4);
        let k = 100_000;
        let samples: Vec<f64> = (0..k).map(|_| approx_standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / k as f64;
        let var = samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / k as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
    }
}
