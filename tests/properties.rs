//! Cross-crate randomized tests on the core invariants.
//!
//! These used to be `proptest` properties; with no registry access the
//! workspace drives the same invariants from a seeded RNG instead —
//! deterministic across runs, many random cases per property.

use lr_eval::{GtBox, LatencyStats, MapAccumulator, PredBox};
use lr_video::{BBox, Video, VideoSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: usize = 256;

fn arb_bbox(rng: &mut StdRng) -> BBox {
    BBox::new(
        rng.gen_range(0.0f32..500.0),
        rng.gen_range(0.0f32..500.0),
        rng.gen_range(1.0f32..200.0),
        rng.gen_range(1.0f32..200.0),
    )
}

/// IoU is always in [0, 1] and symmetric.
#[test]
fn iou_bounds_and_symmetry() {
    let mut rng = StdRng::seed_from_u64(0xA11CE);
    for _ in 0..CASES {
        let a = arb_bbox(&mut rng);
        let b = arb_bbox(&mut rng);
        let ab = a.iou(&b);
        let ba = b.iou(&a);
        // f32 catastrophic cancellation in (x+w)-x at large coordinates
        // bounds the achievable precision.
        assert!((-1e-4..=1.0001).contains(&ab), "IoU {ab} out of bounds");
        assert!((ab - ba).abs() < 1e-4, "IoU asymmetric: {ab} vs {ba}");
    }
}

/// IoU with itself is 1 for valid boxes (up to f32 cancellation in the
/// corner arithmetic).
#[test]
fn iou_self_is_one() {
    let mut rng = StdRng::seed_from_u64(0xB0B);
    for _ in 0..CASES {
        let a = arb_bbox(&mut rng);
        assert!((a.iou(&a) - 1.0).abs() < 1e-3, "self-IoU {}", a.iou(&a));
    }
}

/// Clamping never grows a box and always fits the frame.
#[test]
fn clamp_shrinks_into_frame() {
    let mut rng = StdRng::seed_from_u64(0xC1A);
    for _ in 0..CASES {
        let a = arb_bbox(&mut rng);
        let w = rng.gen_range(10.0f32..1000.0);
        let h = rng.gen_range(10.0f32..1000.0);
        let c = a.clamped(w, h);
        assert!(c.area() <= a.area() * 1.001 + 1e-2);
        assert!(c.x >= 0.0 && c.right() <= w + 1e-3);
        assert!(c.y >= 0.0 && c.bottom() <= h + 1e-3);
    }
}

/// mAP is always within [0, 1], whatever the inputs.
#[test]
fn map_is_bounded() {
    let mut rng = StdRng::seed_from_u64(0xD0E);
    for _ in 0..CASES {
        let mut acc = MapAccumulator::new();
        let gt: Vec<GtBox> = (0..rng.gen_range(0..8usize))
            .map(|_| GtBox {
                class: rng.gen_range(0..5usize),
                bbox: arb_bbox(&mut rng),
            })
            .collect();
        let preds: Vec<PredBox> = (0..rng.gen_range(0..8usize))
            .map(|_| PredBox {
                class: rng.gen_range(0..5usize),
                bbox: arb_bbox(&mut rng),
                score: rng.gen_range(0.01f32..1.0),
            })
            .collect();
        acc.add_frame(&gt, &preds);
        let r = acc.finalize(0.5);
        assert!((0.0..=1.0).contains(&r.map), "mAP {} out of bounds", r.map);
    }
}

/// Predicting ground truth exactly always yields mAP 1 (when there is
/// ground truth at all).
#[test]
fn perfect_predictions_score_one() {
    let mut rng = StdRng::seed_from_u64(0xF00);
    for _ in 0..CASES {
        let mut acc = MapAccumulator::new();
        let gt: Vec<GtBox> = (0..rng.gen_range(1..6usize))
            .map(|_| GtBox {
                class: rng.gen_range(0..5usize),
                bbox: arb_bbox(&mut rng),
            })
            .collect();
        let preds: Vec<PredBox> = gt
            .iter()
            .map(|g| PredBox {
                class: g.class,
                bbox: g.bbox,
                score: 0.9,
            })
            .collect();
        acc.add_frame(&gt, &preds);
        let r = acc.finalize(0.5);
        assert!(r.map > 0.99, "mAP {} for perfect predictions", r.map);
    }
}

/// Percentiles are monotone in the quantile.
#[test]
fn percentiles_are_monotone() {
    let mut rng = StdRng::seed_from_u64(0xFEED);
    for _ in 0..CASES {
        let mut s = LatencyStats::new();
        for _ in 0..rng.gen_range(1..50usize) {
            s.record(rng.gen_range(0.0f64..1000.0));
        }
        assert!(s.percentile(0.5) <= s.percentile(0.95) + 1e-9);
        assert!(s.percentile(0.95) <= s.percentile(1.0) + 1e-9);
        assert!(s.mean() <= s.max() + 1e-9);
    }
}

/// Video generation is deterministic and in-bounds for arbitrary ids.
#[test]
fn videos_are_deterministic_and_bounded() {
    let mut rng = StdRng::seed_from_u64(0x51DE0);
    for _ in 0..24 {
        let id = rng.gen_range(0u32..5000);
        let spec = VideoSpec::from_id(id);
        let v = Video::generate(spec.clone());
        assert_eq!(v.len(), spec.num_frames);
        // Spot-check a few frames for in-bounds objects.
        for f in v.frames.iter().step_by(97) {
            for o in &f.objects {
                assert!(o.bbox.x >= -1e-3 && o.bbox.right() <= f.width + 1e-3);
                assert!(o.bbox.y >= -1e-3 && o.bbox.bottom() <= f.height + 1e-3);
                assert!((0.0..=1.0).contains(&o.difficulty));
            }
        }
    }
}
