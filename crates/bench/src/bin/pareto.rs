//! Branch-space Pareto frontier (the accuracy-latency curve sketched in
//! the paper's Figure 1, bottom right): mean offline mAP vs mean per-frame
//! kernel latency for every catalog branch, with the Pareto-optimal
//! branches marked.
//!
//! Usage: `cargo run --release -p lr-bench --bin pareto [small|paper]`

use lr_bench::{scale_from_args, Suite};
use lr_eval::TextTable;

fn main() {
    let suite = Suite::build(scale_from_args());
    let ds = &suite.frcnn_dataset;

    // Per-branch means are independent column reductions over the
    // offline records; fan them out across the pool.
    let pool = lr_pool::Pool::from_env();
    let branches: Vec<usize> = (0..ds.catalog.len()).collect();
    let mut rows: Vec<(String, f64, f64)> = pool.par_map(&branches, |&i| {
        let mean_map: f64 = ds
            .records
            .iter()
            .map(|r| r.branch_map[i] as f64)
            .sum::<f64>()
            / ds.len() as f64;
        let mean_ms: f64 = ds
            .records
            .iter()
            .map(|r| r.branch_det_ms[i] + r.branch_trk_ms[i])
            .sum::<f64>()
            / ds.len() as f64;
        (ds.catalog[i].name(), mean_ms, mean_map)
    });
    rows.sort_by(|a, b| a.1.total_cmp(&b.1));

    // Pareto frontier: strictly increasing accuracy with latency.
    let mut frontier = vec![false; rows.len()];
    let mut best = f64::NEG_INFINITY;
    for (i, row) in rows.iter().enumerate() {
        if row.2 > best {
            best = row.2;
            frontier[i] = true;
        }
    }

    let mut table = TextTable::new(&[
        "Branch",
        "Mean kernel ms/frame",
        "Mean snippet mAP",
        "Pareto",
    ]);
    for (i, (name, ms, map)) in rows.iter().enumerate() {
        table.add_row_owned(vec![
            name.clone(),
            format!("{ms:.1}"),
            format!("{map:.3}"),
            if frontier[i] { "*" } else { "" }.to_string(),
        ]);
    }
    println!(
        "\nBranch accuracy-latency space ({} branches, offline labels)\n",
        rows.len()
    );
    println!("{}", table.render());
    let n_frontier = frontier.iter().filter(|&&f| f).count();
    println!(
        "{n_frontier} Pareto-optimal branches out of {} — the set any good \
         scheduler's choices should concentrate on.",
        rows.len()
    );
    println!("\nCSV:\n{}", table.render_csv());
}
