/root/repo/target/debug/deps/lr_kernels-1695f7ea49d52895.d: crates/kernels/src/lib.rs crates/kernels/src/adascale.rs crates/kernels/src/branch.rs crates/kernels/src/detector.rs crates/kernels/src/heavy.rs crates/kernels/src/latency.rs crates/kernels/src/mbek.rs crates/kernels/src/tracker.rs

/root/repo/target/debug/deps/liblr_kernels-1695f7ea49d52895.rlib: crates/kernels/src/lib.rs crates/kernels/src/adascale.rs crates/kernels/src/branch.rs crates/kernels/src/detector.rs crates/kernels/src/heavy.rs crates/kernels/src/latency.rs crates/kernels/src/mbek.rs crates/kernels/src/tracker.rs

/root/repo/target/debug/deps/liblr_kernels-1695f7ea49d52895.rmeta: crates/kernels/src/lib.rs crates/kernels/src/adascale.rs crates/kernels/src/branch.rs crates/kernels/src/detector.rs crates/kernels/src/heavy.rs crates/kernels/src/latency.rs crates/kernels/src/mbek.rs crates/kernels/src/tracker.rs

crates/kernels/src/lib.rs:
crates/kernels/src/adascale.rs:
crates/kernels/src/branch.rs:
crates/kernels/src/detector.rs:
crates/kernels/src/heavy.rs:
crates/kernels/src/latency.rs:
crates/kernels/src/mbek.rs:
crates/kernels/src/tracker.rs:
