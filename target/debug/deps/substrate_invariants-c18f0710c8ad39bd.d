/root/repo/target/debug/deps/substrate_invariants-c18f0710c8ad39bd.d: tests/substrate_invariants.rs Cargo.toml

/root/repo/target/debug/deps/libsubstrate_invariants-c18f0710c8ad39bd.rmeta: tests/substrate_invariants.rs Cargo.toml

tests/substrate_invariants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
