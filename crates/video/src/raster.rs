//! Frame rasterization.
//!
//! Content features (HoC, HOG, convolutional embeddings) must be computed
//! from actual pixels for the content-aware accuracy model to be a real
//! model rather than an oracle. The rasterizer renders a [`FrameTruth`]
//! into a small planar RGB image:
//!
//! - background: per-video vertical gradient plus a procedural texture
//!   whose amplitude follows the regime's clutter level;
//! - objects: filled ellipses in class-specific colors with
//!   difficulty-dependent camouflage (blending towards the background);
//! - motion blur: fast objects are drawn as several copies smeared along
//!   their velocity, so motion is visible in single-frame features.
//!
//! The raster resolution (default 64x64) trades feature fidelity against
//! wall-clock cost of the experiments; feature *latency* is charged in
//! virtual time from the paper's cost table regardless.

use crate::video::{FrameTruth, VideoStyle};

/// Default raster edge length in pixels.
pub const DEFAULT_RASTER_SIZE: usize = 64;

/// A planar (channel-major) RGB image with `f32` values in `[0, 1]`.
#[derive(Debug, Clone, PartialEq)]
pub struct RgbFrame {
    width: usize,
    height: usize,
    /// Planar data: all R, then all G, then all B.
    data: Vec<f32>,
}

impl RgbFrame {
    /// Creates a black image.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be non-zero");
        Self {
            width,
            height,
            data: vec![0.0; 3 * width * height],
        }
    }

    /// Image width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// The planar RGB buffer (R plane, G plane, B plane).
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Pixel value for channel `c` at `(x, y)`.
    pub fn get(&self, c: usize, x: usize, y: usize) -> f32 {
        self.data[c * self.width * self.height + y * self.width + x]
    }

    /// Sets channel `c` at `(x, y)`.
    pub fn set(&mut self, c: usize, x: usize, y: usize, v: f32) {
        self.data[c * self.width * self.height + y * self.width + x] = v.clamp(0.0, 1.0);
    }

    /// Alpha-blends `color` over the pixel at `(x, y)`.
    pub fn blend(&mut self, x: usize, y: usize, color: [f32; 3], alpha: f32) {
        for (c, &col) in color.iter().enumerate() {
            let cur = self.get(c, x, y);
            self.set(c, x, y, cur * (1.0 - alpha) + col * alpha);
        }
    }

    /// Serializes the image as binary PPM (P6), for debugging and the
    /// examples — e.g. `std::fs::write("frame.ppm", img.to_ppm())`.
    pub fn to_ppm(&self) -> Vec<u8> {
        let mut out = format!("P6\n{} {}\n255\n", self.width, self.height).into_bytes();
        let n = self.width * self.height;
        for i in 0..n {
            for c in 0..3 {
                out.push((self.data[c * n + i].clamp(0.0, 1.0) * 255.0) as u8);
            }
        }
        out
    }

    /// Per-pixel luminance (Rec. 601 weights), row-major.
    pub fn luminance(&self) -> Vec<f32> {
        let n = self.width * self.height;
        (0..n)
            .map(|i| 0.299 * self.data[i] + 0.587 * self.data[n + i] + 0.114 * self.data[2 * n + i])
            .collect()
    }
}

/// Renders a frame's ground truth into an RGB raster of the given size.
pub fn rasterize(truth: &FrameTruth, style: &VideoStyle, size: usize) -> RgbFrame {
    let mut img = RgbFrame::new(size, size);
    let tex_amp = truth.regime.clutter.texture_amplitude();
    let phase = truth.frame_index as f32 * 0.05;

    // Background gradient plus animated procedural texture.
    for y in 0..size {
        let t = y as f32 / size as f32;
        for x in 0..size {
            let fx = x as f32 / size as f32;
            let tex = tex_amp
                * ((fx * style.texture_freq * 12.0 + phase).sin()
                    * (t * style.texture_freq * 9.0 - phase * 0.7).cos());
            for c in 0..3 {
                let base = style.bg_top[c] * (1.0 - t) + style.bg_bottom[c] * t;
                img.set(c, x, y, base + tex);
            }
        }
    }

    // Objects, drawn back-to-front in id order with motion blur.
    let sx = size as f32 / truth.width;
    let sy = size as f32 / truth.height;
    for obj in &truth.objects {
        let color = obj.render_color();
        // Camouflage: difficult objects blend towards the background.
        let opacity = 1.0 - 0.65 * obj.difficulty;
        // Motion blur: number of smear copies grows with speed (in raster
        // pixels per frame).
        let speed_px = (obj.velocity.0 * sx).hypot(obj.velocity.1 * sy);
        let copies = 1 + (speed_px.min(6.0) as usize);
        for k in 0..copies {
            // Smear backwards along velocity.
            let frac = k as f32 / copies as f32;
            let cx = (obj.bbox.x + obj.bbox.w / 2.0 - obj.velocity.0 * frac) * sx;
            let cy = (obj.bbox.y + obj.bbox.h / 2.0 - obj.velocity.1 * frac) * sy;
            let rx = (obj.bbox.w / 2.0 * sx).max(0.75);
            let ry = (obj.bbox.h / 2.0 * sy).max(0.75);
            let alpha = opacity / copies as f32 * if k == 0 { 2.0 } else { 1.0 };
            fill_ellipse(&mut img, cx, cy, rx, ry, color, alpha.min(1.0));
        }
    }
    img
}

/// Fills an axis-aligned ellipse with alpha blending.
fn fill_ellipse(
    img: &mut RgbFrame,
    cx: f32,
    cy: f32,
    rx: f32,
    ry: f32,
    color: [f32; 3],
    alpha: f32,
) {
    let x0 = ((cx - rx).floor().max(0.0)) as usize;
    let x1 = ((cx + rx).ceil().min(img.width() as f32 - 1.0)) as usize;
    let y0 = ((cy - ry).floor().max(0.0)) as usize;
    let y1 = ((cy + ry).ceil().min(img.height() as f32 - 1.0)) as usize;
    if x0 > x1 || y0 > y1 {
        return;
    }
    for y in y0..=y1 {
        for x in x0..=x1 {
            let dx = (x as f32 - cx) / rx;
            let dy = (y as f32 - cy) / ry;
            if dx * dx + dy * dy <= 1.0 {
                img.blend(x, y, color, alpha);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::video::{Video, VideoSpec};

    fn sample_video() -> Video {
        Video::generate(VideoSpec {
            id: 0,
            seed: 21,
            width: 640.0,
            height: 480.0,
            num_frames: 30,
        })
    }

    #[test]
    fn raster_is_deterministic() {
        let v = sample_video();
        let a = rasterize(&v.frames[5], &v.style, 64);
        let b = rasterize(&v.frames[5], &v.style, 64);
        assert_eq!(a, b);
    }

    #[test]
    fn raster_values_are_in_unit_range() {
        let v = sample_video();
        let img = rasterize(&v.frames[0], &v.style, 64);
        assert!(img.as_slice().iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    #[test]
    fn frames_with_objects_differ_from_empty_background() {
        let v = sample_video();
        let mut empty = v.frames[0].clone();
        empty.objects.clear();
        let with_objects = rasterize(&v.frames[0], &v.style, 64);
        let background = rasterize(&empty, &v.style, 64);
        if !v.frames[0].objects.is_empty() {
            assert_ne!(with_objects, background);
        }
    }

    #[test]
    fn different_frames_render_differently() {
        let v = sample_video();
        let a = rasterize(&v.frames[0], &v.style, 64);
        let b = rasterize(&v.frames[20], &v.style, 64);
        assert_ne!(a, b);
    }

    #[test]
    fn luminance_has_one_value_per_pixel() {
        let v = sample_video();
        let img = rasterize(&v.frames[0], &v.style, 32);
        assert_eq!(img.luminance().len(), 32 * 32);
    }

    #[test]
    fn ppm_has_correct_header_and_size() {
        let img = RgbFrame::new(4, 3);
        let ppm = img.to_ppm();
        assert!(ppm.starts_with(b"P6\n4 3\n255\n"));
        assert_eq!(ppm.len(), b"P6\n4 3\n255\n".len() + 4 * 3 * 3);
    }

    #[test]
    fn ppm_pixel_order_is_interleaved_rgb() {
        let mut img = RgbFrame::new(2, 1);
        img.set(0, 0, 0, 1.0); // red at pixel 0
        img.set(2, 1, 0, 1.0); // blue at pixel 1
        let ppm = img.to_ppm();
        let body = &ppm[b"P6\n2 1\n255\n".len()..];
        assert_eq!(body, &[255, 0, 0, 0, 0, 255]);
    }

    #[test]
    fn blend_with_full_alpha_replaces() {
        let mut img = RgbFrame::new(2, 2);
        img.blend(0, 0, [1.0, 0.5, 0.25], 1.0);
        assert_eq!(img.get(0, 0, 0), 1.0);
        assert_eq!(img.get(1, 0, 0), 0.5);
        assert_eq!(img.get(2, 0, 0), 0.25);
    }
}
