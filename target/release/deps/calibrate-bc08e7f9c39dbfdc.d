/root/repo/target/release/deps/calibrate-bc08e7f9c39dbfdc.d: crates/bench/src/bin/calibrate.rs

/root/repo/target/release/deps/calibrate-bc08e7f9c39dbfdc: crates/bench/src/bin/calibrate.rs

crates/bench/src/bin/calibrate.rs:
