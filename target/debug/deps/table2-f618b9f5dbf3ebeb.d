/root/repo/target/debug/deps/table2-f618b9f5dbf3ebeb.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-f618b9f5dbf3ebeb: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
