/root/repo/target/debug/examples/ar_headset-4374b47a23949dc4.d: examples/ar_headset.rs

/root/repo/target/debug/examples/ar_headset-4374b47a23949dc4: examples/ar_headset.rs

examples/ar_headset.rs:
