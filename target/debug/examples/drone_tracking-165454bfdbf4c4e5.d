/root/repo/target/debug/examples/drone_tracking-165454bfdbf4c4e5.d: examples/drone_tracking.rs

/root/repo/target/debug/examples/drone_tracking-165454bfdbf4c4e5: examples/drone_tracking.rs

examples/drone_tracking.rs:
