/root/repo/target/debug/deps/litereconfig-82677c435654dabb.d: crates/core/src/lib.rs crates/core/src/bentable.rs crates/core/src/featsvc.rs crates/core/src/offline.rs crates/core/src/pipeline.rs crates/core/src/predictor.rs crates/core/src/protocols.rs crates/core/src/scheduler.rs crates/core/src/trainer.rs

/root/repo/target/debug/deps/liblitereconfig-82677c435654dabb.rlib: crates/core/src/lib.rs crates/core/src/bentable.rs crates/core/src/featsvc.rs crates/core/src/offline.rs crates/core/src/pipeline.rs crates/core/src/predictor.rs crates/core/src/protocols.rs crates/core/src/scheduler.rs crates/core/src/trainer.rs

/root/repo/target/debug/deps/liblitereconfig-82677c435654dabb.rmeta: crates/core/src/lib.rs crates/core/src/bentable.rs crates/core/src/featsvc.rs crates/core/src/offline.rs crates/core/src/pipeline.rs crates/core/src/predictor.rs crates/core/src/protocols.rs crates/core/src/scheduler.rs crates/core/src/trainer.rs

crates/core/src/lib.rs:
crates/core/src/bentable.rs:
crates/core/src/featsvc.rs:
crates/core/src/offline.rs:
crates/core/src/pipeline.rs:
crates/core/src/predictor.rs:
crates/core/src/protocols.rs:
crates/core/src/scheduler.rs:
crates/core/src/trainer.rs:
