/root/repo/target/debug/deps/end_to_end-846b1606d6d857e2.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-846b1606d6d857e2: tests/end_to_end.rs

tests/end_to_end.rs:
