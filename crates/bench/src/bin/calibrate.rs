//! Calibration diagnostics: verifies the end-to-end trends the paper's
//! tables depend on before running the full experiments.
//!
//! Usage: `cargo run --release -p lr-bench --bin calibrate [small|paper]`

use litereconfig::pipeline::run_adaptive;
use litereconfig::protocols::AdaptiveProtocol;
use lr_bench::{map_cell, scale_from_args, Suite};
use lr_device::DeviceKind;
use lr_eval::TextTable;
use lr_features::FeatureKind;

fn main() {
    let scale = scale_from_args();
    let mut suite = Suite::build(scale);

    // Predictor diagnostics: per-feature accuracy-model fit.
    println!("== accuracy-model training MSE ==");
    for (kind, model) in &suite.frcnn.accuracy {
        println!(
            "  {:<12} train_mse={:.4} eval_mse={:.4}",
            kind.name(),
            model.train_mse(),
            model.evaluate(&suite.frcnn_dataset)
        );
    }

    // Oracle diagnostics: what the best branch per snippet achieves under
    // a pure kernel budget — the ceiling any scheduler can reach.
    println!("\n== oracle snippet mAP under kernel budget ==");
    for budget in [15.0, 33.3, 50.0, 100.0, 1e9] {
        let mean: f32 = suite
            .frcnn_dataset
            .records
            .iter()
            .map(|r| suite.frcnn_dataset.oracle_map_under_budget(r, budget))
            .sum::<f32>()
            / suite.frcnn_dataset.len() as f32;
        println!("  budget {budget:>8.1} ms -> oracle mAP {:.3}", mean);
    }
    // Regret of the light model's picks against the oracle at 100 ms.
    let light_model = &suite.frcnn.accuracy[&FeatureKind::Light];
    let mut regret = 0.0f32;
    for r in &suite.frcnn_dataset.records {
        let pred = light_model.predict(&r.light, None);
        let mut best_pred = f32::NEG_INFINITY;
        let mut chosen = 0usize;
        for (i, &p) in pred.iter().enumerate() {
            if r.branch_det_ms[i] + r.branch_trk_ms[i] <= 100.0 && p > best_pred {
                best_pred = p;
                chosen = i;
            }
        }
        regret += suite.frcnn_dataset.oracle_map_under_budget(r, 100.0) - r.branch_map[chosen];
    }
    println!(
        "  light-model regret vs oracle @100ms: {:.3}",
        regret / suite.frcnn_dataset.len() as f32
    );

    // Per-branch mean label mAP: the real accuracy-latency trade-off
    // without max-selection noise.
    println!("\n== per-branch mean label mAP (offline) ==");
    let ds = &suite.frcnn_dataset;
    let mut rows: Vec<(String, f64, f32)> = Vec::new();
    for (i, b) in ds.catalog.iter().enumerate() {
        let mean_map: f32 =
            ds.records.iter().map(|r| r.branch_map[i]).sum::<f32>() / ds.len() as f32;
        let mean_ms: f64 = ds
            .records
            .iter()
            .map(|r| r.branch_det_ms[i] + r.branch_trk_ms[i])
            .sum::<f64>()
            / ds.len() as f64;
        rows.push((b.name(), mean_ms, mean_map));
    }
    rows.sort_by(|a, b| a.1.total_cmp(&b.1));
    for (name, ms, map) in &rows {
        println!("  {name:<38} {ms:>7.1} ms  mAP {map:.3}");
    }

    // Ben table diagnostics.
    println!("\n== Ben(f, SLO) ==");
    for kind in lr_features::HEAVY_FEATURE_KINDS {
        let b: Vec<String> = [33.3, 50.0, 100.0]
            .iter()
            .map(|&s| format!("{:+.3}", suite.frcnn.ben.single(kind, s)))
            .collect();
        println!("  {:<12} {}", kind.name(), b.join("  "));
    }

    // End-to-end variant comparison on the TX2, no contention.
    let protocols = [
        AdaptiveProtocol::LiteReconfigMinCost,
        AdaptiveProtocol::LiteReconfigMaxContentResNet,
        AdaptiveProtocol::LiteReconfigMaxContentMobileNet,
        AdaptiveProtocol::LiteReconfig,
    ];
    let slos = [33.3, 50.0, 100.0];
    let mut table = TextTable::new(&["Protocol", "mAP@33.3/50/100", "P95@33.3/50/100"]);
    for p in protocols {
        let mut maps = Vec::new();
        let mut p95s = Vec::new();
        for (i, &slo) in slos.iter().enumerate() {
            let r = run_adaptive(
                &suite.val_videos,
                suite.frcnn.clone(),
                p.policy(),
                &p.run_config(DeviceKind::JetsonTx2, 0.0, slo, 42 + i as u64),
                &mut suite.svc,
            );
            maps.push(map_cell(r.map_pct(), r.latency.p95(), slo));
            p95s.push(format!("{:.1}", r.latency.p95()));
        }
        table.add_row(&[p.name(), &maps.join("/"), &p95s.join("/")]);
    }
    println!("\n== TX2, 0% contention ==");
    println!("{}", table.render());

    // Contention check: MinCost adaptive vs a frozen latency model.
    let r_adaptive = run_adaptive(
        &suite.val_videos,
        suite.frcnn.clone(),
        litereconfig::Policy::MinCost,
        &AdaptiveProtocol::LiteReconfigMinCost.run_config(DeviceKind::JetsonTx2, 50.0, 50.0, 99),
        &mut suite.svc,
    );
    let mut frozen_cfg =
        AdaptiveProtocol::LiteReconfigMinCost.run_config(DeviceKind::JetsonTx2, 50.0, 50.0, 99);
    frozen_cfg.contention_adaptive = false;
    let r_frozen = run_adaptive(
        &suite.val_videos,
        suite.frcnn.clone(),
        litereconfig::Policy::MinCost,
        &frozen_cfg,
        &mut suite.svc,
    );
    println!("== 50% GPU contention, 50 ms SLO, TX2 ==");
    println!(
        "  adaptive: mAP {:.1} P95 {:.1} | frozen: mAP {:.1} P95 {:.1}",
        r_adaptive.map_pct(),
        r_adaptive.latency.p95(),
        r_frozen.map_pct(),
        r_frozen.latency.p95()
    );

    // Feature availability sanity: the full system should actually use
    // content features at loose SLOs.
    let r = run_adaptive(
        &suite.val_videos,
        suite.frcnn.clone(),
        litereconfig::Policy::CostBenefit,
        &AdaptiveProtocol::LiteReconfig.run_config(DeviceKind::JetsonTx2, 0.0, 100.0, 7),
        &mut suite.svc,
    );
    println!(
        "\nfull system @100ms: {} decisions, {} infeasible, {} branches used",
        r.decisions,
        r.infeasible_decisions,
        r.branches_used.len()
    );
    let _ = FeatureKind::Light;
}
