/root/repo/target/debug/examples/multi_camera-5202a9e36d72c9b0.d: examples/multi_camera.rs Cargo.toml

/root/repo/target/debug/examples/libmulti_camera-5202a9e36d72c9b0.rmeta: examples/multi_camera.rs Cargo.toml

examples/multi_camera.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
