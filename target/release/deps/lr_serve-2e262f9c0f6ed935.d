/root/repo/target/release/deps/lr_serve-2e262f9c0f6ed935.d: crates/serve/src/lib.rs crates/serve/src/admission.rs crates/serve/src/dispatch.rs crates/serve/src/report.rs crates/serve/src/shared.rs crates/serve/src/slo.rs

/root/repo/target/release/deps/liblr_serve-2e262f9c0f6ed935.rlib: crates/serve/src/lib.rs crates/serve/src/admission.rs crates/serve/src/dispatch.rs crates/serve/src/report.rs crates/serve/src/shared.rs crates/serve/src/slo.rs

/root/repo/target/release/deps/liblr_serve-2e262f9c0f6ed935.rmeta: crates/serve/src/lib.rs crates/serve/src/admission.rs crates/serve/src/dispatch.rs crates/serve/src/report.rs crates/serve/src/shared.rs crates/serve/src/slo.rs

crates/serve/src/lib.rs:
crates/serve/src/admission.rs:
crates/serve/src/dispatch.rs:
crates/serve/src/report.rs:
crates/serve/src/shared.rs:
crates/serve/src/slo.rs:
