/root/repo/target/debug/deps/table1-fcdc08ee38bfc1b4.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-fcdc08ee38bfc1b4: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
