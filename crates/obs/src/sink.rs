//! The observer interface the runtime crates talk to.
//!
//! Instrumented code paths take `&mut impl ObsSink` and call
//! [`ObsSink::span_begin`] / [`ObsSink::span_end`] around interesting
//! regions and [`ObsSink::decision`] once per GoF. The default
//! implementation of every method is a no-op and [`ObsSink::enabled`]
//! defaults to `false`, so the compiler erases the instrumentation when
//! a [`NullSink`] is passed — existing entry points keep their old
//! signatures by delegating with a `NullSink`.

use crate::record::DecisionRecord;

/// What a span measures. The set is closed on purpose: a fixed
/// vocabulary keeps histogram names, trace schemas, and the analysis
/// layer in lockstep without string plumbing.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum SpanKind {
    /// One full scheduler decision (`Scheduler::decide`), light features
    /// through branch commitment.
    Decision,
    /// Light-feature extraction plus the light predictor pass (the `S0`
    /// contributors other than the solver).
    LightFeature,
    /// One heavy-feature extraction + predictor pass (the `S(f_H)`
    /// term); the span label names the feature kind.
    HeavyFeature,
    /// The constrained-optimization solve (Eq. 3 argmax).
    Solve,
    /// A branch switch (`C(b0, b)`): sampler reconfiguration plus the
    /// charged switch cost.
    Switch,
    /// The detection frame of a GoF (the `L0` detector term).
    Detect,
    /// The tracked remainder of a GoF (frames 2..N).
    Track,
    /// A tracker-only fallback GoF after the ladder gave up on the
    /// detector.
    Fallback,
}

impl SpanKind {
    /// Stable lowercase name used in trace JSONL.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Decision => "decision",
            SpanKind::LightFeature => "light_feature",
            SpanKind::HeavyFeature => "heavy_feature",
            SpanKind::Solve => "solve",
            SpanKind::Switch => "switch",
            SpanKind::Detect => "detect",
            SpanKind::Track => "track",
            SpanKind::Fallback => "fallback",
        }
    }

    /// Name of the duration histogram this span kind feeds.
    pub fn hist_name(self) -> &'static str {
        match self {
            SpanKind::Decision => "span_decision_ms",
            SpanKind::LightFeature => "span_light_feature_ms",
            SpanKind::HeavyFeature => "span_heavy_feature_ms",
            SpanKind::Solve => "span_solve_ms",
            SpanKind::Switch => "span_switch_ms",
            SpanKind::Detect => "span_detect_ms",
            SpanKind::Track => "span_track_ms",
            SpanKind::Fallback => "span_fallback_ms",
        }
    }

    /// Parse the stable name back into a kind (for trace readers).
    pub fn parse(name: &str) -> Option<SpanKind> {
        Some(match name {
            "decision" => SpanKind::Decision,
            "light_feature" => SpanKind::LightFeature,
            "heavy_feature" => SpanKind::HeavyFeature,
            "solve" => SpanKind::Solve,
            "switch" => SpanKind::Switch,
            "detect" => SpanKind::Detect,
            "track" => SpanKind::Track,
            "fallback" => SpanKind::Fallback,
            _ => return None,
        })
    }
}

/// Receiver for spans and decision records.
///
/// Implementations must be pure observers: they may read timestamps
/// handed to them but must never touch the device clock, any RNG, or
/// any other runtime state. All methods default to no-ops so the
/// instrumentation costs nothing when observation is off.
pub trait ObsSink {
    /// Whether this sink wants data. Instrumented code uses this to skip
    /// building records (e.g. the decision explain) that only an active
    /// sink would consume.
    fn enabled(&self) -> bool {
        false
    }

    /// Open a span at virtual time `t_ms`. Spans nest; `label` refines
    /// the kind (e.g. the heavy-feature name) and must be a static
    /// string so sinks never allocate on the hot path when disabled.
    fn span_begin(&mut self, _kind: SpanKind, _label: &'static str, _t_ms: f64) {}

    /// Close the innermost open span at virtual time `t_ms`.
    fn span_end(&mut self, _t_ms: f64) {}

    /// Record the completed decision record for one GoF.
    fn decision(&mut self, _rec: DecisionRecord) {}
}

/// The do-nothing sink. Passing a `NullSink` makes an instrumented code
/// path behave (and perform) exactly like its uninstrumented original.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl ObsSink for NullSink {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_is_disabled_and_inert() {
        let mut sink = NullSink;
        assert!(!sink.enabled());
        sink.span_begin(SpanKind::Decision, "", 0.0);
        sink.span_end(1.0);
    }

    #[test]
    fn span_kind_names_round_trip() {
        let all = [
            SpanKind::Decision,
            SpanKind::LightFeature,
            SpanKind::HeavyFeature,
            SpanKind::Solve,
            SpanKind::Switch,
            SpanKind::Detect,
            SpanKind::Track,
            SpanKind::Fallback,
        ];
        for kind in all {
            assert_eq!(SpanKind::parse(kind.name()), Some(kind));
            assert!(kind.hist_name().starts_with("span_"));
        }
        assert_eq!(SpanKind::parse("bogus"), None);
    }
}
