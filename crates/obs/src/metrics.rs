//! Deterministic metrics registry: counters and fixed-bucket
//! histograms.
//!
//! Everything is `BTreeMap`-backed (lint rule D2) and the bucket
//! layouts are compile-time constants, so two registries fed the same
//! observations in the same order are structurally equal, and merging
//! per-stream registries in stream order yields byte-identical rendered
//! output for any `LR_POOL_THREADS`.

use std::collections::BTreeMap;

/// Upper bucket bounds (ms) for per-frame latency distributions.
pub const LATENCY_BOUNDS: [f64; 7] = [2.0, 5.0, 10.0, 20.0, 33.3, 50.0, 100.0];
/// Upper bucket bounds (ms) for scheduler-overhead distributions.
pub const SCHED_BOUNDS: [f64; 6] = [0.5, 1.0, 2.0, 5.0, 10.0, 25.0];
/// Upper bucket bounds (ms) for span-duration distributions.
pub const SPAN_BOUNDS: [f64; 6] = [0.5, 1.0, 5.0, 10.0, 50.0, 200.0];
/// Upper bucket bounds (ms) for predicted-slack distributions (negative
/// slack means the scheduler knowingly exceeded the budget).
pub const SLACK_BOUNDS: [f64; 6] = [-10.0, 0.0, 5.0, 10.0, 20.0, 40.0];

/// A fixed-bucket histogram. The final implicit bucket is `+inf`, so
/// `counts.len() == bounds.len() + 1`.
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    sum: f64,
    count: u64,
}

impl Histogram {
    /// A histogram with the given upper bucket bounds (must be strictly
    /// increasing).
    pub fn new(bounds: &[f64]) -> Self {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0.0,
            count: 0,
        }
    }

    /// Record one observation.
    pub fn observe(&mut self, v: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.sum += v;
        self.count += 1;
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of all observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Upper bucket bounds.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts (last bucket is the `+inf` overflow).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Fold another histogram into this one. Panics if the bucket
    /// layouts differ — merge partners must come from the same
    /// compile-time layout.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.bounds, other.bounds, "histogram bucket mismatch");
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.sum += other.sum;
        self.count += other.count;
    }
}

/// The registry: named counters and named histograms, both ordered.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Metrics {
    counters: BTreeMap<&'static str, u64>,
    hists: BTreeMap<&'static str, Histogram>,
}

impl Metrics {
    /// An empty registry.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Add `by` to the named counter, creating it at zero.
    pub fn inc(&mut self, name: &'static str, by: u64) {
        *self.counters.entry(name).or_insert(0) += by;
    }

    /// Read a counter (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Record an observation in the named histogram, creating it with
    /// the given bucket layout on first use.
    pub fn observe(&mut self, name: &'static str, bounds: &[f64], v: f64) {
        self.hists
            .entry(name)
            .or_insert_with(|| Histogram::new(bounds))
            .observe(v);
    }

    /// Read a histogram by name.
    pub fn hist(&self, name: &str) -> Option<&Histogram> {
        self.hists.get(name)
    }

    /// Iterate counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(&k, &v)| (k, v))
    }

    /// Iterate histograms in name order.
    pub fn hists(&self) -> impl Iterator<Item = (&'static str, &Histogram)> + '_ {
        self.hists.iter().map(|(&k, v)| (k, v))
    }

    /// Fold another registry into this one. Call in `(stream, gof)`
    /// order during the serial post-pass; the result is then
    /// independent of how many workers produced the inputs.
    pub fn merge(&mut self, other: &Metrics) {
        for (&name, &v) in &other.counters {
            *self.counters.entry(name).or_insert(0) += v;
        }
        for (&name, h) in &other.hists {
            match self.hists.get_mut(name) {
                Some(mine) => mine.merge(h),
                None => {
                    self.hists.insert(name, h.clone());
                }
            }
        }
    }

    /// Render the registry as stable, human-readable text: counters
    /// first, then histograms, both in name order.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, v) in self.counters() {
            out.push_str(&format!("counter {name} = {v}\n"));
        }
        for (name, h) in self.hists() {
            out.push_str(&format!(
                "hist {name}: count {} mean {:.3}\n",
                h.count(),
                h.mean()
            ));
            let mut lo = f64::NEG_INFINITY;
            for (i, &c) in h.counts().iter().enumerate() {
                let hi = h.bounds().get(i).copied();
                let label = match (lo == f64::NEG_INFINITY, hi) {
                    (true, Some(hi)) => format!("(-inf, {hi}]"),
                    (false, Some(hi)) => format!("({lo}, {hi}]"),
                    (_, None) => format!("({lo}, +inf)"),
                };
                out.push_str(&format!("  {label:>16} {c}\n"));
                if let Some(hi) = hi {
                    lo = hi;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_observations() {
        let mut h = Histogram::new(&[1.0, 5.0]);
        for v in [0.5, 1.0, 3.0, 5.0, 9.0] {
            h.observe(v);
        }
        assert_eq!(h.counts(), &[2, 2, 1]);
        assert_eq!(h.count(), 5);
        assert!((h.mean() - 3.7).abs() < 1e-12);
    }

    #[test]
    fn merge_is_order_insensitive_on_totals() {
        let mut a = Metrics::new();
        let mut b = Metrics::new();
        a.inc("gofs", 3);
        b.inc("gofs", 4);
        b.inc("faults", 1);
        a.observe("lat", &LATENCY_BOUNDS, 7.0);
        b.observe("lat", &LATENCY_BOUNDS, 40.0);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.counter("gofs"), 7);
        assert_eq!(ab.counter("faults"), 1);
        assert_eq!(ab.hist("lat").map(Histogram::count), Some(2));
    }

    #[test]
    fn render_is_stable_and_ordered() {
        let mut m = Metrics::new();
        m.inc("zeta", 1);
        m.inc("alpha", 2);
        m.observe("lat", &[1.0], 0.5);
        let r = m.render();
        let alpha = r.find("alpha").unwrap_or(usize::MAX);
        let zeta = r.find("zeta").unwrap_or(0);
        assert!(alpha < zeta, "counters must render in name order:\n{r}");
        assert!(r.contains("hist lat: count 1 mean 0.500"));
        assert_eq!(m.render(), r, "render must be deterministic");
    }

    #[test]
    #[should_panic(expected = "bucket mismatch")]
    fn merging_mismatched_layouts_panics() {
        let mut a = Histogram::new(&[1.0]);
        let b = Histogram::new(&[2.0]);
        a.merge(&b);
    }
}
