//! Table 2: the main end-to-end comparison — mAP and P95 latency for all
//! seven adaptive protocols, on TX2 and AGX Xavier, at 0% and 50% GPU
//! contention, across three latency SLOs per device.
//!
//! Every (scenario, protocol, SLO) cell is an independent seeded run, so
//! the sweep fans out over an `lr-pool` worker pool; results come back in
//! cell order and each worker keeps its own feature cache, which makes
//! the table byte-identical for any `LR_POOL_THREADS`.
//!
//! Usage: `cargo run --release -p lr-bench --bin table2 [small|paper]`

use std::sync::Arc;

use litereconfig::protocols::AdaptiveProtocol;
use litereconfig::{FeatureService, TrainedScheduler};
use lr_bench::{map_cell, scale_from_args, Suite};
use lr_device::DeviceKind;
use lr_eval::TextTable;
use lr_kernels::DetectorFamily;

fn main() {
    let t0 = std::time::Instant::now();
    let mut suite = Suite::build(scale_from_args());
    let ssd = suite.train_one_stage(DetectorFamily::Ssd);
    let yolo = suite.train_one_stage(DetectorFamily::Yolo);

    let mut table = TextTable::new(&[
        "Device, SLOs (ms)",
        "Contention",
        "Model",
        "mAP (%)",
        "P95 latency (ms)",
    ]);

    let scenarios = [
        (DeviceKind::JetsonTx2, 0.0),
        (DeviceKind::JetsonTx2, 50.0),
        (DeviceKind::AgxXavier, 0.0),
        (DeviceKind::AgxXavier, 50.0),
    ];
    let protocols = AdaptiveProtocol::all();

    // One cell per (scenario, protocol, SLO); the seed depends only on
    // the cell's coordinates, exactly as the sequential sweep computed it.
    struct Cell {
        scenario_idx: usize,
        device: DeviceKind,
        contention: f64,
        protocol: AdaptiveProtocol,
        trained: Arc<TrainedScheduler>,
        slo_idx: usize,
        slo: f64,
    }
    let mut cells: Vec<Cell> = Vec::new();
    for (scenario_idx, &(device, contention)) in scenarios.iter().enumerate() {
        for &protocol in &protocols {
            let trained: Arc<TrainedScheduler> = match protocol.family() {
                DetectorFamily::Ssd => ssd.clone(),
                DetectorFamily::Yolo => yolo.clone(),
                _ => suite.frcnn.clone(),
            };
            for (slo_idx, &slo) in device.paper_slos_ms().iter().enumerate() {
                cells.push(Cell {
                    scenario_idx,
                    device,
                    contention,
                    protocol,
                    trained: trained.clone(),
                    slo_idx,
                    slo,
                });
            }
        }
    }

    let raster_size = suite.svc.raster_size();
    let pool = lr_pool::Pool::from_env();
    let measured: Vec<(f64, f64)> = pool.par_map_init(
        &cells,
        || FeatureService::with_raster_size(raster_size),
        |svc, _, c| {
            let seed = 1000 + c.scenario_idx as u64 * 100 + c.slo_idx as u64;
            let r = c.protocol.run(
                &suite.val_videos,
                c.trained.clone(),
                c.device,
                c.contention,
                c.slo,
                seed,
                svc,
            );
            eprintln!(
                "[table2] {} {} {:.0}% @{}ms -> mAP {:.1} P95 {:.1} ({:.0}s elapsed)",
                c.device.name(),
                c.protocol.name(),
                c.contention,
                c.slo,
                r.map_pct(),
                r.latency.p95(),
                t0.elapsed().as_secs_f64()
            );
            (r.map_pct(), r.latency.p95())
        },
    );

    // Reassemble rows in the original sweep order: cells (and therefore
    // `measured`) are grouped by scenario, then protocol, then SLO.
    let mut next = measured.iter().zip(&cells);
    for &(device, contention) in &scenarios {
        let slos = device.paper_slos_ms();
        for &protocol in &protocols {
            let mut maps = Vec::new();
            let mut p95s = Vec::new();
            for &slo in &slos {
                let (&(map_pct, p95), _) = next.next().expect("one result per cell");
                maps.push(map_cell(map_pct, p95, slo));
                p95s.push(format!("{p95:.1}"));
            }
            let slo_label = format!(
                "{}, {}",
                device.name(),
                slos.iter()
                    .map(|s| format!("{s}"))
                    .collect::<Vec<_>>()
                    .join("/")
            );
            table.add_row_owned(vec![
                slo_label,
                format!("{contention:.0}%"),
                protocol.name().to_string(),
                maps.join("/"),
                p95s.join("/"),
            ]);
        }
    }

    println!("\nTable 2: performance comparison on the synthetic-VID validation set");
    println!("(\"F\" = the protocol's P95 latency violated the SLO, as in the paper)\n");
    println!("{}", table.render());
    println!("CSV:\n{}", table.render_csv());
}
