/root/repo/target/debug/deps/figure5-94aa6446a6e2ee52.d: crates/bench/src/bin/figure5.rs

/root/repo/target/debug/deps/figure5-94aa6446a6e2ee52: crates/bench/src/bin/figure5.rs

crates/bench/src/bin/figure5.rs:
