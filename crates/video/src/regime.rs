//! Content regimes: the latent states that make content-aware scheduling
//! worthwhile.
//!
//! Real videos alternate between slow, deliberate shots and fast, cluttered
//! action. The regime machinery reproduces that structure: each video runs
//! a Markov chain over `(MotionLevel, ClutterLevel)` states, and the scene
//! dynamics (object speed, spawn rate, background texture) are driven by
//! the current regime. Which execution branch is optimal depends strongly
//! on the regime — exactly the dependency LiteReconfig's content-aware
//! accuracy model learns to exploit.

use rand::Rng;

/// How fast objects move (and how much motion blur frames carry).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MotionLevel {
    /// Near-static content; trackers stay accurate for long GoFs.
    Slow,
    /// Moderate motion.
    Medium,
    /// Fast motion; tracker drift accumulates quickly and frames blur.
    Fast,
}

impl MotionLevel {
    /// Typical object speed in fractions of the frame diagonal per frame.
    pub fn speed_scale(self) -> f32 {
        match self {
            MotionLevel::Slow => 0.0012,
            MotionLevel::Medium => 0.008,
            MotionLevel::Fast => 0.032,
        }
    }

    /// All levels, in increasing order of speed.
    pub fn all() -> [MotionLevel; 3] {
        [MotionLevel::Slow, MotionLevel::Medium, MotionLevel::Fast]
    }

    /// An index in `[0, 3)` for table lookups.
    pub fn index(self) -> usize {
        match self {
            MotionLevel::Slow => 0,
            MotionLevel::Medium => 1,
            MotionLevel::Fast => 2,
        }
    }
}

/// How many objects populate the scene and how busy the background is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClutterLevel {
    /// Few, large objects on a calm background.
    Sparse,
    /// Many, often small objects on a textured background.
    Cluttered,
}

impl ClutterLevel {
    /// Target number of concurrent objects.
    pub fn target_object_count(self) -> usize {
        match self {
            ClutterLevel::Sparse => 2,
            ClutterLevel::Cluttered => 8,
        }
    }

    /// Background texture amplitude in `[0, 1]`.
    pub fn texture_amplitude(self) -> f32 {
        match self {
            ClutterLevel::Sparse => 0.05,
            ClutterLevel::Cluttered => 0.25,
        }
    }

    /// Typical object scale (fraction of the frame's short side). Cluttered
    /// scenes carry smaller objects, which stresses the detector's input
    /// `shape` knob.
    pub fn object_scale(self) -> f32 {
        match self {
            ClutterLevel::Sparse => 0.32,
            ClutterLevel::Cluttered => 0.13,
        }
    }

    /// An index in `[0, 2)` for table lookups.
    pub fn index(self) -> usize {
        match self {
            ClutterLevel::Sparse => 0,
            ClutterLevel::Cluttered => 1,
        }
    }
}

/// A full content regime: the cross product of motion and clutter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Regime {
    /// Current motion level.
    pub motion: MotionLevel,
    /// Current clutter level.
    pub clutter: ClutterLevel,
}

impl Regime {
    /// All six regimes.
    pub fn all() -> Vec<Regime> {
        let mut v = Vec::with_capacity(6);
        for motion in MotionLevel::all() {
            for clutter in [ClutterLevel::Sparse, ClutterLevel::Cluttered] {
                v.push(Regime { motion, clutter });
            }
        }
        v
    }

    /// A regime index in `[0, 6)`.
    pub fn index(self) -> usize {
        self.motion.index() * 2 + self.clutter.index()
    }
}

/// A Markov chain over regimes with geometric dwell times.
///
/// Dwell times average `mean_dwell_frames`; on a switch, a uniformly random
/// *different* regime is chosen. The default mean dwell of 180 frames keeps
/// regimes long enough that a 100-frame snippet usually sees one regime
/// (the paper's rationale for N = 100) while still forcing the scheduler to
/// reconfigure several times per video.
#[derive(Debug, Clone)]
pub struct RegimeChain {
    current: Regime,
    mean_dwell_frames: f32,
}

impl RegimeChain {
    /// Starts the chain in a random regime.
    pub fn new(mean_dwell_frames: f32, rng: &mut impl Rng) -> Self {
        let all = Regime::all();
        let current = all[rng.gen_range(0..all.len())];
        Self {
            current,
            mean_dwell_frames: mean_dwell_frames.max(1.0),
        }
    }

    /// The current regime.
    pub fn current(&self) -> Regime {
        self.current
    }

    /// Advances one frame; returns the (possibly new) regime.
    pub fn step(&mut self, rng: &mut impl Rng) -> Regime {
        let switch_prob = 1.0 / self.mean_dwell_frames;
        if rng.gen::<f32>() < switch_prob {
            let all = Regime::all();
            loop {
                let candidate = all[rng.gen_range(0..all.len())];
                if candidate != self.current {
                    self.current = candidate;
                    break;
                }
            }
        }
        self.current
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn six_distinct_regimes() {
        let all = Regime::all();
        assert_eq!(all.len(), 6);
        let mut idx: Vec<_> = all.iter().map(|r| r.index()).collect();
        idx.sort_unstable();
        assert_eq!(idx, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn motion_speed_is_monotone() {
        let [s, m, f] = MotionLevel::all();
        assert!(s.speed_scale() < m.speed_scale());
        assert!(m.speed_scale() < f.speed_scale());
    }

    #[test]
    fn cluttered_scenes_have_more_smaller_objects() {
        assert!(
            ClutterLevel::Cluttered.target_object_count()
                > ClutterLevel::Sparse.target_object_count()
        );
        assert!(ClutterLevel::Cluttered.object_scale() < ClutterLevel::Sparse.object_scale());
    }

    #[test]
    fn chain_dwell_time_is_roughly_geometric() {
        let mut rng = StdRng::seed_from_u64(17);
        let mut chain = RegimeChain::new(100.0, &mut rng);
        let mut switches = 0;
        let mut prev = chain.current();
        let steps = 20_000;
        for _ in 0..steps {
            let cur = chain.step(&mut rng);
            if cur != prev {
                switches += 1;
                prev = cur;
            }
        }
        // Expected about steps/100 = 200 switches; allow a wide band.
        assert!(
            (100..400).contains(&switches),
            "unexpected switch count {switches}"
        );
    }

    #[test]
    fn chain_switches_to_a_different_regime() {
        let mut rng = StdRng::seed_from_u64(5);
        // Mean dwell 1 frame forces a switch nearly every step.
        let mut chain = RegimeChain::new(1.0, &mut rng);
        let mut prev = chain.current();
        let mut saw_switch = false;
        for _ in 0..50 {
            let cur = chain.step(&mut rng);
            if cur != prev {
                saw_switch = true;
            }
            prev = cur;
        }
        assert!(saw_switch);
    }
}
