/root/repo/target/debug/deps/lr_nn-17fd8628d5d73614.d: crates/nn/src/lib.rs crates/nn/src/adam.rs crates/nn/src/conv.rs crates/nn/src/init.rs crates/nn/src/layers.rs crates/nn/src/linreg.rs crates/nn/src/loss.rs crates/nn/src/mlp.rs crates/nn/src/optim.rs crates/nn/src/tensor.rs

/root/repo/target/debug/deps/lr_nn-17fd8628d5d73614: crates/nn/src/lib.rs crates/nn/src/adam.rs crates/nn/src/conv.rs crates/nn/src/init.rs crates/nn/src/layers.rs crates/nn/src/linreg.rs crates/nn/src/loss.rs crates/nn/src/mlp.rs crates/nn/src/optim.rs crates/nn/src/tensor.rs

crates/nn/src/lib.rs:
crates/nn/src/adam.rs:
crates/nn/src/conv.rs:
crates/nn/src/init.rs:
crates/nn/src/layers.rs:
crates/nn/src/linreg.rs:
crates/nn/src/loss.rs:
crates/nn/src/mlp.rs:
crates/nn/src/optim.rs:
crates/nn/src/tensor.rs:
