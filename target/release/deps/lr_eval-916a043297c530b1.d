/root/repo/target/release/deps/lr_eval-916a043297c530b1.d: crates/eval/src/lib.rs crates/eval/src/latency.rs crates/eval/src/map.rs crates/eval/src/report.rs crates/eval/src/table.rs

/root/repo/target/release/deps/liblr_eval-916a043297c530b1.rlib: crates/eval/src/lib.rs crates/eval/src/latency.rs crates/eval/src/map.rs crates/eval/src/report.rs crates/eval/src/table.rs

/root/repo/target/release/deps/liblr_eval-916a043297c530b1.rmeta: crates/eval/src/lib.rs crates/eval/src/latency.rs crates/eval/src/map.rs crates/eval/src/report.rs crates/eval/src/table.rs

crates/eval/src/lib.rs:
crates/eval/src/latency.rs:
crates/eval/src/map.rs:
crates/eval/src/report.rs:
crates/eval/src/table.rs:
