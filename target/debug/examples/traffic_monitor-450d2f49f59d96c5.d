/root/repo/target/debug/examples/traffic_monitor-450d2f49f59d96c5.d: examples/traffic_monitor.rs

/root/repo/target/debug/examples/traffic_monitor-450d2f49f59d96c5: examples/traffic_monitor.rs

examples/traffic_monitor.rs:
