/root/repo/target/release/deps/lr_nn-87bbde5121294934.d: crates/nn/src/lib.rs crates/nn/src/adam.rs crates/nn/src/conv.rs crates/nn/src/init.rs crates/nn/src/layers.rs crates/nn/src/linreg.rs crates/nn/src/loss.rs crates/nn/src/mlp.rs crates/nn/src/optim.rs crates/nn/src/tensor.rs

/root/repo/target/release/deps/liblr_nn-87bbde5121294934.rlib: crates/nn/src/lib.rs crates/nn/src/adam.rs crates/nn/src/conv.rs crates/nn/src/init.rs crates/nn/src/layers.rs crates/nn/src/linreg.rs crates/nn/src/loss.rs crates/nn/src/mlp.rs crates/nn/src/optim.rs crates/nn/src/tensor.rs

/root/repo/target/release/deps/liblr_nn-87bbde5121294934.rmeta: crates/nn/src/lib.rs crates/nn/src/adam.rs crates/nn/src/conv.rs crates/nn/src/init.rs crates/nn/src/layers.rs crates/nn/src/linreg.rs crates/nn/src/loss.rs crates/nn/src/mlp.rs crates/nn/src/optim.rs crates/nn/src/tensor.rs

crates/nn/src/lib.rs:
crates/nn/src/adam.rs:
crates/nn/src/conv.rs:
crates/nn/src/init.rs:
crates/nn/src/layers.rs:
crates/nn/src/linreg.rs:
crates/nn/src/loss.rs:
crates/nn/src/mlp.rs:
crates/nn/src/optim.rs:
crates/nn/src/tensor.rs:
