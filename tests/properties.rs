//! Cross-crate property-based tests on the core invariants.

use lr_eval::{GtBox, LatencyStats, MapAccumulator, PredBox};
use lr_video::{BBox, Video, VideoSpec};
use proptest::prelude::*;

fn arb_bbox() -> impl Strategy<Value = BBox> {
    (0.0f32..500.0, 0.0f32..500.0, 1.0f32..200.0, 1.0f32..200.0)
        .prop_map(|(x, y, w, h)| BBox::new(x, y, w, h))
}

proptest! {
    /// IoU is always in [0, 1] and symmetric.
    #[test]
    fn iou_bounds_and_symmetry(a in arb_bbox(), b in arb_bbox()) {
        let ab = a.iou(&b);
        let ba = b.iou(&a);
        // f32 catastrophic cancellation in (x+w)-x at large coordinates
        // bounds the achievable precision.
        prop_assert!((-1e-4..=1.0001).contains(&ab));
        prop_assert!((ab - ba).abs() < 1e-4);
    }

    /// IoU with itself is 1 for valid boxes (up to f32 cancellation in
    /// the corner arithmetic).
    #[test]
    fn iou_self_is_one(a in arb_bbox()) {
        prop_assert!((a.iou(&a) - 1.0).abs() < 1e-3);
    }

    /// Clamping never grows a box and always fits the frame.
    #[test]
    fn clamp_shrinks_into_frame(a in arb_bbox(), w in 10.0f32..1000.0, h in 10.0f32..1000.0) {
        let c = a.clamped(w, h);
        prop_assert!(c.area() <= a.area() * 1.001 + 1e-2);
        prop_assert!(c.x >= 0.0 && c.right() <= w + 1e-3);
        prop_assert!(c.y >= 0.0 && c.bottom() <= h + 1e-3);
    }

    /// mAP is always within [0, 1], whatever the inputs.
    #[test]
    fn map_is_bounded(
        gt_xs in prop::collection::vec((0usize..5, arb_bbox()), 0..8),
        pred_xs in prop::collection::vec((0usize..5, arb_bbox(), 0.01f32..1.0), 0..8),
    ) {
        let mut acc = MapAccumulator::new();
        let gt: Vec<GtBox> = gt_xs.iter().map(|&(class, bbox)| GtBox { class, bbox }).collect();
        let preds: Vec<PredBox> = pred_xs
            .iter()
            .map(|&(class, bbox, score)| PredBox { class, bbox, score })
            .collect();
        acc.add_frame(&gt, &preds);
        let r = acc.finalize(0.5);
        prop_assert!((0.0..=1.0).contains(&r.map));
    }

    /// Predicting ground truth exactly always yields mAP 1 (when there is
    /// ground truth at all).
    #[test]
    fn perfect_predictions_score_one(
        gt_xs in prop::collection::vec((0usize..5, arb_bbox()), 1..6),
    ) {
        // Deduplicate identical (class, bbox) pairs: a duplicated GT box
        // would need two identical predictions ranked apart.
        let mut acc = MapAccumulator::new();
        let gt: Vec<GtBox> = gt_xs.iter().map(|&(class, bbox)| GtBox { class, bbox }).collect();
        let preds: Vec<PredBox> = gt
            .iter()
            .map(|g| PredBox { class: g.class, bbox: g.bbox, score: 0.9 })
            .collect();
        acc.add_frame(&gt, &preds);
        let r = acc.finalize(0.5);
        prop_assert!(r.map > 0.99, "mAP {} for perfect predictions", r.map);
    }

    /// Percentiles are monotone in the quantile.
    #[test]
    fn percentiles_are_monotone(samples in prop::collection::vec(0.0f64..1000.0, 1..50)) {
        let mut s = LatencyStats::new();
        for v in &samples {
            s.record(*v);
        }
        prop_assert!(s.percentile(0.5) <= s.percentile(0.95) + 1e-9);
        prop_assert!(s.percentile(0.95) <= s.percentile(1.0) + 1e-9);
        prop_assert!(s.mean() <= s.max() + 1e-9);
    }

    /// Video generation is deterministic and in-bounds for arbitrary ids.
    #[test]
    fn videos_are_deterministic_and_bounded(id in 0u32..5000) {
        let spec = VideoSpec::from_id(id);
        let v = Video::generate(spec.clone());
        prop_assert_eq!(v.len(), spec.num_frames);
        // Spot-check a few frames for in-bounds objects.
        for f in v.frames.iter().step_by(97) {
            for o in &f.objects {
                prop_assert!(o.bbox.x >= -1e-3 && o.bbox.right() <= f.width + 1e-3);
                prop_assert!(o.bbox.y >= -1e-3 && o.bbox.bottom() <= f.height + 1e-3);
                prop_assert!((0.0..=1.0).contains(&o.difficulty));
            }
        }
    }
}
