//! `lr-lint`: the workspace invariant checker.
//!
//! The reproduction's correctness rests on invariants no compiler
//! enforces: results must be byte-identical for any `LR_POOL_THREADS`,
//! simulated latency must come only from `DeviceSim`/profile models, and
//! float orderings must be NaN-total. This crate machine-checks those
//! invariants with a handful of repo-specific rules over a minimal Rust
//! tokenizer (no syn — the workspace vendors no parser dependencies),
//! compared against a committed, ratcheted baseline
//! (`lint_baseline.json`): counts may fall, never rise.
//!
//! See [`rules`] for the rule catalog (D1, D2, D3, N1, P1), [`baseline`]
//! for the ratchet format, and the `lr-lint` binary for the CLI
//! (`--check`, `--update`, `--explain <rule>`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod lexer;
pub mod rules;
pub mod walk;

use baseline::Baseline;
use rules::{Finding, RuleId, ALL_RULES};

/// Scan of a whole workspace: merged findings and allow census.
#[derive(Debug, Clone, Default)]
pub struct WorkspaceScan {
    /// All findings, in (file, line) order.
    pub findings: Vec<Finding>,
    /// Per-rule allow-directive counts, in [`ALL_RULES`] order.
    pub allows: [usize; ALL_RULES.len()],
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl WorkspaceScan {
    /// Scans a list of `(relative_path, source)` pairs.
    pub fn from_sources<'a>(sources: impl IntoIterator<Item = (&'a str, &'a str)>) -> Self {
        let mut out = Self::default();
        for (path, src) in sources {
            let scan = rules::scan_source(path, src);
            out.findings.extend(scan.findings);
            for (acc, n) in out.allows.iter_mut().zip(scan.allows) {
                *acc += n;
            }
            out.files_scanned += 1;
        }
        out.findings
            .sort_by(|a, b| a.file.cmp(&b.file).then(a.line.cmp(&b.line)));
        out
    }

    /// Findings for one rule.
    pub fn findings_for(&self, rule: RuleId) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(move |f| f.rule == rule)
    }

    /// The baseline this scan would commit.
    pub fn to_baseline(&self) -> Baseline {
        Baseline::from_scan(&self.findings, &self.allows)
    }
}

/// One rule's regression against the committed baseline.
#[derive(Debug, Clone)]
pub struct Regression {
    /// Which rule regressed.
    pub rule: RuleId,
    /// Current / committed totals (current > committed, or equal when
    /// only the allow count rose).
    pub current: usize,
    /// Committed total.
    pub committed: usize,
    /// Current / committed allow-directive counts.
    pub allows: (usize, usize),
    /// Findings in files whose count rose above the committed per-file
    /// count — the places a new violation must live.
    pub new_sites: Vec<Finding>,
}

/// Outcome of `--check`.
#[derive(Debug, Clone, Default)]
pub struct CheckReport {
    /// Rules whose counts rose.
    pub regressions: Vec<Regression>,
    /// Rules whose counts fell (the baseline should be re-ratcheted).
    pub improved: Vec<(RuleId, usize, usize)>,
}

impl CheckReport {
    /// True when no rule regressed.
    pub fn passed(&self) -> bool {
        self.regressions.is_empty()
    }
}

/// Compares a scan against the committed baseline.
pub fn check(scan: &WorkspaceScan, committed: &Baseline) -> CheckReport {
    let current = scan.to_baseline();
    let mut report = CheckReport::default();
    for rule in ALL_RULES {
        let cur = current.rule(rule);
        let base = committed.rule(rule);
        let (cur_total, base_total) = (cur.total(), base.total());
        let (cur_allows, base_allows) = (cur.allows, base.allows);
        if cur_total > base_total || cur_allows > base_allows {
            let new_sites = scan
                .findings_for(rule)
                .filter(|f| {
                    let committed_in_file = base.files.get(&f.file).copied().unwrap_or(0);
                    cur.files.get(&f.file).copied().unwrap_or(0) > committed_in_file
                })
                .cloned()
                .collect();
            report.regressions.push(Regression {
                rule,
                current: cur_total,
                committed: base_total,
                allows: (cur_allows, base_allows),
                new_sites,
            });
        } else if cur_total < base_total || cur_allows < base_allows {
            report.improved.push((rule, cur_total, base_total));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(sources: &[(&str, &str)]) -> WorkspaceScan {
        WorkspaceScan::from_sources(sources.iter().copied())
    }

    const CLEAN: &str = "fn f(m: &std::collections::BTreeMap<u32, u32>) -> u32 { m.len() as u32 }";
    const ONE_D2: &str = "fn f() { let m = HashMap::new(); }";

    #[test]
    fn check_passes_on_matching_baseline() {
        let s = scan(&[("crates/a/src/lib.rs", ONE_D2)]);
        let report = check(&s, &s.to_baseline());
        assert!(report.passed());
        assert!(report.improved.is_empty());
    }

    #[test]
    fn check_fails_when_a_count_rises_and_names_the_site() {
        let before = scan(&[("crates/a/src/lib.rs", CLEAN)]);
        let after = scan(&[
            ("crates/a/src/lib.rs", CLEAN),
            ("crates/b/src/lib.rs", ONE_D2),
        ]);
        let report = check(&after, &before.to_baseline());
        assert!(!report.passed());
        let reg = &report.regressions[0];
        assert_eq!(reg.rule, RuleId::D2);
        assert_eq!((reg.current, reg.committed), (1, 0));
        assert_eq!(reg.new_sites.len(), 1);
        assert_eq!(reg.new_sites[0].file, "crates/b/src/lib.rs");
        assert_eq!(reg.new_sites[0].line, 1);
    }

    #[test]
    fn check_reports_improvement_when_counts_fall() {
        let before = scan(&[("crates/a/src/lib.rs", ONE_D2)]);
        let after = scan(&[("crates/a/src/lib.rs", CLEAN)]);
        let report = check(&after, &before.to_baseline());
        assert!(report.passed());
        assert_eq!(report.improved, vec![(RuleId::D2, 0, 1)]);
    }

    #[test]
    fn rising_allow_count_is_a_regression_even_at_equal_totals() {
        let before = scan(&[("crates/a/src/lib.rs", CLEAN)]);
        let after = scan(&[(
            "crates/a/src/lib.rs",
            "// lr-lint: allow(d2)\nfn f() { let m = HashMap::new(); }",
        )]);
        let report = check(&after, &before.to_baseline());
        assert!(!report.passed());
        let reg = &report.regressions[0];
        assert_eq!(reg.rule, RuleId::D2);
        assert_eq!(reg.allows, (1, 0));
        // The violation itself is suppressed, so totals stayed equal.
        assert_eq!((reg.current, reg.committed), (0, 0));
    }

    #[test]
    fn moving_a_violation_between_files_is_not_a_regression() {
        // Per-file counts shift but the total is flat — by design the
        // ratchet only gates totals, so refactors that move code (file
        // renames, module splits) do not trip it.
        let before = scan(&[
            ("crates/a/src/lib.rs", ONE_D2),
            ("crates/b/src/lib.rs", CLEAN),
        ]);
        let after = scan(&[
            ("crates/a/src/lib.rs", CLEAN),
            ("crates/b/src/lib.rs", ONE_D2),
        ]);
        assert!(check(&after, &before.to_baseline()).passed());
    }

    #[test]
    fn findings_are_sorted_by_file_then_line() {
        let s = scan(&[
            ("crates/b/src/lib.rs", ONE_D2),
            (
                "crates/a/src/lib.rs",
                "fn f() {}\nfn g() { let m = HashSet::new(); }",
            ),
        ]);
        let files: Vec<&str> = s.findings.iter().map(|f| f.file.as_str()).collect();
        assert_eq!(files, vec!["crates/a/src/lib.rs", "crates/b/src/lib.rs"]);
    }

    #[test]
    fn seeded_violations_of_every_rule_are_caught() {
        let seeded = "fn f(v: &mut [f32], o: Option<u32>) {\n\
             let t = Instant::now();\n\
             let m = HashMap::new();\n\
             let r = thread_rng();\n\
             v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));\n\
             let x = o.unwrap();\n\
             println!(\"{x}\");\n\
             }";
        let clean = scan(&[("crates/a/src/lib.rs", CLEAN)]);
        let bad = scan(&[
            ("crates/a/src/lib.rs", CLEAN),
            ("crates/a/src/scratch.rs", seeded),
        ]);
        let report = check(&bad, &clean.to_baseline());
        let regressed: Vec<RuleId> = report.regressions.iter().map(|r| r.rule).collect();
        assert_eq!(regressed, ALL_RULES.to_vec());
        for reg in &report.regressions {
            assert!(
                reg.new_sites
                    .iter()
                    .all(|f| f.file == "crates/a/src/scratch.rs"),
                "{reg:?}"
            );
        }
    }
}
