/root/repo/target/debug/deps/lr_kernels-3fdb951c90a76701.d: crates/kernels/src/lib.rs crates/kernels/src/adascale.rs crates/kernels/src/branch.rs crates/kernels/src/detector.rs crates/kernels/src/heavy.rs crates/kernels/src/latency.rs crates/kernels/src/mbek.rs crates/kernels/src/tracker.rs

/root/repo/target/debug/deps/lr_kernels-3fdb951c90a76701: crates/kernels/src/lib.rs crates/kernels/src/adascale.rs crates/kernels/src/branch.rs crates/kernels/src/detector.rs crates/kernels/src/heavy.rs crates/kernels/src/latency.rs crates/kernels/src/mbek.rs crates/kernels/src/tracker.rs

crates/kernels/src/lib.rs:
crates/kernels/src/adascale.rs:
crates/kernels/src/branch.rs:
crates/kernels/src/detector.rs:
crates/kernels/src/heavy.rs:
crates/kernels/src/latency.rs:
crates/kernels/src/mbek.rs:
crates/kernels/src/tracker.rs:
