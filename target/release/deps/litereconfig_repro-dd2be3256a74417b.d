/root/repo/target/release/deps/litereconfig_repro-dd2be3256a74417b.d: src/lib.rs

/root/repo/target/release/deps/liblitereconfig_repro-dd2be3256a74417b.rlib: src/lib.rs

/root/repo/target/release/deps/liblitereconfig_repro-dd2be3256a74417b.rmeta: src/lib.rs

src/lib.rs:
