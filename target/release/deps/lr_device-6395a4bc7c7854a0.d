/root/repo/target/release/deps/lr_device-6395a4bc7c7854a0.d: crates/device/src/lib.rs crates/device/src/clock.rs crates/device/src/contention.rs crates/device/src/executor.rs crates/device/src/memory.rs crates/device/src/noise.rs crates/device/src/profile.rs crates/device/src/switching.rs

/root/repo/target/release/deps/liblr_device-6395a4bc7c7854a0.rlib: crates/device/src/lib.rs crates/device/src/clock.rs crates/device/src/contention.rs crates/device/src/executor.rs crates/device/src/memory.rs crates/device/src/noise.rs crates/device/src/profile.rs crates/device/src/switching.rs

/root/repo/target/release/deps/liblr_device-6395a4bc7c7854a0.rmeta: crates/device/src/lib.rs crates/device/src/clock.rs crates/device/src/contention.rs crates/device/src/executor.rs crates/device/src/memory.rs crates/device/src/noise.rs crates/device/src/profile.rs crates/device/src/switching.rs

crates/device/src/lib.rs:
crates/device/src/clock.rs:
crates/device/src/contention.rs:
crates/device/src/executor.rs:
crates/device/src/memory.rs:
crates/device/src/noise.rs:
crates/device/src/profile.rs:
crates/device/src/switching.rs:
