//! Synthetic scene-graph video substrate.
//!
//! The paper evaluates on ILSVRC 2015 VID (3,862 training / 555 validation
//! videos). That dataset is unavailable here, so this crate provides a
//! parametric stand-in with the properties the LiteReconfig scheduler
//! actually depends on:
//!
//! - Videos are sequences of **ground-truth frames**: object instances with
//!   class, bounding box, velocity, scale, and difficulty, evolving under
//!   **content regimes** (slow/fast motion, sparse/cluttered scenes) that
//!   switch over time like real video content does.
//! - Frames can be **rasterized** into small RGB images so that pixel-level
//!   content features (HoC, HOG, convolutional embeddings) are computed for
//!   real rather than faked.
//! - Videos are deterministic functions of a seed, and the train/val split
//!   mirrors the paper's protocol (detector training set, scheduler
//!   training set, held-out validation set).
//!
//! Downstream, the detector simulators in `lr-kernels` consume the ground
//! truth to emit noisy detections, and `lr-eval` computes real mAP against
//! the same ground truth — accuracy numbers *emerge* from the pipeline, they
//! are not hard-coded.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classes;
pub mod dataset;
pub mod geometry;
pub mod object;
pub mod raster;
pub mod regime;
pub mod scene;
pub mod trace;
pub mod video;

pub use classes::ObjectClass;
pub use dataset::{Dataset, DatasetConfig, Split};
pub use geometry::BBox;
pub use object::GtObject;
pub use raster::RgbFrame;
pub use regime::{ClutterLevel, MotionLevel, Regime};
pub use video::{FrameTruth, Video, VideoSpec};
