//! VOC-style mean average precision.

use std::collections::BTreeMap;

use lr_video::BBox;

/// A ground-truth box for evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GtBox {
    /// Class index.
    pub class: usize,
    /// Ground-truth bounding box.
    pub bbox: BBox,
}

/// A predicted box for evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredBox {
    /// Predicted class index.
    pub class: usize,
    /// Predicted bounding box.
    pub bbox: BBox,
    /// Confidence score.
    pub score: f32,
}

/// Result of an mAP evaluation.
#[derive(Debug, Clone)]
pub struct MapResult {
    /// Mean AP over classes with at least one ground-truth instance.
    pub map: f64,
    /// Per-class AP, keyed by class index (only classes with ground
    /// truth).
    pub per_class_ap: BTreeMap<usize, f64>,
    /// Total ground-truth instances evaluated.
    pub total_gt: usize,
    /// Total predictions evaluated.
    pub total_pred: usize,
}

/// One prediction record accumulated for a class.
#[derive(Debug, Clone, Copy)]
struct PredRecord {
    frame: u64,
    score: f32,
    bbox: BBox,
}

/// Streaming accumulator: feed ground truth and predictions frame by
/// frame, then finalize into a [`MapResult`].
///
/// # Examples
///
/// ```
/// use lr_eval::{GtBox, MapAccumulator, PredBox};
/// use lr_video::BBox;
///
/// let mut acc = MapAccumulator::new();
/// let gt = [GtBox { class: 0, bbox: BBox::new(0.0, 0.0, 10.0, 10.0) }];
/// let pred = [PredBox { class: 0, bbox: BBox::new(0.5, 0.0, 10.0, 10.0), score: 0.9 }];
/// acc.add_frame(&gt, &pred);
/// let result = acc.finalize(0.5);
/// assert!((result.map - 1.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MapAccumulator {
    next_frame: u64,
    // Per class: ground-truth boxes per frame.
    gt: BTreeMap<usize, BTreeMap<u64, Vec<BBox>>>,
    preds: BTreeMap<usize, Vec<PredRecord>>,
    total_gt: usize,
    total_pred: usize,
}

impl MapAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one frame's ground truth and predictions.
    pub fn add_frame(&mut self, gt: &[GtBox], preds: &[PredBox]) {
        let frame = self.next_frame;
        self.next_frame += 1;
        for g in gt {
            self.gt
                .entry(g.class)
                .or_default()
                .entry(frame)
                .or_default()
                .push(g.bbox);
            self.total_gt += 1;
        }
        for p in preds {
            self.preds.entry(p.class).or_default().push(PredRecord {
                frame,
                score: p.score,
                bbox: p.bbox,
            });
            self.total_pred += 1;
        }
    }

    /// Number of frames accumulated so far.
    pub fn frames(&self) -> u64 {
        self.next_frame
    }

    /// Computes mAP at the given IoU threshold (the paper uses 0.5).
    ///
    /// Classes with ground truth but no predictions score AP 0; classes
    /// with predictions but no ground truth are ignored (standard VOC).
    /// An evaluation with no ground truth at all yields mAP 0.
    pub fn finalize(&self, iou_threshold: f32) -> MapResult {
        let mut per_class_ap = BTreeMap::new();
        for (&class, gt_frames) in &self.gt {
            let npos: usize = gt_frames.values().map(Vec::len).sum();
            let preds = self.preds.get(&class).cloned().unwrap_or_default();
            let ap = average_precision(gt_frames, preds, npos, iou_threshold);
            per_class_ap.insert(class, ap);
        }
        // Sum in sorted class order: summing in BTreeMap iteration order
        // would make the last bits of mAP depend on the map's random
        // state, breaking bit-exact reproducibility across runs.
        let map = if per_class_ap.is_empty() {
            0.0
        } else {
            let mut classes: Vec<usize> = per_class_ap.keys().copied().collect();
            classes.sort_unstable();
            classes.iter().map(|c| per_class_ap[c]).sum::<f64>() / per_class_ap.len() as f64
        };
        MapResult {
            map,
            per_class_ap,
            total_gt: self.total_gt,
            total_pred: self.total_pred,
        }
    }
}

/// AP for one class via greedy matching and all-point interpolation.
fn average_precision(
    gt_frames: &BTreeMap<u64, Vec<BBox>>,
    mut preds: Vec<PredRecord>,
    npos: usize,
    iou_threshold: f32,
) -> f64 {
    if npos == 0 {
        return 0.0;
    }
    preds.sort_by(|a, b| b.score.total_cmp(&a.score));
    // Per frame, which GT boxes are already matched.
    let mut matched: BTreeMap<u64, Vec<bool>> = gt_frames
        .iter()
        .map(|(&f, boxes)| (f, vec![false; boxes.len()]))
        .collect();

    let mut tp = Vec::with_capacity(preds.len());
    for p in &preds {
        let mut best_iou = 0.0f32;
        let mut best_idx = None;
        if let Some(boxes) = gt_frames.get(&p.frame) {
            for (i, g) in boxes.iter().enumerate() {
                let iou = p.bbox.iou(g);
                if iou > best_iou {
                    best_iou = iou;
                    best_idx = Some(i);
                }
            }
        }
        let is_tp = match best_idx {
            Some(i) if best_iou >= iou_threshold => {
                let flags = matched.get_mut(&p.frame).expect("frame flags");
                if flags[i] {
                    false // Duplicate detection of an already-matched GT.
                } else {
                    flags[i] = true;
                    true
                }
            }
            _ => false,
        };
        tp.push(is_tp);
    }

    // Precision-recall curve and all-point interpolated area.
    let mut cum_tp = 0usize;
    let mut recalls = Vec::with_capacity(tp.len());
    let mut precisions = Vec::with_capacity(tp.len());
    for (i, &is_tp) in tp.iter().enumerate() {
        if is_tp {
            cum_tp += 1;
        }
        recalls.push(cum_tp as f64 / npos as f64);
        precisions.push(cum_tp as f64 / (i + 1) as f64);
    }
    // Monotone precision envelope (right to left).
    for i in (0..precisions.len().saturating_sub(1)).rev() {
        if precisions[i] < precisions[i + 1] {
            precisions[i] = precisions[i + 1];
        }
    }
    // Integrate over recall steps.
    let mut ap = 0.0;
    let mut prev_recall = 0.0;
    for (&r, &p) in recalls.iter().zip(precisions.iter()) {
        if r > prev_recall {
            ap += (r - prev_recall) * p;
            prev_recall = r;
        }
    }
    ap
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gt(class: usize, x: f32) -> GtBox {
        GtBox {
            class,
            bbox: BBox::new(x, 0.0, 10.0, 10.0),
        }
    }

    fn pred(class: usize, x: f32, score: f32) -> PredBox {
        PredBox {
            class,
            bbox: BBox::new(x, 0.0, 10.0, 10.0),
            score,
        }
    }

    #[test]
    fn perfect_detection_gives_map_one() {
        let mut acc = MapAccumulator::new();
        acc.add_frame(
            &[gt(0, 0.0), gt(1, 50.0)],
            &[pred(0, 0.0, 0.9), pred(1, 50.0, 0.8)],
        );
        let r = acc.finalize(0.5);
        assert!((r.map - 1.0).abs() < 1e-9);
        assert_eq!(r.per_class_ap.len(), 2);
    }

    #[test]
    fn no_predictions_gives_map_zero() {
        let mut acc = MapAccumulator::new();
        acc.add_frame(&[gt(0, 0.0)], &[]);
        assert_eq!(acc.finalize(0.5).map, 0.0);
    }

    #[test]
    fn wrong_class_is_a_miss() {
        let mut acc = MapAccumulator::new();
        acc.add_frame(&[gt(0, 0.0)], &[pred(1, 0.0, 0.9)]);
        assert_eq!(acc.finalize(0.5).map, 0.0);
    }

    #[test]
    fn poorly_localized_box_is_a_miss() {
        let mut acc = MapAccumulator::new();
        // IoU of (0,0,10,10) and (8,0,10,10) is 2/18 = 0.11 < 0.5.
        acc.add_frame(&[gt(0, 0.0)], &[pred(0, 8.0, 0.9)]);
        assert_eq!(acc.finalize(0.5).map, 0.0);
    }

    #[test]
    fn duplicate_detections_count_once() {
        let mut acc = MapAccumulator::new();
        acc.add_frame(&[gt(0, 0.0)], &[pred(0, 0.0, 0.9), pred(0, 0.5, 0.8)]);
        let r = acc.finalize(0.5);
        // One TP at rank 1, one FP at rank 2: AP = 1.0 (recall saturates
        // at the first prediction).
        assert!((r.map - 1.0).abs() < 1e-9);
    }

    #[test]
    fn false_positive_before_tp_halves_precision() {
        let mut acc = MapAccumulator::new();
        // Higher-scored FP first, then the TP: precision at recall 1 is
        // 1/2, and AP = 0.5.
        acc.add_frame(&[gt(0, 0.0)], &[pred(0, 40.0, 0.9), pred(0, 0.0, 0.8)]);
        let r = acc.finalize(0.5);
        assert!((r.map - 0.5).abs() < 1e-9);
    }

    #[test]
    fn missing_one_of_two_objects_gives_half_recall() {
        let mut acc = MapAccumulator::new();
        acc.add_frame(&[gt(0, 0.0), gt(0, 50.0)], &[pred(0, 0.0, 0.9)]);
        let r = acc.finalize(0.5);
        assert!((r.map - 0.5).abs() < 1e-9);
    }

    #[test]
    fn classes_without_gt_are_ignored() {
        let mut acc = MapAccumulator::new();
        acc.add_frame(&[gt(0, 0.0)], &[pred(0, 0.0, 0.9), pred(5, 70.0, 0.95)]);
        let r = acc.finalize(0.5);
        assert!((r.map - 1.0).abs() < 1e-9);
        assert!(!r.per_class_ap.contains_key(&5));
    }

    #[test]
    fn matching_is_per_frame() {
        let mut acc = MapAccumulator::new();
        // GT only on frame 0; a prediction on frame 1 cannot match it.
        acc.add_frame(&[gt(0, 0.0)], &[]);
        acc.add_frame(&[], &[pred(0, 0.0, 0.9)]);
        assert_eq!(acc.finalize(0.5).map, 0.0);
    }

    #[test]
    fn higher_iou_threshold_is_stricter() {
        let mut acc = MapAccumulator::new();
        // Offset box: IoU = (10-3)/(2*10*10/10 - 7) -> compute: boxes
        // (0..10) vs (3..13): inter 7*10=70, union 130, IoU ~0.538.
        acc.add_frame(&[gt(0, 0.0)], &[pred(0, 3.0, 0.9)]);
        assert!(acc.finalize(0.5).map > 0.9);
        assert_eq!(acc.finalize(0.6).map, 0.0);
    }

    #[test]
    fn empty_accumulator_yields_zero() {
        let acc = MapAccumulator::new();
        let r = acc.finalize(0.5);
        assert_eq!(r.map, 0.0);
        assert_eq!(r.total_gt, 0);
    }

    /// AP must be monotonically non-increasing as detections lose
    /// localization quality.
    #[test]
    fn ap_decreases_with_jitter() {
        let eval_with_offset = |off: f32| {
            let mut acc = MapAccumulator::new();
            for i in 0..50 {
                let x = i as f32 * 20.0;
                acc.add_frame(&[gt(0, x)], &[pred(0, x + off, 0.9 - i as f32 * 0.001)]);
            }
            acc.finalize(0.5).map
        };
        assert!(eval_with_offset(0.0) >= eval_with_offset(2.0));
        assert!(eval_with_offset(2.0) >= eval_with_offset(6.0));
    }
}
