//! The contention generator (CG).
//!
//! §6 of the paper: "CG is used as a stand-in for real-world background
//! workloads... tunable between 0% and 99% GPU contention". The paper
//! evaluates 0% and 50%. Under g% GPU contention the detector (a GPU
//! workload) effectively time-shares the GPU with the contender, so its
//! latency inflates by roughly `1 / (1 - g/100)`; CPU-side work (the
//! trackers, HoC/HOG extraction) is unaffected.

use rand::Rng;

/// A tunable GPU contention source.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContentionGenerator {
    /// GPU contention level in percent, `0.0..=99.0`.
    gpu_level_pct: f64,
}

impl ContentionGenerator {
    /// Creates a generator at the given GPU contention percentage.
    ///
    /// # Panics
    ///
    /// Panics if `gpu_level_pct` is outside `[0, 99]`.
    pub fn new(gpu_level_pct: f64) -> Self {
        assert!(
            (0.0..=99.0).contains(&gpu_level_pct),
            "contention level {gpu_level_pct}% outside [0, 99]"
        );
        Self { gpu_level_pct }
    }

    /// No contention.
    pub fn idle() -> Self {
        Self::new(0.0)
    }

    /// The configured level in percent.
    pub fn gpu_level_pct(&self) -> f64 {
        self.gpu_level_pct
    }

    /// The mean slowdown factor applied to GPU ops.
    pub fn mean_gpu_slowdown(&self) -> f64 {
        1.0 / (1.0 - self.gpu_level_pct / 100.0)
    }

    /// Samples an instantaneous GPU slowdown factor.
    ///
    /// The contender's activity is bursty, so the instantaneous factor
    /// jitters around the mean: the op may land in a quiet window (close to
    /// 1x) or collide with a burst (worse than the mean). Zero contention
    /// always returns exactly 1.
    pub fn sample_gpu_slowdown(&self, rng: &mut impl Rng) -> f64 {
        if self.gpu_level_pct == 0.0 {
            return 1.0;
        }
        let mean = self.mean_gpu_slowdown();
        // Burstiness: mixture of a quiet window and a collision.
        let quiet_prob = (1.0 - self.gpu_level_pct / 100.0) * 0.5;
        if rng.gen::<f64>() < quiet_prob {
            1.0 + (mean - 1.0) * rng.gen_range(0.0..0.4)
        } else {
            mean * rng.gen_range(0.85..1.35)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn idle_contention_is_identity() {
        let cg = ContentionGenerator::idle();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(cg.sample_gpu_slowdown(&mut rng), 1.0);
        }
    }

    #[test]
    fn fifty_percent_roughly_doubles_gpu_time() {
        let cg = ContentionGenerator::new(50.0);
        assert!((cg.mean_gpu_slowdown() - 2.0).abs() < 1e-9);
        let mut rng = StdRng::seed_from_u64(2);
        let n = 20_000;
        let mean: f64 =
            (0..n).map(|_| cg.sample_gpu_slowdown(&mut rng)).sum::<f64>() / n as f64;
        assert!(
            (1.6..2.4).contains(&mean),
            "sampled mean slowdown {mean} far from 2x"
        );
    }

    #[test]
    fn slowdown_never_below_one() {
        let cg = ContentionGenerator::new(80.0);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            assert!(cg.sample_gpu_slowdown(&mut rng) >= 1.0);
        }
    }

    #[test]
    fn higher_levels_mean_higher_slowdown() {
        assert!(
            ContentionGenerator::new(80.0).mean_gpu_slowdown()
                > ContentionGenerator::new(50.0).mean_gpu_slowdown()
        );
    }

    #[test]
    #[should_panic(expected = "outside [0, 99]")]
    fn one_hundred_percent_is_rejected() {
        let _ = ContentionGenerator::new(100.0);
    }
}
