/root/repo/target/release/deps/contention-ff777a0f4c8815d0.d: crates/serve/tests/contention.rs

/root/repo/target/release/deps/contention-ff777a0f4c8815d0: crates/serve/tests/contention.rs

crates/serve/tests/contention.rs:
