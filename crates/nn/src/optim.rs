//! Optimizers.
//!
//! The paper trains its accuracy prediction networks with stochastic
//! gradient descent, momentum 0.9, and L2 regularization (§4). [`Sgd`]
//! implements exactly that configuration.

/// SGD hyper-parameters with momentum and L2 weight decay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sgd {
    /// Learning rate.
    pub learning_rate: f32,
    /// Momentum coefficient (the paper uses 0.9).
    pub momentum: f32,
    /// L2 regularization coefficient applied to weights.
    pub weight_decay: f32,
    /// Clip the loss gradient's Frobenius norm to this value before
    /// backpropagation (`f32::INFINITY` disables clipping). Guards wide
    /// regression heads against divergence spirals.
    pub grad_clip: f32,
}

impl Sgd {
    /// The paper's configuration: momentum 0.9 with the given learning rate
    /// and decay.
    pub fn paper(learning_rate: f32, weight_decay: f32) -> Self {
        Self {
            learning_rate,
            momentum: 0.9,
            weight_decay,
            grad_clip: f32::INFINITY,
        }
    }

    /// Plain SGD (no momentum, no decay) for tests and ablations.
    pub fn plain(learning_rate: f32) -> Self {
        Self {
            learning_rate,
            momentum: 0.0,
            weight_decay: 0.0,
            grad_clip: f32::INFINITY,
        }
    }

    /// Returns a copy with gradient clipping enabled.
    pub fn with_grad_clip(self, clip: f32) -> Self {
        Self {
            grad_clip: clip,
            ..self
        }
    }

    /// Returns a copy with the learning rate scaled by `factor`, used for
    /// simple step-decay schedules.
    pub fn with_lr_scaled(self, factor: f32) -> Self {
        Self {
            learning_rate: self.learning_rate * factor,
            ..self
        }
    }
}

impl Default for Sgd {
    fn default() -> Self {
        Sgd::paper(1e-2, 1e-4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_uses_momentum_09() {
        let s = Sgd::paper(0.01, 1e-4);
        assert_eq!(s.momentum, 0.9);
    }

    #[test]
    fn lr_scaling() {
        let s = Sgd::plain(0.1).with_lr_scaled(0.5);
        assert!((s.learning_rate - 0.05).abs() < 1e-9);
    }
}
