//! A std-only scoped worker pool with an order-preserving parallel map.
//!
//! The rest of the workspace is written so that every result is a pure
//! function of its inputs and a seed; this crate adds host-side
//! parallelism without giving that up. The determinism contract:
//!
//! - **Results come back in input order.** `par_map` and friends return
//!   `Vec<R>` where slot `i` holds `f`'s output for item `i`, no matter
//!   which worker computed it or when it finished.
//! - **Work items own their state.** The closure receives one item (by
//!   shared or exclusive reference) and must not touch the others;
//!   seeded RNG state lives *inside* the item, never in shared storage.
//!   Under that rule the output is bit-for-bit identical for any thread
//!   count, including 1.
//! - **Thread count is an environment knob, not a semantic one.**
//!   [`Pool::from_env`] honors `LR_POOL_THREADS` (default: the host's
//!   available parallelism), so any run can be A/B'd against
//!   `LR_POOL_THREADS=1` and must produce byte-identical artifacts.
//!
//! Workers are `std::thread::scope` threads spawned per call: the pool
//! holds no persistent threads, so it can borrow from the caller's stack
//! and never outlives the data it maps over. Items are handed out via an
//! atomic cursor (dynamic load balancing); each worker accumulates
//! `(index, result)` pairs locally and the caller scatters them back
//! into place after the join, which is what keeps order independent of
//! scheduling.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Environment variable overriding the worker count (`>= 1`).
pub const THREADS_ENV: &str = "LR_POOL_THREADS";

/// A handle describing how many workers a parallel map may use.
///
/// # Examples
///
/// ```
/// use lr_pool::Pool;
///
/// let pool = Pool::new(4);
/// let squares = pool.par_map(&[1u64, 2, 3, 4, 5], |&x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16, 25]);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Pool {
    threads: usize,
}

impl Default for Pool {
    fn default() -> Self {
        Self::from_env()
    }
}

/// The worker count [`Pool::from_env`] resolves to: `LR_POOL_THREADS`
/// when set to a positive integer, otherwise the host's available
/// parallelism (1 when that cannot be determined).
pub fn threads_from_env() -> usize {
    parse_threads(std::env::var(THREADS_ENV).ok().as_deref()).unwrap_or_else(available_threads)
}

/// The pure parsing core of [`threads_from_env`]: `Some(n)` for a
/// positive integer (surrounding whitespace tolerated), `None` for an
/// unset, empty, zero, or unparsable value — callers fall back to the
/// host's available parallelism.
pub fn parse_threads(value: Option<&str>) -> Option<usize> {
    value
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
}

fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

impl Pool {
    /// A pool with an explicit worker count (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }

    /// A pool sized from the environment (see [`threads_from_env`]).
    pub fn from_env() -> Self {
        Self::new(threads_from_env())
    }

    /// Resolves an override: `0` means "from the environment", any
    /// other value is an explicit worker count. This is the convention
    /// config structs use to embed a pool size.
    pub fn resolve(threads: usize) -> Self {
        if threads == 0 {
            Self::from_env()
        } else {
            Self::new(threads)
        }
    }

    /// Number of workers this pool will spawn (at most; never more than
    /// the number of items).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Maps `f` over `items` in parallel, returning results in input
    /// order.
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        self.par_map_indexed(items, |_, item| f(item))
    }

    /// Like [`Pool::par_map`], passing the item's index alongside it.
    pub fn par_map_indexed<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let n = items.len();
        if self.threads == 1 || n <= 1 {
            return items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
        }
        self.run(n, |i| f(i, &items[i]))
    }

    /// Like [`Pool::par_map_indexed`], but each worker owns a scratch
    /// state built by `init` (e.g. a feature cache or reusable buffer)
    /// that is threaded through every item that worker processes.
    ///
    /// The determinism contract extends to the state: `f` must produce a
    /// result that does not depend on the state's history (caches and
    /// scratch buffers qualify; accumulators do not), since which items
    /// share a worker's state varies with thread count and scheduling.
    pub fn par_map_init<T, R, S, I, F>(&self, items: &[T], init: I, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize, &T) -> R + Sync,
    {
        let n = items.len();
        if self.threads == 1 || n <= 1 {
            let mut state = init();
            return items
                .iter()
                .enumerate()
                .map(|(i, x)| f(&mut state, i, x))
                .collect();
        }
        self.run_with(n, init, |state, i| f(state, i, &items[i]))
    }

    /// Maps `f` over `items` with exclusive access to each item,
    /// returning results in input order. Each item is visited exactly
    /// once, so mutation is race-free by construction; the per-item
    /// mutex exists only to prove that to the compiler and is never
    /// contended.
    pub fn par_map_mut<T, R, F>(&self, items: &mut [T], f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, &mut T) -> R + Sync,
    {
        let n = items.len();
        if self.threads == 1 || n <= 1 {
            return items.iter_mut().enumerate().map(|(i, x)| f(i, x)).collect();
        }
        let cells: Vec<Mutex<&mut T>> = items.iter_mut().map(Mutex::new).collect();
        self.run(n, |i| {
            let mut guard = cells[i].lock().expect("pool cell poisoned");
            f(i, &mut guard)
        })
    }

    /// The shared fan-out core: hands indices `0..n` to workers via an
    /// atomic cursor and scatters `(index, result)` pairs back into
    /// input order. Panics in `f` are propagated to the caller.
    fn run<R, G>(&self, n: usize, g: G) -> Vec<R>
    where
        R: Send,
        G: Fn(usize) -> R + Sync,
    {
        self.run_with(n, || (), |(), i| g(i))
    }

    /// [`Pool::run`] with a per-worker state built by `init` on the
    /// worker's own thread and reused across every index it claims.
    fn run_with<R, S, I, G>(&self, n: usize, init: I, g: G) -> Vec<R>
    where
        R: Send,
        I: Fn() -> S + Sync,
        G: Fn(&mut S, usize) -> R + Sync,
    {
        let workers = self.threads.min(n);
        let cursor = AtomicUsize::new(0);
        let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
        slots.resize_with(n, || None);

        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut state = init();
                        let mut local: Vec<(usize, R)> = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            local.push((i, g(&mut state, i)));
                        }
                        local
                    })
                })
                .collect();
            for handle in handles {
                match handle.join() {
                    Ok(local) => {
                        for (i, r) in local {
                            slots[i] = Some(r);
                        }
                    }
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
        });

        slots
            .into_iter()
            .map(|r| r.expect("every index computed exactly once"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        let items: Vec<usize> = (0..257).collect();
        for threads in [1, 2, 3, 8] {
            let pool = Pool::new(threads);
            let out = pool.par_map(&items, |&x| x * 2);
            assert_eq!(out, items.iter().map(|&x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn indexed_variant_sees_true_indices() {
        let items = vec!["a", "b", "c", "d"];
        let out = Pool::new(4).par_map_indexed(&items, |i, s| format!("{i}:{s}"));
        assert_eq!(out, vec!["0:a", "1:b", "2:c", "3:d"]);
    }

    #[test]
    fn thread_count_does_not_change_results() {
        // Each item owns its RNG state (a seed), per the pool contract.
        let seeds: Vec<u64> = (0..64).collect();
        let work = |&s: &u64| {
            // SplitMix64: a deterministic function of the item alone.
            let mut z = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z ^ (z >> 27)
        };
        let serial = Pool::new(1).par_map(&seeds, work);
        for threads in [2, 4, 7] {
            assert_eq!(Pool::new(threads).par_map(&seeds, work), serial);
        }
    }

    #[test]
    fn par_map_mut_gives_exclusive_access() {
        let mut items: Vec<Vec<u64>> = (0..33).map(|i| vec![i]).collect();
        let sums = Pool::new(4).par_map_mut(&mut items, |i, v| {
            v.push(i as u64 * 10);
            v.iter().sum::<u64>()
        });
        for (i, (item, sum)) in items.iter().zip(&sums).enumerate() {
            assert_eq!(item, &vec![i as u64, i as u64 * 10]);
            assert_eq!(*sum, i as u64 * 11);
        }
    }

    #[test]
    fn par_map_init_reuses_worker_state_without_changing_results() {
        let items: Vec<u64> = (0..97).collect();
        let expect: Vec<u64> = items.iter().map(|&x| x * 3).collect();
        for threads in [1, 2, 5] {
            let inits = AtomicUsize::new(0);
            let out = Pool::new(threads).par_map_init(
                &items,
                || {
                    inits.fetch_add(1, Ordering::Relaxed);
                    Vec::<u64>::new() // a scratch buffer, rebuilt per worker
                },
                |scratch, _, &x| {
                    scratch.clear();
                    scratch.extend([x, x, x]);
                    scratch.iter().sum::<u64>()
                },
            );
            assert_eq!(out, expect);
            assert!(inits.load(Ordering::Relaxed) <= threads);
        }
    }

    #[test]
    fn empty_and_single_item_inputs() {
        let pool = Pool::new(8);
        let empty: Vec<u32> = Vec::new();
        assert!(pool.par_map(&empty, |&x| x).is_empty());
        assert_eq!(pool.par_map(&[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn resolve_zero_means_env() {
        assert!(Pool::resolve(0).threads() >= 1);
        assert_eq!(Pool::resolve(3).threads(), 3);
    }

    #[test]
    fn panics_propagate() {
        let items: Vec<u32> = (0..16).collect();
        let result = std::panic::catch_unwind(|| {
            Pool::new(4).par_map(&items, |&x| {
                if x == 9 {
                    panic!("boom");
                }
                x
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn panics_propagate_out_of_par_map_init() {
        let items: Vec<u32> = (0..32).collect();
        let result = std::panic::catch_unwind(|| {
            Pool::new(4).par_map_init(&items, Vec::<u32>::new, |_, _, &x| {
                if x == 17 {
                    panic!("boom in worker with state");
                }
                x
            })
        });
        assert!(result.is_err());
        // The serial (threads == 1) path must propagate too.
        let serial = std::panic::catch_unwind(|| {
            Pool::new(1).par_map_init(&items, Vec::<u32>::new, |_, _, &x| {
                if x == 17 {
                    panic!("boom serial");
                }
                x
            })
        });
        assert!(serial.is_err());
    }

    #[test]
    fn panics_propagate_out_of_par_map_mut() {
        let mut items: Vec<u32> = (0..16).collect();
        let result = std::panic::catch_unwind(move || {
            Pool::new(4).par_map_mut(&mut items, |_, x| {
                if *x == 3 {
                    panic!("boom mut");
                }
                *x
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn init_and_mut_variants_accept_empty_input() {
        let pool = Pool::new(8);
        let empty: Vec<u32> = Vec::new();
        let out = pool.par_map_init(&empty, || 0u32, |_, _, &x| x);
        assert!(out.is_empty());
        let mut none: Vec<u32> = Vec::new();
        assert!(pool.par_map_mut(&mut none, |_, x| *x).is_empty());
    }

    #[test]
    fn thread_env_parsing_falls_back_on_bad_values() {
        assert_eq!(parse_threads(Some("4")), Some(4));
        assert_eq!(parse_threads(Some(" 12\n")), Some(12));
        // Zero, garbage, empty, negative, and unset all defer to the host.
        assert_eq!(parse_threads(Some("0")), None);
        assert_eq!(parse_threads(Some("lots")), None);
        assert_eq!(parse_threads(Some("")), None);
        assert_eq!(parse_threads(Some("-2")), None);
        assert_eq!(parse_threads(None), None);
        // And the fallback itself is always a usable worker count.
        assert!(threads_from_env() >= 1);
    }
}
