//! The `Ben(f_H)` benefit lookup tables (§3.4).
//!
//! Feature selection must work *without* extracting the heavy features,
//! so the expected accuracy improvement of recruiting a feature set is
//! looked up from offline statistics rather than computed online: for
//! each heavy feature and each latency objective, `Ben` is the mean
//! offline improvement of scheduling with that feature's accuracy model
//! over scheduling with the light model alone. Negative entries are kept
//! — they are exactly what makes the cost-benefit analyzer decline a
//! feature (the MobileNet effect of Figure 2).

use std::collections::BTreeMap;

use lr_features::FeatureKind;

use crate::offline::OfflineDataset;
use crate::predictor::AccuracyModel;

/// Benefit lookup table: feature x SLO bucket -> expected mAP gain.
#[derive(Debug, Clone)]
pub struct BenTable {
    slos: Vec<f64>,
    per_feature: BTreeMap<FeatureKind, Vec<f32>>,
}

impl BenTable {
    /// Computes the table from offline data and trained models.
    ///
    /// `models` must contain the [`FeatureKind::Light`] model and one
    /// model per heavy feature to be tabulated. Without a light model
    /// there is no baseline to measure gains against, so the table
    /// degrades to empty (every lookup returns 0, i.e. no feature is
    /// ever worth recruiting).
    ///
    /// # Panics
    ///
    /// Panics if `slos` is empty.
    pub fn compute(
        dataset: &OfflineDataset,
        models: &BTreeMap<FeatureKind, AccuracyModel>,
        slos: &[f64],
    ) -> Self {
        assert!(!slos.is_empty(), "need at least one SLO bucket");
        let Some(light_model) = models.get(&FeatureKind::Light) else {
            return Self::uniform(&[], slos);
        };
        let mut per_feature = BTreeMap::new();
        for (&kind, model) in models {
            if kind == FeatureKind::Light {
                continue;
            }
            // The feature's own extraction+prediction cost shrinks the
            // kernel budget of the branch it helps choose (amortized over
            // a typical mid-range GoF of 8 frames, as in the paper's §3.4
            // example). This is what makes Ben a *net* benefit: a feature
            // that picks better branches but starves the kernel scores
            // low or negative at tight SLOs.
            let c = kind.cost();
            let amortized_cost = (c.marginal_extract_ms + c.predict_ms) / 8.0;
            let mut per_slo = Vec::with_capacity(slos.len());
            for &slo in slos {
                let mut gain = 0.0f32;
                let mut n = 0usize;
                for r in &dataset.records {
                    let Some(heavy) = r.heavy.get(&kind) else {
                        continue;
                    };
                    let light_pred = light_model.predict(&r.light, None);
                    let content_pred = model.predict(&r.light, Some(heavy));
                    // Match the online scheduler's conservative budget
                    // (it checks feasibility against slo * headroom).
                    let budget = slo * 0.88;
                    let light_pick = best_feasible(r, &light_pred, budget);
                    let content_pick = best_feasible(r, &content_pred, budget - amortized_cost);
                    if let (Some(a), Some(b)) = (light_pick, content_pick) {
                        gain += r.branch_map[b] - r.branch_map[a];
                        n += 1;
                    }
                }
                per_slo.push(if n > 0 { gain / n as f32 } else { 0.0 });
            }
            per_feature.insert(kind, per_slo);
        }
        Self {
            slos: slos.to_vec(),
            per_feature,
        }
    }

    /// A table with fixed benefits per feature at every SLO, for tests and
    /// ablations.
    pub fn uniform(benefits: &[(FeatureKind, f32)], slos: &[f64]) -> Self {
        let per_feature = benefits
            .iter()
            .map(|&(k, v)| (k, vec![v; slos.len()]))
            .collect();
        Self {
            slos: slos.to_vec(),
            per_feature,
        }
    }

    /// Nearest SLO bucket index.
    fn bucket(&self, slo_ms: f64) -> usize {
        self.slos
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| (*a - slo_ms).abs().total_cmp(&(*b - slo_ms).abs()))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Expected benefit of one feature at an SLO (0 for unknown features).
    pub fn single(&self, kind: FeatureKind, slo_ms: f64) -> f32 {
        let b = self.bucket(slo_ms);
        self.per_feature.get(&kind).map_or(0.0, |v| v[b])
    }

    /// Expected benefit of a feature *set* at an SLO: the best member's
    /// benefit plus a small diminishing bonus per additional member
    /// (features are largely redundant views of the same content, so
    /// benefits do not add).
    pub fn set_benefit(&self, set: &[FeatureKind], slo_ms: f64) -> f32 {
        if set.is_empty() {
            return 0.0;
        }
        let best = set
            .iter()
            .map(|&k| self.single(k, slo_ms))
            .fold(f32::NEG_INFINITY, f32::max);
        best + 0.002 * (set.len() as f32 - 1.0)
    }
}

/// The feasible branch with the highest predicted accuracy under a kernel
/// budget, using the record's *observed* per-branch latencies.
fn best_feasible(
    record: &crate::offline::SnippetRecord,
    predicted: &[f32],
    budget_ms: f64,
) -> Option<usize> {
    let mut best: Option<(usize, f32)> = None;
    for (i, &p) in predicted.iter().enumerate() {
        let ms = record.branch_det_ms[i] + record.branch_trk_ms[i];
        if ms <= budget_ms && best.is_none_or(|(_, bp)| p > bp) {
            best = Some((i, p));
        }
    }
    best.map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_table_returns_constants() {
        let t = BenTable::uniform(
            &[(FeatureKind::HoC, 0.02), (FeatureKind::MobileNetV2, -0.01)],
            &[33.3, 50.0, 100.0],
        );
        assert_eq!(t.single(FeatureKind::HoC, 50.0), 0.02);
        assert_eq!(t.single(FeatureKind::MobileNetV2, 33.3), -0.01);
        assert_eq!(t.single(FeatureKind::Hog, 33.3), 0.0);
    }

    #[test]
    fn bucket_snaps_to_nearest_slo() {
        let t = BenTable::uniform(&[(FeatureKind::HoC, 1.0)], &[33.3, 100.0]);
        assert_eq!(t.bucket(40.0), 0);
        assert_eq!(t.bucket(90.0), 1);
    }

    #[test]
    fn empty_set_has_zero_benefit() {
        let t = BenTable::uniform(&[(FeatureKind::HoC, 0.05)], &[50.0]);
        assert_eq!(t.set_benefit(&[], 50.0), 0.0);
    }

    #[test]
    fn set_benefit_is_dominated_by_best_member() {
        let t = BenTable::uniform(
            &[(FeatureKind::HoC, 0.05), (FeatureKind::Hog, 0.01)],
            &[50.0],
        );
        let both = t.set_benefit(&[FeatureKind::HoC, FeatureKind::Hog], 50.0);
        assert!(both >= 0.05);
        assert!(both < 0.06, "benefits must not add linearly");
    }
}
