/root/repo/target/debug/deps/lr_serve-6ae642bc748e0449.d: crates/serve/src/lib.rs crates/serve/src/admission.rs crates/serve/src/dispatch.rs crates/serve/src/report.rs crates/serve/src/shared.rs crates/serve/src/slo.rs Cargo.toml

/root/repo/target/debug/deps/liblr_serve-6ae642bc748e0449.rmeta: crates/serve/src/lib.rs crates/serve/src/admission.rs crates/serve/src/dispatch.rs crates/serve/src/report.rs crates/serve/src/shared.rs crates/serve/src/slo.rs Cargo.toml

crates/serve/src/lib.rs:
crates/serve/src/admission.rs:
crates/serve/src/dispatch.rs:
crates/serve/src/report.rs:
crates/serve/src/shared.rs:
crates/serve/src/slo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
