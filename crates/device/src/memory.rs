//! Unified-memory model for OOM reproduction.
//!
//! Table 3 of the paper shows several heavyweight models (MEGA-ResNet-101,
//! REPP-over-FGFA, ...) failing with out-of-memory errors on the TX2's
//! 8 GB unified memory. The memory model tracks resident model footprints
//! against the board's capacity.

use crate::profile::DeviceProfile;

/// Tracks resident memory against a device's capacity.
#[derive(Debug, Clone)]
pub struct MemoryModel {
    capacity_gb: f64,
    /// Memory reserved by the OS, display pipeline, and CUDA context; the
    /// full 8 GB of a TX2 is never available to the application.
    system_reserved_gb: f64,
    resident: Vec<(String, f64)>,
}

impl MemoryModel {
    /// Creates a memory model for a device.
    pub fn new(profile: &DeviceProfile) -> Self {
        Self {
            capacity_gb: profile.memory_gb,
            system_reserved_gb: 1.0,
            resident: Vec::new(),
        }
    }

    /// Usable capacity in GiB.
    pub fn usable_gb(&self) -> f64 {
        self.capacity_gb - self.system_reserved_gb
    }

    /// Currently resident application memory in GiB.
    pub fn resident_gb(&self) -> f64 {
        self.resident.iter().map(|(_, gb)| gb).sum()
    }

    /// Attempts to load a model of `footprint_gb`; returns `Err` with the
    /// shortfall if it would exceed usable memory (an OOM).
    pub fn try_load(&mut self, name: &str, footprint_gb: f64) -> Result<(), OomError> {
        assert!(footprint_gb >= 0.0, "negative footprint");
        let after = self.resident_gb() + footprint_gb;
        if after > self.usable_gb() {
            return Err(OomError {
                model: name.to_string(),
                requested_gb: footprint_gb,
                available_gb: self.usable_gb() - self.resident_gb(),
            });
        }
        self.resident.push((name.to_string(), footprint_gb));
        Ok(())
    }

    /// Unloads a previously loaded model; no-op if absent.
    pub fn unload(&mut self, name: &str) {
        self.resident.retain(|(n, _)| n != name);
    }

    /// Checks whether a footprint would fit without loading it.
    pub fn would_fit(&self, footprint_gb: f64) -> bool {
        self.resident_gb() + footprint_gb <= self.usable_gb()
    }
}

/// An out-of-memory failure.
#[derive(Debug, Clone, PartialEq)]
pub struct OomError {
    /// Name of the model that failed to load.
    pub model: String,
    /// Requested footprint in GiB.
    pub requested_gb: f64,
    /// Memory that was actually available in GiB.
    pub available_gb: f64,
}

impl std::fmt::Display for OomError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "OOM loading {}: requested {:.2} GiB, {:.2} GiB available",
            self.model, self.requested_gb, self.available_gb
        )
    }
}

impl std::error::Error for OomError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::DeviceKind;

    #[test]
    fn tx2_cannot_hold_a_10gb_model() {
        let mut mem = MemoryModel::new(&DeviceKind::JetsonTx2.profile());
        assert!(mem.try_load("REPP-over-FGFA", 10.02).is_err());
    }

    #[test]
    fn xavier_can_hold_what_tx2_cannot() {
        let mut mem = MemoryModel::new(&DeviceKind::AgxXavier.profile());
        assert!(mem.try_load("REPP-over-FGFA", 10.02).is_ok());
    }

    #[test]
    fn cumulative_loads_can_oom() {
        let mut mem = MemoryModel::new(&DeviceKind::JetsonTx2.profile());
        assert!(mem.try_load("a", 3.0).is_ok());
        assert!(mem.try_load("b", 3.0).is_ok());
        let err = mem.try_load("c", 3.0).unwrap_err();
        assert_eq!(err.model, "c");
        assert!(err.available_gb < 3.0);
    }

    #[test]
    fn unload_frees_memory() {
        let mut mem = MemoryModel::new(&DeviceKind::JetsonTx2.profile());
        mem.try_load("a", 5.0).unwrap();
        mem.unload("a");
        assert_eq!(mem.resident_gb(), 0.0);
        assert!(mem.would_fit(6.0));
    }

    #[test]
    fn oom_error_displays_useful_message() {
        let e = OomError {
            model: "MEGA".into(),
            requested_gb: 9.38,
            available_gb: 6.8,
        };
        let s = e.to_string();
        assert!(s.contains("MEGA") && s.contains("9.38"));
    }
}
