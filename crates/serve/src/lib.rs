//! `lr-serve`: a multi-stream serving runtime over the LiteReconfig
//! pipeline.
//!
//! The paper's system reconfigures a *single* video pipeline under an
//! SLO, with GPU contention supplied as an exogenous knob (the CG).
//! On a shared mobile SoC the co-running workloads *are* the
//! contention: every stream's GPU ops slow every other stream down.
//! This crate closes that loop:
//!
//! - [`SharedDevice`] serializes the GPU ops of N per-stream pipelines
//!   onto one virtual-clock timeline and measures each stream's GPU
//!   *occupancy* over a sliding window. The occupancy of the other
//!   streams determines the processor-sharing slowdown a stream
//!   observes — contention is **endogenous**, derived from measured
//!   load, not from a static `contention_pct`.
//! - [`AdmissionController`] holds per-stream SLO classes
//!   ([`SloClass`]) and rejects — or degrades, for classes that allow
//!   it — streams whose predicted GPU demand would push aggregate
//!   occupancy past capacity.
//! - [`serve`] is the round-based dispatcher: it steps all admitted
//!   streams GoF-by-GoF in virtual time with priority aging and
//!   violation-driven backpressure, and produces a [`ServeReport`]
//!   (per-stream mAP, p50/p95/p99 GoF latency, SLO-violation rate,
//!   admission counts).
//!
//! Each admitted stream keeps its own `litereconfig` scheduler, whose
//! latency predictor consumes the measured slowdown through
//! `StreamPipeline::observe_contention` — so per-stream reconfiguration
//! (cheaper branches, longer GoFs) remains the mechanism that absorbs
//! load, exactly as in the paper, but the load is now real.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod dispatch;
pub mod report;
pub mod shared;
pub mod slo;

pub use admission::{AdmissionController, AdmissionDecision};
pub use dispatch::{serve, serve_traced, ServeConfig};
pub use lr_obs::{ObsBundle, ObsMode};
pub use report::{ServeReport, StreamReport};
pub use shared::SharedDevice;
pub use slo::{SloClass, StreamSpec};
