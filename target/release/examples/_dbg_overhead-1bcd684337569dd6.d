/root/repo/target/release/examples/_dbg_overhead-1bcd684337569dd6.d: examples/_dbg_overhead.rs

/root/repo/target/release/examples/_dbg_overhead-1bcd684337569dd6: examples/_dbg_overhead.rs

examples/_dbg_overhead.rs:
