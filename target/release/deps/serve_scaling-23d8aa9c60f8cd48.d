/root/repo/target/release/deps/serve_scaling-23d8aa9c60f8cd48.d: crates/bench/src/bin/serve_scaling.rs

/root/repo/target/release/deps/serve_scaling-23d8aa9c60f8cd48: crates/bench/src/bin/serve_scaling.rs

crates/bench/src/bin/serve_scaling.rs:
