//! Axis-aligned bounding boxes and overlap computations.

/// An axis-aligned bounding box in pixel coordinates.
///
/// Boxes are stored as top-left corner plus size. All detection,
/// tracking, and evaluation code in the workspace uses this type.
///
/// # Examples
///
/// ```
/// use lr_video::BBox;
///
/// let a = BBox::new(0.0, 0.0, 10.0, 10.0);
/// let b = BBox::new(5.0, 5.0, 10.0, 10.0);
/// let iou = a.iou(&b);
/// assert!((iou - 25.0 / 175.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BBox {
    /// Left edge.
    pub x: f32,
    /// Top edge.
    pub y: f32,
    /// Width (non-negative).
    pub w: f32,
    /// Height (non-negative).
    pub h: f32,
}

impl BBox {
    /// Creates a box from its top-left corner and size.
    ///
    /// Negative sizes are clamped to zero.
    pub fn new(x: f32, y: f32, w: f32, h: f32) -> Self {
        Self {
            x,
            y,
            w: w.max(0.0),
            h: h.max(0.0),
        }
    }

    /// Creates a box from its center point and size.
    pub fn from_center(cx: f32, cy: f32, w: f32, h: f32) -> Self {
        Self::new(cx - w / 2.0, cy - h / 2.0, w, h)
    }

    /// Box area.
    pub fn area(&self) -> f32 {
        self.w * self.h
    }

    /// Center point `(cx, cy)`.
    pub fn center(&self) -> (f32, f32) {
        (self.x + self.w / 2.0, self.y + self.h / 2.0)
    }

    /// Right edge.
    pub fn right(&self) -> f32 {
        self.x + self.w
    }

    /// Bottom edge.
    pub fn bottom(&self) -> f32 {
        self.y + self.h
    }

    /// Intersection area with another box.
    pub fn intersection_area(&self, other: &BBox) -> f32 {
        let ix = (self.right().min(other.right()) - self.x.max(other.x)).max(0.0);
        let iy = (self.bottom().min(other.bottom()) - self.y.max(other.y)).max(0.0);
        ix * iy
    }

    /// Intersection-over-union with another box, in `[0, 1]`.
    ///
    /// Returns 0 when both boxes are degenerate.
    pub fn iou(&self, other: &BBox) -> f32 {
        let inter = self.intersection_area(other);
        let union = self.area() + other.area() - inter;
        if union <= 0.0 {
            0.0
        } else {
            inter / union
        }
    }

    /// Translates the box by `(dx, dy)`.
    pub fn translated(&self, dx: f32, dy: f32) -> BBox {
        BBox::new(self.x + dx, self.y + dy, self.w, self.h)
    }

    /// Scales width and height about the center by `factor`.
    pub fn scaled_about_center(&self, factor: f32) -> BBox {
        let (cx, cy) = self.center();
        BBox::from_center(cx, cy, self.w * factor, self.h * factor)
    }

    /// Clamps the box to lie within a `width x height` frame.
    ///
    /// The result keeps whatever portion of the box overlaps the frame; a
    /// box entirely outside collapses to a zero-area sliver on the border.
    pub fn clamped(&self, width: f32, height: f32) -> BBox {
        let x0 = self.x.clamp(0.0, width);
        let y0 = self.y.clamp(0.0, height);
        let x1 = self.right().clamp(0.0, width);
        let y1 = self.bottom().clamp(0.0, height);
        BBox::new(x0, y0, x1 - x0, y1 - y0)
    }

    /// True if the box has positive area.
    pub fn is_valid(&self) -> bool {
        self.w > 0.0 && self.h > 0.0 && self.x.is_finite() && self.y.is_finite()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iou_of_identical_boxes_is_one() {
        let b = BBox::new(1.0, 2.0, 3.0, 4.0);
        assert!((b.iou(&b) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn iou_of_disjoint_boxes_is_zero() {
        let a = BBox::new(0.0, 0.0, 1.0, 1.0);
        let b = BBox::new(5.0, 5.0, 1.0, 1.0);
        assert_eq!(a.iou(&b), 0.0);
    }

    #[test]
    fn iou_is_symmetric() {
        let a = BBox::new(0.0, 0.0, 4.0, 4.0);
        let b = BBox::new(2.0, 1.0, 4.0, 5.0);
        assert!((a.iou(&b) - b.iou(&a)).abs() < 1e-6);
    }

    #[test]
    fn degenerate_boxes_have_zero_iou() {
        let a = BBox::new(0.0, 0.0, 0.0, 0.0);
        assert_eq!(a.iou(&a), 0.0);
    }

    #[test]
    fn clamp_keeps_inside_portion() {
        let b = BBox::new(-5.0, -5.0, 10.0, 10.0).clamped(20.0, 20.0);
        assert_eq!(b, BBox::new(0.0, 0.0, 5.0, 5.0));
    }

    #[test]
    fn clamp_fully_outside_collapses() {
        let b = BBox::new(30.0, 30.0, 5.0, 5.0).clamped(20.0, 20.0);
        assert_eq!(b.area(), 0.0);
        assert!(!b.is_valid());
    }

    #[test]
    fn from_center_round_trips() {
        let b = BBox::from_center(10.0, 20.0, 4.0, 6.0);
        assert_eq!(b.center(), (10.0, 20.0));
        assert_eq!((b.w, b.h), (4.0, 6.0));
    }

    #[test]
    fn scale_about_center_preserves_center() {
        let b = BBox::new(0.0, 0.0, 10.0, 10.0).scaled_about_center(0.5);
        assert_eq!(b.center(), (5.0, 5.0));
        assert_eq!((b.w, b.h), (5.0, 5.0));
    }

    #[test]
    fn negative_size_clamped_to_zero() {
        let b = BBox::new(0.0, 0.0, -3.0, 4.0);
        assert_eq!(b.w, 0.0);
    }
}
