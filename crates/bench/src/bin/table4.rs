//! Table 4: effectiveness of individual content features — accuracy when
//! one feature is always used with its overhead ignored (the latency
//! objective applies to the MBEK only).
//!
//! Usage: `cargo run --release -p lr-bench --bin table4 [small|paper]`

use litereconfig::pipeline::{run_adaptive, RunConfig};
use litereconfig::{FeatureService, Policy};
use lr_bench::{scale_from_args, Suite};
use lr_device::DeviceKind;
use lr_eval::TextTable;
use lr_features::{FeatureKind, HEAVY_FEATURE_KINDS};

fn main() {
    let suite = Suite::build(scale_from_args());
    let slos = [33.3, 50.0, 100.0];
    let mut table = TextTable::new(&["Feature", "33.3 ms", "50.0 ms", "100.0 ms"]);

    // "None" row: the content-agnostic model under the same
    // kernel-only-budget protocol.
    let mut configs: Vec<(String, Policy)> = vec![(
        "None".to_string(),
        Policy::ForcedFeatureFree(FeatureKind::Light),
    )];
    for kind in HEAVY_FEATURE_KINDS {
        configs.push((kind.name().to_string(), Policy::ForcedFeatureFree(kind)));
    }

    // Every (feature, SLO) cell is an independent seeded run; fan them
    // out and reassemble the rows from the order-preserved results.
    let cells: Vec<(usize, usize)> = (0..configs.len())
        .flat_map(|row_idx| (0..slos.len()).map(move |slo_idx| (row_idx, slo_idx)))
        .collect();
    let raster_size = suite.svc.raster_size();
    let pool = lr_pool::Pool::from_env();
    let maps = pool.par_map_init(
        &cells,
        || FeatureService::with_raster_size(raster_size),
        |svc, _, &(row_idx, slo_idx)| {
            let (name, policy) = &configs[row_idx];
            let slo = slos[slo_idx];
            let cfg = RunConfig::clean(
                DeviceKind::JetsonTx2,
                0.0,
                slo,
                2000 + row_idx as u64 * 10 + slo_idx as u64,
            );
            let r = run_adaptive(&suite.val_videos, suite.frcnn.clone(), *policy, &cfg, svc);
            eprintln!(
                "[table4] {name} @{slo}ms -> mAP {:.1} (features {:?})",
                r.map_pct(),
                r.decisions
            );
            r.map_pct()
        },
    );
    let rows: Vec<(String, Vec<f64>)> = configs
        .iter()
        .enumerate()
        .map(|(row_idx, (name, _))| {
            let start = row_idx * slos.len();
            (name.clone(), maps[start..start + slos.len()].to_vec())
        })
        .collect();

    for (name, maps) in &rows {
        table.add_row_owned(
            std::iter::once(name.clone())
                .chain(maps.iter().map(|m| format!("{m:.1}%")))
                .collect(),
        );
    }
    println!("\nTable 4: accuracy of forced single content features (overhead ignored, TX2)\n");
    println!("{}", table.render());

    // The paper's headline from this table: every content feature beats
    // "None".
    let none = &rows[0].1;
    let mut wins = 0;
    let mut cells = 0;
    for (name, maps) in rows.iter().skip(1) {
        for (i, m) in maps.iter().enumerate() {
            cells += 1;
            if *m >= none[i] {
                wins += 1;
            } else {
                eprintln!("[table4] {name} below None at {} ms", slos[i]);
            }
        }
    }
    println!("content-feature cells at or above the content-agnostic row: {wins}/{cells}");
}
