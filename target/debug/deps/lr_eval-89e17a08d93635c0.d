/root/repo/target/debug/deps/lr_eval-89e17a08d93635c0.d: crates/eval/src/lib.rs crates/eval/src/latency.rs crates/eval/src/map.rs crates/eval/src/report.rs crates/eval/src/table.rs

/root/repo/target/debug/deps/lr_eval-89e17a08d93635c0: crates/eval/src/lib.rs crates/eval/src/latency.rs crates/eval/src/map.rs crates/eval/src/report.rs crates/eval/src/table.rs

crates/eval/src/lib.rs:
crates/eval/src/latency.rs:
crates/eval/src/map.rs:
crates/eval/src/report.rs:
crates/eval/src/table.rs:
