/root/repo/target/release/deps/figure3-658049d5a66a5dd4.d: crates/bench/src/bin/figure3.rs

/root/repo/target/release/deps/figure3-658049d5a66a5dd4: crates/bench/src/bin/figure3.rs

crates/bench/src/bin/figure3.rs:
