/root/repo/target/debug/deps/lr_features-3f3a295432fb917e.d: crates/features/src/lib.rs crates/features/src/cost.rs crates/features/src/cpop.rs crates/features/src/deep.rs crates/features/src/hoc.rs crates/features/src/hog.rs crates/features/src/light.rs Cargo.toml

/root/repo/target/debug/deps/liblr_features-3f3a295432fb917e.rmeta: crates/features/src/lib.rs crates/features/src/cost.rs crates/features/src/cpop.rs crates/features/src/deep.rs crates/features/src/hoc.rs crates/features/src/hog.rs crates/features/src/light.rs Cargo.toml

crates/features/src/lib.rs:
crates/features/src/cost.rs:
crates/features/src/cpop.rs:
crates/features/src/deep.rs:
crates/features/src/hoc.rs:
crates/features/src/hog.rs:
crates/features/src/light.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
