//! Dataset splits mirroring the paper's protocol.
//!
//! The paper uses 90% of the ILSVRC VID training set to train the vision
//! algorithms, the remaining 10% to train the scheduler (latency model,
//! accuracy model, switching-overhead model, `Ben(·)` tables), and the
//! validation set exclusively for evaluation. We reproduce the same
//! three-way split over synthetic videos, with disjoint id ranges so no
//! video ever leaks across splits.

use crate::video::{Video, VideoSpec};

/// Which split a video belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Split {
    /// Trains the vision kernels (detector calibration).
    TrainVision,
    /// Trains the scheduler (predictors, Ben tables, switching costs).
    TrainScheduler,
    /// Held out for evaluation only.
    Validation,
}

/// Dataset size configuration.
///
/// The defaults are scaled-down but proportionate to the paper's
/// 3,476 / 386 / 555 video counts; experiments override them per budget.
#[derive(Debug, Clone)]
pub struct DatasetConfig {
    /// Videos in the vision-training split.
    pub train_vision: usize,
    /// Videos in the scheduler-training split.
    pub train_scheduler: usize,
    /// Videos in the validation split.
    pub validation: usize,
    /// Base offset applied to all video ids (lets tests use disjoint
    /// universes).
    pub id_offset: u32,
}

impl Default for DatasetConfig {
    fn default() -> Self {
        Self {
            train_vision: 45,
            train_scheduler: 30,
            validation: 25,
            id_offset: 0,
        }
    }
}

impl DatasetConfig {
    /// A tiny configuration for unit tests.
    pub fn tiny() -> Self {
        Self {
            train_vision: 2,
            train_scheduler: 2,
            validation: 2,
            id_offset: 10_000,
        }
    }
}

/// A dataset: lazy access to the videos of each split.
///
/// Videos are generated on demand from their deterministic specs; holding
/// a `Dataset` costs nothing until videos are materialized.
#[derive(Debug, Clone)]
pub struct Dataset {
    config: DatasetConfig,
}

impl Dataset {
    /// Creates a dataset with the given split sizes.
    pub fn new(config: DatasetConfig) -> Self {
        Self { config }
    }

    /// The configuration.
    pub fn config(&self) -> &DatasetConfig {
        &self.config
    }

    /// Number of videos in a split.
    pub fn len(&self, split: Split) -> usize {
        match split {
            Split::TrainVision => self.config.train_vision,
            Split::TrainScheduler => self.config.train_scheduler,
            Split::Validation => self.config.validation,
        }
    }

    /// True if the split is empty.
    pub fn is_empty(&self, split: Split) -> bool {
        self.len(split) == 0
    }

    /// The video ids of a split. Id ranges are disjoint by construction.
    pub fn ids(&self, split: Split) -> Vec<u32> {
        let base = self.config.id_offset;
        let tv = self.config.train_vision as u32;
        let ts = self.config.train_scheduler as u32;
        let val = self.config.validation as u32;
        let range = match split {
            Split::TrainVision => base..base + tv,
            Split::TrainScheduler => base + tv..base + tv + ts,
            Split::Validation => base + tv + ts..base + tv + ts + val,
        };
        range.collect()
    }

    /// The specs of a split.
    pub fn specs(&self, split: Split) -> Vec<VideoSpec> {
        self.ids(split)
            .into_iter()
            .map(VideoSpec::from_id)
            .collect()
    }

    /// Generates the `index`-th video of a split.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range for the split.
    pub fn video(&self, split: Split, index: usize) -> Video {
        let ids = self.ids(split);
        assert!(
            index < ids.len(),
            "video index {index} out of range for split ({})",
            ids.len()
        );
        Video::generate(VideoSpec::from_id(ids[index]))
    }

    /// Generates every video of a split.
    pub fn videos(&self, split: Split) -> Vec<Video> {
        self.ids(split)
            .into_iter()
            .map(|id| Video::generate(VideoSpec::from_id(id)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_are_disjoint() {
        let ds = Dataset::new(DatasetConfig::default());
        let mut all = Vec::new();
        for split in [Split::TrainVision, Split::TrainScheduler, Split::Validation] {
            all.extend(ds.ids(split));
        }
        let n = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), n, "video ids leak across splits");
    }

    #[test]
    fn split_sizes_match_config() {
        let ds = Dataset::new(DatasetConfig::default());
        assert_eq!(ds.len(Split::TrainVision), 45);
        assert_eq!(ds.len(Split::TrainScheduler), 30);
        assert_eq!(ds.len(Split::Validation), 25);
    }

    #[test]
    fn videos_are_reproducible() {
        let ds = Dataset::new(DatasetConfig::tiny());
        let a = ds.video(Split::Validation, 0);
        let b = ds.video(Split::Validation, 0);
        assert_eq!(a.spec, b.spec);
        assert_eq!(a.frames.len(), b.frames.len());
        assert_eq!(a.frames[10], b.frames[10]);
    }

    #[test]
    fn id_offset_shifts_universe() {
        let a = Dataset::new(DatasetConfig {
            id_offset: 0,
            ..DatasetConfig::tiny()
        });
        let b = Dataset::new(DatasetConfig {
            id_offset: 500,
            ..DatasetConfig::tiny()
        });
        assert_ne!(a.ids(Split::TrainVision), b.ids(Split::TrainVision));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_video_panics() {
        let ds = Dataset::new(DatasetConfig::tiny());
        let _ = ds.video(Split::Validation, 99);
    }
}
