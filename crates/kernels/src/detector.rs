//! Analytic object-detector simulators.
//!
//! A detector run consumes a frame's ground truth and emits noisy
//! detections. The stochastic model encodes the empirical regularities of
//! the real detectors the paper uses, so that accuracy — later *computed*
//! as real mAP against ground truth — responds to the knobs and to content
//! the way the published systems do:
//!
//! - **input shape**: objects smaller than ~14 px at detector resolution
//!   are likely missed, so small objects need large shapes (the apparent
//!   size is `relative_scale x shape`); localization jitter also shrinks
//!   with shape;
//! - **nprop**: ground-truth objects compete with clutter-induced
//!   distractor proposals for the `nprop` RPN slots, so cluttered scenes
//!   need more proposals;
//! - **motion blur**: fast objects are harder to detect and localize;
//! - **difficulty**: intrinsic per-object detectability;
//! - **family**: one-stage baselines trade recall/jitter for speed;
//!   EfficientDet variants are stronger but slower.

use rand::Rng;

use lr_video::classes::NUM_CLASSES;
use lr_video::{BBox, FrameTruth, GtObject, ObjectClass};

use crate::branch::DetectorConfig;

/// One detection: a scored, classified box.
#[derive(Debug, Clone, PartialEq)]
pub struct Detection {
    /// Detected box in source-resolution pixels.
    pub bbox: BBox,
    /// Predicted class.
    pub class: ObjectClass,
    /// Confidence score in `(0, 1)`.
    pub score: f32,
    /// Ground-truth object id this detection arose from (`None` for false
    /// positives). Used by the tracker simulator to follow trajectories;
    /// the evaluation pipeline never reads it.
    pub gt_id: Option<u32>,
}

/// Full output of a detector run.
#[derive(Debug, Clone)]
pub struct DetectorOutput {
    /// Detections after NMS.
    pub detections: Vec<Detection>,
    /// Per-proposal class logits (31-d: 30 classes + background), the raw
    /// material of the CPoP feature.
    pub proposal_logits: Vec<Vec<f32>>,
}

/// Which detector architecture is being simulated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DetectorFamily {
    /// Two-stage Faster R-CNN — the MBEK's detector.
    FasterRcnn,
    /// YOLOv3 (one-stage), used by the YOLO+ protocol.
    Yolo,
    /// SSD-MobileNetV2-MnasFPN (one-stage), used by the SSD+ protocol.
    Ssd,
    /// EfficientDet-D0 (Table 3).
    EfficientDetD0,
    /// EfficientDet-D3 (Table 3).
    EfficientDetD3,
    /// AdaScale's scale-adaptive Faster R-CNN (Tables 2 and 3).
    AdaScale,
}

/// Family-specific quality knobs.
#[derive(Debug, Clone, Copy)]
pub(crate) struct QualityProfile {
    /// Multiplier on detection probability.
    pub recall_factor: f32,
    /// Multiplier on localization jitter.
    pub jitter_scale: f32,
    /// Multiplier on false-positive rate.
    pub fp_scale: f32,
    /// Whether the proposal-competition term applies (two-stage only).
    pub uses_proposals: bool,
}

impl DetectorFamily {
    pub(crate) fn quality(self) -> QualityProfile {
        match self {
            DetectorFamily::FasterRcnn => QualityProfile {
                recall_factor: 1.0,
                jitter_scale: 1.0,
                fp_scale: 1.0,
                uses_proposals: true,
            },
            DetectorFamily::Yolo => QualityProfile {
                recall_factor: 0.93,
                jitter_scale: 1.25,
                fp_scale: 1.2,
                uses_proposals: false,
            },
            DetectorFamily::Ssd => QualityProfile {
                recall_factor: 0.90,
                jitter_scale: 1.35,
                fp_scale: 1.1,
                uses_proposals: false,
            },
            DetectorFamily::EfficientDetD0 => QualityProfile {
                recall_factor: 1.06,
                jitter_scale: 0.8,
                fp_scale: 0.8,
                uses_proposals: false,
            },
            DetectorFamily::EfficientDetD3 => QualityProfile {
                recall_factor: 1.18,
                jitter_scale: 0.55,
                fp_scale: 0.6,
                uses_proposals: false,
            },
            DetectorFamily::AdaScale => QualityProfile {
                recall_factor: 1.08,
                jitter_scale: 0.8,
                fp_scale: 0.9,
                uses_proposals: false,
            },
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            DetectorFamily::FasterRcnn => "FasterRCNN",
            DetectorFamily::Yolo => "YOLOv3",
            DetectorFamily::Ssd => "SSD-MobileNetV2",
            DetectorFamily::EfficientDetD0 => "EfficientDet-D0",
            DetectorFamily::EfficientDetD3 => "EfficientDet-D3",
            DetectorFamily::AdaScale => "AdaScale",
        }
    }
}

/// A detector simulator for one family.
#[derive(Debug, Clone, Copy)]
pub struct DetectorSim {
    family: DetectorFamily,
}

impl DetectorSim {
    /// Creates a simulator for the given family.
    pub fn new(family: DetectorFamily) -> Self {
        Self { family }
    }

    /// The simulated family.
    pub fn family(&self) -> DetectorFamily {
        self.family
    }

    /// Runs the detector on one frame's ground truth.
    pub fn detect(
        &self,
        truth: &FrameTruth,
        cfg: DetectorConfig,
        rng: &mut impl Rng,
    ) -> DetectorOutput {
        let q = self.family.quality();
        let shape = cfg.shape as f32;
        let texture = truth.regime.clutter.texture_amplitude();
        let short_side = truth.width.min(truth.height).max(1.0);

        // Rank objects by salience for proposal competition. NaN-total
        // ordering plus an index tie-break keeps the ranking deterministic
        // even for degenerate (NaN-area) boxes.
        let mut order: Vec<usize> = (0..truth.objects.len()).collect();
        order.sort_by(|&a, &b| {
            salience(&truth.objects[b])
                .total_cmp(&salience(&truth.objects[a]))
                .then(a.cmp(&b))
        });

        // Clutter-induced distractor proposals compete for RPN slots.
        let distractors = 3.0 + texture * 20.0;
        let effective_props = 2.0 * cfg.nprop as f32 / (1.0 + 0.4 * distractors);

        let mut detections = Vec::new();
        let mut proposal_logits = Vec::new();

        for (rank, &idx) in order.iter().enumerate() {
            let obj = &truth.objects[idx];
            let app_size = obj.relative_scale(truth.width, truth.height) * shape;
            let p_scale = sigmoid((app_size - 14.0) / 7.0).min(0.985);
            let speed_rel = obj.speed() / short_side;
            let p_blur = (-speed_rel * 8.0).exp();
            let p_diff = 1.0 - 0.55 * obj.difficulty;
            let p_prop = if q.uses_proposals {
                1.0 - (-effective_props / (rank as f32 + 1.0)).exp()
            } else {
                // One-stage detectors classify a dense grid; coverage is
                // high but degrades slightly in clutter.
                (1.0 - 0.25 * texture).min(0.97)
            };
            let p_det = (p_scale * p_blur * p_diff * p_prop * q.recall_factor).clamp(0.0, 0.99);

            // Detection outcomes are *temporally persistent*: a marginal
            // object is missed for a stretch of frames, not re-rolled
            // i.i.d. per frame (real detector misses are strongly
            // correlated in time — motion blur, pose, occlusion persist).
            // The draw is a deterministic hash of (stream, object,
            // 12-frame epoch), so its long-run rate is exactly `p_det`.
            let u_det = persistent_uniform(truth.stream_id, obj.id, truth.frame_index / 12, 0xD0A1);
            if u_det < p_det {
                // Localization jitter shrinks with shape, grows with blur.
                let jitter =
                    (0.015 + 0.05 * (224.0 / shape)) * q.jitter_scale * (1.0 + 6.0 * speed_rel);
                let (cx, cy) = obj.bbox.center();
                let dx = randn(rng) * jitter * obj.bbox.w;
                let dy = randn(rng) * jitter * obj.bbox.h;
                let sw = (randn(rng) * jitter).exp();
                let sh = (randn(rng) * jitter).exp();
                let bbox = BBox::from_center(cx + dx, cy + dy, obj.bbox.w * sw, obj.bbox.h * sh)
                    .clamped(truth.width, truth.height);

                // Classification confusion: small/difficult objects are
                // mislabeled more often. Confusion is also persistent (a
                // misclassified object stays misclassified while its pose
                // holds), and the wrong label is stable within the epoch.
                let p_correct = (0.82 + 0.18 * sigmoid((app_size - 10.0) / 8.0))
                    * (1.0 - 0.15 * obj.difficulty);
                let u_cls =
                    persistent_uniform(truth.stream_id, obj.id, truth.frame_index / 12, 0xC1A5);
                let (class, score_factor) = if u_cls < p_correct {
                    (obj.class, 1.0)
                } else {
                    let pick =
                        persistent_uniform(truth.stream_id, obj.id, truth.frame_index / 12, 0x07E2);
                    // A wrong label comes with a weaker logit: confused
                    // detections rank below confident correct ones, which
                    // is what keeps real detectors' mAP from cratering.
                    (stable_other_class(obj.class, pick), 0.55)
                };
                let score = (p_det * score_factor * rng.gen_range(0.75..1.0)).clamp(0.05, 0.999);
                if bbox.is_valid() {
                    detections.push(Detection {
                        bbox,
                        class,
                        score,
                        gt_id: Some(obj.id),
                    });
                    proposal_logits.push(object_logits(class, score));
                }
            }
        }

        // False positives: clutter plus proposal budget induce spurious
        // boxes with low-to-mid scores.
        let prop_frac = if q.uses_proposals {
            (cfg.nprop as f32 / 100.0).sqrt()
        } else {
            1.0
        };
        let lambda = (0.04 + 0.9 * texture) * prop_frac * q.fp_scale;
        let n_fp = poisson(lambda, rng);
        for _ in 0..n_fp {
            let w = rng.gen_range(0.03..0.2) * truth.width;
            let h = rng.gen_range(0.03..0.2) * truth.height;
            let x = rng.gen_range(0.0..(truth.width - w).max(1.0));
            let y = rng.gen_range(0.0..(truth.height - h).max(1.0));
            let class = ObjectClass::new(rng.gen_range(0..NUM_CLASSES));
            let score = rng.gen_range(0.05..0.55);
            detections.push(Detection {
                bbox: BBox::new(x, y, w, h),
                class,
                score,
                gt_id: None,
            });
            proposal_logits.push(object_logits(class, score * 0.6));
        }

        // Remaining proposals are background.
        let bg_slots = if q.uses_proposals {
            (cfg.nprop as usize)
                .min(12)
                .saturating_sub(proposal_logits.len())
        } else {
            4usize.saturating_sub(proposal_logits.len())
        };
        for _ in 0..bg_slots {
            proposal_logits.push(background_logits(rng));
        }

        detections.sort_by(|a, b| b.score.total_cmp(&a.score));
        DetectorOutput {
            detections,
            proposal_logits,
        }
    }
}

/// Salience used for proposal competition: big, easy objects win slots.
fn salience(obj: &GtObject) -> f32 {
    obj.bbox.area() * (1.0 - obj.difficulty)
}

/// Class logits for a proposal covering an object of the given class.
fn object_logits(class: ObjectClass, strength: f32) -> Vec<f32> {
    let mut v = vec![0.0f32; NUM_CLASSES + 1];
    v[class.index()] = 2.0 + 4.0 * strength;
    v[NUM_CLASSES] = 0.5;
    v
}

/// Class logits for a background proposal.
fn background_logits(rng: &mut impl Rng) -> Vec<f32> {
    let mut v = vec![0.0f32; NUM_CLASSES + 1];
    v[NUM_CLASSES] = rng.gen_range(2.0..4.0);
    v
}

/// Uniformly samples a class different from `class`.
pub(crate) fn random_other_class(class: ObjectClass, rng: &mut impl Rng) -> ObjectClass {
    loop {
        let c = ObjectClass::new(rng.gen_range(0..NUM_CLASSES));
        if c != class {
            return c;
        }
    }
}

/// Maps a uniform draw to a class different from `class`.
fn stable_other_class(class: ObjectClass, u: f32) -> ObjectClass {
    let idx = ((u * (NUM_CLASSES - 1) as f32) as usize).min(NUM_CLASSES - 2);
    let idx = if idx >= class.index() { idx + 1 } else { idx };
    ObjectClass::new(idx)
}

/// A deterministic uniform in `[0, 1)` from a hash of the inputs
/// (splitmix64). Used for temporally persistent stochastic outcomes.
fn persistent_uniform(stream: u64, obj: u32, epoch: u32, salt: u64) -> f32 {
    let mut z = stream
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((obj as u64) << 32 | epoch as u64)
        .wrapping_add(salt.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 40) as f32 / (1u64 << 24) as f32
}

/// Sigmoid.
fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Approximate standard normal (Irwin–Hall sum of 12 uniforms).
pub(crate) fn randn(rng: &mut impl Rng) -> f32 {
    let s: f32 = (0..12).map(|_| rng.gen::<f32>()).sum();
    s - 6.0
}

/// Poisson sample by inversion (fine for the small rates used here).
fn poisson(lambda: f32, rng: &mut impl Rng) -> usize {
    if lambda <= 0.0 {
        return 0;
    }
    let l = (-lambda).exp();
    let mut k = 0usize;
    let mut p = 1.0f32;
    loop {
        p *= rng.gen::<f32>();
        if p <= l || k > 50 {
            return k;
        }
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lr_video::{Video, VideoSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn video() -> Video {
        Video::generate(VideoSpec {
            id: 0,
            seed: 61,
            width: 640.0,
            height: 480.0,
            num_frames: 200,
        })
    }

    /// Mean recall of true objects over many frames under a config.
    fn mean_recall(family: DetectorFamily, cfg: DetectorConfig, seed: u64) -> f32 {
        let v = video();
        let sim = DetectorSim::new(family);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut hits = 0usize;
        let mut total = 0usize;
        for f in &v.frames {
            let out = sim.detect(f, cfg, &mut rng);
            let detected: std::collections::HashSet<u32> =
                out.detections.iter().filter_map(|d| d.gt_id).collect();
            total += f.objects.len();
            hits += f
                .objects
                .iter()
                .filter(|o| detected.contains(&o.id))
                .count();
        }
        hits as f32 / total.max(1) as f32
    }

    #[test]
    fn bigger_shape_improves_recall() {
        let small = mean_recall(DetectorFamily::FasterRcnn, DetectorConfig::new(224, 100), 1);
        let big = mean_recall(DetectorFamily::FasterRcnn, DetectorConfig::new(576, 100), 1);
        assert!(big > small + 0.03, "big {big} vs small {small}");
    }

    #[test]
    fn more_proposals_improve_recall() {
        let few = mean_recall(DetectorFamily::FasterRcnn, DetectorConfig::new(448, 1), 2);
        let many = mean_recall(DetectorFamily::FasterRcnn, DetectorConfig::new(448, 100), 2);
        assert!(many > few + 0.05, "many {many} vs few {few}");
    }

    #[test]
    fn detections_stay_inside_frame() {
        let v = video();
        let sim = DetectorSim::new(DetectorFamily::FasterRcnn);
        let mut rng = StdRng::seed_from_u64(3);
        for f in v.frames.iter().take(50) {
            let out = sim.detect(f, DetectorConfig::new(576, 100), &mut rng);
            for d in &out.detections {
                assert!(d.bbox.x >= 0.0 && d.bbox.right() <= f.width + 1e-3);
                assert!(d.bbox.y >= 0.0 && d.bbox.bottom() <= f.height + 1e-3);
                assert!((0.0..=1.0).contains(&d.score));
            }
        }
    }

    #[test]
    fn detections_are_sorted_by_score() {
        let v = video();
        let sim = DetectorSim::new(DetectorFamily::FasterRcnn);
        let mut rng = StdRng::seed_from_u64(4);
        let out = sim.detect(&v.frames[0], DetectorConfig::new(576, 100), &mut rng);
        for w in out.detections.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn proposal_logits_have_cpop_width() {
        let v = video();
        let sim = DetectorSim::new(DetectorFamily::FasterRcnn);
        let mut rng = StdRng::seed_from_u64(5);
        let out = sim.detect(&v.frames[0], DetectorConfig::new(448, 20), &mut rng);
        assert!(!out.proposal_logits.is_empty());
        for l in &out.proposal_logits {
            assert_eq!(l.len(), NUM_CLASSES + 1);
        }
    }

    #[test]
    fn efficientdet_d3_beats_frcnn_recall() {
        let cfg = DetectorConfig::new(576, 100);
        let frcnn = mean_recall(DetectorFamily::FasterRcnn, cfg, 6);
        let d3 = mean_recall(DetectorFamily::EfficientDetD3, cfg, 6);
        assert!(d3 > frcnn, "d3 {d3} vs frcnn {frcnn}");
    }

    #[test]
    fn detection_is_reproducible_per_seed() {
        let v = video();
        let sim = DetectorSim::new(DetectorFamily::FasterRcnn);
        let run = || {
            let mut rng = StdRng::seed_from_u64(7);
            sim.detect(&v.frames[10], DetectorConfig::new(448, 20), &mut rng)
                .detections
        };
        assert_eq!(run(), run());
    }

    /// Detection outcomes must be temporally persistent: within one
    /// 12-frame epoch an object's detected/missed status cannot flicker,
    /// whatever the RNG does.
    #[test]
    fn detection_outcome_is_stable_within_an_epoch() {
        let v = video();
        let sim = DetectorSim::new(DetectorFamily::FasterRcnn);
        let cfg = DetectorConfig::new(320, 20);
        // Pick an object alive during frames 12..24 (one epoch).
        let epoch_frames = &v.frames[12..24];
        let always_present: Vec<u32> = epoch_frames[0]
            .objects
            .iter()
            .map(|o| o.id)
            .filter(|id| {
                epoch_frames
                    .iter()
                    .all(|f| f.objects.iter().any(|o| o.id == *id))
            })
            .collect();
        let mut rng = StdRng::seed_from_u64(11);
        let mut status: HashMap<u32, Vec<bool>> = HashMap::new();
        for f in epoch_frames {
            let out = sim.detect(f, cfg, &mut rng);
            let det: std::collections::HashSet<u32> =
                out.detections.iter().filter_map(|d| d.gt_id).collect();
            for &id in &always_present {
                status.entry(id).or_default().push(det.contains(&id));
            }
        }
        // Within the epoch, detectability can only change because p_det
        // itself drifts across the detection threshold (speed/size change
        // slowly). Flickering (multiple alternations) must not happen.
        for (id, seq) in status {
            let alternations = seq.windows(2).filter(|w| w[0] != w[1]).count();
            assert!(
                alternations <= 1,
                "object {id} flickered within an epoch: {seq:?}"
            );
        }
    }

    use std::collections::HashMap;

    /// Two branches run on the same frame share detection outcomes in a
    /// monotone way: the higher-recall branch detects a superset of the
    /// objects (common random numbers across branches).
    #[test]
    fn higher_recall_branch_detects_a_superset() {
        let v = video();
        let sim = DetectorSim::new(DetectorFamily::FasterRcnn);
        let mut rng = StdRng::seed_from_u64(12);
        for f in v.frames.iter().take(60) {
            let weak: std::collections::HashSet<u32> = sim
                .detect(f, DetectorConfig::new(224, 100), &mut rng)
                .detections
                .iter()
                .filter_map(|d| d.gt_id)
                .collect();
            let strong: std::collections::HashSet<u32> = sim
                .detect(f, DetectorConfig::new(576, 100), &mut rng)
                .detections
                .iter()
                .filter_map(|d| d.gt_id)
                .collect();
            assert!(
                weak.is_subset(&strong),
                "weak branch detected objects the strong branch missed"
            );
        }
    }

    #[test]
    fn poisson_mean_is_roughly_lambda() {
        let mut rng = StdRng::seed_from_u64(8);
        let n = 20_000;
        let mean: f32 = (0..n).map(|_| poisson(1.5, &mut rng) as f32).sum::<f32>() / n as f32;
        assert!((1.3..1.7).contains(&mean), "poisson mean {mean}");
    }
}
