//! Offline profiling: the data the scheduler is trained on.
//!
//! Following §4 of the paper, the scheduler-training split is processed
//! into per-snippet records: the content features of the snippet's first
//! frame (the only frame the online scheduler will have seen when it must
//! decide), the snippet-specific mAP of *every* catalog branch (the labels
//! for the content-aware accuracy model), and per-branch latency
//! observations (the data for the latency regressions).

use std::collections::BTreeMap;

use lr_device::{DeviceKind, DeviceSim};
use lr_eval::{GtBox, MapAccumulator, PredBox};
use lr_features::FeatureKind;
use lr_kernels::{Branch, Detection, DetectorFamily, Mbek};
use lr_video::{FrameTruth, Video};

use crate::featsvc::FeatureService;

/// Configuration of an offline profiling pass.
#[derive(Debug, Clone)]
pub struct OfflineConfig {
    /// Snippet length N (the paper uses 100).
    pub snippet_len: usize,
    /// The branch catalog to label.
    pub catalog: Vec<Branch>,
    /// Detector family of the MBEK being profiled.
    pub family: DetectorFamily,
    /// Detector config used once per snippet to collect the
    /// detector-byproduct features (CPoP logits, boxes for light
    /// features). The heaviest config is used so features are maximally
    /// informative, as in the paper's offline phase.
    pub reference_detector: lr_kernels::DetectorConfig,
    /// RNG seed for the profiling device.
    pub seed: u64,
}

impl OfflineConfig {
    /// The paper's configuration over a given catalog.
    pub fn paper(catalog: Vec<Branch>, family: DetectorFamily) -> Self {
        Self {
            snippet_len: 100,
            catalog,
            family,
            reference_detector: lr_kernels::DetectorConfig::new(576, 100),
            seed: 0x0F_F1_CE,
        }
    }
}

/// One profiled snippet.
#[derive(Debug, Clone)]
pub struct SnippetRecord {
    /// Source video id.
    pub video_id: u32,
    /// First frame of the snippet within the video.
    pub start_frame: usize,
    /// Snippet length in frames.
    pub len: usize,
    /// Light features of the first frame (from reference detections).
    pub light: Vec<f32>,
    /// Heavy content features of the first frame, per kind.
    pub heavy: BTreeMap<FeatureKind, Vec<f32>>,
    /// Snippet mAP per catalog branch (the accuracy labels).
    pub branch_map: Vec<f32>,
    /// Mean detector milliseconds per frame, per branch (idle TX2).
    pub branch_det_ms: Vec<f64>,
    /// Mean tracker milliseconds per frame, per branch (idle TX2).
    pub branch_trk_ms: Vec<f64>,
}

/// The full offline dataset for one detector family.
#[derive(Debug, Clone)]
pub struct OfflineDataset {
    /// The catalog the records are labeled against.
    pub catalog: Vec<Branch>,
    /// Per-snippet records.
    pub records: Vec<SnippetRecord>,
}

impl OfflineDataset {
    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if no records were profiled.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The best achievable mAP per record given a per-frame kernel budget
    /// (an oracle used by `Ben(·)` computation and tests).
    pub fn oracle_map_under_budget(&self, record: &SnippetRecord, budget_ms: f64) -> f32 {
        record
            .branch_map
            .iter()
            .zip(record.branch_det_ms.iter().zip(record.branch_trk_ms.iter()))
            .filter(|(_, (&d, &t))| d + t <= budget_ms)
            .map(|(&m, _)| m)
            .fold(0.0, f32::max)
    }
}

/// Converts ground truth to evaluation boxes.
pub fn to_gt_boxes(truth: &FrameTruth) -> Vec<GtBox> {
    truth
        .objects
        .iter()
        .map(|o| GtBox {
            class: o.class.index(),
            bbox: o.bbox,
        })
        .collect()
}

/// Converts detections to evaluation boxes.
pub fn to_pred_boxes(dets: &[Detection]) -> Vec<PredBox> {
    dets.iter()
        .map(|d| PredBox {
            class: d.class.index(),
            bbox: d.bbox,
            score: d.score,
        })
        .collect()
}

/// Profiles a set of videos into an offline dataset.
///
/// Profiling always runs on an idle (0% contention) TX2 — that is the
/// calibration reference; the online latency model adapts to other devices
/// and contention levels through its multiplicative corrections.
pub fn profile_videos(
    videos: &[Video],
    cfg: &OfflineConfig,
    svc: &mut FeatureService,
) -> OfflineDataset {
    assert!(cfg.snippet_len > 0, "snippet length must be positive");
    assert!(!cfg.catalog.is_empty(), "empty catalog");
    let mut device = DeviceSim::new(DeviceKind::JetsonTx2, 0.0, cfg.seed);
    let mut mbek = Mbek::new(cfg.family);
    let reference = lr_kernels::DetectorSim::new(cfg.family);

    let mut records = Vec::new();
    for video in videos {
        for snippet in video.snippets(cfg.snippet_len) {
            let start = snippet[0].frame_index as usize;

            // Reference detection on the first frame: the source of light
            // features (detected boxes) and CPoP logits.
            let ref_out = reference.detect(&snippet[0], cfg.reference_detector, device.rng());
            let boxes: Vec<_> = ref_out.detections.iter().map(|d| d.bbox).collect();
            let light = svc.light(video, start, &boxes);
            let mut heavy = BTreeMap::new();
            for kind in lr_features::HEAVY_FEATURE_KINDS {
                if let Some(f) =
                    svc.extract_heavy(kind, video, start, Some(&ref_out.proposal_logits))
                {
                    heavy.insert(kind, f);
                }
            }

            // Label every branch on this snippet.
            let mut branch_map = Vec::with_capacity(cfg.catalog.len());
            let mut branch_det_ms = Vec::with_capacity(cfg.catalog.len());
            let mut branch_trk_ms = Vec::with_capacity(cfg.catalog.len());
            for &branch in &cfg.catalog {
                let (map, det_ms, trk_ms) =
                    run_branch_on_snippet(&mut mbek, branch, snippet, &mut device);
                branch_map.push(map);
                branch_det_ms.push(det_ms);
                branch_trk_ms.push(trk_ms);
            }

            records.push(SnippetRecord {
                video_id: video.spec.id,
                start_frame: start,
                len: snippet.len(),
                light,
                heavy,
                branch_map,
                branch_det_ms,
                branch_trk_ms,
            });
        }
    }
    OfflineDataset {
        catalog: cfg.catalog.clone(),
        records,
    }
}

/// Runs one branch over a snippet; returns (snippet mAP, mean detector
/// ms/frame, mean tracker ms/frame).
fn run_branch_on_snippet(
    mbek: &mut Mbek,
    branch: Branch,
    snippet: &[FrameTruth],
    device: &mut DeviceSim,
) -> (f32, f64, f64) {
    mbek.set_branch(branch);
    let mut acc = MapAccumulator::new();
    let mut det_ms = 0.0;
    let mut trk_ms = 0.0;
    let gof = branch.gof_size.max(1) as usize;
    let mut t = 0;
    while t < snippet.len() {
        let end = (t + gof).min(snippet.len());
        let result = mbek.run_gof(&snippet[t..end], device);
        det_ms += result.detector_ms;
        trk_ms += result.tracker_ms;
        for (truth, dets) in snippet[t..end].iter().zip(result.per_frame.iter()) {
            acc.add_frame(&to_gt_boxes(truth), &to_pred_boxes(dets));
        }
        t = end;
    }
    let frames = snippet.len() as f64;
    (
        acc.finalize(0.5).map as f32,
        det_ms / frames,
        trk_ms / frames,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use lr_kernels::branch::small_catalog;
    use lr_video::VideoSpec;

    fn tiny_dataset() -> OfflineDataset {
        let videos: Vec<Video> = (0..2)
            .map(|i| {
                Video::generate(VideoSpec {
                    id: i,
                    seed: 200 + i as u64,
                    width: 640.0,
                    height: 480.0,
                    num_frames: 80,
                })
            })
            .collect();
        let cfg = OfflineConfig {
            snippet_len: 40,
            catalog: small_catalog(),
            family: DetectorFamily::FasterRcnn,
            reference_detector: lr_kernels::DetectorConfig::new(576, 100),
            seed: 7,
        };
        let mut svc = FeatureService::new();
        profile_videos(&videos, &cfg, &mut svc)
    }

    #[test]
    fn profiling_produces_complete_records() {
        let ds = tiny_dataset();
        assert_eq!(ds.records.len(), 4, "2 videos x 2 snippets");
        for r in &ds.records {
            assert_eq!(r.branch_map.len(), ds.catalog.len());
            assert_eq!(r.branch_det_ms.len(), ds.catalog.len());
            assert_eq!(r.light.len(), 4);
            assert_eq!(r.heavy.len(), 5, "all heavy features present");
            assert!(r.branch_map.iter().all(|&m| (0.0..=1.0).contains(&m)));
            assert!(r.branch_det_ms.iter().all(|&m| m > 0.0));
        }
    }

    #[test]
    fn heavier_branches_cost_more_detector_time() {
        let ds = tiny_dataset();
        // Find a light and a heavy detector-only branch.
        let light_idx = ds
            .catalog
            .iter()
            .position(|b| b.tracker.is_none() && b.detector.shape == 224)
            .unwrap();
        let heavy_idx = ds
            .catalog
            .iter()
            .position(|b| b.tracker.is_none() && b.detector.shape == 448)
            .unwrap();
        for r in &ds.records {
            assert!(r.branch_det_ms[heavy_idx] > r.branch_det_ms[light_idx]);
        }
    }

    #[test]
    fn tracked_branches_have_lower_per_frame_detector_cost() {
        let ds = tiny_dataset();
        let dense = ds
            .catalog
            .iter()
            .position(|b| b.tracker.is_none() && b.detector.shape == 448)
            .unwrap();
        let tracked = ds
            .catalog
            .iter()
            .position(|b| b.tracker.is_some() && b.detector.shape == 448 && b.gof_size == 20)
            .unwrap();
        for r in &ds.records {
            assert!(r.branch_det_ms[tracked] < r.branch_det_ms[dense] / 5.0);
        }
    }

    #[test]
    fn oracle_improves_with_budget() {
        let ds = tiny_dataset();
        for r in &ds.records {
            let tight = ds.oracle_map_under_budget(r, 10.0);
            let loose = ds.oracle_map_under_budget(r, 300.0);
            assert!(loose >= tight);
        }
    }

    #[test]
    fn labels_are_not_degenerate() {
        // Some branch must achieve non-trivial accuracy on some snippet,
        // and branches must differ — otherwise the accuracy model has
        // nothing to learn.
        let ds = tiny_dataset();
        let any_good = ds
            .records
            .iter()
            .any(|r| r.branch_map.iter().any(|&m| m > 0.2));
        assert!(any_good, "all labels near zero — detection sim broken?");
        let spread = ds.records.iter().any(|r| {
            let max = r.branch_map.iter().cloned().fold(0.0f32, f32::max);
            let min = r.branch_map.iter().cloned().fold(1.0f32, f32::min);
            max - min > 0.05
        });
        assert!(spread, "branch labels are flat — no signal to learn");
    }
}
