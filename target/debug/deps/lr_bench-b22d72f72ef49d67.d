/root/repo/target/debug/deps/lr_bench-b22d72f72ef49d67.d: crates/bench/src/lib.rs crates/bench/src/suite.rs

/root/repo/target/debug/deps/liblr_bench-b22d72f72ef49d67.rlib: crates/bench/src/lib.rs crates/bench/src/suite.rs

/root/repo/target/debug/deps/liblr_bench-b22d72f72ef49d67.rmeta: crates/bench/src/lib.rs crates/bench/src/suite.rs

crates/bench/src/lib.rs:
crates/bench/src/suite.rs:
