/root/repo/target/debug/examples/quickstart-2ccb812aca24000b.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-2ccb812aca24000b: examples/quickstart.rs

examples/quickstart.rs:
