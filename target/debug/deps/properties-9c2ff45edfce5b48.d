/root/repo/target/debug/deps/properties-9c2ff45edfce5b48.d: tests/properties.rs

/root/repo/target/debug/deps/properties-9c2ff45edfce5b48: tests/properties.rs

tests/properties.rs:
