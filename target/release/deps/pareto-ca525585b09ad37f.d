/root/repo/target/release/deps/pareto-ca525585b09ad37f.d: crates/bench/src/bin/pareto.rs

/root/repo/target/release/deps/pareto-ca525585b09ad37f: crates/bench/src/bin/pareto.rs

crates/bench/src/bin/pareto.rs:
