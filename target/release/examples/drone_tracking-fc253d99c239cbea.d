/root/repo/target/release/examples/drone_tracking-fc253d99c239cbea.d: examples/drone_tracking.rs

/root/repo/target/release/examples/drone_tracking-fc253d99c239cbea: examples/drone_tracking.rs

examples/drone_tracking.rs:
