/root/repo/target/release/deps/scheduler_behavior-82b2254231f058af.d: tests/scheduler_behavior.rs

/root/repo/target/release/deps/scheduler_behavior-82b2254231f058af: tests/scheduler_behavior.rs

tests/scheduler_behavior.rs:
