//! Table 2: the main end-to-end comparison — mAP and P95 latency for all
//! seven adaptive protocols, on TX2 and AGX Xavier, at 0% and 50% GPU
//! contention, across three latency SLOs per device.
//!
//! Usage: `cargo run --release -p lr-bench --bin table2 [small|paper]`

use std::sync::Arc;

use litereconfig::protocols::AdaptiveProtocol;
use litereconfig::TrainedScheduler;
use lr_bench::{map_cell, scale_from_args, Suite};
use lr_device::DeviceKind;
use lr_eval::TextTable;
use lr_kernels::DetectorFamily;

fn main() {
    let t0 = std::time::Instant::now();
    let mut suite = Suite::build(scale_from_args());
    let ssd = suite.train_one_stage(DetectorFamily::Ssd);
    let yolo = suite.train_one_stage(DetectorFamily::Yolo);

    let mut table = TextTable::new(&[
        "Device, SLOs (ms)",
        "Contention",
        "Model",
        "mAP (%)",
        "P95 latency (ms)",
    ]);

    let scenarios = [
        (DeviceKind::JetsonTx2, 0.0),
        (DeviceKind::JetsonTx2, 50.0),
        (DeviceKind::AgxXavier, 0.0),
        (DeviceKind::AgxXavier, 50.0),
    ];

    for (scenario_idx, &(device, contention)) in scenarios.iter().enumerate() {
        let slos = device.paper_slos_ms();
        for protocol in AdaptiveProtocol::all() {
            let trained: Arc<TrainedScheduler> = match protocol.family() {
                DetectorFamily::Ssd => ssd.clone(),
                DetectorFamily::Yolo => yolo.clone(),
                _ => suite.frcnn.clone(),
            };
            let mut maps = Vec::new();
            let mut p95s = Vec::new();
            for (slo_idx, &slo) in slos.iter().enumerate() {
                let seed = 1000 + scenario_idx as u64 * 100 + slo_idx as u64;
                let r = protocol.run(
                    &suite.val_videos,
                    trained.clone(),
                    device,
                    contention,
                    slo,
                    seed,
                    &mut suite.svc,
                );
                maps.push(map_cell(r.map_pct(), r.latency.p95(), slo));
                p95s.push(format!("{:.1}", r.latency.p95()));
                eprintln!(
                    "[table2] {} {} {:.0}% @{}ms -> mAP {:.1} P95 {:.1} ({:.0}s elapsed)",
                    device.name(),
                    protocol.name(),
                    contention,
                    slo,
                    r.map_pct(),
                    r.latency.p95(),
                    t0.elapsed().as_secs_f64()
                );
            }
            let slo_label = format!(
                "{}, {}",
                device.name(),
                slos.iter()
                    .map(|s| format!("{s}"))
                    .collect::<Vec<_>>()
                    .join("/")
            );
            table.add_row_owned(vec![
                slo_label,
                format!("{contention:.0}%"),
                protocol.name().to_string(),
                maps.join("/"),
                p95s.join("/"),
            ]);
        }
    }

    println!("\nTable 2: performance comparison on the synthetic-VID validation set");
    println!("(\"F\" = the protocol's P95 latency violated the SLO, as in the paper)\n");
    println!("{}", table.render());
    println!("CSV:\n{}", table.render_csv());
}
