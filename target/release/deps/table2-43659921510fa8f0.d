/root/repo/target/release/deps/table2-43659921510fa8f0.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-43659921510fa8f0: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
