//! Quickstart: train a LiteReconfig scheduler and run it on a video
//! stream under a 30 fps latency objective.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use litereconfig::offline::{profile_videos, OfflineConfig};
use litereconfig::pipeline::{run_adaptive, RunConfig};
use litereconfig::trainer::{train_scheduler, TrainConfig};
use litereconfig::{FeatureService, Policy};
use lr_device::DeviceKind;
use lr_kernels::branch::small_catalog;
use lr_kernels::DetectorFamily;
use lr_video::{Dataset, DatasetConfig, Split};

fn main() {
    // 1. A dataset: synthetic stand-in for ILSVRC VID, split into
    //    scheduler-training and validation videos.
    let dataset = Dataset::new(DatasetConfig {
        train_vision: 0,
        train_scheduler: 4,
        validation: 2,
        id_offset: 7_000,
    });
    let train_videos = dataset.videos(Split::TrainScheduler);
    let val_videos = dataset.videos(Split::Validation);
    println!(
        "generated {} training and {} validation videos",
        train_videos.len(),
        val_videos.len()
    );

    // 2. Offline phase: profile every branch of the MBEK on the training
    //    split (per-snippet mAP labels + latency observations), then train
    //    the scheduler (accuracy MLPs, latency regressions, Ben tables).
    let mut svc = FeatureService::new();
    let offline_cfg = OfflineConfig {
        snippet_len: 50,
        ..OfflineConfig::paper(small_catalog(), DetectorFamily::FasterRcnn)
    };
    println!(
        "profiling {} branches offline...",
        offline_cfg.catalog.len()
    );
    let offline = profile_videos(&train_videos, &offline_cfg, &mut svc);
    println!("profiled {} snippets; training scheduler...", offline.len());
    let trained = Arc::new(train_scheduler(
        &offline,
        DetectorFamily::FasterRcnn,
        &TrainConfig::tiny(),
    ));

    // 3. Online phase: stream the validation videos through the full
    //    cost-benefit scheduler on a virtual Jetson TX2 at 30 fps.
    let slo_ms = 33.3;
    let cfg = RunConfig::clean(DeviceKind::JetsonTx2, 0.0, slo_ms, 1);
    let result = run_adaptive(&val_videos, trained, Policy::CostBenefit, &cfg, &mut svc);

    println!("\n=== LiteReconfig @ {slo_ms} ms SLO (TX2, no contention) ===");
    println!("frames processed : {}", result.breakdown.frames);
    println!("mAP              : {:.1}%", result.map_pct());
    println!("mean latency     : {:.1} ms", result.latency.mean());
    println!("P95 latency      : {:.1} ms", result.latency.p95());
    println!(
        "SLO met          : {}",
        if result.meets_slo(slo_ms) {
            "yes"
        } else {
            "no"
        }
    );
    println!("branches used    : {}", result.branches_used.len());
    println!("branch switches  : {}", result.switches.len());
}
