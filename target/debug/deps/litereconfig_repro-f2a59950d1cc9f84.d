/root/repo/target/debug/deps/litereconfig_repro-f2a59950d1cc9f84.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/liblitereconfig_repro-f2a59950d1cc9f84.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
