/root/repo/target/release/deps/lr_features-e1db97b314f4bae5.d: crates/features/src/lib.rs crates/features/src/cost.rs crates/features/src/cpop.rs crates/features/src/deep.rs crates/features/src/hoc.rs crates/features/src/hog.rs crates/features/src/light.rs

/root/repo/target/release/deps/lr_features-e1db97b314f4bae5: crates/features/src/lib.rs crates/features/src/cost.rs crates/features/src/cpop.rs crates/features/src/deep.rs crates/features/src/hoc.rs crates/features/src/hog.rs crates/features/src/light.rs

crates/features/src/lib.rs:
crates/features/src/cost.rs:
crates/features/src/cpop.rs:
crates/features/src/deep.rs:
crates/features/src/hoc.rs:
crates/features/src/hog.rs:
crates/features/src/light.rs:
