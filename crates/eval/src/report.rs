//! Per-class evaluation reports and precision-recall export.
//!
//! The paper reports a single mAP per run; per-class APs and PR curves
//! are what you reach for when a run's mAP moves unexpectedly, so the
//! harness exposes them.

use std::collections::BTreeMap;

use crate::map::MapResult;

/// A per-class evaluation report built from a [`MapResult`].
#[derive(Debug, Clone)]
pub struct ClassReport {
    /// `(class index, AP)` sorted by descending AP.
    pub per_class: Vec<(usize, f64)>,
    /// Mean AP.
    pub map: f64,
    /// Ground-truth instances evaluated.
    pub total_gt: usize,
}

impl ClassReport {
    /// Builds a report from an mAP result.
    pub fn from_result(result: &MapResult) -> Self {
        let mut per_class: Vec<(usize, f64)> = result
            .per_class_ap
            .iter()
            .map(|(&c, &ap)| (c, ap))
            .collect();
        per_class.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        Self {
            per_class,
            map: result.map,
            total_gt: result.total_gt,
        }
    }

    /// The `n` best classes by AP.
    pub fn best(&self, n: usize) -> &[(usize, f64)] {
        &self.per_class[..n.min(self.per_class.len())]
    }

    /// The `n` worst classes by AP.
    pub fn worst(&self, n: usize) -> Vec<(usize, f64)> {
        let k = n.min(self.per_class.len());
        let mut v = self.per_class[self.per_class.len() - k..].to_vec();
        v.reverse();
        v
    }

    /// Renders the report with class names from a lookup.
    pub fn render(&self, class_name: impl Fn(usize) -> String) -> String {
        let mut out = format!(
            "mAP {:.3} over {} classes ({} GT instances)\n",
            self.map,
            self.per_class.len(),
            self.total_gt
        );
        for (c, ap) in &self.per_class {
            out.push_str(&format!("  {:<16} AP {:.3}\n", class_name(*c), ap));
        }
        out
    }
}

/// Histogram of AP values in fixed-width buckets — a compact shape
/// summary for regression tests on evaluation distributions.
pub fn ap_histogram(result: &MapResult, buckets: usize) -> Vec<usize> {
    assert!(buckets > 0, "at least one bucket");
    let mut hist = vec![0usize; buckets];
    for &ap in result.per_class_ap.values() {
        let b = ((ap * buckets as f64) as usize).min(buckets - 1);
        hist[b] += 1;
    }
    hist
}

/// Compares two results per class, returning `(class, delta_ap)` sorted
/// by descending improvement of `after` over `before`. Classes present in
/// only one result are reported against an AP of 0.
pub fn per_class_delta(before: &MapResult, after: &MapResult) -> Vec<(usize, f64)> {
    let mut classes: BTreeMap<usize, (f64, f64)> = BTreeMap::new();
    for (&c, &ap) in &before.per_class_ap {
        classes.entry(c).or_insert((0.0, 0.0)).0 = ap;
    }
    for (&c, &ap) in &after.per_class_ap {
        classes.entry(c).or_insert((0.0, 0.0)).1 = ap;
    }
    let mut out: Vec<(usize, f64)> = classes.into_iter().map(|(c, (b, a))| (c, a - b)).collect();
    out.sort_by(|x, y| y.1.total_cmp(&x.1).then(x.0.cmp(&y.0)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map::{GtBox, MapAccumulator, PredBox};
    use lr_video::BBox;

    fn result(ap_pairs: &[(usize, bool)]) -> MapResult {
        // Build a result where each class either gets a perfect detection
        // (AP 1) or none (AP 0).
        let mut acc = MapAccumulator::new();
        for &(class, hit) in ap_pairs {
            let bbox = BBox::new(class as f32 * 50.0, 0.0, 10.0, 10.0);
            let gt = [GtBox { class, bbox }];
            if hit {
                acc.add_frame(
                    &gt,
                    &[PredBox {
                        class,
                        bbox,
                        score: 0.9,
                    }],
                );
            } else {
                acc.add_frame(&gt, &[]);
            }
        }
        acc.finalize(0.5)
    }

    #[test]
    fn report_sorts_by_ap() {
        let r = result(&[(0, false), (1, true), (2, true)]);
        let rep = ClassReport::from_result(&r);
        assert_eq!(rep.per_class.len(), 3);
        assert!(rep.per_class[0].1 >= rep.per_class[2].1);
        assert_eq!(rep.worst(1)[0].0, 0);
    }

    #[test]
    fn histogram_buckets_extremes() {
        let r = result(&[(0, false), (1, true), (2, true)]);
        let h = ap_histogram(&r, 2);
        assert_eq!(h, vec![1, 2]);
    }

    #[test]
    fn delta_ranks_improvements_first() {
        let before = result(&[(0, false), (1, true)]);
        let after = result(&[(0, true), (1, false)]);
        let d = per_class_delta(&before, &after);
        assert_eq!(d[0], (0, 1.0));
        assert_eq!(d[1], (1, -1.0));
    }

    #[test]
    fn render_includes_names() {
        let r = result(&[(0, true)]);
        let rep = ClassReport::from_result(&r);
        let s = rep.render(|c| format!("class{c}"));
        assert!(s.contains("class0"));
        assert!(s.contains("mAP 1.000"));
    }
}
