//! The parallel dispatcher's determinism contract: `serve()` must
//! produce bit-identical reports no matter how many pool workers step a
//! round, because round membership, the occupancy snapshot, and the
//! record/backpressure post-pass are all computed serially and every
//! stream owns its RNG, device clock, and feature cache.

use std::sync::Arc;

use litereconfig::offline::{profile_videos, OfflineConfig};
use litereconfig::trainer::{train_scheduler, TrainConfig};
use litereconfig::{FeatureService, Policy, TrainedScheduler};
use lr_device::DeviceKind;
use lr_kernels::branch::small_catalog;
use lr_kernels::DetectorFamily;
use lr_serve::{serve, serve_traced, ObsMode, ServeConfig, ServeReport, SloClass, StreamSpec};
use lr_video::{Video, VideoSpec};

fn trained() -> Arc<TrainedScheduler> {
    let videos: Vec<Video> = (0..2)
        .map(|i| {
            Video::generate(VideoSpec {
                id: 880 + i,
                seed: 7_880 + i as u64,
                width: 640.0,
                height: 480.0,
                num_frames: 60,
            })
        })
        .collect();
    let mut svc = FeatureService::new();
    let cfg = OfflineConfig {
        snippet_len: 30,
        catalog: small_catalog(),
        family: DetectorFamily::FasterRcnn,
        reference_detector: lr_kernels::DetectorConfig::new(576, 100),
        seed: 88,
    };
    let ds = profile_videos(&videos, &cfg, &mut svc);
    Arc::new(train_scheduler(
        &ds,
        DetectorFamily::FasterRcnn,
        &TrainConfig::tiny(),
    ))
}

/// A mixed-class offered load: every SLO class is represented so the
/// comparison covers pacing, aging, degradation, and backpressure.
fn mixed_specs(n: usize) -> Vec<StreamSpec> {
    (0..n)
        .map(|i| {
            let class = match i % 3 {
                0 => SloClass::Gold,
                1 => SloClass::Silver,
                _ => SloClass::Bronze,
            };
            StreamSpec::synthetic(i as u32, class, 40)
        })
        .collect()
}

/// Exact comparison of everything a report exposes; latency stats are
/// compared through their derived percentiles and counts, which pin the
/// underlying sample multiset for our purposes.
fn assert_reports_identical(a: &ServeReport, b: &ServeReport, label: &str) {
    assert_eq!(a.streams.len(), b.streams.len(), "{label}: stream count");
    for (x, y) in a.streams.iter().zip(&b.streams) {
        assert_eq!(x.name, y.name, "{label}");
        assert_eq!(x.decision, y.decision, "{label}: {}", x.name);
        assert_eq!(x.degraded_midrun, y.degraded_midrun, "{label}: {}", x.name);
        assert_eq!(x.frames, y.frames, "{label}: {}", x.name);
        assert_eq!(x.gofs, y.gofs, "{label}: {}", x.name);
        assert_eq!(x.map.to_bits(), y.map.to_bits(), "{label}: {} mAP", x.name);
        assert_eq!(
            x.violation_rate.to_bits(),
            y.violation_rate.to_bits(),
            "{label}: {} violation rate",
            x.name
        );
        assert_eq!(
            x.mean_slowdown.to_bits(),
            y.mean_slowdown.to_bits(),
            "{label}: {} slowdown",
            x.name
        );
        assert_eq!(
            x.latency.count(),
            y.latency.count(),
            "{label}: {} sample count",
            x.name
        );
        for pct in [0.5, 0.95, 0.99] {
            assert_eq!(
                x.latency.percentile(pct).to_bits(),
                y.latency.percentile(pct).to_bits(),
                "{label}: {} p{}",
                x.name,
                pct * 100.0
            );
        }
        assert_eq!(
            x.latency.mean().to_bits(),
            y.latency.mean().to_bits(),
            "{label}: {} mean latency",
            x.name
        );
        assert_eq!(x.faults, y.faults, "{label}: {} faults", x.name);
        assert_eq!(
            x.degraded_gofs, y.degraded_gofs,
            "{label}: {} degraded GoFs",
            x.name
        );
        assert_eq!(x.evictions, y.evictions, "{label}: {} evictions", x.name);
        assert_eq!(
            x.terminal_evicted, y.terminal_evicted,
            "{label}: {} terminal eviction",
            x.name
        );
        assert_eq!(
            x.recovery_ms_total.to_bits(),
            y.recovery_ms_total.to_bits(),
            "{label}: {} recovery time",
            x.name
        );
    }
}

#[test]
fn serve_reports_are_identical_for_one_and_four_workers() {
    let t = trained();
    let specs = mixed_specs(6);
    for device in [DeviceKind::JetsonTx2, DeviceKind::AgxXavier] {
        for seed in [1u64, 2, 3] {
            let run = |threads: usize| {
                let mut cfg = ServeConfig::new(device);
                cfg.seed = seed;
                cfg.pool_threads = threads;
                let mut svc = FeatureService::new();
                serve(&specs, t.clone(), Policy::CostBenefit, &cfg, &mut svc)
            };
            let serial = run(1);
            let parallel = run(4);
            assert_reports_identical(&serial, &parallel, &format!("{device:?} seed {seed}"));
        }
    }
}

#[test]
fn faulted_serving_is_thread_count_invariant() {
    // With fault injection live, the eviction/backoff/re-admission
    // machinery and the fallback ladder all run — the report must still
    // be bit-identical for any worker count.
    let t = trained();
    let specs = mixed_specs(6);
    let run = |threads: usize| {
        let mut cfg = ServeConfig::new(DeviceKind::JetsonTx2);
        cfg.seed = 5;
        cfg.pool_threads = threads;
        let mut fault = lr_device::FaultConfig::moderate(404);
        fault.transient_rate = 0.25;
        cfg.fault = Some(fault);
        cfg.fault_window_gofs = 3;
        cfg.fault_rate_threshold = 0.34;
        cfg.fault_backoff_ms = 120.0;
        let mut svc = FeatureService::new();
        serve(&specs, t.clone(), Policy::CostBenefit, &cfg, &mut svc)
    };
    let serial = run(1);
    assert!(
        serial.total_faults() > 0,
        "fault injection never fired; the test is vacuous"
    );
    for threads in [2, 4] {
        assert_reports_identical(
            &serial,
            &run(threads),
            &format!("faulted {threads} workers"),
        );
    }
}

#[test]
fn trace_jsonl_is_thread_count_invariant() {
    // The observability layer inherits the determinism contract: the
    // serialized trace — spans, decision records, rounds, metrics — must
    // be byte-identical for any worker count, because per-stream sinks
    // buffer privately and are drained serially in spec order.
    let t = trained();
    let specs = mixed_specs(6);
    let run = |threads: usize| {
        let mut cfg = ServeConfig::new(DeviceKind::JetsonTx2);
        cfg.seed = 21;
        cfg.pool_threads = threads;
        cfg.obs = ObsMode::Trace;
        let mut svc = FeatureService::new();
        serve_traced(&specs, t.clone(), Policy::CostBenefit, &cfg, &mut svc)
    };
    let (report_1, bundle_1) = run(1);
    let jsonl_1 = bundle_1.to_jsonl();
    assert!(
        bundle_1.decisions().next().is_some(),
        "trace produced no decision records; the test is vacuous"
    );
    assert!(
        bundle_1.spans().next().is_some(),
        "trace produced no spans; the test is vacuous"
    );
    for threads in [2, 4] {
        let (report_n, bundle_n) = run(threads);
        assert_reports_identical(&report_1, &report_n, &format!("traced {threads} workers"));
        assert_eq!(
            jsonl_1,
            bundle_n.to_jsonl(),
            "trace JSONL differs between 1 and {threads} workers"
        );
    }
}

#[test]
fn faulted_trace_jsonl_is_thread_count_invariant() {
    // Same contract with fault injection live: DetectorFault spans end
    // on the error path, fallback spans and degrade tags flow into the
    // decision records, and the serialized trace must still be
    // byte-identical for any worker count.
    let t = trained();
    let specs = mixed_specs(6);
    let run = |threads: usize| {
        let mut cfg = ServeConfig::new(DeviceKind::JetsonTx2);
        cfg.seed = 5;
        cfg.pool_threads = threads;
        cfg.obs = ObsMode::Trace;
        let mut fault = lr_device::FaultConfig::moderate(404);
        fault.transient_rate = 0.25;
        cfg.fault = Some(fault);
        cfg.fault_window_gofs = 3;
        cfg.fault_rate_threshold = 0.34;
        cfg.fault_backoff_ms = 120.0;
        let mut svc = FeatureService::new();
        serve_traced(&specs, t.clone(), Policy::CostBenefit, &cfg, &mut svc)
    };
    let (report_1, bundle_1) = run(1);
    assert!(
        report_1.total_faults() > 0,
        "fault injection never fired; the test is vacuous"
    );
    let jsonl_1 = bundle_1.to_jsonl();
    assert!(
        bundle_1.decisions().any(|d| d.faults > 0),
        "no decision record carries a fault; the test is vacuous"
    );
    for threads in [2, 4] {
        let (report_n, bundle_n) = run(threads);
        assert_reports_identical(
            &report_1,
            &report_n,
            &format!("faulted traced {threads} workers"),
        );
        assert_eq!(
            jsonl_1,
            bundle_n.to_jsonl(),
            "faulted trace JSONL differs between 1 and {threads} workers"
        );
    }
}

#[test]
fn observation_never_perturbs_the_run() {
    // The zero-overhead contract: the report must be bit-identical
    // whether observation is off, counting, or fully tracing — sinks
    // only read the virtual clock, never advance it or draw RNG. And
    // counting mode's metrics must equal trace mode's, since tracing
    // only *adds* the event stream.
    let t = trained();
    let specs = mixed_specs(6);
    let run = |mode: ObsMode| {
        let mut cfg = ServeConfig::new(DeviceKind::JetsonTx2);
        cfg.seed = 33;
        cfg.obs = mode;
        let mut svc = FeatureService::new();
        serve_traced(&specs, t.clone(), Policy::CostBenefit, &cfg, &mut svc)
    };
    let (report_off, bundle_off) = run(ObsMode::Off);
    let (report_count, bundle_count) = run(ObsMode::Counting);
    let (report_trace, bundle_trace) = run(ObsMode::Trace);
    assert_reports_identical(&report_off, &report_count, "off vs counting");
    assert_reports_identical(&report_off, &report_trace, "off vs trace");
    assert!(
        bundle_off.metrics.counters().next().is_none() && bundle_off.events.is_empty(),
        "Off mode must collect nothing"
    );
    assert!(
        bundle_count.events.is_empty(),
        "Counting mode must not buffer events"
    );
    assert_eq!(
        bundle_count.metrics.render(),
        bundle_trace.metrics.render(),
        "counting and tracing must aggregate identical metrics"
    );
}

#[test]
fn overload_without_admission_is_also_thread_count_invariant() {
    // No admission gate: everything is admitted, contention is heavy,
    // and backpressure degradation fires — the paths most sensitive to
    // ordering must still be identical under parallel stepping.
    let t = trained();
    let specs = mixed_specs(8);
    let run = |threads: usize| {
        let mut cfg = ServeConfig::new(DeviceKind::JetsonTx2).without_admission();
        cfg.seed = 11;
        cfg.pool_threads = threads;
        let mut svc = FeatureService::new();
        serve(&specs, t.clone(), Policy::CostBenefit, &cfg, &mut svc)
    };
    let serial = run(1);
    for threads in [2, 4] {
        assert_reports_identical(&serial, &run(threads), &format!("{threads} workers"));
    }
}
