/root/repo/target/release/deps/table2-eac6f7da3068d6b9.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-eac6f7da3068d6b9: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
