//! Execution branches: the MBEK's tuning-knob space.

/// Detector knobs: input resolution and proposal count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DetectorConfig {
    /// Input resolution (short side in pixels) the frame is resized to.
    pub shape: u32,
    /// Number of region proposals kept after the RPN.
    pub nprop: u32,
}

impl DetectorConfig {
    /// Creates a config.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range knobs.
    pub fn new(shape: u32, nprop: u32) -> Self {
        assert!((96..=1024).contains(&shape), "shape {shape} out of range");
        assert!((1..=300).contains(&nprop), "nprop {nprop} out of range");
        Self { shape, nprop }
    }

    /// A stable key identifying the detector configuration.
    pub fn key(self) -> u64 {
        (self.shape as u64) << 16 | self.nprop as u64
    }
}

/// The four tracker types the MBEK pairs with its detector (same set as
/// ApproxDet).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TrackerKind {
    /// Median Flow: very cheap, drifts quickly under fast motion.
    MedianFlow,
    /// Kernelized Correlation Filter: cheap, moderately robust.
    Kcf,
    /// Channel and Spatial Reliability Tracker: accurate but slow.
    Csrt,
    /// Sparse optical flow (Lucas–Kanade style): mid cost, blur-sensitive.
    OpticalFlow,
}

impl TrackerKind {
    /// All tracker kinds.
    pub fn all() -> [TrackerKind; 4] {
        [
            TrackerKind::MedianFlow,
            TrackerKind::Kcf,
            TrackerKind::Csrt,
            TrackerKind::OpticalFlow,
        ]
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            TrackerKind::MedianFlow => "MedianFlow",
            TrackerKind::Kcf => "KCF",
            TrackerKind::Csrt => "CSRT",
            TrackerKind::OpticalFlow => "OpticalFlow",
        }
    }

    /// A small integer id for keys.
    pub fn id(self) -> u64 {
        match self {
            TrackerKind::MedianFlow => 1,
            TrackerKind::Kcf => 2,
            TrackerKind::Csrt => 3,
            TrackerKind::OpticalFlow => 4,
        }
    }
}

/// One execution branch of the MBEK.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Branch {
    /// Detector configuration.
    pub detector: DetectorConfig,
    /// Tracker used for non-detection frames; `None` iff `gof_size == 1`.
    pub tracker: Option<TrackerKind>,
    /// GoF size `si`: the detector runs every `si` frames.
    pub gof_size: u32,
    /// Tracker input downsampling ratio `ds`.
    pub downsample: u32,
}

impl Branch {
    /// Creates a detector-only branch (detector on every frame).
    pub fn detector_only(shape: u32, nprop: u32) -> Self {
        Self {
            detector: DetectorConfig::new(shape, nprop),
            tracker: None,
            gof_size: 1,
            downsample: 1,
        }
    }

    /// Creates a tracking-by-detection branch.
    ///
    /// # Panics
    ///
    /// Panics if `gof_size < 2` or `downsample` is zero.
    pub fn tracked(
        shape: u32,
        nprop: u32,
        tracker: TrackerKind,
        gof_size: u32,
        downsample: u32,
    ) -> Self {
        assert!(gof_size >= 2, "tracked branches need gof_size >= 2");
        assert!(downsample >= 1, "downsample must be >= 1");
        Self {
            detector: DetectorConfig::new(shape, nprop),
            tracker: Some(tracker),
            gof_size,
            downsample,
        }
    }

    /// A stable key identifying the branch (used for switching-cost
    /// bookkeeping and model outputs).
    pub fn key(self) -> u64 {
        let t = self.tracker.map_or(0, TrackerKind::id);
        self.detector.key() << 24 | t << 16 | (self.gof_size as u64) << 4 | self.downsample as u64
    }

    /// Human-readable name, e.g. `frcnn-448x20+KCF/si8/ds4`.
    pub fn name(&self) -> String {
        match self.tracker {
            None => format!("frcnn-{}x{}", self.detector.shape, self.detector.nprop),
            Some(t) => format!(
                "frcnn-{}x{}+{}/si{}/ds{}",
                self.detector.shape,
                self.detector.nprop,
                t.name(),
                self.gof_size,
                self.downsample
            ),
        }
    }
}

/// The shapes used by the default catalog.
pub const CATALOG_SHAPES: [u32; 4] = [224, 320, 448, 576];
/// The proposal counts used by the default catalog.
pub const CATALOG_NPROPS: [u32; 4] = [1, 5, 20, 100];
/// The GoF sizes used by the default catalog.
pub const CATALOG_GOFS: [u32; 4] = [4, 8, 20, 50];

/// The default branch catalog the scheduler optimizes over.
///
/// Per detector config: one detector-only branch plus every
/// (tracker, gof) combination at `ds = 4` (ApproxDet's best-performing
/// downsampling on embedded boards), yielding
/// `4 shapes x 4 nprops x (1 + 4 trackers x 4 gofs) = 272` branches.
pub fn default_catalog() -> Vec<Branch> {
    let mut out = Vec::new();
    for &shape in &CATALOG_SHAPES {
        for &nprop in &CATALOG_NPROPS {
            out.push(Branch::detector_only(shape, nprop));
            for tracker in TrackerKind::all() {
                for &gof in &CATALOG_GOFS {
                    out.push(Branch::tracked(shape, nprop, tracker, gof, 4));
                }
            }
        }
    }
    out
}

/// The catalog used by the one-stage baselines (SSD+, YOLO+): the same
/// tracker/GoF knobs but no proposal knob (one-stage detectors have no
/// RPN; `nprop` is pinned to 100 by convention), yielding
/// `4 shapes x (1 + 4 trackers x 4 gofs) = 68` branches.
pub fn one_stage_catalog() -> Vec<Branch> {
    let mut out = Vec::new();
    for &shape in &CATALOG_SHAPES {
        out.push(Branch::detector_only(shape, 100));
        for tracker in TrackerKind::all() {
            for &gof in &CATALOG_GOFS {
                out.push(Branch::tracked(shape, 100, tracker, gof, 4));
            }
        }
    }
    out
}

/// A small catalog (18 branches) for fast tests.
pub fn small_catalog() -> Vec<Branch> {
    let mut out = Vec::new();
    for &shape in &[224u32, 448] {
        for &nprop in &[5u32, 100] {
            out.push(Branch::detector_only(shape, nprop));
            for tracker in [TrackerKind::MedianFlow, TrackerKind::Csrt] {
                out.push(Branch::tracked(shape, nprop, tracker, 8, 4));
                out.push(Branch::tracked(shape, nprop, tracker, 20, 4));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn default_catalog_has_272_branches() {
        assert_eq!(default_catalog().len(), 272);
    }

    #[test]
    fn catalog_keys_are_unique() {
        let cat = default_catalog();
        let keys: HashSet<u64> = cat.iter().map(|b| b.key()).collect();
        assert_eq!(keys.len(), cat.len());
    }

    #[test]
    fn small_catalog_keys_are_unique() {
        let cat = small_catalog();
        let keys: HashSet<u64> = cat.iter().map(|b| b.key()).collect();
        assert_eq!(keys.len(), cat.len());
    }

    #[test]
    fn detector_only_branch_has_no_tracker() {
        let b = Branch::detector_only(448, 20);
        assert!(b.tracker.is_none());
        assert_eq!(b.gof_size, 1);
    }

    #[test]
    fn names_are_readable() {
        let b = Branch::tracked(448, 20, TrackerKind::Kcf, 8, 4);
        assert_eq!(b.name(), "frcnn-448x20+KCF/si8/ds4");
        assert_eq!(Branch::detector_only(224, 1).name(), "frcnn-224x1");
    }

    #[test]
    #[should_panic(expected = "gof_size >= 2")]
    fn tracked_branch_rejects_gof_one() {
        let _ = Branch::tracked(224, 1, TrackerKind::Kcf, 1, 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn absurd_shape_rejected() {
        let _ = DetectorConfig::new(4096, 10);
    }
}
