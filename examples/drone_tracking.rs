//! Drone tracking under GPU contention: the scenario the paper's
//! contention evaluation models.
//!
//! A drone runs object detection at 20 fps while other onboard workloads
//! (SLAM, video encoding) contend for the GPU. This example shows the
//! difference between a contention-adaptive scheduler (LiteReconfig) and
//! a latency-adaptive-only baseline when contention ramps from 0% to 50%
//! mid-mission.
//!
//! ```sh
//! cargo run --release --example drone_tracking
//! ```

use std::sync::Arc;

use litereconfig::offline::{profile_videos, OfflineConfig};
use litereconfig::pipeline::{run_adaptive, RunConfig};
use litereconfig::trainer::{train_scheduler, TrainConfig};
use litereconfig::{FeatureService, Policy};
use lr_device::DeviceKind;
use lr_kernels::branch::small_catalog;
use lr_kernels::DetectorFamily;
use lr_video::{Dataset, DatasetConfig, Split};

fn main() {
    let dataset = Dataset::new(DatasetConfig {
        train_vision: 0,
        train_scheduler: 4,
        validation: 3,
        id_offset: 8_000,
    });
    let train_videos = dataset.videos(Split::TrainScheduler);
    let mission_videos = dataset.videos(Split::Validation);

    let mut svc = FeatureService::new();
    let offline_cfg = OfflineConfig {
        snippet_len: 50,
        ..OfflineConfig::paper(small_catalog(), DetectorFamily::FasterRcnn)
    };
    let offline = profile_videos(&train_videos, &offline_cfg, &mut svc);
    let trained = Arc::new(train_scheduler(
        &offline,
        DetectorFamily::FasterRcnn,
        &TrainConfig::tiny(),
    ));

    let slo_ms = 50.0; // 20 fps mission requirement.
    println!("=== drone mission: 20 fps object detection, AGX Xavier ===\n");
    for contention in [0.0, 50.0] {
        println!("-- GPU contention from co-located workloads: {contention:.0}% --");
        for (label, adaptive) in [
            ("LiteReconfig (contention-adaptive)", true),
            ("latency-only baseline", false),
        ] {
            let mut cfg = RunConfig::clean(DeviceKind::AgxXavier, contention, slo_ms, 11);
            cfg.contention_adaptive = adaptive;
            let r = run_adaptive(
                &mission_videos,
                trained.clone(),
                Policy::CostBenefit,
                &cfg,
                &mut svc,
            );
            println!(
                "  {label:<36} mAP {:>5.1}%  P95 {:>6.1} ms  SLO {}",
                r.map_pct(),
                r.latency.p95(),
                if r.meets_slo(slo_ms) {
                    "MET"
                } else {
                    "VIOLATED"
                }
            );
        }
        println!();
    }
    println!(
        "The adaptive scheduler senses the inflated GPU latencies through \
         its online corrections and shifts to tracker-heavy branches (the \
         trackers run on the CPU and are immune to GPU contention); the \
         frozen baseline keeps scheduling against its offline latency \
         table and blows the SLO."
    );
}
