/root/repo/target/release/deps/lr_serve-8384d15b3c882e91.d: crates/serve/src/lib.rs crates/serve/src/admission.rs crates/serve/src/dispatch.rs crates/serve/src/report.rs crates/serve/src/shared.rs crates/serve/src/slo.rs

/root/repo/target/release/deps/lr_serve-8384d15b3c882e91: crates/serve/src/lib.rs crates/serve/src/admission.rs crates/serve/src/dispatch.rs crates/serve/src/report.rs crates/serve/src/shared.rs crates/serve/src/slo.rs

crates/serve/src/lib.rs:
crates/serve/src/admission.rs:
crates/serve/src/dispatch.rs:
crates/serve/src/report.rs:
crates/serve/src/shared.rs:
crates/serve/src/slo.rs:
