/root/repo/target/debug/deps/lr_video-59a1d6fca0a3d612.d: crates/video/src/lib.rs crates/video/src/classes.rs crates/video/src/dataset.rs crates/video/src/geometry.rs crates/video/src/object.rs crates/video/src/raster.rs crates/video/src/regime.rs crates/video/src/scene.rs crates/video/src/trace.rs crates/video/src/video.rs

/root/repo/target/debug/deps/lr_video-59a1d6fca0a3d612: crates/video/src/lib.rs crates/video/src/classes.rs crates/video/src/dataset.rs crates/video/src/geometry.rs crates/video/src/object.rs crates/video/src/raster.rs crates/video/src/regime.rs crates/video/src/scene.rs crates/video/src/trace.rs crates/video/src/video.rs

crates/video/src/lib.rs:
crates/video/src/classes.rs:
crates/video/src/dataset.rs:
crates/video/src/geometry.rs:
crates/video/src/object.rs:
crates/video/src/raster.rs:
crates/video/src/regime.rs:
crates/video/src/scene.rs:
crates/video/src/trace.rs:
crates/video/src/video.rs:
