//! Debug-build numeric sanitizers.
//!
//! NaN and infinity propagate silently through matmuls and training
//! steps, surfacing only much later as a garbage accuracy table or a
//! scheduler that always picks branch 0. The [`debug_assert_finite!`]
//! macro catches them at the op that *produced* them: it is wired into
//! the tensor kernels, dense-layer forward passes, and loss values, and
//! compiles to nothing in release builds (the bench and serving paths
//! pay zero cost).

/// Asserts, in debug builds only, that every value of the expression is
/// finite.
///
/// Accepts anything implementing [`AllFinite`]: an `f32`/`f64` scalar, a
/// slice of either, or a [`crate::Matrix`]. The `$what` argument names
/// the producing operation in the panic message.
///
/// ```
/// use lr_nn::debug_assert_finite;
/// let v = [0.0f32, 1.5, -2.0];
/// debug_assert_finite!(&v[..], "example vector");
/// ```
#[macro_export]
macro_rules! debug_assert_finite {
    ($value:expr, $what:expr) => {
        if cfg!(debug_assertions) {
            $crate::sanitize::assert_finite_impl(&$value, $what);
        }
    };
}

/// Values the sanitizer knows how to scan for non-finite entries.
pub trait AllFinite {
    /// Returns the first non-finite value found, if any.
    fn first_non_finite(&self) -> Option<f64>;
}

impl AllFinite for f32 {
    fn first_non_finite(&self) -> Option<f64> {
        (!self.is_finite()).then(|| f64::from(*self))
    }
}

impl AllFinite for f64 {
    fn first_non_finite(&self) -> Option<f64> {
        (!self.is_finite()).then_some(*self)
    }
}

impl AllFinite for [f32] {
    fn first_non_finite(&self) -> Option<f64> {
        self.iter().find(|v| !v.is_finite()).map(|v| f64::from(*v))
    }
}

impl AllFinite for [f64] {
    fn first_non_finite(&self) -> Option<f64> {
        self.iter().find(|v| !v.is_finite()).copied()
    }
}

impl AllFinite for crate::Matrix {
    fn first_non_finite(&self) -> Option<f64> {
        self.as_slice().first_non_finite()
    }
}

impl<T: AllFinite + ?Sized> AllFinite for &T {
    fn first_non_finite(&self) -> Option<f64> {
        (**self).first_non_finite()
    }
}

/// Panics if `value` contains a non-finite entry. Called by
/// [`debug_assert_finite!`]; not meant for direct use.
#[doc(hidden)]
pub fn assert_finite_impl<T: AllFinite + ?Sized>(value: &T, what: &str) {
    if let Some(bad) = value.first_non_finite() {
        panic!("non-finite value {bad} produced by {what}");
    }
}

#[cfg(test)]
mod tests {
    use crate::Matrix;

    #[test]
    fn finite_values_pass() {
        debug_assert_finite!(1.0f32, "scalar");
        debug_assert_finite!(&[0.0f64, -3.5][..], "slice");
        debug_assert_finite!(Matrix::zeros(2, 2), "matrix");
    }

    #[test]
    #[should_panic(expected = "non-finite value NaN produced by unit test")]
    fn nan_is_caught_with_the_op_name() {
        debug_assert_finite!(f32::NAN, "unit test");
    }

    #[test]
    #[should_panic(expected = "produced by inf slice")]
    fn infinity_in_a_slice_is_caught() {
        debug_assert_finite!(&[1.0f32, f32::INFINITY][..], "inf slice");
    }
}
