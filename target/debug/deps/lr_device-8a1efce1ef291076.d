/root/repo/target/debug/deps/lr_device-8a1efce1ef291076.d: crates/device/src/lib.rs crates/device/src/clock.rs crates/device/src/contention.rs crates/device/src/executor.rs crates/device/src/memory.rs crates/device/src/noise.rs crates/device/src/profile.rs crates/device/src/switching.rs

/root/repo/target/debug/deps/liblr_device-8a1efce1ef291076.rlib: crates/device/src/lib.rs crates/device/src/clock.rs crates/device/src/contention.rs crates/device/src/executor.rs crates/device/src/memory.rs crates/device/src/noise.rs crates/device/src/profile.rs crates/device/src/switching.rs

/root/repo/target/debug/deps/liblr_device-8a1efce1ef291076.rmeta: crates/device/src/lib.rs crates/device/src/clock.rs crates/device/src/contention.rs crates/device/src/executor.rs crates/device/src/memory.rs crates/device/src/noise.rs crates/device/src/profile.rs crates/device/src/switching.rs

crates/device/src/lib.rs:
crates/device/src/clock.rs:
crates/device/src/contention.rs:
crates/device/src/executor.rs:
crates/device/src/memory.rs:
crates/device/src/noise.rs:
crates/device/src/profile.rs:
crates/device/src/switching.rs:
